"""Sec. 3.3 / 3.5 closed forms, validated measurement-vs-theory at scale.

* Basic DAT branching: B(i, n) = log2(n) - ceil(log2(d/d0 + 1)) holds for
  every node on evenly spaced power-of-two rings.
* Balanced DAT: branching <= 2 and height <= log2(n) on the same rings.
* Basic DAT height equals the longest finger route (= O(log n)).
"""

from repro.chord.idgen import UniformIdAssigner
from repro.chord.idspace import IdSpace
from repro.chord.routing import route_lengths
from repro.core.analysis import (
    compare_depths_to_theory,
    compare_measured_to_theory,
    theoretical_basic_avg_branching,
)
from repro.core.builder import build_balanced_dat, build_basic_dat
from repro.experiments.report import format_table
from repro.util.bits import ceil_log2

SIZES = [16, 64, 256, 1024, 4096]


def validate_theory():
    rows = []
    for n in SIZES:
        bits = max(ceil_log2(n) + 4, 16)
        space = IdSpace(bits)
        ring = UniformIdAssigner().build_ring(space, n)
        tables = ring.all_finger_tables()

        basic = build_basic_dat(ring, key=0, tables=tables)
        mismatches = sum(
            1 for _node, (m, p) in compare_measured_to_theory(basic, bits).items() if m != p
        )
        depth_mismatches = sum(
            1 for _node, (m, p) in compare_depths_to_theory(basic, bits).items() if m != p
        )

        balanced = build_balanced_dat(ring, key=0, tables=tables)
        rows.append(
            {
                "n": n,
                "B(i,n)_mismatches": mismatches,
                "depth_popcount_mismatches": depth_mismatches,
                "basic_root_branching": basic.branching_factor(basic.root),
                "log2_n": ceil_log2(n),
                "basic_avg_branching": round(basic.stats().avg_branching, 4),
                "avg_branching_formula": round(theoretical_basic_avg_branching(n), 4),
                "balanced_max_branching": balanced.stats().max_branching,
                "balanced_height": balanced.height,
                "basic_height": basic.height,
            }
        )
    return rows


def test_theory_validation(benchmark, emit):
    rows = benchmark.pedantic(validate_theory, rounds=1, iterations=1)
    emit(
        "theory_validation",
        format_table(rows, title="Sec 3.3/3.5 closed forms vs measurement "
                                 "(evenly spaced rings)"),
    )
    for row in rows:
        n = row["n"]
        assert row["B(i,n)_mismatches"] == 0, n
        assert row["depth_popcount_mismatches"] == 0, n
        assert row["basic_root_branching"] == row["log2_n"], n
        assert row["basic_avg_branching"] == row["avg_branching_formula"], n
        assert row["balanced_max_branching"] <= 2, n
        assert row["balanced_height"] <= row["log2_n"], n


def test_basic_height_equals_longest_route(benchmark):
    def measure():
        space = IdSpace(16)
        ring = UniformIdAssigner().build_ring(space, 1024)
        tables = ring.all_finger_tables()
        tree = build_basic_dat(ring, key=0, tables=tables)
        longest = max(route_lengths(ring, 0, tables=tables).values())
        return tree.height, longest

    height, longest = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert height == longest

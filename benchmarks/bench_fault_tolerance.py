"""Fault-tolerant aggregation via replica trees (related-work extension).

Li et al. [12] motivate multiple trees "to tolerate single points of
failure"; this bench quantifies the payoff on our overlay: accuracy of a
global SUM under random node crashes, single tree vs k=3/5 replicas with
median combining.
"""

import numpy as np

from repro.chord.idgen import ProbingIdAssigner
from repro.chord.idspace import IdSpace
from repro.core.redundant import RedundantAggregator
from repro.errors import AggregationError
from repro.experiments.report import format_table


def sweep_replicas():
    ring = ProbingIdAssigner().build_ring(IdSpace(32), 128, rng=2007)
    values = {node: float(i % 13 + 1) for i, node in enumerate(ring)}
    rng = np.random.default_rng(2007)
    rows = []
    for k in (1, 3, 5):
        aggregator = RedundantAggregator(ring, "cpu-usage", k=k)
        errors = []
        unavailable = 0
        trials = 30
        for _ in range(trials):
            failed = {
                node
                for node in ring
                if rng.random() < 0.05  # 5% simultaneous crash failures
            }
            truth = sum(v for n, v in values.items() if n not in failed)
            try:
                result = aggregator.aggregate(values, "sum", failed_nodes=failed)
            except AggregationError:
                unavailable += 1
                continue
            errors.append(abs(result.value - truth) / truth)
        rows.append(
            {
                "replicas": k,
                "trials": trials,
                "unavailable": unavailable,
                "mean_rel_err": round(float(np.mean(errors)), 4) if errors else None,
                "p90_rel_err": round(float(np.percentile(errors, 90)), 4)
                if errors
                else None,
            }
        )
    return rows


def test_replica_fault_tolerance(benchmark, emit):
    rows = benchmark.pedantic(sweep_replicas, rounds=1, iterations=1)
    emit(
        "fault_tolerance",
        format_table(rows, title="Replica-tree fault tolerance "
                                 "(128 nodes, 5% crashed per trial, SUM)"),
    )
    by = {row["replicas"]: row for row in rows}

    # Replication cuts the error against post-crash ground truth; the win
    # is largest in the tail (a single unlucky tree loses huge subtrees,
    # the replica median doesn't).
    assert by[3]["mean_rel_err"] <= by[1]["mean_rel_err"]
    assert by[5]["mean_rel_err"] <= by[1]["mean_rel_err"]
    assert by[3]["p90_rel_err"] <= by[1]["p90_rel_err"] * 0.7
    assert by[5]["p90_rel_err"] <= by[1]["p90_rel_err"] * 0.7

    # Replication also removes unavailability (a crashed single root kills
    # the k=1 round entirely).
    assert by[3]["unavailable"] <= by[1]["unavailable"]
    assert by[5]["unavailable"] == 0

"""Churn overhead (paper Secs. 1 / 3.2): implicit trees need no repair traffic.

Claims validated on a live protocol overlay:
* zero DAT tree-maintenance messages under churn (the tree is a pure
  function of Chord finger state);
* the implicit tree becomes valid again within a few stabilization rounds
  of each membership change;
* maintenance traffic is bounded Chord-protocol traffic only.
"""

from repro.experiments.churn_overhead import run_churn_overhead
from repro.experiments.report import format_table


def test_churn_overhead(benchmark, emit):
    result = benchmark.pedantic(
        run_churn_overhead,
        kwargs={"n_nodes": 32, "bits": 16, "n_churn_events": 12, "seed": 2007},
        rounds=1,
        iterations=1,
    )

    rows = [
        {"kind": kind, "messages": count}
        for kind, count in sorted(result.by_kind.items(), key=lambda kv: -kv[1])
    ]
    rows.append({"kind": "TOTAL", "messages": result.total_messages})
    header = (
        f"Churn overhead (32 nodes, {result.n_events} events, "
        f"{result.duration:.1f} virtual s; repair rounds per event: "
        f"{result.repair_rounds}; mean {result.mean_repair_rounds():.1f})"
    )
    emit("churn_overhead", format_table(rows, title=header))

    # The headline claim: no DAT membership-maintenance traffic at all.
    assert result.dat_maintenance_messages() == 0
    assert all(not kind.startswith("agg_") for kind in result.by_kind)

    # The implicit tree heals within a few stabilization rounds.
    assert result.mean_repair_rounds() <= 10
    assert max(result.repair_rounds, default=0) <= 40

    # Per-node maintenance traffic is modest and bounded.
    assert result.messages_per_node_second < 100

"""Per-event incremental maintenance cost vs. full rebuilds (tentpole perf).

The incremental engine (:mod:`repro.chord.incremental`) claims O(log n)
expected work per membership event where the old path rebuilt all finger
tables and parent maps — O(n*bits). This benchmark measures both on the
same event sequences across ring sizes, asserts bit-identity against the
rebuild oracle, and records the speedup trajectory in
``benchmarks/results/BENCH_incremental_churn.json``.

Runs two ways:

* under pytest (tier-2 bench suite): ``pytest benchmarks/bench_incremental_churn.py``
* standalone for the CI smoke job::

      python benchmarks/bench_incremental_churn.py --sizes 256 \\
          --check benchmarks/incremental_churn_threshold.json \\
          --out BENCH_incremental_churn.json

  With ``--check`` the exit code is non-zero when the per-event
  incremental cost exceeds the stored ratio of the full-rebuild cost —
  the regression gate.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import random
import sys
import time

from repro.chord.fastbuild import build_dat_fast, fast_finger_matrix
from repro.chord.hashing import sha1_id
from repro.chord.idgen import ProbingIdAssigner
from repro.chord.idspace import IdSpace
from repro.chord.incremental import DatUpdateEngine
from repro.chord.ring import StaticRing
from repro.core.builder import DatScheme, build_dat

BITS = 32
DEFAULT_SIZES = [256, 1024, 4096]
RESULT_PATH = pathlib.Path(__file__).parent / "results" / "BENCH_incremental_churn.json"


def _event_schedule(ring: StaticRing, n_events: int, seed: int) -> list[tuple[str, int]]:
    """Alternating join/leave schedule keeping membership near its start size."""
    rng = random.Random(seed)
    live = set(ring.nodes)
    events: list[tuple[str, int]] = []
    for index in range(n_events):
        if index % 2 == 0:
            while True:
                ident = rng.randrange(ring.space.size)
                if ident not in live:
                    break
            events.append(("join", ident))
            live.add(ident)
        else:
            ident = rng.choice(sorted(live))
            events.append(("leave", ident))
            live.discard(ident)
    return events


def measure(
    n_nodes: int,
    scheme: DatScheme = DatScheme.BALANCED,
    n_events: int = 200,
    seed: int = 2007,
) -> dict[str, object]:
    """Time full rebuilds vs. incremental updates on one ring size."""
    space = IdSpace(BITS)
    ring = ProbingIdAssigner().build_ring(space, n_nodes, rng=seed)
    key = sha1_id("bench-incremental", space)
    events = _event_schedule(ring, n_events, seed + 1)

    # Full-rebuild cost per event: recompute the finger matrix and the tree
    # from scratch (the pre-incremental behavior, already on the fast path).
    reps = max(3, min(30, 20_000 // n_nodes))
    start = time.perf_counter()
    for _ in range(reps):
        matrix = fast_finger_matrix(ring)
        build_dat_fast(ring, key, scheme=scheme, matrix=matrix)
    full_us = (time.perf_counter() - start) / reps * 1e6

    # Incremental cost per event, replaying the schedule.
    engine = DatUpdateEngine(
        StaticRing(space, ring.nodes), scheme=scheme
    )
    engine.track(key)
    start = time.perf_counter()
    for kind, ident in events:
        engine.apply(kind, ident)
    incremental_us = (time.perf_counter() - start) / len(events) * 1e6

    # Oracle bit-identity after the whole replay.
    reference = build_dat(
        StaticRing(space, engine.ring.nodes), key, scheme=scheme, fast=True
    )
    tree = engine.tree(key)
    identical = tree.root == reference.root and tree.parent == reference.parent

    return {
        "n_nodes": n_nodes,
        "scheme": scheme.value,
        "n_events": len(events),
        "full_rebuild_us": round(full_us, 1),
        "incremental_us": round(incremental_us, 1),
        "speedup": round(full_us / incremental_us, 1),
        "bit_identical": identical,
    }


def run_suite(
    sizes: list[int], n_events: int, seed: int
) -> dict[str, object]:
    rows = [
        measure(n, scheme=scheme, n_events=n_events, seed=seed)
        for n in sizes
        for scheme in (DatScheme.BALANCED, DatScheme.BASIC)
    ]
    return {
        "config": {"bits": BITS, "sizes": sizes, "n_events": n_events, "seed": seed},
        "results": rows,
    }


def _format(payload: dict[str, object]) -> str:
    lines = ["Incremental churn maintenance vs full rebuild (per event)"]
    lines.append(
        f"{'n':>6} {'scheme':>9} {'full_us':>10} {'incr_us':>10} {'speedup':>8}"
    )
    for row in payload["results"]:  # type: ignore[union-attr]
        lines.append(
            f"{row['n_nodes']:>6} {row['scheme']:>9} "
            f"{row['full_rebuild_us']:>10} {row['incremental_us']:>10} "
            f"{row['speedup']:>7}x"
        )
    return "\n".join(lines)


# --------------------------------------------------------------------- #
# pytest entry points (tier-2 bench suite)
# --------------------------------------------------------------------- #


def test_incremental_speedup_trajectory(emit):
    payload = run_suite(DEFAULT_SIZES, n_events=200, seed=2007)
    RESULT_PATH.parent.mkdir(exist_ok=True)
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    emit("incremental_churn", _format(payload))

    rows = payload["results"]
    assert all(row["bit_identical"] for row in rows)
    # Acceptance criterion: >= 20x on the 4096-node balanced ring.
    at_4096 = next(
        row
        for row in rows
        if row["n_nodes"] == 4096 and row["scheme"] == "balanced"
    )
    assert at_4096["speedup"] >= 20.0, at_4096
    # The advantage must grow with ring size (O(log n) vs O(n log n)).
    balanced = [row["speedup"] for row in rows if row["scheme"] == "balanced"]
    assert balanced == sorted(balanced), balanced


def test_single_event_identity_both_schemes():
    for scheme in (DatScheme.BALANCED, DatScheme.BASIC):
        row = measure(512, scheme=scheme, n_events=2, seed=11)
        assert row["bit_identical"], row


# --------------------------------------------------------------------- #
# Standalone CLI (CI smoke job)
# --------------------------------------------------------------------- #


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--sizes", default="256,1024,4096",
        help="comma-separated ring sizes",
    )
    parser.add_argument("--events", type=int, default=200)
    parser.add_argument("--seed", type=int, default=2007)
    parser.add_argument(
        "--out", default=str(RESULT_PATH),
        help="where to write the JSON result",
    )
    parser.add_argument(
        "--check", default=None,
        help="threshold JSON: fail if incremental/full cost ratio regresses",
    )
    args = parser.parse_args(argv)

    sizes = [int(part) for part in args.sizes.split(",") if part]
    payload = run_suite(sizes, n_events=args.events, seed=args.seed)
    print(_format(payload))

    out_path = pathlib.Path(args.out)
    if out_path.parent != pathlib.Path("."):
        out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out_path}")

    rows = payload["results"]
    if not all(row["bit_identical"] for row in rows):
        print("FAIL: incremental state diverged from the rebuild oracle")
        return 1

    if args.check:
        threshold = json.loads(pathlib.Path(args.check).read_text())
        max_ratio = float(threshold["max_cost_ratio"])
        worst = max(
            row["incremental_us"] / row["full_rebuild_us"] for row in rows
        )
        print(
            f"cost-ratio check: worst incremental/full = {worst:.3f} "
            f"(limit {max_ratio})"
        )
        if worst > max_ratio:
            print("FAIL: incremental per-event cost regressed past threshold")
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

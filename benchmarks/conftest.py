"""Shared helpers for the benchmark suite.

Every benchmark regenerates one paper table/figure, prints the rows, and
saves them under ``benchmarks/results/`` so the artifact survives pytest's
output capture. Shape assertions (who wins, growth class, constants within
tolerance) run on the same data.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--large",
        action="store_true",
        default=False,
        help=(
            "extend benchmark sweeps with >=65536-node points "
            "(minutes of extra single-core work)"
        ),
    )


@pytest.fixture(scope="session")
def large(request: pytest.FixtureRequest) -> bool:
    """True when ``--large`` was passed: run the 65k+ sweep extensions."""
    return bool(request.config.getoption("--large"))


@pytest.fixture(scope="session")
def emit():
    """Print a named result block and persist it to benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        print(f"\n{text}\n")
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _emit

"""Disabled-mode telemetry overhead on the balanced-DAT build hot path.

The telemetry runtime promises that when disabled (the default), every
instrumentation site costs one module-global read and one ``is None``
test. This benchmark holds that promise to a number on the hottest
instrumented path in the repo — :meth:`DatTreeBuilder.build` routing
through the vectorized fast builder:

* **build_us**: per-build cost of the instrumented hot path with
  telemetry disabled (the production default),
* **noop_us**: per-call cost of exactly the instrumentation operations
  that path executes in disabled mode (attribute evaluation, the
  ``telemetry.span`` call returning ``NULL_SPAN``, the context-manager
  protocol, and the ``is not NULL_SPAN`` guard), measured in a tight
  loop so the number is precise to nanoseconds,
* **enabled_us**: the same build path with a live runtime (span +
  counter + lazy tree-height attribute per build).

Two gates read ``benchmarks/telemetry_overhead_threshold.json``:
``noop_us / build_us`` must stay under ``max_disabled_overhead`` (3%),
and ``enabled_us / build_us - 1`` under ``max_enabled_overhead`` (30% —
the span attrs are lazy and the tree height is seeded by the vectorized
builder, so the enabled cost is span/counter bookkeeping only). The
disabled-mode marginal cost is measured directly rather than by
differencing two end-to-end timings: the no-op path costs well under a
microsecond while a 512-node build costs hundreds, so an A/B difference
of the big numbers is dominated by scheduler and frequency noise and
would gate on the machine, not the code. The enabled A/B difference is
tens of microseconds per build — big enough to difference honestly.

Runs two ways:

* under pytest (tier-2 bench suite): ``pytest benchmarks/bench_telemetry_overhead.py``
* standalone for the CI smoke job::

      python benchmarks/bench_telemetry_overhead.py \\
          --check benchmarks/telemetry_overhead_threshold.json \\
          --out BENCH_telemetry_overhead.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

from repro import telemetry
from repro.chord.idgen import ProbingIdAssigner
from repro.chord.idspace import IdSpace
from repro.core.builder import DatScheme, DatTreeBuilder

BITS = 32
RESULT_PATH = pathlib.Path(__file__).parent / "results" / "BENCH_telemetry_overhead.json"
THRESHOLD_PATH = pathlib.Path(__file__).parent / "telemetry_overhead_threshold.json"


def _best_sweep_us(run_sweep, rounds: int) -> float:
    """Per-build microseconds of the fastest sweep (noise-resistant)."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        n_builds = run_sweep()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed / n_builds * 1e6)
    return best


def _noop_path_us(ring, rounds: int, iterations: int = 50_000) -> float:
    """Per-call cost of the disabled-mode instrumentation operations.

    Replicates exactly what the ``DatTreeBuilder.build`` hot path executes
    for telemetry when disabled: evaluate the span attributes, call
    :func:`telemetry.span` (returns ``NULL_SPAN``), run the context
    manager, and test the ``NULL_SPAN`` guard.
    """
    assert telemetry.active() is None, "measure the no-op path with telemetry off"
    key = 12345
    scheme = DatScheme.BALANCED
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        for _ in range(iterations):
            with telemetry.span(
                "dat.build", key=key, scheme=scheme.value, n=len(ring)
            ) as sp:
                if sp is not telemetry.NULL_SPAN:
                    raise AssertionError("telemetry unexpectedly enabled")
        elapsed = time.perf_counter() - start
        best = min(best, elapsed / iterations * 1e6)
    return best


def measure(
    n_nodes: int = 512,
    n_keys: int = 64,
    rounds: int = 7,
    seed: int = 2007,
) -> dict[str, object]:
    """Time the instrumented hot path and the marginal no-op cost."""
    telemetry.disable()
    space = IdSpace(BITS)
    ring = ProbingIdAssigner().build_ring(space, n_nodes, rng=seed)
    keys = [(i * 0x9E3779B9) % space.size for i in range(1, n_keys + 1)]

    builder = DatTreeBuilder(ring, scheme=DatScheme.BALANCED)
    assert builder.finger_matrix is not None, "fast path must be available"

    def builder_sweep() -> int:
        for key in keys:
            builder.build(key)
        return len(keys)

    builder_sweep()  # warm caches and allocators
    build_us = _best_sweep_us(builder_sweep, rounds)
    noop_us = _noop_path_us(ring, rounds)
    with telemetry.enabled():
        enabled_us = _best_sweep_us(builder_sweep, rounds)
    with telemetry.enabled(tracing=True):
        tracing_us = _best_sweep_us(builder_sweep, rounds)
    telemetry.disable()

    overhead = noop_us / build_us
    return {
        "n_nodes": n_nodes,
        "n_keys": n_keys,
        "rounds": rounds,
        "scheme": DatScheme.BALANCED.value,
        "build_us_per_build": round(build_us, 2),
        "noop_us_per_call": round(noop_us, 4),
        "enabled_us_per_build": round(enabled_us, 2),
        "tracing_us_per_build": round(tracing_us, 2),
        "disabled_overhead": round(overhead, 5),
        "enabled_overhead": round(enabled_us / build_us - 1.0, 4),
        # Marginal cost of trace propagation over plain span-enabled mode:
        # trace-id minting + context inheritance per span.
        "tracing_overhead": round(tracing_us / enabled_us - 1.0, 4),
    }


def _format(row: dict[str, object]) -> str:
    return "\n".join(
        [
            "Telemetry overhead on the balanced-DAT build hot path",
            f"  ring: n={row['n_nodes']}, {row['n_keys']} keys, "
            f"best of {row['rounds']} sweeps",
            f"  instrumented build (telemetry off): {row['build_us_per_build']:>9} us/build",
            f"  disabled-mode instrumentation ops:  {row['noop_us_per_call']:>9} us/build "
            f"({float(str(row['disabled_overhead'])) * 100:.3f}% of the build)",
            f"  telemetry enabled:                  {row['enabled_us_per_build']:>9} us/build "
            f"({float(str(row['enabled_overhead'])) * 100:+.2f}%)",
            f"  tracing enabled:                    {row['tracing_us_per_build']:>9} us/build "
            f"({float(str(row['tracing_overhead'])) * 100:+.2f}% over span-enabled)",
        ]
    )


def _thresholds(path: pathlib.Path = THRESHOLD_PATH) -> tuple[float, float, float]:
    """(max_disabled, max_enabled, max_tracing) overheads from the gate file."""
    data = json.loads(path.read_text())
    return (
        float(data["max_disabled_overhead"]),
        float(data["max_enabled_overhead"]),
        float(data["max_tracing_overhead"]),
    )


# --------------------------------------------------------------------- #
# pytest entry point (tier-2 bench suite)
# --------------------------------------------------------------------- #


def test_overheads_under_thresholds(emit):
    row = measure()
    RESULT_PATH.parent.mkdir(exist_ok=True)
    RESULT_PATH.write_text(json.dumps(row, indent=2) + "\n")
    emit("telemetry_overhead", _format(row))
    max_disabled, max_enabled, max_tracing = _thresholds()
    assert float(str(row["disabled_overhead"])) <= max_disabled, row
    assert float(str(row["enabled_overhead"])) <= max_enabled, row
    assert float(str(row["tracing_overhead"])) <= max_tracing, row


# --------------------------------------------------------------------- #
# Standalone CLI (CI smoke job)
# --------------------------------------------------------------------- #


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=512)
    parser.add_argument("--keys", type=int, default=64)
    parser.add_argument("--rounds", type=int, default=7)
    parser.add_argument("--seed", type=int, default=2007)
    parser.add_argument(
        "--out", default=str(RESULT_PATH), help="where to write the JSON result"
    )
    parser.add_argument(
        "--check", default=None,
        help="threshold JSON: fail if disabled-mode overhead exceeds it",
    )
    args = parser.parse_args(argv)

    row = measure(
        n_nodes=args.nodes, n_keys=args.keys, rounds=args.rounds, seed=args.seed
    )
    print(_format(row))

    out_path = pathlib.Path(args.out)
    if out_path.parent != pathlib.Path("."):
        out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(row, indent=2) + "\n")
    print(f"wrote {out_path}")

    if args.check:
        max_disabled, max_enabled, max_tracing = _thresholds(pathlib.Path(args.check))
        disabled = float(str(row["disabled_overhead"]))
        enabled = float(str(row["enabled_overhead"]))
        tracing = float(str(row["tracing_overhead"]))
        print(
            f"overhead check: disabled-mode {disabled * 100:.3f}% "
            f"(limit {max_disabled * 100:.0f}%), enabled-mode "
            f"{enabled * 100:+.2f}% (limit {max_enabled * 100:.0f}%), "
            f"tracing {tracing * 100:+.2f}% over span-enabled "
            f"(limit {max_tracing * 100:.0f}%)"
        )
        failed = False
        if disabled > max_disabled:
            print("FAIL: disabled-mode telemetry overhead regressed past threshold")
            failed = True
        if enabled > max_enabled:
            print("FAIL: enabled-mode telemetry overhead regressed past threshold")
            failed = True
        if tracing > max_tracing:
            print("FAIL: trace-propagation overhead regressed past threshold")
            failed = True
        if failed:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

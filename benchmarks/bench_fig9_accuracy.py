"""Fig. 9: accuracy of aggregated CPU usage over a 2-hour trace, 512 nodes.

Paper claims: the DAT-aggregated total tracks the actual total (Fig. 9a),
and actual-vs-aggregated points cluster tightly around the diagonal
(Fig. 9b) — "a very accurate aggregation of the global CPU usages".
"""

import numpy as np

from repro.experiments.fig9_accuracy import run_fig9_accuracy
from repro.experiments.report import format_table


def test_fig9_accuracy_continuous(benchmark, emit):
    result = benchmark.pedantic(
        run_fig9_accuracy,
        kwargs={
            "n_nodes": 512,
            "mode": "continuous",
            "identical_traces": False,
            "push_period": 1.0,
            "aggregate": "sum",
            "seed": 2007,
        },
        rounds=1,
        iterations=1,
    )

    stride = max(len(result.times) // 24, 1)
    rows = [
        {
            "t_seconds": result.times[i],
            "actual_total": round(result.actual[i], 1),
            "aggregated_total": round(result.aggregated[i], 1),
            "rel_error_pct": round(
                abs(result.aggregated[i] - result.actual[i]) / result.actual[i] * 100, 3
            ),
        }
        for i in range(0, len(result.times), stride)
    ]
    rows.append(
        {
            "t_seconds": "summary",
            "actual_total": "",
            "aggregated_total": "",
            "rel_error_pct": (
                f"mean={result.mean_relative_error() * 100:.3f} "
                f"max={result.max_relative_error() * 100:.3f}"
            ),
        }
    )
    emit(
        "fig9_accuracy",
        format_table(
            rows,
            title="Fig 9 — actual vs DAT-aggregated total CPU usage "
            "(512 nodes, 2h trace, continuous mode)",
        ),
    )

    # Fig 9(b): points hug the diagonal.
    assert result.mean_relative_error() < 0.03
    assert result.max_relative_error() < 0.10

    # Fig 9(a): the aggregated series tracks the actual one.
    actual = np.asarray(result.actual)
    aggregated = np.asarray(result.aggregated)
    assert np.mean(np.abs(aggregated - actual)) < 0.03 * np.mean(actual)

    # Full 2-hour trace was evaluated.
    assert len(result.times) == 720


def test_fig9_synchronous_exactness(benchmark):
    """Lock-step collection (one on-demand round per slot) is exact."""
    result = benchmark.pedantic(
        run_fig9_accuracy,
        kwargs={"n_nodes": 512, "mode": "synchronous", "n_slots": 120, "seed": 2007},
        rounds=1,
        iterations=1,
    )
    assert result.max_relative_error() < 1e-9

"""Chord lookup-cost validation (Sec. 3.1 basis for every other bound).

The O(log n) finger-routing bound underlies DAT height, MAAN registration
and query costs. Measured: mean and max hop counts over many random
lookups at sizes 2^6..2^13, against the 2*log2(n) expectation band, plus
the classical mean ~ (1/2)*log2(n).
"""

import numpy as np

from repro.chord.idgen import ProbingIdAssigner
from repro.chord.idspace import IdSpace
from repro.chord.routing import finger_route
from repro.experiments.report import format_table
from repro.util.bits import ceil_log2

SIZES = [64, 256, 1024, 4096, 8192]
#: Appended with ``--large``: routing still walks object finger tables, so
#: this point costs tens of seconds — opt-in only.
LARGE_SIZES = [65536]


def measure_hops(sizes=SIZES):
    space = IdSpace(32)
    rng = np.random.default_rng(2007)
    rows = []
    for n in sizes:
        ring = ProbingIdAssigner().build_ring(space, n, rng=2007)
        tables = ring.all_finger_tables()
        nodes = ring.nodes
        hops = []
        for _ in range(200):
            source = nodes[int(rng.integers(0, n))]
            key = int(rng.integers(0, space.size))
            hops.append(finger_route(ring, source, key, tables=tables).hops)
        rows.append(
            {
                "n": n,
                "log2_n": ceil_log2(n),
                "mean_hops": round(float(np.mean(hops)), 2),
                "p99_hops": int(np.percentile(hops, 99)),
                "max_hops": int(np.max(hops)),
            }
        )
    return rows


def test_lookup_hop_scaling(benchmark, emit, large):
    sizes = SIZES + LARGE_SIZES if large else SIZES
    rows = benchmark.pedantic(
        measure_hops, kwargs={"sizes": sizes}, rounds=1, iterations=1
    )
    emit(
        "lookup_hops",
        format_table(rows, title="Chord lookup cost vs network size "
                                 "(200 random lookups each)"),
    )
    for row in rows:
        # O(log n): max within 2x log2(n); mean near the classical
        # half-log2(n) (within a generous band).
        assert row["max_hops"] <= 2 * row["log2_n"], row
        assert 0.3 * row["log2_n"] <= row["mean_hops"] <= 1.2 * row["log2_n"], row

    # Growth is logarithmic: x128 nodes adds only a few mean hops.
    base = [row for row in rows if row["n"] in SIZES]
    assert base[-1]["mean_hops"] - base[0]["mean_hops"] <= 5.0

    if large:
        # Another x8 nodes adds only ~log2(8) = 3 mean hops.
        at_large = next(row for row in rows if row["n"] == LARGE_SIZES[0])
        assert at_large["mean_hops"] - base[-1]["mean_hops"] <= 4.0

"""DAT under extreme node dynamics — the paper's Sec. 7 future work.

Continuous COUNT aggregation on a live overlay while membership churns.
Expected shape: exact when stable; graceful accuracy loss as the churn
inter-arrival time approaches the tree's propagation delay; saturation
(not collapse) in the extreme regime. The overlay must never partition —
stranded-node recovery is part of what this benchmark guards.
"""

from repro.experiments.dynamics import run_dynamics
from repro.experiments.report import format_table

RATES = [0.0, 0.2, 0.5, 1.0]


def test_dynamics_accuracy_degradation(benchmark, emit):
    result = benchmark.pedantic(
        run_dynamics,
        kwargs={
            "churn_rates": RATES,
            "n_nodes": 16,
            "duration": 30.0,
            "seed": 2007,
        },
        rounds=1,
        iterations=1,
    )
    emit(
        "dynamics",
        format_table(
            [p.as_row() for p in result.points],
            title="DAT continuous COUNT under churn (16 nodes, 30 virtual s "
                  "per rate; tolerance band 10%)",
        ),
    )
    by = {p.churn_rate: p for p in result.points}

    # Stable overlay: exact.
    assert by[0.0].mean_relative_error == 0.0
    assert by[0.0].availability == 1.0

    # Moderate churn: small error, mostly available.
    assert by[0.2].mean_relative_error < 0.15
    assert by[0.2].availability > 0.6

    # Extreme churn: degraded but not collapsed — the estimate keeps
    # tracking membership within a bounded band (no partition, no freeze).
    for rate in (0.5, 1.0):
        assert by[rate].mean_relative_error < 0.5, rate
        assert by[rate].availability > 0.25, rate
        assert by[rate].n_samples >= 50, rate

    # Monotone story: churn hurts.
    assert by[0.2].mean_relative_error < by[0.5].mean_relative_error

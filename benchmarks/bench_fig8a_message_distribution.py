"""Fig. 8(a): aggregation-message distribution by node rank, n = 512.

Paper anchors: centralized root processes ~511 messages (one per other
node); the most loaded basic-DAT node is an order of magnitude lighter;
the most loaded balanced-DAT node carries only a handful.
"""

from repro.experiments.fig8_load_balance import run_fig8a_message_distribution
from repro.experiments.report import format_table


def test_fig8a_message_distribution(benchmark, emit):
    dist = benchmark.pedantic(
        run_fig8a_message_distribution,
        kwargs={"n_nodes": 512, "seed": 2007},
        rounds=1,
        iterations=1,
    )

    ranks = [0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 511]
    rows = [
        {
            "rank": rank,
            "centralized": dist.centralized[rank],
            "basic": dist.basic[rank],
            "balanced": dist.balanced[rank],
        }
        for rank in ranks
    ]
    summary = dist.summary()
    rows.append(
        {
            "rank": "max",
            "centralized": summary["centralized_max"],
            "basic": summary["basic_max"],
            "balanced": summary["balanced_max"],
        }
    )
    emit(
        "fig8a_message_distribution",
        format_table(
            rows,
            title="Fig 8(a) — messages per node by rank (n=512, one round)",
        ),
    )

    # Root-load anchor: the centralized root receives n - 1 = 511 messages.
    assert 511 in dist.centralized

    # Orders: balanced << basic << centralized at the head of the ranking.
    assert summary["balanced_max"] <= 8
    assert summary["basic_max"] <= 40
    assert summary["centralized_max"] >= 511
    assert summary["balanced_max"] < summary["basic_max"] < summary["centralized_max"]

    # DAT total message conservation: 2(n-1) across all nodes.
    assert sum(dist.basic) == sum(dist.balanced) == 2 * 511

"""MAAN routing-cost claims (paper Sec. 2.2).

Validated bounds:
* registration: O(m log n) hops for m attributes;
* range query: O(log n + k) — the arc walk scales with selectivity;
* multi-attribute query: O(log n + n*s_min) — cost follows the dominant
  (minimum-selectivity) sub-query, not the broad ones.
"""

from repro.experiments.maan_routing import run_maan_routing
from repro.experiments.report import format_table
from repro.util.bits import ceil_log2

N_NODES = 512
SELECTIVITIES = [0.01, 0.05, 0.1, 0.2, 0.4]


def test_maan_routing_costs(benchmark, emit):
    result = benchmark.pedantic(
        run_maan_routing,
        kwargs={
            "n_nodes": N_NODES,
            "n_resources": 512,
            "selectivities": SELECTIVITIES,
            "queries_per_point": 20,
            "seed": 2007,
        },
        rounds=1,
        iterations=1,
    )

    rows = [
        {
            "selectivity": s,
            "lookup_hops": round(result.range_costs[s][0], 2),
            "arc_nodes": round(result.range_costs[s][1], 2),
            "multi_attr_total_hops": round(result.multi_costs[s], 2),
        }
        for s in SELECTIVITIES
    ]
    header = (
        f"MAAN routing costs (n={N_NODES}, log2(n)={ceil_log2(N_NODES)}; "
        f"registration {result.registration_hops:.1f} hops/resource over "
        f"{result.attributes_per_resource} attributes)"
    )
    emit("maan_routing", format_table(rows, title=header))

    # Registration: O(m log n) — per-attribute cost within ~2x log2(n).
    assert result.registration_hops_per_attribute() <= 2 * ceil_log2(N_NODES)

    # Range query: lookup term is O(log n) regardless of selectivity...
    for s in SELECTIVITIES:
        assert result.range_costs[s][0] <= 2 * ceil_log2(N_NODES)
    # ...while the arc term scales ~linearly with selectivity (k ~ n*s).
    narrow = result.range_costs[0.05][1]
    wide = result.range_costs[0.4][1]
    assert 4.0 <= wide / max(narrow, 1.0) <= 16.0

    # Multi-attribute: the broad (0.5-selectivity) companion sub-query does
    # NOT dominate the cost; total hops track s_min.
    assert result.multi_costs[0.01] < result.multi_costs[0.4]
    assert result.multi_costs[0.4] < 0.5 * N_NODES  # far below a full lap

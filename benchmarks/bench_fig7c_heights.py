"""Fig. 7 companion: DAT tree heights vs network size.

Sec. 3.3/3.5 bound both schemes' heights by O(log n); the balanced scheme
trades its constant branching for (at most) the same height class. This
bench regenerates the height curves alongside Fig. 7's branching curves
and pins the growth class.
"""

from repro.experiments.fig7_tree_properties import run_fig7_tree_properties
from repro.experiments.report import format_table
from repro.util.bits import ceil_log2

SIZES = [16, 64, 256, 1024, 4096, 8192]
#: Appended with ``--large``: array-native pipeline keeps this affordable.
LARGE_SIZES = [65536]


def test_fig7c_heights(benchmark, emit, large):
    sizes = SIZES + LARGE_SIZES if large else SIZES
    points = benchmark.pedantic(
        run_fig7_tree_properties,
        kwargs={"sizes": sizes, "n_seeds": 3, "master_seed": 2007},
        rounds=1,
        iterations=1,
    )
    emit(
        "fig7c_heights",
        format_table(
            [p.as_row() for p in points],
            columns=["scheme", "ids", "n", "height"],
            title="Fig 7 companion — tree height vs network size",
        ),
    )
    by = {(p.scheme, p.id_strategy, p.n_nodes): p for p in points}

    for n in sizes:
        log_n = ceil_log2(n)
        for scheme in ("basic", "balanced"):
            for ids in ("random", "probing"):
                height = by[(scheme, ids, n)].height
                # O(log n): within 2x of log2(n) for every configuration.
                assert height <= 2 * log_n + 2, (scheme, ids, n, height)

    # Growth is logarithmic: 512x more nodes adds only ~9-ish levels.
    for scheme in ("basic", "balanced"):
        small = by[(scheme, "probing", 16)].height
        large = by[(scheme, "probing", 8192)].height
        assert large - small <= 2 * (ceil_log2(8192) - ceil_log2(16))

    # The balanced scheme's height stays within ~2x of the basic scheme's
    # (the cost of capping the branching factor).
    for n in sizes:
        basic = by[("basic", "probing", n)].height
        balanced = by[("balanced", "probing", n)].height
        assert balanced <= 2 * basic + 2

"""Multi-tree load balance (paper Sec. 3.2).

"Since consistent hashing has the advantage of mapping keys to nodes
uniformly, this root selection scheme is capable of building multiple DAT
trees in a load-balanced fashion." Validated: with one balanced DAT per
monitored attribute, roots spread across the overlay and the *combined*
per-node load is more even than any single tree's.
"""

from repro.chord.idgen import ProbingIdAssigner
from repro.chord.idspace import IdSpace
from repro.core.analysis import imbalance_factor
from repro.core.multitree import DatForest
from repro.experiments.report import format_table


def sweep_tree_counts():
    ring = ProbingIdAssigner().build_ring(IdSpace(32), 512, rng=2007)
    rows = []
    for n_trees in (1, 4, 16, 64):
        forest = DatForest(ring, [f"metric-{i}" for i in range(n_trees)])
        report = forest.load_report()
        rows.append(
            {
                "n_trees": n_trees,
                "distinct_roots": len(set(forest.roots().values())),
                "max_root_roles": report.max_root_roles,
                "combined_imbalance": round(report.combined_imbalance, 3),
                "max_combined_load": max(report.combined_loads.values()),
            }
        )
    return rows


def test_multitree_load_balance(benchmark, emit):
    rows = benchmark.pedantic(sweep_tree_counts, rounds=1, iterations=1)
    emit(
        "multitree_load",
        format_table(rows, title="Multi-tree load balance (n=512, balanced "
                                 "DATs, one per monitored attribute)"),
    )
    by = {row["n_trees"]: row for row in rows}

    # Roots spread: with 64 trees, many distinct roots and no hoarding.
    assert by[64]["distinct_roots"] >= 50
    assert by[64]["max_root_roles"] <= 4

    # The combined load over many trees is more even than a single tree's.
    # It plateaus (~2.1 here) rather than reaching 1.0 because tree shapes
    # correlate across keys — a node's gap structure makes it consistently
    # interior or consistently leaf-like.
    assert by[64]["combined_imbalance"] < by[1]["combined_imbalance"]
    assert by[16]["combined_imbalance"] < by[1]["combined_imbalance"]
    assert by[64]["combined_imbalance"] <= 2.5

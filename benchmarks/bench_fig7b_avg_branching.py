"""Fig. 7(b): average branching factor vs network size.

Paper claims: the average branching factor (over internal nodes) of both
DAT schemes is constant in n — about 2 with identifier probing and about
3-3.2 without it.
"""

from repro.experiments.fig7_tree_properties import run_fig7_tree_properties
from repro.experiments.report import format_table

SIZES = [16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192]
#: Appended with ``--large``: array-native pipeline keeps this affordable.
LARGE_SIZES = [65536]


def test_fig7b_avg_branching(benchmark, emit, large):
    sizes = SIZES + LARGE_SIZES if large else SIZES
    points = benchmark.pedantic(
        run_fig7_tree_properties,
        kwargs={"sizes": sizes, "n_seeds": 3, "master_seed": 2007},
        rounds=1,
        iterations=1,
    )
    emit(
        "fig7b_avg_branching",
        format_table(
            [p.as_row() for p in points],
            columns=["scheme", "ids", "n", "avg_branching"],
            title="Fig 7(b) — average branching factor vs network size",
        ),
    )

    by = {(p.scheme, p.id_strategy, p.n_nodes): p for p in points}

    large_sizes = [n for n in sizes if n >= 128]
    for scheme in ("basic", "balanced"):
        # With probing: constant ~2 (paper: "almost the same constant
        # average branching factor of 2").
        probing_values = [by[(scheme, "probing", n)].avg_branching for n in large_sizes]
        assert all(1.7 <= v <= 2.7 for v in probing_values), (scheme, probing_values)

        # Without probing: higher (paper: 3 and 3.2) but still flat in n.
        random_values = [by[(scheme, "random", n)].avg_branching for n in large_sizes]
        assert all(2.3 <= v <= 4.0 for v in random_values), (scheme, random_values)
        assert max(random_values) - min(random_values) < 1.0  # flat

        # Probing's average sits below random's.
        assert probing_values[-1] < random_values[-1]

"""Fig-7/8 statistics at 10^5-10^6-node scale (tentpole perf benchmark).

The array-native pipeline — :class:`~repro.chord.ringarray.RingArray`
rings, one shared finger matrix, and
:class:`~repro.chord.fastbuild.DatTreeArrays` statistics — claims fig-grade
measurements at n in {16k, 65k, 131k, 262k} in minutes on one core. This
benchmark measures wall-clock and peak RSS per size, asserts the results
are *equal* (floats bit-identical) to the object-based oracle at every
size where the oracle is affordable, and records the trajectory in
``benchmarks/results/BENCH_scale.json``.

Runs two ways:

* under pytest (tier-2 bench suite): ``pytest benchmarks/bench_scale.py``
* standalone for the CI scale-smoke job::

      python benchmarks/bench_scale.py --sizes 16384 \\
          --protocol-sizes 4096,65536 \\
          --check benchmarks/scale_threshold.json \\
          --out BENCH_scale.json

  With ``--check`` the exit code is non-zero when a size exceeds its
  stored time budget or any oracle comparison diverges — the regression
  gate.

``--protocol-sizes`` adds *live-protocol* rows: the slab path
(:func:`repro.core.slab.run_protocol_slab`) exchanging real continuous-push
messages through :class:`~repro.sim.simnet.SimTransport`, compared
bit-for-bit against one :class:`~repro.core.service.DatNodeService` per
node up to ``PROTOCOL_ORACLE_MAX`` nodes, with per-mode peak RSS and a
slab-state memory gate (``protocol.max_state_bytes_per_node``).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import resource
import sys
import time

from repro import telemetry
from repro.experiments.scale import (
    PROTOCOL_SIZES,
    SCALE_SIZES,
    measure_protocol_point,
    measure_scale_point,
)

BITS = 32
#: Largest size where the object-based oracle runs alongside the fast path
#: (a few seconds); beyond this only the array-native path is affordable.
ORACLE_MAX_NODES = 16384
#: Largest size where the *protocol* oracle (one DatNodeService per node,
#: every push a real JSON message) runs alongside the slab path (~10 s).
PROTOCOL_ORACLE_MAX = 4096
RESULT_PATH = pathlib.Path(__file__).parent / "results" / "BENCH_scale.json"
THRESHOLD_PATH = pathlib.Path(__file__).parent / "scale_threshold.json"


def _peak_rss_mb() -> float:
    """Peak resident set size of this process, in MiB.

    ``ru_maxrss`` is KiB on Linux and bytes on macOS; no psutil needed.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        peak //= 1024
    return peak / 1024.0


def measure(
    n_nodes: int,
    seed: int = 2007,
    id_strategy: str = "probing",
    oracle_max: int = ORACLE_MAX_NODES,
) -> dict[str, object]:
    """One sweep point: fast-path stats + timing, oracle equality when affordable."""
    start = time.perf_counter()
    point = measure_scale_point(
        n_nodes, bits=BITS, seed=seed, id_strategy=id_strategy
    )
    elapsed = time.perf_counter() - start
    telemetry.gauge_set(
        "scale_build_seconds", elapsed, n=n_nodes, ids=id_strategy
    )

    row: dict[str, object] = dict(point.as_row())
    row["seconds"] = round(elapsed, 3)
    row["peak_rss_mb"] = round(_peak_rss_mb(), 1)
    if n_nodes <= oracle_max:
        oracle = measure_scale_point(
            n_nodes, bits=BITS, seed=seed, id_strategy=id_strategy, oracle=True
        )
        row["oracle_checked"] = True
        row["oracle_identical"] = point == oracle
    else:
        row["oracle_checked"] = False
        row["oracle_identical"] = None
    return row


def run_suite(
    sizes: list[int],
    seed: int = 2007,
    id_strategy: str = "probing",
    oracle_max: int = ORACLE_MAX_NODES,
    protocol_sizes: list[int] | None = None,
    protocol_oracle_max: int = PROTOCOL_ORACLE_MAX,
) -> dict[str, object]:
    rows = [
        measure(n, seed=seed, id_strategy=id_strategy, oracle_max=oracle_max)
        for n in sizes
    ]
    protocol_rows = run_protocol_suite(
        protocol_sizes or [],
        seed=seed,
        id_strategy=id_strategy,
        oracle_max=protocol_oracle_max,
    )
    return {
        "config": {
            "bits": BITS,
            "sizes": sizes,
            "protocol_sizes": protocol_sizes or [],
            "seed": seed,
            "id_strategy": id_strategy,
            "oracle_max_nodes": oracle_max,
            "protocol_oracle_max_nodes": protocol_oracle_max,
        },
        "results": rows,
        "protocol_results": protocol_rows,
    }


def measure_protocol(
    n_nodes: int,
    seed: int = 2007,
    id_strategy: str = "probing",
    oracle_max: int = PROTOCOL_ORACLE_MAX,
) -> dict[str, object]:
    """One live-protocol point: slab timing/memory, oracle equality when affordable.

    The exactness comparison covers every protocol-observable field —
    estimate, message/byte/push totals, max load, imbalance — but not
    ``state_bytes_per_node``, which measures the slab's own array footprint
    (the oracle's object webs report 0).
    """
    start = time.perf_counter()
    point = measure_protocol_point(
        n_nodes, bits=BITS, seed=seed, id_strategy=id_strategy
    )
    elapsed = time.perf_counter() - start
    telemetry.gauge_set(
        "scale_protocol_seconds", elapsed, n=n_nodes, ids=id_strategy
    )

    row: dict[str, object] = dict(point.as_row())
    row["mode"] = "protocol"
    row["seconds"] = round(elapsed, 3)
    row["peak_rss_mb"] = round(_peak_rss_mb(), 1)
    if n_nodes <= oracle_max:
        oracle_start = time.perf_counter()
        oracle = measure_protocol_point(
            n_nodes, bits=BITS, seed=seed, id_strategy=id_strategy, oracle=True
        )
        row["oracle_seconds"] = round(time.perf_counter() - oracle_start, 3)
        row["oracle_checked"] = True
        row["oracle_identical"] = point.exactness_key() == oracle.exactness_key()
    else:
        row["oracle_checked"] = False
        row["oracle_identical"] = None
    return row


def run_protocol_suite(
    sizes: list[int],
    seed: int = 2007,
    id_strategy: str = "probing",
    oracle_max: int = PROTOCOL_ORACLE_MAX,
) -> list[dict[str, object]]:
    return [
        measure_protocol(n, seed=seed, id_strategy=id_strategy, oracle_max=oracle_max)
        for n in sizes
    ]


def _format(payload: dict[str, object]) -> str:
    lines = ["Scale sweep — fig-7/8 statistics on the array-native pipeline"]
    lines.append(
        f"{'n':>7} {'sec':>8} {'rss_mb':>8} {'b_max':>6} {'b_h':>4} "
        f"{'bal_max':>8} {'bal_h':>6} {'imb_c':>10} {'imb_b':>7} "
        f"{'imb_bal':>8} {'oracle':>7}"
    )
    for row in payload["results"]:  # type: ignore[union-attr]
        oracle = (
            "same"
            if row["oracle_identical"]
            else ("DIFF" if row["oracle_checked"] else "-")
        )
        lines.append(
            f"{row['n']:>7} {row['seconds']:>8} {row['peak_rss_mb']:>8} "
            f"{row['basic_max_branching']:>6} {row['basic_height']:>4} "
            f"{row['balanced_max_branching']:>8} {row['balanced_height']:>6} "
            f"{row['centralized_imbalance']:>10.1f} "
            f"{row['basic_imbalance']:>7.2f} {row['balanced_imbalance']:>8.2f} "
            f"{oracle:>7}"
        )
    protocol_rows = payload.get("protocol_results") or []  # type: ignore[union-attr]
    if protocol_rows:
        lines.append("")
        lines.append("Live protocol (slab path) — continuous push, real messages")
        lines.append(
            f"{'n':>7} {'sec':>8} {'rss_mb':>8} {'messages':>9} "
            f"{'bytes':>11} {'imb':>6} {'B/node':>7} {'conv':>5} {'oracle':>7}"
        )
        for row in protocol_rows:
            oracle = (
                "same"
                if row["oracle_identical"]
                else ("DIFF" if row["oracle_checked"] else "-")
            )
            lines.append(
                f"{row['n']:>7} {row['seconds']:>8} {row['peak_rss_mb']:>8} "
                f"{row['messages_total']:>9} {row['bytes_total']:>11} "
                f"{row['imbalance']:>6.2f} {row['state_bytes_per_node']:>7.0f} "
                f"{str(bool(row['converged'])):>5} {oracle:>7}"
            )
    return "\n".join(lines)


def _check(payload: dict[str, object], threshold_path: pathlib.Path) -> list[str]:
    """Regression gate: per-size time budgets + oracle exactness (both modes)."""
    threshold = json.loads(threshold_path.read_text())
    budgets = {int(k): float(v) for k, v in threshold["max_seconds"].items()}
    failures: list[str] = []
    rows = payload["results"]
    for row in rows:  # type: ignore[union-attr]
        budget = budgets.get(int(row["n"]))  # type: ignore[arg-type]
        if budget is not None and float(row["seconds"]) > budget:  # type: ignore[arg-type]
            failures.append(
                f"n={row['n']}: {row['seconds']}s exceeds budget {budget}s"
            )
    if threshold.get("require_oracle_identical", False):
        checked = [r for r in rows if r["oracle_checked"]]  # type: ignore[union-attr]
        if not checked:
            failures.append(
                "exactness gate requires at least one oracle-checked size "
                f"(<= {ORACLE_MAX_NODES} nodes)"
            )
        for row in checked:
            if not row["oracle_identical"]:
                failures.append(
                    f"n={row['n']}: fast-path statistics diverged from the "
                    "object-based oracle"
                )
    failures.extend(_check_protocol(payload, threshold))
    return failures


def _check_protocol(
    payload: dict[str, object], threshold: dict[str, object]
) -> list[str]:
    """Protocol-mode gate: time budgets, oracle exactness, memory per node."""
    gate = threshold.get("protocol")
    rows = payload.get("protocol_results") or []  # type: ignore[union-attr]
    if not isinstance(gate, dict) or not rows:
        return []
    failures: list[str] = []
    budgets = {int(k): float(v) for k, v in gate.get("max_seconds", {}).items()}
    max_state = gate.get("max_state_bytes_per_node")
    for row in rows:
        n = int(row["n"])  # type: ignore[arg-type]
        budget = budgets.get(n)
        if budget is not None and float(row["seconds"]) > budget:  # type: ignore[arg-type]
            failures.append(
                f"protocol n={n}: {row['seconds']}s exceeds budget {budget}s"
            )
        if not row["converged"]:
            failures.append(f"protocol n={n}: estimate did not converge")
        if max_state is not None and float(
            row["state_bytes_per_node"]  # type: ignore[arg-type]
        ) > float(max_state):
            failures.append(
                f"protocol n={n}: {row['state_bytes_per_node']:.0f} B/node "
                f"exceeds {max_state} B/node"
            )
    if gate.get("require_oracle_identical", False):
        checked = [r for r in rows if r["oracle_checked"]]
        if not checked:
            failures.append(
                "protocol exactness gate requires at least one oracle-checked "
                f"size (<= {PROTOCOL_ORACLE_MAX} nodes)"
            )
        for row in checked:
            if not row["oracle_identical"]:
                failures.append(
                    f"protocol n={row['n']}: slab run diverged from the "
                    "per-node service oracle"
                )
    return failures


# --------------------------------------------------------------------- #
# pytest entry points (tier-2 bench suite)
# --------------------------------------------------------------------- #


def test_scale_statistics_match_oracle(emit):
    """Fast path is bit-identical to the oracle at every overlapping size."""
    payload = run_suite([512, 2048, 8192], seed=2007)
    rows = payload["results"]
    assert all(row["oracle_checked"] for row in rows)
    assert all(row["oracle_identical"] for row in rows), rows
    emit("scale_oracle", _format(payload))


def test_scale_point_shape_at_16k(emit):
    """Paper-shape anchors hold at 16384 nodes (first beyond the fig sweeps)."""
    payload = run_suite([16384], seed=2007)
    RESULT_PATH.parent.mkdir(exist_ok=True)
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    emit("scale", _format(payload))

    (row,) = payload["results"]
    assert row["oracle_identical"] is True
    # Balanced DAT: near-constant branching and imbalance (Sec. 3.4-3.5).
    assert row["balanced_max_branching"] <= 8
    assert row["balanced_imbalance"] <= 6.0
    # Basic DAT: logarithmic; centralized: linear in n.
    assert row["balanced_imbalance"] < row["basic_imbalance"]
    assert row["basic_imbalance"] < row["centralized_imbalance"]
    assert row["centralized_max_load"] == 16384 - 1
    # Heights stay logarithmic: well under 2*log2(n).
    assert row["basic_height"] <= 28
    assert row["balanced_height"] <= 28


def test_scale_large_sweep(emit, large):
    """The full 16k-262k sweep (only with ``--large``; minutes of work)."""
    if not large:
        import pytest

        pytest.skip("pass --large to run the 16k-262k scale sweep")
    payload = run_suite(SCALE_SIZES, seed=2007)
    RESULT_PATH.parent.mkdir(exist_ok=True)
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    emit("scale", _format(payload))
    rows = payload["results"]
    assert all(
        row["oracle_identical"] for row in rows if row["oracle_checked"]
    )
    # Acceptance criterion: n=131072 completes in under 5 minutes.
    at_131k = next(row for row in rows if row["n"] == 131072)
    assert at_131k["seconds"] < 300.0, at_131k


def test_protocol_slab_matches_service_oracle(emit):
    """Slab protocol runs are bit-identical to per-node services (small n)."""
    rows = run_protocol_suite([512, 1024], seed=2007)
    assert all(row["oracle_checked"] for row in rows)
    assert all(row["oracle_identical"] for row in rows), rows
    assert all(row["converged"] for row in rows), rows


def test_protocol_slab_budget_at_65536(emit):
    """Acceptance: live protocol at 65536 nodes within time and memory budgets."""
    row = measure_protocol(65536, seed=2007)
    emit(
        "scale_protocol",
        f"n=65536 protocol: {row['seconds']}s, "
        f"{row['state_bytes_per_node']:.0f} B/node, "
        f"rss {row['peak_rss_mb']} MiB",
    )
    assert row["converged"], row
    assert float(row["seconds"]) < 120.0, row
    assert float(row["state_bytes_per_node"]) <= 4096.0, row


# --------------------------------------------------------------------- #
# Standalone CLI (CI scale-smoke job)
# --------------------------------------------------------------------- #


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--sizes",
        default=",".join(str(n) for n in SCALE_SIZES),
        help="comma-separated ring sizes",
    )
    parser.add_argument(
        "--protocol-sizes",
        default="",
        help=(
            "comma-separated ring sizes for the live-protocol (slab) mode; "
            f"empty skips it (defaults: {PROTOCOL_SIZES})"
        ),
    )
    parser.add_argument("--seed", type=int, default=2007)
    parser.add_argument("--ids", default="probing", help="identifier strategy")
    parser.add_argument(
        "--out", default=str(RESULT_PATH), help="where to write the JSON result"
    )
    parser.add_argument(
        "--check",
        default=None,
        help="threshold JSON: fail on time-budget or oracle-exactness regression",
    )
    args = parser.parse_args(argv)

    sizes = [int(part) for part in args.sizes.split(",") if part]
    protocol_sizes = [int(part) for part in args.protocol_sizes.split(",") if part]
    payload = run_suite(
        sizes, seed=args.seed, id_strategy=args.ids, protocol_sizes=protocol_sizes
    )
    print(_format(payload))

    out_path = pathlib.Path(args.out)
    if out_path.parent != pathlib.Path("."):
        out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out_path}")

    if args.check:
        failures = _check(payload, pathlib.Path(args.check))
        for failure in failures:
            print(f"FAIL: {failure}")
        if failures:
            return 1
        print("scale gate: all time budgets met, oracle comparisons identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Ablation: why g(x) = ceil(log2((x + 2*d0)/3))? (DESIGN.md ablation index)

Two design choices of the balanced routing scheme are swept:

* the /3 divisor — derived so that exactly the j-th and (j+1)-th inbound
  fingers of each node select it. Larger divisors over-restrict fingers
  (taller trees); smaller ones under-restrict (root fan-in grows again);
* sensitivity to the d0 estimate — a distributed deployment only knows an
  approximation of the mean gap; the tree quality should degrade
  gracefully under 2-4x misestimates.
"""

from fractions import Fraction

from repro.chord.fingers import FingerTable
from repro.chord.idgen import ProbingIdAssigner, UniformIdAssigner
from repro.chord.idspace import IdSpace
from repro.core.builder import build_balanced_dat
from repro.core.limiting import ceil_log2_fraction
from repro.core.parent import select_parent_balanced
from repro.core.tree import DatTree
from repro.experiments.report import format_table


class _DivisorLimiter:
    """g(x) with a configurable divisor instead of the derived 3."""

    def __init__(self, d0: Fraction, divisor: int) -> None:
        self.d0 = d0
        self.divisor = divisor

    def __call__(self, x: int) -> int:
        return ceil_log2_fraction((x + 2 * self.d0) / self.divisor)


def build_with_divisor(ring, key: int, divisor: int) -> DatTree:
    tables = ring.all_finger_tables()
    root = ring.successor(key)
    limiter = _DivisorLimiter(Fraction(ring.space.size, len(ring)), divisor)
    parent = {}
    for node in ring:
        chosen = select_parent_balanced(tables[node], root, limiter)
        if chosen is not None:
            parent[node] = chosen
    return DatTree(root=root, parent=parent, key=key)


def sweep_divisors():
    space = IdSpace(16)
    ring = UniformIdAssigner().build_ring(space, 1024)
    rows = []
    for divisor in (1, 2, 3, 4, 6, 8):
        tree = build_with_divisor(ring, key=0, divisor=divisor)
        stats = tree.stats()
        rows.append(
            {
                "divisor": divisor,
                "max_branching": stats.max_branching,
                "height": stats.height,
            }
        )
    return rows


def sweep_d0_error():
    space = IdSpace(32)
    ring = ProbingIdAssigner().build_ring(space, 512, rng=2007)
    true_d0 = space.size / len(ring)
    rows = []
    for factor in (0.25, 0.5, 1.0, 2.0, 4.0):
        tree = build_balanced_dat(ring, key=12345, d0=true_d0 * factor)
        stats = tree.stats()
        rows.append(
            {
                "d0_estimate_factor": factor,
                "max_branching": stats.max_branching,
                "height": stats.height,
            }
        )
    return rows


def test_ablation_divisor(benchmark, emit):
    rows = benchmark.pedantic(sweep_divisors, rounds=1, iterations=1)
    emit(
        "ablation_divisor",
        format_table(rows, title="Ablation — g(x) divisor (derived value: 3; "
                                 "n=1024 evenly spaced)"),
    )
    by = {row["divisor"]: row for row in rows}
    # The derived divisor achieves the theorem's branching bound.
    assert by[3]["max_branching"] <= 2
    # Under-restriction (divisor 1: the plain ceil(log2(x+2)) limit) lets
    # fan-in grow past the bound.
    assert by[1]["max_branching"] > by[3]["max_branching"]
    # Over-restriction trades branching for height: markedly taller trees.
    assert by[8]["height"] > by[3]["height"]


def test_ablation_d0_sensitivity(benchmark, emit):
    rows = benchmark.pedantic(sweep_d0_error, rounds=1, iterations=1)
    emit(
        "ablation_d0",
        format_table(rows, title="Ablation — sensitivity to the d0 estimate "
                                 "(n=512, probing ids)"),
    )
    by = {row["d0_estimate_factor"]: row for row in rows}
    exact = by[1.0]["max_branching"]
    # Graceful degradation: a 4x misestimate at most ~doubles-ish the max
    # branching and never collapses the structure.
    for factor in (0.25, 0.5, 2.0, 4.0):
        assert by[factor]["max_branching"] <= max(3 * exact, exact + 6)
        assert by[factor]["height"] <= 4 * by[1.0]["height"]

"""Fig. 7(a): maximum branching factor vs network size (16..8192).

Paper claims reproduced here:
* basic DAT max branching grows on a log scale with n (random ids worst);
* identifier probing shrinks it substantially but it still grows;
* balanced DAT + probing stays an (almost) constant small value;
* balanced DAT without probing still grows log-scale (gap ratio O(log n)).
"""

from repro.experiments.fig7_tree_properties import run_fig7_tree_properties
from repro.experiments.report import format_table

SIZES = [16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192]
#: Appended with ``--large``: array-native pipeline keeps this affordable.
LARGE_SIZES = [65536]


def test_fig7a_max_branching(benchmark, emit, large):
    sizes = SIZES + LARGE_SIZES if large else SIZES
    points = benchmark.pedantic(
        run_fig7_tree_properties,
        kwargs={"sizes": sizes, "n_seeds": 3, "master_seed": 2007},
        rounds=1,
        iterations=1,
    )
    emit(
        "fig7a_max_branching",
        format_table(
            [p.as_row() for p in points],
            columns=["scheme", "ids", "n", "max_branching"],
            title="Fig 7(a) — max branching factor vs network size",
        ),
    )

    by = {(p.scheme, p.id_strategy, p.n_nodes): p for p in points}

    # Balanced + probing: near-constant small max branching at every size
    # (including the 65536-node --large point).
    for n in sizes:
        assert by[("balanced", "probing", n)].max_branching <= 8.0, n

    # Basic DAT grows with n (log-scale): 8192 markedly above 16.
    assert (
        by[("basic", "random", 8192)].max_branching
        >= by[("basic", "random", 16)].max_branching + 4
    )

    # Probing reduces the basic DAT's max branching at scale (paper: 16 vs 43).
    assert (
        by[("basic", "probing", 8192)].max_branching
        < by[("basic", "random", 8192)].max_branching
    )

    # Balanced without probing still grows: strictly above the probing curve
    # at scale.
    assert (
        by[("balanced", "random", 8192)].max_branching
        > by[("balanced", "probing", 8192)].max_branching
    )

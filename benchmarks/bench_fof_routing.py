"""FoF routing gain (paper Sec. 4's fingers-of-fingers extension).

With a warm FoF cache a node picks next hops from a two-hop horizon;
greedy distance-halving then covers ~two plain hops at once. Measured:
mean hop counts over random (source, key) pairs with and without FoF on a
converged live overlay.
"""

from repro.chord.fof import FofMaintainer
from repro.chord.idspace import IdSpace
from repro.chord.network import ChordNetwork
from repro.chord.node import ChordConfig
from repro.experiments.report import format_table
from repro.sim.latency import ConstantLatency
from repro.sim.simnet import SimTransport

import numpy as np


def build_and_measure():
    space = IdSpace(14)
    transport = SimTransport(latency=ConstantLatency(0.002))
    config = ChordConfig(stabilize_interval=0.25, fix_fingers_interval=0.05)
    network = ChordNetwork(space, transport, config)
    n = 64
    for i in range(n):
        network.add_node((i * space.size) // n + 1)
        network.settle(0.5)
    network.settle_until_converged()
    for node in network.nodes.values():
        node.fix_all_fingers()
    network.settle(5.0)
    maintainers = {
        ident: FofMaintainer(node) for ident, node in network.nodes.items()
    }
    for maintainer in maintainers.values():
        maintainer.refresh_all()
    network.settle(5.0)

    ring = network.ideal_ring()
    rng = np.random.default_rng(2007)
    idents = ring.nodes

    def walk(source: int, key: int, use_fof: bool) -> int:
        current = source
        destination = ring.successor(key)
        hops = 0
        while current != destination and hops <= space.bits + 2:
            node = network.nodes[current]
            if use_fof:
                nxt = maintainers[current].next_hop(key)
            else:
                nxt = node.finger_table().closest_preceding(key)
            if nxt is None or nxt == current:
                nxt = ring.successor_of_node(current)
            current = nxt
            hops += 1
        return hops

    plain_hops, fof_hops = [], []
    for _ in range(300):
        source = idents[int(rng.integers(0, n))]
        key = int(rng.integers(0, space.size))
        plain_hops.append(walk(source, key, use_fof=False))
        fof_hops.append(walk(source, key, use_fof=True))
    return {
        "n": n,
        "plain_mean_hops": round(float(np.mean(plain_hops)), 2),
        "fof_mean_hops": round(float(np.mean(fof_hops)), 2),
        "plain_max": int(np.max(plain_hops)),
        "fof_max": int(np.max(fof_hops)),
    }


def test_fof_routing_gain(benchmark, emit):
    row = benchmark.pedantic(build_and_measure, rounds=1, iterations=1)
    emit(
        "fof_routing",
        format_table([row], title="Lookup hops: plain fingers vs "
                                  "fingers-of-fingers (64-node live overlay)"),
    )
    # FoF never hurts and measurably helps on average (~25-50% fewer hops).
    assert row["fof_mean_hops"] <= row["plain_mean_hops"]
    assert row["fof_mean_hops"] <= 0.85 * row["plain_mean_hops"]
    assert row["fof_max"] <= row["plain_max"]

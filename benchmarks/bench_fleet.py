"""Fleet harness wall-clock: bootstrap and live replay at real-process scale.

The deployment harness (``docs/FLEET.md``) spawns one OS process per node;
its costs are operational, not algorithmic — interpreter startup, staged
joins, control-plane round trips, and the real-time dwell of a live
replay. This benchmark measures, per fleet size:

* **bootstrap seconds** — ``FleetSupervisor.start()`` through
  ``wait_converged()`` (process spawning + batched joins + ring
  stabilization);
* **replay seconds** — a short live fig-9 replay (its floor is
  ``n_slots x slot_duration`` of genuine wall-clock dwell) plus the
  sim-twin comparison, with the report's verdict recorded;
* **teardown seconds** — ``down()`` reaping every process.

Runs two ways:

* under pytest (tier-2 bench suite): ``pytest benchmarks/bench_fleet.py``
  (n=16; pass ``--large`` for the n=64 acceptance point)
* standalone for the CI fleet gate::

      python benchmarks/bench_fleet.py --sizes 64 \\
          --check benchmarks/fleet_threshold.json \\
          --out BENCH_fleet.json

  With ``--check`` the exit code is non-zero when a size exceeds its
  bootstrap/replay budget or the comparison report fails.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import pathlib
import sys
import tempfile
import time

from repro.fleet import FleetConfig, FleetSupervisor
from repro.fleet.compare import compare_fig9, run_fig9_sim_twin
from repro.fleet.plan import plan_fleet_fig9
from repro.fleet.replay import replay_fig9_live

RESULT_PATH = pathlib.Path(__file__).parent / "results" / "BENCH_fleet.json"
THRESHOLD_PATH = pathlib.Path(__file__).parent / "fleet_threshold.json"

#: Replay shape: short, but long enough for several push rounds per slot.
N_SLOTS = 2
SLOT_DURATION = 3.0
PUSH_INTERVAL = 0.5


def _config(n_nodes: int, state_dir: str, seed: int) -> FleetConfig:
    # Timers loosen with scale: n processes share the host, so per-process
    # CPU shrinks linearly and tight maintenance intervals just thrash.
    relaxed = n_nodes > 32
    return FleetConfig(
        n_nodes=n_nodes,
        bits=16,
        seed=seed,
        join_batch=16,
        stabilize_interval=0.4 if relaxed else 0.1,
        fix_fingers_interval=0.2 if relaxed else 0.05,
        check_predecessor_interval=1.0 if relaxed else 0.25,
        rpc_timeout=2.0 if relaxed else 0.5,
        telemetry_interval=2.0,
        hello_timeout=180.0,
        call_timeout=60.0,
        converge_timeout=300.0,
        state_dir=state_dir,
    )


async def _measure_async(n_nodes: int, seed: int) -> dict[str, object]:
    with tempfile.TemporaryDirectory(prefix="bench-fleet-") as state_dir:
        supervisor = FleetSupervisor(_config(n_nodes, state_dir, seed))
        start = time.perf_counter()
        await supervisor.start()
        converged = await supervisor.wait_converged()
        bootstrap_seconds = time.perf_counter() - start
        try:
            members = supervisor.live_idents()
            plan = plan_fleet_fig9(
                seed=seed,
                n_nodes=len(members),
                n_slots=N_SLOTS,
                push_interval=PUSH_INTERVAL,
                slot_duration=SLOT_DURATION,
            )
            start = time.perf_counter()
            live = await replay_fig9_live(supervisor, plan)
            sim = run_fig9_sim_twin(members, plan, supervisor.space)
            report = compare_fig9(live, sim)
            replay_seconds = time.perf_counter() - start
        finally:
            start = time.perf_counter()
            await supervisor.down()
            teardown_seconds = time.perf_counter() - start
    return {
        "n": n_nodes,
        "converged": converged,
        "bootstrap_seconds": round(bootstrap_seconds, 2),
        "replay_seconds": round(replay_seconds, 2),
        "teardown_seconds": round(teardown_seconds, 2),
        "comparison_passed": report.passed,
        "live_pushes": live.total_pushes,
        "sim_pushes": sim.total_pushes,
    }


def measure(n_nodes: int, seed: int = 2007) -> dict[str, object]:
    """One fleet size: boot, converge, replay, compare, tear down."""
    return asyncio.run(_measure_async(n_nodes, seed))


def run_suite(sizes: list[int], seed: int = 2007) -> dict[str, object]:
    return {
        "config": {
            "sizes": sizes,
            "seed": seed,
            "n_slots": N_SLOTS,
            "slot_duration": SLOT_DURATION,
            "push_interval": PUSH_INTERVAL,
        },
        "results": [measure(n, seed=seed) for n in sizes],
    }


def _format(payload: dict[str, object]) -> str:
    lines = ["Fleet harness — real-process bootstrap and live replay"]
    lines.append(
        f"{'n':>5} {'boot_s':>8} {'replay_s':>9} {'down_s':>7} "
        f"{'conv':>5} {'cmp':>5} {'pushes':>8}"
    )
    for row in payload["results"]:  # type: ignore[union-attr]
        lines.append(
            f"{row['n']:>5} {row['bootstrap_seconds']:>8} "
            f"{row['replay_seconds']:>9} {row['teardown_seconds']:>7} "
            f"{'yes' if row['converged'] else 'NO':>5} "
            f"{'pass' if row['comparison_passed'] else 'FAIL':>5} "
            f"{row['live_pushes']:>8}"
        )
    return "\n".join(lines)


def _check(payload: dict[str, object], threshold_path: pathlib.Path) -> list[str]:
    """Regression gate: per-size bootstrap/replay budgets + report verdicts."""
    threshold = json.loads(threshold_path.read_text())
    boot_budgets = {int(k): float(v) for k, v in threshold["max_bootstrap_seconds"].items()}
    replay_budgets = {int(k): float(v) for k, v in threshold["max_replay_seconds"].items()}
    failures: list[str] = []
    for row in payload["results"]:  # type: ignore[union-attr]
        n = int(row["n"])  # type: ignore[arg-type]
        if not row["converged"]:
            failures.append(f"n={n}: fleet did not converge")
        budget = boot_budgets.get(n)
        if budget is not None and float(row["bootstrap_seconds"]) > budget:  # type: ignore[arg-type]
            failures.append(
                f"n={n}: bootstrap {row['bootstrap_seconds']}s exceeds budget {budget}s"
            )
        budget = replay_budgets.get(n)
        if budget is not None and float(row["replay_seconds"]) > budget:  # type: ignore[arg-type]
            failures.append(
                f"n={n}: replay {row['replay_seconds']}s exceeds budget {budget}s"
            )
        if threshold.get("require_comparison_passed", False) and not row["comparison_passed"]:
            failures.append(f"n={n}: live-vs-sim comparison report failed")
    return failures


# --------------------------------------------------------------------- #
# pytest entry points (tier-2 bench suite)
# --------------------------------------------------------------------- #


def test_fleet_bootstrap_and_replay_at_16(emit):
    """A 16-process fleet boots, replays, compares, and tears down in budget."""
    payload = run_suite([16], seed=2007)
    RESULT_PATH.parent.mkdir(exist_ok=True)
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    emit("fleet", _format(payload))
    (row,) = payload["results"]
    assert row["converged"] is True
    assert row["comparison_passed"] is True, row


def test_fleet_at_64(emit, large):
    """The n=64 acceptance point (only with ``--large``; ~minutes)."""
    if not large:
        import pytest

        pytest.skip("pass --large to run the 64-process fleet benchmark")
    payload = run_suite([64], seed=2007)
    RESULT_PATH.parent.mkdir(exist_ok=True)
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    emit("fleet", _format(payload))
    failures = _check(payload, THRESHOLD_PATH)
    assert not failures, failures


# --------------------------------------------------------------------- #
# Standalone CLI (CI fleet gate)
# --------------------------------------------------------------------- #


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sizes", default="64", help="comma-separated fleet sizes")
    parser.add_argument("--seed", type=int, default=2007)
    parser.add_argument(
        "--out", default=str(RESULT_PATH), help="where to write the JSON result"
    )
    parser.add_argument(
        "--check",
        default=None,
        help="threshold JSON: fail on budget or comparison-report regression",
    )
    args = parser.parse_args(argv)

    sizes = [int(part) for part in args.sizes.split(",") if part]
    payload = run_suite(sizes, seed=args.seed)
    print(_format(payload))

    out_path = pathlib.Path(args.out)
    if out_path.parent != pathlib.Path("."):
        out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out_path}")

    if args.check:
        failures = _check(payload, pathlib.Path(args.check))
        for failure in failures:
            print(f"FAIL: {failure}")
        if failures:
            return 1
        print("fleet gate: budgets met, comparison reports passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())

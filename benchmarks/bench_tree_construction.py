"""Construction-cost scaling: the engineering side of 'scales to 8192 nodes'.

Measures wall-clock cost of ring construction, finger-table materialization,
and per-tree parent computation across sizes, and the marginal cost of
additional trees on a shared overlay (the multi-attribute scenario).
"""

import pytest

from repro.chord.hashing import sha1_id
from repro.chord.idgen import ProbingIdAssigner
from repro.chord.idspace import IdSpace
from repro.core.builder import DatTreeBuilder

SPACE = IdSpace(32)


@pytest.fixture(scope="module")
def big_ring():
    return ProbingIdAssigner().build_ring(SPACE, 8192, rng=2007)


@pytest.mark.parametrize("n_nodes", [512, 2048, 8192])
def test_ring_and_tables_scaling(benchmark, n_nodes):
    def build():
        ring = ProbingIdAssigner().build_ring(SPACE, n_nodes, rng=7)
        ring.all_finger_tables()
        return ring

    ring = benchmark.pedantic(build, rounds=1, iterations=1)
    assert len(ring) == n_nodes


def test_single_tree_on_8192(benchmark, big_ring):
    builder = DatTreeBuilder(big_ring, scheme="balanced")
    _ = builder.tables  # materialize outside the timed region

    tree = benchmark(lambda: builder.build(key=12345))
    assert tree.n_nodes == 8192


def test_sixteen_trees_share_tables(benchmark, big_ring):
    # Multi-attribute monitoring: 16 DATs on one overlay reuse the finger
    # tables; the marginal cost per tree is one parent scan.
    builder = DatTreeBuilder(big_ring, scheme="balanced")
    _ = builder.tables
    keys = [sha1_id(f"attr-{i}", SPACE) for i in range(16)]

    trees = benchmark.pedantic(lambda: builder.build_many(keys), rounds=1, iterations=1)
    assert len(trees) == 16
    roots = {tree.root for tree in trees.values()}
    assert len(roots) >= 14  # consistent hashing spreads the roots

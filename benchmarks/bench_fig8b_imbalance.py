"""Fig. 8(b): imbalance factor vs network size (100..1000).

Paper claims: centralized imbalance grows almost linearly with n; basic
DAT grows on a log scale (4.2 @100 -> 8.5 @1000); balanced DAT stays
nearly constant (1.9 @100, 2.0 @1000).
"""

from repro.experiments.fig8_load_balance import run_fig8b_imbalance_sweep
from repro.experiments.report import format_table

SIZES = [100, 200, 300, 400, 500, 600, 700, 800, 900, 1000]


def test_fig8b_imbalance(benchmark, emit):
    points = benchmark.pedantic(
        run_fig8b_imbalance_sweep,
        kwargs={"sizes": SIZES, "n_seeds": 3, "master_seed": 2007},
        rounds=1,
        iterations=1,
    )
    emit(
        "fig8b_imbalance",
        format_table(
            [p.as_row() for p in points],
            title="Fig 8(b) — imbalance factor (max/avg messages) vs n",
        ),
    )

    first, last = points[0], points[-1]

    # Centralized: ~linear growth — 10x nodes gives >4x imbalance, and the
    # absolute level is O(n)-ish (root processes ~n messages vs avg ~2-4).
    assert last.centralized / first.centralized > 4.0
    assert last.centralized > 50

    # Basic DAT: grows, but logarithmically — well under 2x over the decade
    # against centralized's >4x, and small in absolute terms (paper: 4-9).
    assert last.basic < 15
    assert last.basic / first.basic < 2.5

    # Balanced DAT: near-constant and small (paper: ~2).
    balanced_values = [p.balanced for p in points]
    assert max(balanced_values) <= 4.5
    assert max(balanced_values) / min(balanced_values) < 1.8

    # Ordering at every size: balanced < basic < centralized.
    for point in points:
        assert point.balanced < point.basic < point.centralized

#!/usr/bin/env python
"""Quickstart: stand up a monitored Grid and ask it questions.

Builds a 128-node P-GMA deployment (Chord overlay with identifier probing,
MAAN index, balanced DAT aggregation), attaches a synthetic producer to
every node, and exercises the two consumer workflows from the paper:
resource *discovery* (range queries) and global *monitoring* (aggregates).

Run:  python examples/quickstart.py
"""

from repro import GridMonitor, MonitorConfig
from repro.core.analysis import imbalance_factor
from repro.workloads import default_schemas, make_producers


def main() -> None:
    # 1. Deploy the stack: overlay + index + aggregation trees.
    config = MonitorConfig(
        n_nodes=128, bits=32, id_strategy="probing", dat_scheme="balanced", seed=42
    )
    monitor = GridMonitor(config, default_schemas())
    for producer in make_producers(monitor.ring, seed=42).values():
        monitor.attach_producer(producer)

    hops = monitor.register_all()
    print(f"deployed {len(monitor.ring)} nodes; "
          f"registered {monitor.index.total_records()} records in {hops} hops")

    # 2. Discovery: find lightly loaded, well-provisioned machines.
    consumer = monitor.consumer()
    result = consumer.search_all(cpu_usage=(0.0, 40.0), memory_size=(4.0, 64.0))
    print(f"\ndiscovery: {len(result.resources)} machines with <40% load and "
          f">=4GB memory ({result.total_hops} routing hops)")
    for resource in result.resources[:5]:
        attrs = resource.attributes
        print(f"  {resource.resource_id}: cpu-usage={attrs['cpu-usage']:.1f}% "
              f"memory={attrs['memory-size']:.0f}GB")

    # 3. Monitoring: global aggregates over the balanced DAT.
    print("\nglobal monitoring (one DAT round each):")
    for aggregate in ("avg", "max", "min", "std"):
        outcome = monitor.aggregate("cpu-usage", aggregate)
        print(f"  {aggregate:>4}(cpu-usage) = {outcome.value:8.3f}   "
              f"[root={outcome.root}, messages={outcome.total_messages}]")

    # 4. The load-balance story: per-node message cost of that round.
    outcome = monitor.aggregate("cpu-usage", "avg")
    loads = outcome.message_loads
    print(f"\nload balance: max={max(loads.values())} msgs/node, "
          f"imbalance factor={imbalance_factor(loads):.2f} "
          f"(1.0 would be perfectly even)")
    print(f"tree: height={outcome.tree.height}, "
          f"max branching={outcome.tree.stats().max_branching}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Multi-attribute resource discovery with MAAN (paper Sec. 2.2).

Registers a synthetic 256-machine Grid inventory into a MAAN overlay and
resolves single- and multi-attribute range queries, printing the routing
costs alongside the theoretical bounds (O(log n + k) and
O(log n + n*s_min)).

Run:  python examples/resource_discovery.py
"""

from repro.chord import IdSpace, make_assigner
from repro.maan import MaanNetwork, MultiAttributeQuery, RangeQuery
from repro.util.bits import ceil_log2
from repro.workloads import GridResourceGenerator, default_schemas


def main() -> None:
    n_nodes, n_resources = 256, 256
    space = IdSpace(32)
    ring = make_assigner("probing").build_ring(space, n_nodes, rng=7)
    network = MaanNetwork(ring, default_schemas())

    resources = GridResourceGenerator(seed=7).fleet(n_resources)
    total_hops = sum(network.register(r) for r in resources)
    print(f"registered {n_resources} resources x {len(default_schemas())} attributes "
          f"in {total_hops} hops "
          f"({total_hops / n_resources:.1f}/resource; log2(n)={ceil_log2(n_nodes)})")

    loads = network.storage_loads()
    print(f"storage balance: {network.total_records()} records, "
          f"max {max(loads.values())} on one node")

    print("\nsingle-attribute range queries (cost = lookup + arc walk):")
    for low, high in ((90.0, 100.0), (50.0, 100.0), (0.0, 100.0)):
        query = RangeQuery("cpu-usage", low, high)
        result = network.range_query(query)
        print(f"  cpu-usage in [{low:5.1f}, {high:5.1f}] -> "
              f"{len(result.resources):3d} matches, "
              f"{result.lookup_hops} lookup hops + {result.nodes_visited} arc nodes")

    print("\nmulti-attribute query (single-attribute-dominated resolution):")
    query = MultiAttributeQuery.of(
        RangeQuery("cpu-usage", 0.0, 25.0),      # selective -> dominates
        RangeQuery("memory-size", 0.25, 64.0),   # broad -> filtered locally
        RangeQuery("cpu-speed", 2.0, 5.0),
    )
    result = network.multi_attribute_query(query)
    print(f"  idle (<25%) machines with >=2GHz CPUs: {len(result.resources)} found "
          f"in {result.total_hops} hops")
    for resource in result.resources[:5]:
        attrs = resource.attributes
        print(f"    {resource.resource_id}: {attrs['cpu-speed']:.1f}GHz "
              f"{attrs['memory-size']:.1f}GB load={attrs['cpu-usage']:.0f}%")
    print("  (cost followed the narrow cpu-usage arc, not the broad memory one)")


if __name__ == "__main__":
    main()

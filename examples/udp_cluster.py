#!/usr/bin/env python
"""A real UDP DAT cluster on localhost (paper Sec. 4/5.1).

The prototype ran up to 64 DAT instances per machine over UDP sockets;
this example boots a 16-node cluster of genuine socket-backed protocol
nodes on 127.0.0.1, waits for stabilization, and runs a continuous SUM
aggregation over the live overlay.

Run:  python examples/udp_cluster.py
"""

import time

from repro.chord import IdSpace
from repro.chord.node import ChordConfig, ChordProtocolNode
from repro.chord.ring import StaticRing
from repro.core.service import DatNodeService
from repro.sim.udprpc import UdpRpcTransport


def main() -> None:
    n = 16
    space = IdSpace(16)
    idents = [(i * space.size) // n + 5 for i in range(n)]
    ideal = StaticRing(space, idents)
    config = ChordConfig(
        stabilize_interval=0.05, fix_fingers_interval=0.02,
        check_predecessor_interval=0.1, rpc_timeout=0.5,
    )

    with UdpRpcTransport() as transport:
        print(f"booting {n} UDP nodes on 127.0.0.1...")
        nodes: dict[int, ChordProtocolNode] = {}
        first = ChordProtocolNode(idents[0], space, transport, config)
        first.create()
        nodes[idents[0]] = first
        for ident in idents[1:]:
            node = ChordProtocolNode(ident, space, transport, config)
            node.join(idents[0])
            nodes[ident] = node
            time.sleep(0.05)

        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            if all(
                node.successor == ideal.successor_of_node(ident)
                for ident, node in nodes.items()
            ):
                break
            time.sleep(0.1)
        print("overlay stabilized; refreshing fingers...")
        for node in nodes.values():
            node.fix_all_fingers()
        time.sleep(1.0)

        key = 1000
        root = ideal.successor(key)
        values = {ident: float(i + 1) for i, ident in enumerate(idents)}
        services = {
            ident: DatNodeService(
                node,
                finger_provider=node.finger_table,
                value_provider=lambda ident=ident: values[ident],
                scheme="balanced",
                d0_provider=lambda: space.size / n,
            )
            for ident, node in nodes.items()
        }
        for service in services.values():
            service.start_continuous(key, root, "sum", interval=0.05)

        expected = sum(values.values())
        print(f"continuous SUM aggregation toward root {root} "
              f"(expected {expected:.0f})...")
        deadline = time.monotonic() + 15.0
        estimate = None
        while time.monotonic() < deadline:
            estimate = services[root].root_estimate(key)
            if estimate is not None and abs(estimate - expected) < 1e-9:
                break
            time.sleep(0.1)
        print(f"root estimate: {estimate} "
              f"({'exact' if estimate == expected else 'converging'})")

        sent = transport.stats.total_messages()
        print(f"total UDP datagrams exchanged: {sent}")
        for service in services.values():
            service.stop_continuous(key)
        for node in nodes.values():
            node.stop_maintenance()
    print("cluster shut down cleanly")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Fault-tolerant global monitoring with replica DAT trees.

A single aggregation tree has single points of failure: the root, and any
heavy interior node. This example (extending the paper with the
multiple-tree idea of its related work, Li et al. [12]) aggregates over k
independent trees — rendezvous keys salted per replica — and combines with
a median, masking crashed nodes' damage.

Run:  python examples/fault_tolerant_monitoring.py
"""

import numpy as np

from repro.chord import IdSpace, make_assigner
from repro.core import RedundantAggregator


def main() -> None:
    ring = make_assigner("probing").build_ring(IdSpace(32), 128, rng=5)
    values = {node: float(i % 17 + 1) for i, node in enumerate(ring)}
    truth = sum(values.values())
    print(f"overlay: {len(ring)} nodes; true SUM = {truth:.0f}")

    aggregator = RedundantAggregator(ring, "cpu-usage", k=3)
    print(f"replica trees: {aggregator.k}, distinct roots: "
          f"{aggregator.distinct_roots()}")

    print("\nno failures:")
    result = aggregator.aggregate(values, "sum")
    print(f"  combined = {result.value:.0f} (replicas used: {result.replicas_used})")

    # The win is in the tail: a single unlucky tree loses a huge subtree;
    # the replica median rarely does. Run many independent 8%-crash trials.
    rng = np.random.default_rng(5)
    single = RedundantAggregator(ring, "cpu-usage", k=1)
    errors: dict[str, list[float]] = {"single tree": [], "3 replicas": []}
    last_failed: set[int] = set()
    for _ in range(25):
        failed = {node for node in ring if rng.random() < 0.08}
        last_failed = failed
        post_truth = sum(v for n, v in values.items() if n not in failed)
        for agg, label in ((single, "single tree"), (aggregator, "3 replicas")):
            try:
                result = agg.aggregate(values, "sum", failed_nodes=failed)
                errors[label].append(abs(result.value - post_truth) / post_truth)
            except Exception:  # noqa: BLE001 - root crashed: total loss
                errors[label].append(1.0)

    print("\nrelative error over 25 independent 8%-crash trials:")
    for label, series in errors.items():
        arr = np.asarray(series)
        print(f"  {label:12s}: mean {arr.mean() * 100:5.1f}%   "
              f"p90 {np.percentile(arr, 90) * 100:5.1f}%   "
              f"worst {arr.max() * 100:5.1f}%")

    print("\nper-replica detail (last trial):")
    result = aggregator.aggregate(values, "sum", failed_nodes=last_failed)
    for outcome in result.outcomes:
        status = f"{outcome.value:9.0f}" if outcome.ok else f"FAILED ({outcome.failure})"
        print(f"  replica {outcome.replica} root {outcome.root:>12}: {status}")


if __name__ == "__main__":
    main()

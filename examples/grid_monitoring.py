#!/usr/bin/env python
"""Continuous Grid CPU monitoring — the paper's Sec. 5.4 scenario.

Replays a synthetic 2-hour Sun-Fire-style CPU trace over a 512-node Grid
and tracks the global total CPU usage through the balanced DAT, comparing
the aggregated series against ground truth (the data behind Fig. 9a/9b).

Run:  python examples/grid_monitoring.py [n_nodes] [n_slots]
"""

import sys

from repro.experiments.fig9_accuracy import run_fig9_accuracy


def spark(values, width: int = 64) -> str:
    """Render a coarse ASCII sparkline of a series."""
    blocks = " .:-=+*#%@"
    if len(values) > width:
        stride = len(values) / width
        values = [values[int(i * stride)] for i in range(width)]
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    return "".join(blocks[int((v - lo) / span * (len(blocks) - 1))] for v in values)


def main() -> None:
    n_nodes = int(sys.argv[1]) if len(sys.argv) > 1 else 512
    n_slots = int(sys.argv[2]) if len(sys.argv) > 2 else 240

    print(f"simulating {n_nodes}-node Grid, {n_slots} trace slots "
          f"({n_slots * 10 / 60:.0f} minutes of monitoring)...")
    result = run_fig9_accuracy(
        n_nodes=n_nodes,
        n_slots=n_slots,
        mode="continuous",
        identical_traces=False,
        push_period=1.0,
        aggregate="sum",
    )

    print("\ntotal CPU usage over time (sum across all nodes):")
    print(f"  actual     |{spark(result.actual)}|")
    print(f"  aggregated |{spark(result.aggregated)}|")

    print("\naccuracy of the DAT-aggregated series vs ground truth:")
    print(f"  mean relative error : {result.mean_relative_error() * 100:.3f}%")
    print(f"  max relative error  : {result.max_relative_error() * 100:.3f}%")
    print(f"  correlation         : {result.correlation():.4f}")

    worst = max(
        range(len(result.actual)),
        key=lambda i: abs(result.aggregated[i] - result.actual[i]),
    )
    print(f"\nworst slot: t={result.times[worst]:.0f}s "
          f"actual={result.actual[worst]:.1f} "
          f"aggregated={result.aggregated[worst]:.1f}")
    print("\n(the small error is continuous-mode staleness: a node at depth d "
          "contributes a reading d push-periods old — paper Fig. 9b's "
          "off-diagonal scatter)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""A multi-attribute monitoring dashboard over one overlay.

Shows the multi-tree story of paper Sec. 3.2: one balanced DAT per
monitored attribute, roots spread by consistent hashing, combined per-node
load staying even — plus the Chord broadcast primitive pushing a config
update to every node, and text renderings of the ring and a tree.

Run:  python examples/multi_attribute_dashboard.py
"""

from repro.chord import IdSpace, make_assigner
from repro.chord.broadcast import broadcast_tree
from repro.core.multitree import DatForest
from repro.viz import render_load_histogram, render_ring, render_tree

ATTRIBUTES = [
    "cpu-usage", "memory-free", "disk-io", "net-rx", "net-tx",
    "load-1m", "load-5m", "swap-used", "temp-cpu", "uptime",
    "jobs-running", "jobs-queued", "gpu-usage", "gpu-memory",
    "ctx-switches", "interrupts",
]


def main() -> None:
    space = IdSpace(32)
    ring = make_assigner("probing").build_ring(space, 256, rng=99)
    print(f"overlay: 256 nodes, probing identifiers "
          f"(gap ratio {ring.gap_ratio():.1f})")
    print("ring occupancy:", render_ring(ring, width=64))

    forest = DatForest(ring, ATTRIBUTES)
    print(f"\nforest: {len(ATTRIBUTES)} balanced DATs, one per attribute")
    roots = forest.roots()
    print(f"distinct roots: {len(set(roots.values()))} of {len(ATTRIBUTES)} trees")

    report = forest.load_report()
    print(f"\ncombined per-node load over one round of every tree:")
    print(f"  imbalance factor : {report.combined_imbalance:.2f}")
    print(f"  max root roles on one node: {report.max_root_roles}")
    print("\ntop loaded nodes (all trees together):")
    print(render_load_histogram(report.combined_loads, max_rows=8))

    tree = forest.tree("cpu-usage")
    stats = tree.stats()
    print(f"\nthe cpu-usage tree: height {stats.height}, "
          f"max branching {stats.max_branching}")
    print("first levels:")
    print("\n".join(render_tree(tree, max_nodes=15).splitlines()[:16]))

    # Broadcast: disseminate a sampling-rate change to every node via the
    # finger-range scheme (n-1 messages, O(log n) depth).
    bt = broadcast_tree(ring, initiator=tree.root)
    print(f"\nbroadcast from root {tree.root}: reaches {bt.n_nodes} nodes "
          f"in depth {bt.height} with {bt.n_nodes - 1} messages")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""DAT trees under node arrival and departure (paper Secs. 1, 3.2).

Runs a live Chord overlay on the discrete-event simulator, applies churn,
and shows the paper's headline maintenance claim: the implicit DAT tree
repairs itself through ordinary Chord stabilization, with *zero* dedicated
tree-maintenance messages.

Run:  python examples/churn_resilience.py
"""

from repro.experiments.churn_overhead import run_churn_overhead


def main() -> None:
    print("running a live 32-node overlay through 12 churn events...")
    result = run_churn_overhead(n_nodes=32, bits=16, n_churn_events=12, seed=11)

    print(f"\nchurn phase: {result.n_events} membership changes over "
          f"{result.duration:.1f} virtual seconds")
    print(f"maintenance traffic: {result.total_messages} messages total "
          f"({result.messages_per_node_second:.1f} per node-second)")

    print("\nmessage kinds observed (all are Chord protocol traffic):")
    for kind, count in sorted(result.by_kind.items(), key=lambda kv: -kv[1]):
        print(f"  {kind:22s} {count:6d}")
    print(f"\nDAT tree-maintenance messages: {result.dat_maintenance_messages()} "
          "(the tree is implicit in finger state — nothing to repair)")

    print(f"\ntree repair latency after each event (stabilization rounds until "
          f"the live balanced DAT is valid again):")
    print(f"  per event: {result.repair_rounds}")
    print(f"  mean     : {result.mean_repair_rounds():.1f} rounds")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""A 2-hour monitoring dashboard driven by the scheduler loop.

Runs the P-GMA stack for a full trace window with the
:class:`~repro.gma.scheduler.MonitoringScheduler`: dynamic MAAN
registrations refresh periodically, three global aggregates recompute
every slot, and the histories render as sparklines.

Run:  python examples/monitoring_dashboard.py
"""

from repro import GridMonitor, MonitorConfig
from repro.gma.scheduler import MonitoringScheduler
from repro.gma.traces import TraceGenerator
from repro.workloads import default_schemas, make_producers


def spark(values, width: int = 60) -> str:
    blocks = " .:-=+*#%@"
    numeric = [float(v) for v in values]
    if len(numeric) > width:
        stride = len(numeric) / width
        numeric = [numeric[int(i * stride)] for i in range(width)]
    lo, hi = min(numeric), max(numeric)
    span = (hi - lo) or 1.0
    return "".join(
        blocks[int((v - lo) / span * (len(blocks) - 1))] for v in numeric
    )


def main() -> None:
    n = 128
    monitor = GridMonitor(MonitorConfig(n_nodes=n, seed=63), default_schemas())
    traces = TraceGenerator(seed=63).generate_fleet(n, identical=False)
    for producer in make_producers(monitor.ring, traces=traces, seed=63).values():
        monitor.attach_producer(producer)
    monitor.register_all()

    scheduler = MonitoringScheduler(monitor, step=60.0, refresh_every_steps=5)
    scheduler.watch("cpu-usage", "avg")
    scheduler.watch("cpu-usage", "max")
    scheduler.watch("cpu-usage", "quantile")  # median via the grid sketch

    steps = 120  # 2 hours at one-minute steps
    print(f"driving {n}-node deployment for {steps} minutes of trace time...")
    scheduler.run_steps(steps)

    print(f"\nindex refreshes consumed {scheduler.refresh_hops} routing hops "
          f"({monitor.index.total_records()} records stay current)\n")
    for aggregate in ("avg", "max", "quantile"):
        history = scheduler.history("cpu-usage", aggregate)
        values = [v for _t, v in history]
        label = {"avg": "mean", "max": "peak", "quantile": "p50 "}[aggregate]
        print(f"cpu {label} |{spark(values)}|  "
              f"now={scheduler.latest('cpu-usage', aggregate):6.2f}")

    print("\n(each aggregate is one balanced-DAT round per minute: "
          f"{steps} x 3 rounds x {n - 1} messages, max "
          f"{monitor.aggregate('cpu-usage').tree.stats().max_branching} "
          "messages on any node per round)")


if __name__ == "__main__":
    main()

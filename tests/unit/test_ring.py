"""Unit tests for the static (converged) Chord ring."""

import numpy as np
import pytest

from repro.chord.idspace import IdSpace
from repro.chord.ring import StaticRing
from repro.errors import DuplicateNodeError, EmptyRingError, UnknownNodeError


class TestConstruction:
    def test_sorted_and_sized(self, space4):
        ring = StaticRing(space4, [5, 1, 9])
        assert ring.nodes == [1, 5, 9]
        assert len(ring) == 3

    def test_rejects_duplicates(self, space4):
        with pytest.raises(DuplicateNodeError):
            StaticRing(space4, [3, 3])

    def test_membership(self, space4):
        ring = StaticRing(space4, [2, 8])
        assert 2 in ring and 8 in ring and 5 not in ring

    def test_iteration_order(self, space4):
        ring = StaticRing(space4, [9, 0, 4])
        assert list(ring) == [0, 4, 9]

    def test_node_array_dtype(self, space4, space32):
        assert StaticRing(space4, [1, 2]).node_array().dtype == np.uint64
        wide = StaticRing(IdSpace(160), [1, 2])
        assert wide.node_array().dtype == object


class TestMembershipChanges:
    def test_add_and_remove(self, space4):
        ring = StaticRing(space4, [4])
        ring.add(10)
        assert ring.nodes == [4, 10]
        ring.remove(4)
        assert ring.nodes == [10]

    def test_add_duplicate_raises(self, space4):
        ring = StaticRing(space4, [4])
        with pytest.raises(DuplicateNodeError):
            ring.add(4)

    def test_remove_unknown_raises(self, space4):
        ring = StaticRing(space4, [4])
        with pytest.raises(UnknownNodeError):
            ring.remove(5)


class TestConsistentHashing:
    def test_successor_basic(self, space4):
        ring = StaticRing(space4, [2, 8, 14])
        assert ring.successor(3) == 8
        assert ring.successor(8) == 8  # exact hit
        assert ring.successor(15) == 2  # wraps

    def test_predecessor_basic(self, space4):
        ring = StaticRing(space4, [2, 8, 14])
        assert ring.predecessor(3) == 2
        assert ring.predecessor(2) == 14  # strict precedence wraps
        assert ring.predecessor(0) == 14

    def test_empty_ring_raises(self, space4):
        ring = StaticRing(space4)
        with pytest.raises(EmptyRingError):
            ring.successor(0)

    def test_successor_of_node(self, space4):
        ring = StaticRing(space4, [2, 8, 14])
        assert ring.successor_of_node(2) == 8
        assert ring.successor_of_node(14) == 2

    def test_predecessor_of_node(self, space4):
        ring = StaticRing(space4, [2, 8, 14])
        assert ring.predecessor_of_node(2) == 14
        assert ring.predecessor_of_node(8) == 2

    def test_neighbor_queries_require_membership(self, space4):
        ring = StaticRing(space4, [2, 8])
        with pytest.raises(UnknownNodeError):
            ring.successor_of_node(3)

    def test_every_key_has_an_owner(self, space4):
        ring = StaticRing(space4, [3, 7, 12])
        for key in range(space4.size):
            owner = ring.successor(key)
            assert owner in ring
            if owner == key:
                continue  # exact hit: (key, owner) is degenerate
            # No other node lies in (key, owner).
            for node in ring:
                assert not space4.in_open(node, key, owner) or node == owner


class TestGaps:
    def test_gap_before(self, space4):
        ring = StaticRing(space4, [2, 8, 14])
        assert ring.gap_before(8) == 6
        assert ring.gap_before(2) == 4  # wraps from 14

    def test_gaps_sum_to_space(self, space4):
        ring = StaticRing(space4, [1, 5, 6, 13])
        assert sum(ring.gaps().values()) == space4.size

    def test_single_node_owns_everything(self, space4):
        ring = StaticRing(space4, [9])
        assert ring.gap_before(9) == space4.size

    def test_mean_gap(self, space4):
        ring = StaticRing(space4, [0, 8])
        assert ring.mean_gap() == 8.0

    def test_gap_ratio_uniform_is_one(self, uniform_ring):
        assert uniform_ring.gap_ratio() == 1.0


class TestFingerTables:
    def test_matches_paper_example(self, full_ring4):
        assert full_ring4.finger_entries(8) == [9, 10, 12, 0]
        assert full_ring4.finger_entries(1) == [2, 3, 5, 9]

    def test_finger_table_object(self, full_ring4):
        table = full_ring4.finger_table(0)
        assert table.owner == 0
        assert table.successor == 1

    def test_unknown_node_raises(self, space4):
        sparse = StaticRing(space4, [1, 2])
        with pytest.raises(UnknownNodeError):
            sparse.finger_entries(5)

    def test_all_finger_tables_complete(self, full_ring4):
        tables = full_ring4.all_finger_tables()
        assert set(tables) == set(range(16))
        for owner, table in tables.items():
            assert table.owner == owner

    def test_sparse_ring_fingers(self, space4):
        ring = StaticRing(space4, [0, 3, 9])
        # successor(0+1)=3, successor(0+2)=3, successor(0+4)=9, successor(0+8)=9
        assert ring.finger_entries(0) == [3, 3, 9, 9]

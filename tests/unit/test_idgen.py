"""Unit tests for identifier assignment strategies."""

import pytest

from repro.chord.idgen import (
    ProbingIdAssigner,
    RandomIdAssigner,
    UniformIdAssigner,
    make_assigner,
)
from repro.chord.idspace import IdSpace
from repro.util.bits import ceil_log2


class TestRandomIdAssigner:
    def test_count_and_distinct(self):
        ring = RandomIdAssigner().build_ring(IdSpace(32), 100, rng=1)
        assert len(ring) == 100

    def test_deterministic_under_seed(self):
        a = RandomIdAssigner().build_ring(IdSpace(32), 50, rng=9)
        b = RandomIdAssigner().build_ring(IdSpace(32), 50, rng=9)
        assert a.nodes == b.nodes

    def test_rejects_oversubscription(self):
        with pytest.raises(ValueError):
            RandomIdAssigner().build_ring(IdSpace(2), 5, rng=0)

    def test_zero_nodes(self):
        assert len(RandomIdAssigner().build_ring(IdSpace(8), 0, rng=0)) == 0

    def test_gap_ratio_grows(self):
        # Random ids: expect a visibly imbalanced ring (ratio >> constant).
        ring = RandomIdAssigner().build_ring(IdSpace(32), 512, rng=3)
        assert ring.gap_ratio() > 8.0


class TestUniformIdAssigner:
    def test_power_of_two_exact_spacing(self):
        space = IdSpace(8)
        ring = UniformIdAssigner().build_ring(space, 16)
        gaps = set(ring.gaps().values())
        assert gaps == {16}

    def test_offset_applied(self):
        space = IdSpace(8)
        ring = UniformIdAssigner(offset=3).build_ring(space, 4)
        assert ring.nodes == [3, 67, 131, 195]

    def test_non_power_of_two_nearly_even(self):
        space = IdSpace(16)
        ring = UniformIdAssigner().build_ring(space, 100)
        assert ring.gap_ratio() <= 2.0


class TestProbingIdAssigner:
    def test_count(self):
        ring = ProbingIdAssigner().build_ring(IdSpace(32), 64, rng=2)
        assert len(ring) == 64

    def test_constant_gap_ratio(self):
        ring = ProbingIdAssigner().build_ring(IdSpace(32), 256, rng=2)
        assert ring.gap_ratio() <= 8.0

    def test_better_than_random(self):
        space = IdSpace(32)
        probing = ProbingIdAssigner().build_ring(space, 256, rng=5)
        random_ring = RandomIdAssigner().build_ring(space, 256, rng=5)
        assert probing.gap_ratio() < random_ring.gap_ratio()

    def test_rejects_bad_multiplier(self):
        with pytest.raises(ValueError):
            ProbingIdAssigner(probe_multiplier=0)


class TestMakeAssigner:
    def test_resolves_all_names(self):
        assert isinstance(make_assigner("random"), RandomIdAssigner)
        assert isinstance(make_assigner("uniform"), UniformIdAssigner)
        assert isinstance(make_assigner("probing"), ProbingIdAssigner)

    def test_kwargs_forwarded(self):
        assigner = make_assigner("probing", probe_multiplier=3.0)
        assert assigner.probe_multiplier == 3.0

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown id assigner"):
            make_assigner("magic")

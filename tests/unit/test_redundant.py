"""Unit tests for redundant multi-replica aggregation."""

import pytest

from repro.chord.idgen import ProbingIdAssigner
from repro.chord.idspace import IdSpace
from repro.core.redundant import RedundantAggregator
from repro.errors import AggregationError


@pytest.fixture
def setup():
    ring = ProbingIdAssigner().build_ring(IdSpace(32), 64, rng=17)
    values = {node: float(i + 1) for i, node in enumerate(ring)}
    aggregator = RedundantAggregator(ring, "cpu-usage", k=3)
    return ring, values, aggregator


class TestConstruction:
    def test_k_distinct_keys(self, setup):
        _ring, _values, aggregator = setup
        keys = aggregator.replica_keys()
        assert len(set(keys)) == 3

    def test_roots_spread(self, setup):
        _ring, _values, aggregator = setup
        assert aggregator.distinct_roots() >= 2

    def test_rejects_bad_k(self, setup):
        ring, _values, _aggregator = setup
        with pytest.raises(AggregationError):
            RedundantAggregator(ring, "x", k=0)


class TestFailureFreeAggregation:
    def test_all_replicas_agree(self, setup):
        _ring, values, aggregator = setup
        result = aggregator.aggregate(values, "sum")
        truth = sum(values.values())
        assert result.value == pytest.approx(truth)
        assert result.replicas_used == 3
        assert all(o.value == pytest.approx(truth) for o in result.outcomes)

    def test_avg(self, setup):
        _ring, values, aggregator = setup
        result = aggregator.aggregate(values, "avg")
        assert result.value == pytest.approx(sum(values.values()) / len(values))


class TestFailureMasking:
    def test_root_failure_masked(self, setup):
        _ring, values, aggregator = setup
        trees = aggregator.trees()
        victim_root = trees[0].root
        other_roots = {t.root for t in trees[1:]}
        if victim_root in other_roots:
            pytest.skip("replica roots collided on this seed")
        result = aggregator.aggregate(values, "sum", failed_nodes={victim_root})
        assert not result.outcomes[0].ok
        assert result.replicas_used >= 2

        # Each surviving replica loses exactly the victim's subtree in
        # *its* tree (the victim relays those contributions there too).
        def descendants(tree, node):
            out, stack = set(), [node]
            while stack:
                current = stack.pop()
                out.add(current)
                stack.extend(tree.children(current))
            return out

        expected = []
        for tree, outcome in zip(trees[1:], result.outcomes[1:]):
            lost = descendants(tree, victim_root)
            expected.append(sum(v for n, v in values.items() if n not in lost))
        for outcome, expectation in zip(result.outcomes[1:], expected):
            assert outcome.value == pytest.approx(expectation)

        import statistics

        assert result.value == pytest.approx(statistics.median(expected))

    def test_interior_failure_corrupts_minority(self, setup):
        # Failing one interior node of replica 0 loses a subtree there but
        # (whp) not in the other replicas; the median masks it.
        _ring, values, aggregator = setup
        trees = aggregator.trees()
        interiors = [
            node for node in trees[0].internal_nodes() if node != trees[0].root
        ]
        victim = max(interiors, key=trees[0].subtree_sizes().__getitem__)
        result = aggregator.aggregate(values, "sum", failed_nodes={victim})
        truth_without_victim = sum(values.values()) - values[victim]
        # Median over 3 replicas: at most one is heavily corrupted, so the
        # combined value is within the least-corrupted replica's error.
        errors = sorted(
            abs(o.value - truth_without_victim)
            for o in result.outcomes
            if o.ok
        )
        assert abs(result.value - truth_without_victim) <= errors[-2] + 1e-9

    def test_all_roots_failed_raises(self, setup):
        _ring, values, aggregator = setup
        roots = {tree.root for tree in aggregator.trees()}
        with pytest.raises(AggregationError):
            aggregator.aggregate(values, "sum", failed_nodes=roots)

    def test_failed_replica_reported(self, setup):
        _ring, values, aggregator = setup
        victim = aggregator.trees()[1].root
        result = aggregator.aggregate(values, "sum", failed_nodes={victim})
        failed = [o for o in result.outcomes if not o.ok]
        assert any(o.failure == "root failed" for o in failed)

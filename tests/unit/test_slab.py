"""Slab protocol runner — wire-size arithmetic and batch mechanics.

The slab path never JSON-encodes a message, yet claims byte-exact traffic
accounting: every row of a :class:`~repro.sim.messages.MessageBatch` must
carry exactly the size its materialized scalar
:class:`~repro.sim.messages.Message` would put on the wire. These tests
capture the batches a run emits and compare row sizes against
``message(i).encoded_size()`` for every aggregate, which pins the whole
arithmetic chain (envelope overhead, digit counts, ``repr`` lengths,
tuple-state overhead). Full slab-vs-oracle protocol equivalence lives in
``tests/property/test_prop_protocol.py``.
"""

import numpy as np
import pytest

from repro.chord.block import ChordNodeBlock
from repro.chord.idgen import make_assigner
from repro.chord.idspace import IdSpace
from repro.core.slab import (
    SLAB_AGGREGATES,
    SlabContinuousRun,
    run_protocol_oracle,
    run_protocol_slab,
)
from repro.errors import AggregationError
from repro.sim.messages import reset_msg_ids
from repro.sim.simnet import SimTransport


def build_ring(n, bits=16, seed=3):
    return make_assigner("random").build_ring(IdSpace(bits), n, rng=seed)


def capture_batches(transport):
    """Shadow send_batch with a capturing wrapper (still delivers)."""
    captured = []
    original = transport.send_batch

    def wrapper(batch, deliver):
        captured.append(batch)
        original(batch, deliver)

    transport.send_batch = wrapper
    return captured


class TestBatchWireSizes:
    @pytest.mark.parametrize("aggregate", SLAB_AGGREGATES)
    @pytest.mark.parametrize("scheme", ["basic", "balanced"])
    def test_sizes_equal_materialized_encoded_size(self, aggregate, scheme):
        reset_msg_ids()
        ring = build_ring(40)
        transport = SimTransport()
        captured = capture_batches(transport)
        rng = np.random.default_rng(8)
        values = rng.uniform(-50.0, 50.0, size=40)  # varied repr lengths
        run_protocol_slab(
            ring,
            key=0x3A7,
            rounds=4,
            aggregate=aggregate,
            scheme=scheme,
            values=values,
            transport=transport,
        )
        assert captured, "no batches captured"
        for batch in captured:
            for i in range(len(batch)):
                message = batch.message(i)
                assert int(batch.sizes[i]) == message.encoded_size(), (
                    aggregate,
                    scheme,
                    i,
                    message,
                )

    def test_msg_ids_contiguous_across_rounds(self):
        reset_msg_ids()
        ring = build_ring(16)
        transport = SimTransport()
        captured = capture_batches(transport)
        run_protocol_slab(ring, key=1, rounds=3, transport=transport)
        all_ids = np.concatenate([batch.msg_ids() for batch in captured])
        assert all_ids.tolist() == list(range(1, len(all_ids) + 1))


class TestSlabRunValidation:
    def test_rejects_unsupported_aggregate(self):
        ring = build_ring(8)
        block = ChordNodeBlock.from_ring(ring)
        with pytest.raises(AggregationError):
            SlabContinuousRun(
                block, SimTransport(), 1, "histogram", np.ones(8)
            )

    def test_rejects_mismatched_values(self):
        ring = build_ring(8)
        block = ChordNodeBlock.from_ring(ring)
        with pytest.raises(AggregationError):
            SlabContinuousRun(block, SimTransport(), 1, "sum", np.ones(5))

    def test_run_protocol_rejects_unsupported_aggregate(self):
        with pytest.raises(AggregationError):
            run_protocol_slab(build_ring(8), 1, rounds=1, aggregate="std")


class TestRunResults:
    def test_result_shape_and_convergence(self):
        reset_msg_ids()
        ring = build_ring(64, seed=5)
        result = run_protocol_slab(ring, key=99, rounds=20)
        assert result.n_nodes == 64
        assert result.root == ring.successor(99)
        assert result.estimate == 64.0  # SUM of unit values == membership
        assert result.messages_total == int(result.sent.sum())
        assert result.bytes_total == int(result.bytes_sent.sum())
        assert result.pushes_total == result.messages_total
        # 63 pushers, one push per round.
        assert result.messages_total == 63 * 20

    def test_state_bytes_within_memory_gate(self):
        reset_msg_ids()
        ring = build_ring(256, bits=32, seed=6)
        result = run_protocol_slab(ring, key=5, rounds=2)
        assert 0 < result.state_bytes / result.n_nodes <= 4096

    def test_oracle_small_ring_agrees(self):
        # The cheapest end-to-end cross-check; the property suite sweeps.
        ring = build_ring(24, seed=9)
        reset_msg_ids()
        slab = run_protocol_slab(ring, key=7, rounds=6)
        reset_msg_ids()
        oracle = run_protocol_oracle(ring, key=7, rounds=6)
        assert slab.estimate == oracle.estimate
        assert slab.root == oracle.root
        assert slab.pushes_total == oracle.pushes_total
        np.testing.assert_array_equal(slab.sent, oracle.sent)
        np.testing.assert_array_equal(slab.bytes_sent, oracle.bytes_sent)

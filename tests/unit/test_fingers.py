"""Unit tests for finger tables."""

import pytest

from repro.chord.fingers import FingerTable
from repro.chord.idspace import IdSpace
from repro.errors import IdentifierError


def table_for(space: IdSpace, owner: int, nodes: list[int]) -> FingerTable:
    """Converged finger table for ``owner`` over the full node list."""
    sorted_nodes = sorted(nodes)

    def successor(key: int) -> int:
        for node in sorted_nodes:
            if node >= key:
                return node
        return sorted_nodes[0]

    entries = [successor(space.wrap(owner + (1 << j))) for j in range(space.bits)]
    return FingerTable(space=space, owner=owner, entries=entries)


class TestConstruction:
    def test_full_ring_fingers_of_n8(self):
        # Paper Fig. 2: N8's fingers in the full 16-node ring are 9, 10, 12, 0.
        space = IdSpace(4)
        table = table_for(space, 8, list(range(16)))
        assert table.entries == [9, 10, 12, 0]

    def test_rejects_wrong_slot_count(self):
        space = IdSpace(4)
        with pytest.raises(IdentifierError):
            FingerTable(space=space, owner=0, entries=[1, 2])

    def test_rejects_invalid_entry(self):
        space = IdSpace(4)
        with pytest.raises(IdentifierError):
            FingerTable(space=space, owner=0, entries=[1, 2, 4, 16])

    def test_successor_is_slot_zero(self):
        space = IdSpace(4)
        table = table_for(space, 3, list(range(16)))
        assert table.successor == 4


class TestAccessors:
    def test_finger_and_start(self):
        space = IdSpace(4)
        table = table_for(space, 8, list(range(16)))
        assert table.finger(3) == 0
        assert table.start(3) == 0  # 8 + 8 mod 16

    def test_finger_rejects_bad_index(self):
        space = IdSpace(4)
        table = table_for(space, 8, list(range(16)))
        with pytest.raises(IdentifierError):
            table.finger(4)

    def test_slots(self):
        space = IdSpace(4)
        table = table_for(space, 8, list(range(16)))
        assert table.slots() == [(0, 9), (1, 10), (2, 12), (3, 0)]

    def test_distinct_fingers_dedupes(self):
        # Sparse ring: many slots share the same finger node.
        space = IdSpace(4)
        table = table_for(space, 0, [0, 8])
        assert table.entries == [8, 8, 8, 8]
        assert table.distinct_fingers() == [8]

    def test_len(self):
        space = IdSpace(4)
        assert len(table_for(space, 0, list(range(16)))) == 4


class TestClosestPreceding:
    def test_basic_next_hop(self):
        # From N1 toward key 0 the best finger is N9 (paper route 1->9->13->15->0).
        space = IdSpace(4)
        table = table_for(space, 1, list(range(16)))
        assert table.closest_preceding(0) == 9

    def test_finger_equal_to_target_qualifies(self):
        # N8's +8 finger is exactly N0; toward root 0 it is chosen directly.
        space = IdSpace(4)
        table = table_for(space, 8, list(range(16)))
        assert table.closest_preceding(0) == 0

    def test_max_slot_restriction(self):
        # Restricting N8 to slots <= 2 excludes the direct +8 jump to N0.
        space = IdSpace(4)
        table = table_for(space, 8, list(range(16)))
        assert table.closest_preceding(0, max_slot=2) == 12

    def test_returns_none_at_target(self):
        space = IdSpace(4)
        table = table_for(space, 8, list(range(16)))
        assert table.closest_preceding(8) is None

    def test_skips_self_entries(self):
        # One-node ring: every finger is the owner; no progress possible.
        space = IdSpace(4)
        table = FingerTable(space=space, owner=5, entries=[5, 5, 5, 5])
        assert table.closest_preceding(3) is None

    def test_never_overshoots(self):
        space = IdSpace(6)
        nodes = [0, 7, 19, 23, 31, 40, 47, 55, 60]
        for owner in nodes:
            table = table_for(space, owner, nodes)
            for key in range(space.size):
                hop = table.closest_preceding(key)
                if hop is not None:
                    assert space.cw(owner, hop) <= space.cw(owner, key)

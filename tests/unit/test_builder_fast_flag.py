"""Unit tests for build_dat's fast-path dispatch rules."""

import pytest

from repro.chord.idgen import ProbingIdAssigner
from repro.chord.idspace import IdSpace
from repro.chord.ring import StaticRing
from repro.core.builder import build_dat


@pytest.fixture
def ring():
    return ProbingIdAssigner().build_ring(IdSpace(24), 64, rng=2)


class TestFastFlag:
    def test_fast_matches_scalar_both_schemes(self, ring):
        for scheme in ("basic", "balanced"):
            fast = build_dat(ring, 123, scheme=scheme, fast=True)
            slow = build_dat(ring, 123, scheme=scheme, fast=False)
            assert fast.parent == slow.parent
            assert fast.root == slow.root

    def test_explicit_tables_force_scalar(self, ring):
        # Pre-built tables can't feed the vectorized path; the call must
        # still succeed (scalar) and agree.
        tables = ring.all_finger_tables()
        with_tables = build_dat(ring, 123, fast=True, tables=tables)
        plain = build_dat(ring, 123, fast=True)
        assert with_tables.parent == plain.parent

    def test_explicit_d0_forces_scalar(self, ring):
        custom = build_dat(ring, 123, fast=True, d0=ring.mean_gap() * 2)
        default = build_dat(ring, 123, fast=True)
        # A doubled d0 genuinely changes the balanced tree, proving the
        # scalar path (which honours d0) ran.
        assert custom.root == default.root
        assert custom.parent != default.parent or len(ring) <= 2

    def test_wide_space_fast_flag_falls_back(self):
        space = IdSpace(160)
        ring = StaticRing(space, [1, 2**100, 2**150, 2**159])
        tree = build_dat(ring, 5, fast=True)
        tree.validate()
        assert tree.n_nodes == 4

"""Unit tests for the Chord broadcast primitive."""

import pytest

from repro.chord.broadcast import BroadcastService, broadcast_children, broadcast_tree
from repro.chord.idgen import ProbingIdAssigner, RandomIdAssigner
from repro.chord.idspace import IdSpace
from repro.chord.ring import StaticRing
from repro.core.service import StandaloneDatHost
from repro.sim.latency import ConstantLatency
from repro.sim.simnet import SimTransport
from repro.util.bits import ceil_log2


class TestBroadcastChildren:
    def test_initiator_delegates_all_distinct_fingers(self, full_ring4):
        table = full_ring4.finger_table(0)
        delegations = broadcast_children(table, limit=0)
        children = [child for child, _limit in delegations]
        assert children == [1, 2, 4, 8]

    def test_limits_partition_the_arc(self, full_ring4):
        table = full_ring4.finger_table(0)
        delegations = broadcast_children(table, limit=0)
        # Each child's limit is the next finger; the last child's limit is
        # the original limit.
        assert delegations == [(1, 2), (2, 4), (4, 8), (8, 0)]

    def test_respects_limit(self, full_ring4):
        table = full_ring4.finger_table(0)
        delegations = broadcast_children(table, limit=4)
        assert [child for child, _ in delegations] == [1, 2]

    def test_no_children_when_arc_empty(self, full_ring4):
        table = full_ring4.finger_table(0)
        assert broadcast_children(table, limit=1) == []


class TestBroadcastTree:
    def test_covers_every_node_once(self, full_ring4):
        tree = broadcast_tree(full_ring4, initiator=0)
        tree.validate()
        assert set(tree.nodes()) == set(full_ring4)

    def test_height_logarithmic(self):
        space = IdSpace(32)
        ring = ProbingIdAssigner().build_ring(space, 512, rng=6)
        tree = broadcast_tree(ring, initiator=ring.nodes[0])
        assert tree.height <= 2 * ceil_log2(512)

    def test_every_initiator_works(self, full_ring4):
        for initiator in full_ring4:
            tree = broadcast_tree(full_ring4, initiator=initiator)
            assert tree.n_nodes == 16
            tree.validate()

    def test_random_ring_coverage(self):
        space = IdSpace(24)
        ring = RandomIdAssigner().build_ring(space, 100, rng=8)
        tree = broadcast_tree(ring, initiator=ring.nodes[42])
        assert set(tree.nodes()) == set(ring)


class TestBroadcastService:
    def build(self, n: int = 16):
        space = IdSpace(16)
        ring = StaticRing(space, [(i * space.size) // n for i in range(n)])
        tables = ring.all_finger_tables()
        transport = SimTransport(latency=ConstantLatency(0.001))
        services = {}
        for node in ring:
            host = StandaloneDatHost(node, space, transport)
            services[node] = BroadcastService(
                host, finger_provider=lambda node=node: tables[node]
            )
        return ring, transport, services

    def test_delivery_to_all_nodes_exactly_once(self):
        ring, transport, services = self.build()
        initiator = ring.nodes[3]
        broadcast_id = services[initiator].broadcast({"cmd": "refresh"})
        transport.run(until=5.0)
        for node, service in services.items():
            assert service.received(broadcast_id), node
            assert len(service.deliveries) == 1

    def test_payload_and_initiator_propagated(self):
        ring, transport, services = self.build(8)
        seen: list[tuple[int, dict]] = []
        for service in services.values():
            service.on_deliver = lambda initiator, payload: seen.append(
                (initiator, payload)
            )
        initiator = ring.nodes[0]
        services[initiator].broadcast({"x": 1})
        transport.run(until=5.0)
        assert len(seen) == 8
        assert all(src == initiator and payload == {"x": 1} for src, payload in seen)

    def test_message_count_is_n_minus_one(self):
        ring, transport, services = self.build(16)
        transport.stats.reset()
        services[ring.nodes[0]].broadcast("ping")
        transport.run(until=5.0)
        assert transport.stats.by_kind().get("bcast", 0) == 15

    def test_close_releases_upcall_registration(self):
        # Regression (DAT011): the service had no close(), so a departed
        # host kept handling `bcast` messages for as long as it lived.
        ring, transport, services = self.build(4)
        node = ring.nodes[0]
        service = services[node]
        host = service.host
        assert host.upcalls["bcast"] == service._on_broadcast
        service.close()
        assert "bcast" not in host.upcalls
        service.close()  # idempotent

    def test_close_leaves_foreign_handler_alone(self):
        ring, transport, services = self.build(4)
        service = services[ring.nodes[0]]
        replacement = lambda message: None  # noqa: E731
        service.host.upcalls["bcast"] = replacement
        service.close()
        assert service.host.upcalls["bcast"] is replacement

    def test_two_broadcasts_independent(self):
        ring, transport, services = self.build(8)
        a = services[ring.nodes[0]].broadcast("a")
        b = services[ring.nodes[5]].broadcast("b")
        transport.run(until=5.0)
        for service in services.values():
            assert service.received(a) and service.received(b)
            assert len(service.deliveries) == 2

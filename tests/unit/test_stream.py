"""Unit tests for the streaming telemetry pipeline (repro.telemetry.stream).

Exercises the chunked JSONL span sink (flush-on-chunk, deterministic
per-name sampling, drop accounting), the full TelemetryStream session
(config header, end-of-run snapshot, idempotent close), LiveExport file
handling, and the engine tick hooks that drive periodic hotspot sampling.
"""

from __future__ import annotations

import io
import json
import threading

import pytest

from repro import telemetry
from repro.telemetry import (
    JsonlSpanStream,
    LiveExport,
    Telemetry,
    TelemetryConfig,
    TelemetryStream,
)
from repro.telemetry.report import render_report, rolling_imbalance


@pytest.fixture(autouse=True)
def _global_telemetry_off():
    telemetry.disable()
    yield
    telemetry.disable()


def _tel(**overrides) -> Telemetry:
    overrides.setdefault("enabled", True)
    return Telemetry(TelemetryConfig(**overrides))


def _events(text: str) -> list[dict]:
    return [json.loads(line) for line in text.splitlines() if line]


def _records(text: str, kind: str) -> list[dict]:
    return [e for e in _events(text) if e["type"] == kind]


class TestJsonlSpanStream:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            JsonlSpanStream(io.StringIO(), chunk_size=0)
        with pytest.raises(ValueError):
            JsonlSpanStream(io.StringIO(), sample_every=0)

    def test_flushes_exactly_on_chunk_boundary(self):
        tel = _tel()
        out = io.StringIO()
        stream = JsonlSpanStream(out, chunk_size=4)
        tel.spans.sink = stream.offer
        for _ in range(3):
            with tel.span("s"):
                pass
        assert out.getvalue() == ""  # nothing written below the boundary
        assert stream.buffered == 3
        with tel.span("s"):
            pass
        assert stream.buffered == 0  # 4th span triggered the chunk flush
        assert stream.flushes == 1
        assert len(_events(out.getvalue())) == 4

    def test_peak_buffered_never_exceeds_chunk_size(self):
        tel = _tel()
        stream = JsonlSpanStream(io.StringIO(), chunk_size=8)
        tel.spans.sink = stream.offer
        for _ in range(100):
            with tel.span("s"):
                pass
        assert stream.peak_buffered <= 8
        assert len(tel.spans.finished) == 0  # sink consumed everything

    def test_sampling_is_deterministic_per_name(self):
        tel = _tel()
        out = io.StringIO()
        stream = JsonlSpanStream(out, chunk_size=1, sample_every=3)
        tel.spans.sink = stream.offer
        for _ in range(7):
            with tel.span("a"):
                pass
        for _ in range(2):
            with tel.span("b"):
                pass
        # every 3rd per name, starting with the first: a -> 3 kept, b -> 1.
        names = [e["name"] for e in _records(out.getvalue(), "span")]
        assert names == ["a", "a", "a", "b"]
        assert stream.written == 4
        assert stream.sampled_out == 5
        assert stream.sampled_out_by_name == {"a": 4, "b": 1}

    def test_offer_counts_are_thread_safe(self):
        tel = _tel()
        stream = JsonlSpanStream(io.StringIO(), chunk_size=64, sample_every=2)
        tel.spans.sink = stream.offer

        def worker():
            for _ in range(500):
                with tel.span("w"):
                    pass

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stream.flush()
        assert stream.written + stream.sampled_out == 2000
        assert stream.written == 1000


class TestTelemetryStream:
    def test_header_then_snapshot_layout(self):
        tel = _tel(span_chunk_size=2)
        out = io.StringIO()
        stream = TelemetryStream(tel, out)
        tel.counter("builds").inc()
        with tel.span("s", n=1):
            pass
        acc = tel.hotspots("transport")
        acc.record_send(7, 10)
        acc.sample(1.0)
        lines = stream.close()
        events = _events(out.getvalue())
        assert lines == len(events)
        assert events[0]["type"] == "config"
        assert events[0]["span_chunk_size"] == 2
        kinds = [e["type"] for e in events]
        assert kinds.count("span_drops") == 1
        assert "metric" in kinds and "span" in kinds
        assert "hotspot_node" in kinds and "hotspot_sample" in kinds

    def test_close_is_idempotent_and_detaches_sink(self):
        tel = _tel()
        stream = TelemetryStream(tel, io.StringIO())
        first = stream.close()
        assert tel.spans.sink is None
        assert stream.close() == first
        # spans finished after close are retained, not streamed
        with tel.span("later"):
            pass
        assert len(tel.spans.finished) == 1

    def test_close_reads_shared_state_through_snapshots(self):
        # Regression (DAT010): close() used to read the recorder's
        # `finished` list and the stream's sampling counters directly —
        # fields the udprpc receive thread mutates under their locks. The
        # snapshot accessors return consistent copies.
        tel = _tel()
        with tel.span("early"):
            pass
        snapshot = tel.spans.finished_snapshot()
        assert [span.name for span in snapshot] == ["early"]
        snapshot.clear()  # a copy: must not affect the recorder
        assert len(tel.spans.finished) == 1
        assert tel.spans.drop_stats() == (0, 0)
        out = io.StringIO()
        stream = TelemetryStream(tel, out, sample_every=2)
        for _ in range(4):
            with tel.span("late"):
                pass
        sampled_out, by_name = stream.stream.sampling_snapshot()
        assert sampled_out == 2
        assert by_name == {"late": 2}
        by_name["late"] = 99  # a copy: must not affect the stream
        assert stream.stream.sampling_snapshot()[1] == {"late": 2}
        lines = stream.close()
        assert lines == stream.stream.lines_written()

    def test_drop_accounting_combines_eviction_and_sampling(self):
        tel = _tel(max_spans=2)
        # Finish spans before any stream attaches: recorder retention evicts.
        for _ in range(5):
            with tel.span("early"):
                pass
        assert tel.spans.dropped == 3
        out = io.StringIO()
        stream = TelemetryStream(tel, out, sample_every=2)
        for _ in range(4):
            with tel.span("late"):
                pass
        stream.close()
        (drops,) = _records(out.getvalue(), "span_drops")
        assert drops["evicted"] == 3
        assert drops["sampled_out"] == 2
        assert drops["sampled_out_by_name"] == {"late": 2}
        assert drops["streamed"] == 4  # sink consumed all late spans
        # the two retained early spans were exported in the snapshot
        names = [e["name"] for e in _records(out.getvalue(), "span")]
        assert names.count("early") == 2
        assert names.count("late") == 2

    def test_empty_registry_export_renders(self):
        tel = _tel()
        out = io.StringIO()
        TelemetryStream(tel, out).close()
        events = _events(out.getvalue())
        assert [e["type"] for e in events] == ["config", "span_drops"]
        report = render_report(events)
        assert "(no spans)" in report
        assert "(no metrics)" in report

    def test_concurrent_sampling_during_record_replay(self):
        """sample() on a live accountant races record_send without tearing."""
        tel = _tel()
        out = io.StringIO()
        stream = TelemetryStream(tel, out, chunk_size=16)
        acc = tel.hotspots("churn.transport")
        stop = threading.Event()
        errors: list[Exception] = []

        def replay():
            for i in range(4000):
                acc.record_send(i % 37, 1, kind="stabilize")
                acc.record_receive((i + 1) % 37, 1)

        def sampler():
            t = 0.0
            while not stop.is_set():
                try:
                    t += 0.5
                    acc.sample(t)
                    tel.sample_hotspots(at=t)
                except Exception as exc:  # noqa: BLE001 - surfaced below
                    errors.append(exc)
                    return

        replayer = threading.Thread(target=replay)
        sampling = threading.Thread(target=sampler)
        sampling.start()
        replayer.start()
        replayer.join()
        stop.set()
        sampling.join()
        assert errors == []
        stream.close()
        samples = _records(out.getvalue(), "hotspot_sample")
        assert samples  # rolling series survived the race
        series = rolling_imbalance(_events(out.getvalue()), "churn")
        assert series["churn.transport"]


class TestLiveExport:
    def test_writes_both_formats(self, tmp_path):
        tel = _tel()
        jsonl = tmp_path / "t.jsonl"
        prom = tmp_path / "t.prom"
        live = LiveExport(tel, jsonl_path=jsonl, prom_path=prom)
        with tel.span("s"):
            pass
        tel.counter("c").inc()
        written = live.close()
        assert written["jsonl"] == len(_events(jsonl.read_text()))
        assert written["prom"] > 0
        assert "repro_c 1" in prom.read_text()
        assert live.close() == {}  # idempotent

    def test_no_paths_is_noop(self):
        tel = _tel()
        live = LiveExport(tel)
        assert live.close() == {}

    def test_spans_stream_during_run_not_at_close(self, tmp_path):
        tel = _tel()
        jsonl = tmp_path / "t.jsonl"
        with LiveExport(tel, jsonl_path=jsonl, chunk_size=1):
            with tel.span("s"):
                pass
            mid_run = jsonl.read_text()
            assert _records(mid_run, "span")  # already on disk
        assert len(tel.spans.finished) == 0


class TestMillionSpanBoundedMemory:
    def test_million_spans_bounded_by_chunk_size(self, tmp_path):
        """Acceptance: peak resident spans <= chunk size over 1M spans."""
        tel = _tel(span_chunk_size=1000, span_sample_every=20)
        out = tmp_path / "big.jsonl"
        n = 1_000_000
        with open(out, "w", encoding="utf-8") as handle:
            stream = TelemetryStream(tel, handle)
            span = tel.span  # bind once: this loop is the benchmark
            for i in range(n):
                with span("hot", i=i):
                    pass
            lines = stream.close()
        assert stream.stream.peak_buffered <= 1000
        assert len(tel.spans.finished) == 0  # nothing retained
        assert stream.stream.written == n // 20
        assert stream.stream.sampled_out == n - n // 20
        (drops,) = [
            json.loads(line)
            for line in open(out, encoding="utf-8")
            if '"span_drops"' in line
        ]
        assert drops["sampled_out"] == n - n // 20
        assert drops["streamed"] == n
        assert lines == n // 20 + 2  # spans + config + span_drops

"""Unit tests for monitoring events."""

from repro.gma.events import MonitoringEvent


class TestMonitoringEvent:
    def test_fields(self):
        event = MonitoringEvent(
            timestamp=5.0, resource_id="host-1", attribute="cpu-usage", value=42.0
        )
        assert event.timestamp == 5.0
        assert event.value == 42.0

    def test_key_identity(self):
        a = MonitoringEvent(1.0, "h", "cpu", 1.0)
        b = MonitoringEvent(2.0, "h", "cpu", 9.0)
        assert a.key() == b.key() == ("h", "cpu")

    def test_frozen(self):
        import pytest

        event = MonitoringEvent(1.0, "h", "cpu", 1.0)
        with pytest.raises(AttributeError):
            event.value = 2.0  # type: ignore[misc]

    def test_equality(self):
        assert MonitoringEvent(1.0, "h", "cpu", 1.0) == MonitoringEvent(
            1.0, "h", "cpu", 1.0
        )

    def test_usable_in_latest_value_table(self):
        events = [
            MonitoringEvent(1.0, "h", "cpu", 10.0),
            MonitoringEvent(2.0, "h", "cpu", 20.0),
            MonitoringEvent(1.5, "h", "mem", 4.0),
        ]
        latest: dict = {}
        for event in sorted(events, key=lambda e: e.timestamp):
            latest[event.key()] = event.value
        assert latest[("h", "cpu")] == 20.0
        assert latest[("h", "mem")] == 4.0

"""Unit tests for parent-selection rules (paper Sec. 3.2/3.4)."""

import pytest

from repro.core.limiting import FingerLimiter
from repro.core.parent import select_parent_balanced, select_parent_basic
from repro.errors import TreeError


class TestSelectParentBasic:
    def test_paper_fig2_parents(self, full_ring4):
        # Fig. 2: N0's children are N8, N12, N14, N15; route of N1 goes via N9.
        tables = full_ring4.all_finger_tables()
        assert select_parent_basic(tables[8], 0) == 0
        assert select_parent_basic(tables[12], 0) == 0
        assert select_parent_basic(tables[14], 0) == 0
        assert select_parent_basic(tables[15], 0) == 0
        assert select_parent_basic(tables[1], 0) == 9
        assert select_parent_basic(tables[9], 0) == 13
        assert select_parent_basic(tables[13], 0) == 15

    def test_root_has_no_parent(self, full_ring4):
        tables = full_ring4.all_finger_tables()
        assert select_parent_basic(tables[0], 0) is None

    def test_parent_strictly_closer_to_root(self, full_ring4):
        space = full_ring4.space
        tables = full_ring4.all_finger_tables()
        for node in full_ring4:
            if node == 0:
                continue
            parent = select_parent_basic(tables[node], 0)
            assert space.cw(parent, 0) < space.cw(node, 0)

    def test_sparse_ring(self, space4):
        from repro.chord.ring import StaticRing

        ring = StaticRing(space4, [1, 6, 11])
        tables = ring.all_finger_tables()
        root = 1
        for node in (6, 11):
            parent = select_parent_basic(tables[node], root)
            assert parent in ring


class TestSelectParentBalanced:
    def test_paper_fig5_n8_uses_limited_finger(self, full_ring4):
        # With g(8)=2, N8 may not take the +8 jump straight to N0; the
        # closest eligible preceding finger is N12.
        tables = full_ring4.all_finger_tables()
        limiter = FingerLimiter.for_ring(4, 16)
        assert select_parent_balanced(tables[8], 0, limiter) == 12

    def test_root_children_are_adjacent_inbound_fingers(self, full_ring4):
        # Sec. 3.5: the root's children are its j-th and j+1-th inbound
        # fingers — N14 and N15 for root N0 on the full 4-bit ring.
        tables = full_ring4.all_finger_tables()
        limiter = FingerLimiter.for_ring(4, 16)
        children = [
            node
            for node in full_ring4
            if node != 0 and select_parent_balanced(tables[node], 0, limiter) == 0
        ]
        assert children == [14, 15]

    def test_root_has_no_parent(self, full_ring4):
        tables = full_ring4.all_finger_tables()
        limiter = FingerLimiter.for_ring(4, 16)
        assert select_parent_balanced(tables[0], 0, limiter) is None

    def test_progress_toward_root(self, full_ring4):
        space = full_ring4.space
        tables = full_ring4.all_finger_tables()
        limiter = FingerLimiter.for_ring(4, 16)
        for node in full_ring4:
            if node == 0:
                continue
            parent = select_parent_balanced(tables[node], 0, limiter)
            assert space.cw(parent, 0) < space.cw(node, 0)

    def test_limit_respected(self, full_ring4):
        # The chosen parent is never farther than 2^{g(x)} from the node,
        # whenever any finger within the limit exists (exact ring case).
        space = full_ring4.space
        tables = full_ring4.all_finger_tables()
        limiter = FingerLimiter.for_ring(4, 16)
        for node in full_ring4:
            if node == 0:
                continue
            x = space.cw(node, 0)
            parent = select_parent_balanced(tables[node], 0, limiter)
            assert space.cw(node, parent) <= limiter.max_finger_offset(x)

"""Unit tests for broadcast-gather (membership-free on-demand) collection."""

import pytest

from repro.chord.broadcast import BroadcastService
from repro.chord.idspace import IdSpace
from repro.chord.ring import StaticRing
from repro.core.builder import build_balanced_dat
from repro.core.gathercast import GatherCollector
from repro.core.service import DatNodeService, StandaloneDatHost
from repro.errors import AggregationError
from repro.sim.latency import ConstantLatency
from repro.sim.simnet import SimTransport


def build_overlay(n: int = 16, bits: int = 12, values=None):
    space = IdSpace(bits)
    ring = StaticRing(space, [(i * space.size) // n for i in range(n)])
    tables = ring.all_finger_tables()
    transport = SimTransport(latency=ConstantLatency(0.002))
    local = values if values is not None else {node: float(node % 9 + 1) for node in ring}
    collectors = {}
    for node in ring:
        host = StandaloneDatHost(node, space, transport)
        dat = DatNodeService(
            host,
            finger_provider=lambda node=node: tables[node],
            value_provider=lambda node=node: local[node],
            scheme="balanced",
            d0_provider=lambda: space.size / n,
            predecessor_provider=lambda node=node: ring.predecessor_of_node(node),
        )
        broadcast = BroadcastService(
            host, finger_provider=lambda node=node: tables[node]
        )
        collectors[node] = GatherCollector(dat, broadcast)
    return ring, transport, collectors, local


class TestGatherCollect:
    def test_sum_exact(self):
        ring, transport, collectors, values = build_overlay()
        key = 1
        root = ring.successor(key)
        results: list[float] = []
        collectors[root].collect(key, "sum", results.append, waves=8)
        transport.run(until=10.0)
        assert results == [sum(values.values())]

    def test_count_exact(self):
        ring, transport, collectors, _values = build_overlay(n=24)
        key = 100
        root = ring.successor(key)
        results: list[int] = []
        collectors[root].collect(key, "count", results.append, waves=10)
        transport.run(until=10.0)
        assert results == [24]

    def test_parameterized_aggregate_travels(self):
        ring, transport, collectors, values = build_overlay()
        key = 1
        root = ring.successor(key)
        results = []
        collectors[root].collect(key, "topk", results.append, waves=8)
        transport.run(until=10.0)
        expected = tuple(sorted(values.values(), reverse=True)[:10])
        assert results[0] == expected

    def test_insufficient_waves_underestimates(self):
        # With a single wave only depth-1 subtrees reach the root: the
        # result is a strict undercount on any tree of height >= 2.
        ring, transport, collectors, _values = build_overlay(n=32)
        key = 1
        root = ring.successor(key)
        tree = build_balanced_dat(ring, key)
        assert tree.height >= 2
        results: list[int] = []
        collectors[root].collect(key, "count", results.append, waves=1)
        transport.run(until=10.0)
        assert results and results[0] < 32

    def test_message_cost_bounded(self):
        ring, transport, collectors, _values = build_overlay(n=16)
        key = 1
        root = ring.successor(key)
        transport.stats.reset()
        done: list[float] = []
        waves = 8
        collectors[root].collect(key, "sum", done.append, waves=waves)
        transport.run(until=10.0)
        assert done
        kinds = transport.stats.by_kind()
        assert kinds.get("bcast", 0) == 15  # n - 1 dissemination messages
        assert kinds.get("gather_push", 0) <= waves * 15

    def test_two_rounds_isolated(self):
        ring, transport, collectors, values = build_overlay()
        key = 1
        root = ring.successor(key)
        results: list[float] = []
        collectors[root].collect(key, "sum", results.append, waves=8)
        transport.run(until=10.0)
        values[ring.nodes[2]] += 50.0
        collectors[root].collect(key, "sum", results.append, waves=8)
        transport.run(until=20.0)
        assert results[1] == results[0] + 50.0

    def test_rejects_zero_waves(self):
        ring, _transport, collectors, _values = build_overlay(n=4)
        root = ring.successor(1)
        with pytest.raises(AggregationError):
            collectors[root].collect(1, "sum", lambda r: None, waves=0)

    def test_plain_broadcasts_still_delivered(self):
        # GatherCollector chains, not replaces, the broadcast on_deliver.
        ring, transport, collectors, _values = build_overlay(n=8)
        seen: list = []
        node = ring.nodes[3]
        collectors[node].broadcast._chain_test = True  # no-op marker
        base = collectors[node]
        base._chain_deliver = lambda initiator, payload: seen.append(payload)
        initiator = ring.nodes[0]
        collectors[initiator].broadcast.broadcast({"plain": "payload"})
        transport.run(until=5.0)
        assert seen == [{"plain": "payload"}]

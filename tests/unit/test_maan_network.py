"""Unit tests for the MAAN overlay: registration and query resolution."""

import pytest

from repro.chord.idgen import ProbingIdAssigner
from repro.chord.idspace import IdSpace
from repro.errors import QueryError, SchemaError
from repro.maan.attrs import AttributeSchema, Resource
from repro.maan.network import MaanNetwork
from repro.maan.query import MultiAttributeQuery, RangeQuery
from repro.util.bits import ceil_log2


@pytest.fixture
def network() -> MaanNetwork:
    space = IdSpace(24)
    ring = ProbingIdAssigner().build_ring(space, 64, rng=7)
    schemas = {
        "cpu-usage": AttributeSchema("cpu-usage", low=0.0, high=100.0),
        "memory-size": AttributeSchema("memory-size", low=0.0, high=64.0),
    }
    return MaanNetwork(ring, schemas)


def fleet(count: int) -> list[Resource]:
    # Deterministic spread of resources over the attribute domains.
    return [
        Resource(
            f"node-{i}",
            {"cpu-usage": (i * 97) % 101 * 0.99, "memory-size": (i * 13) % 65 * 0.98},
        )
        for i in range(count)
    ]


class TestRegistration:
    def test_one_record_per_attribute(self, network):
        resource = Resource("a", {"cpu-usage": 50.0, "memory-size": 8.0})
        network.register(resource)
        assert network.total_records() == 2

    def test_placement_on_value_successor(self, network):
        resource = Resource("a", {"cpu-usage": 50.0})
        network.register(resource)
        owner = network.node_for_value("cpu-usage", 50.0)
        assert network.stores[owner].count("cpu-usage") == 1

    def test_hops_logarithmic(self, network):
        hops = network.register(Resource("a", {"cpu-usage": 50.0, "memory-size": 8.0}))
        # O(m log n): 2 attributes, n=64 -> comfortably under 2 * 2*log2(64).
        assert hops <= 2 * 2 * ceil_log2(64)

    def test_undeclared_attributes_skipped(self, network):
        network.register(Resource("a", {"cpu-usage": 10.0, "gpu-count": 4}))
        assert network.total_records() == 1

    def test_all_undeclared_rejected(self, network):
        with pytest.raises(SchemaError):
            network.register(Resource("a", {"gpu-count": 4}))

    def test_deregister_removes_records(self, network):
        resource = Resource("a", {"cpu-usage": 50.0, "memory-size": 8.0})
        network.register(resource)
        network.deregister(resource)
        assert network.total_records() == 0

    def test_empty_ring_rejected(self):
        space = IdSpace(8)
        from repro.chord.ring import StaticRing

        with pytest.raises(QueryError):
            MaanNetwork(StaticRing(space), {})


class TestRangeQuery:
    def test_finds_exactly_matching_resources(self, network):
        resources = fleet(50)
        for resource in resources:
            network.register(resource)
        query = RangeQuery("cpu-usage", 20.0, 60.0)
        result = network.range_query(query)
        expected = {r.resource_id for r in resources if query.matches(r)}
        assert result.resource_ids() == expected

    def test_point_query(self, network):
        network.register(Resource("a", {"cpu-usage": 33.0}))
        result = network.range_query(RangeQuery("cpu-usage", 33.0, 33.0))
        assert result.resource_ids() == {"a"}

    def test_cost_structure(self, network):
        for resource in fleet(30):
            network.register(resource)
        narrow = network.range_query(RangeQuery("cpu-usage", 10.0, 12.0))
        wide = network.range_query(RangeQuery("cpu-usage", 10.0, 90.0))
        assert narrow.lookup_hops <= 2 * ceil_log2(64)
        assert wide.nodes_visited > narrow.nodes_visited

    def test_string_attribute_rejects_range(self):
        from repro.maan.attrs import AttributeKind

        space = IdSpace(16)
        ring = ProbingIdAssigner().build_ring(space, 8, rng=1)
        network = MaanNetwork(
            ring, {"os": AttributeSchema("os", kind=AttributeKind.STRING)}
        )
        with pytest.raises(QueryError):
            network.range_query(RangeQuery("os", 0, 1))

    def test_undeclared_attribute_rejected(self, network):
        with pytest.raises(SchemaError):
            network.range_query(RangeQuery("disk", 0, 1))


class TestMultiAttributeQuery:
    def test_conjunction_results_exact(self, network):
        resources = fleet(60)
        for resource in resources:
            network.register(resource)
        query = MultiAttributeQuery.of(
            RangeQuery("cpu-usage", 0.0, 30.0),
            RangeQuery("memory-size", 10.0, 60.0),
        )
        result = network.multi_attribute_query(query)
        expected = {r.resource_id for r in resources if query.matches(r)}
        assert result.resource_ids() == expected

    def test_dominated_by_most_selective(self, network):
        for resource in fleet(60):
            network.register(resource)
        # Narrow cpu sub-query should bound the walk, despite the wide mem one.
        narrow_first = network.multi_attribute_query(
            MultiAttributeQuery.of(
                RangeQuery("cpu-usage", 10.0, 15.0),
                RangeQuery("memory-size", 0.0, 64.0),
            )
        )
        wide_walk = network.range_query(RangeQuery("memory-size", 0.0, 64.0))
        assert narrow_first.nodes_visited < wide_walk.nodes_visited

    def test_selectivity_estimation(self, network):
        q = RangeQuery("cpu-usage", 0.0, 25.0)
        assert network.estimate_selectivity(q) == pytest.approx(0.25)


class TestArcNodes:
    def test_arc_is_contiguous(self, network):
        nodes = network.arc_nodes("cpu-usage", 10.0, 40.0)
        ring = network.ring
        for left, right in zip(nodes, nodes[1:]):
            assert ring.successor_of_node(left) == right

    def test_arc_covers_hash_interval(self, network):
        # The arc must contain the successor of every value in the range.
        hasher = network._hashers["cpu-usage"]
        nodes = set(network.arc_nodes("cpu-usage", 10.0, 40.0))
        for value in (10.0, 17.3, 25.0, 39.9, 40.0):
            assert network.ring.successor(hasher(value)) in nodes


class TestStorageBalance:
    def test_loads_spread(self, network):
        for resource in fleet(200):
            network.register(resource)
        loads = network.storage_loads()
        assert sum(loads.values()) == network.total_records()
        # Consistent hashing + probing ids: no node hoards everything.
        assert max(loads.values()) < network.total_records() / 4

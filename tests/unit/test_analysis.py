"""Unit tests for the closed-form DAT analysis (paper Sec. 3.3/3.5)."""

import pytest

from repro.chord.idgen import UniformIdAssigner
from repro.chord.idspace import IdSpace
from repro.core.analysis import (
    compare_measured_to_theory,
    imbalance_factor,
    load_distribution,
    theoretical_balanced_height_bound,
    theoretical_balanced_max_branching,
    theoretical_basic_branching,
    theoretical_max_branching_basic,
)
from repro.core.builder import build_basic_dat


class TestTheoreticalBasicBranching:
    def test_root_has_log_n_children(self):
        # d = 0 -> B = log2(n).
        assert theoretical_basic_branching(0, 16, 4) == 4
        assert theoretical_basic_branching(0, 1024, 32) == 10

    def test_far_half_has_no_children(self):
        # Case (2) of the proof: d >= 2^{b-1} -> B = 0.
        assert theoretical_basic_branching(8, 16, 4) == 0
        assert theoretical_basic_branching(15, 16, 4) == 0

    def test_fig2_match(self):
        # Full 16-node ring, root 0: check against the measured Fig. 2 tree.
        space = IdSpace(4)
        from repro.chord.ring import StaticRing

        ring = StaticRing(space, range(16))
        tree = build_basic_dat(ring, key=0)
        comparison = compare_measured_to_theory(tree, bits=4)
        for node, (measured, predicted) in comparison.items():
            assert measured == predicted, f"node {node}"

    def test_exact_on_larger_uniform_ring(self):
        space = IdSpace(10)
        ring = UniformIdAssigner().build_ring(space, 256)
        tree = build_basic_dat(ring, key=0)
        comparison = compare_measured_to_theory(tree, bits=10)
        mismatches = [
            node for node, (m, p) in comparison.items() if m != p
        ]
        assert not mismatches

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            theoretical_basic_branching(1, 100, 32)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            theoretical_basic_branching(-1, 16, 4)
        with pytest.raises(ValueError):
            theoretical_basic_branching(1, 0, 4)


class TestTheoreticalDepth:
    def test_fig2_node_n1(self):
        # N1: d = 15 = 0b1111 -> depth 4 (route <1, 9, 13, 15, 0>).
        from repro.core.analysis import theoretical_basic_depth

        assert theoretical_basic_depth(15, 16, 4) == 4

    def test_root_depth_zero(self):
        from repro.core.analysis import theoretical_basic_depth

        assert theoretical_basic_depth(0, 16, 4) == 0

    def test_power_of_two_distance_is_one_hop(self):
        from repro.core.analysis import theoretical_basic_depth

        for d in (1, 2, 4, 8):
            assert theoretical_basic_depth(d, 16, 4) == 1

    def test_matches_measured_everywhere(self):
        from repro.core.analysis import compare_depths_to_theory

        space = IdSpace(10)
        ring = UniformIdAssigner().build_ring(space, 128)
        tree = build_basic_dat(ring, key=0)
        for node, (measured, predicted) in compare_depths_to_theory(
            tree, bits=10
        ).items():
            assert measured == predicted, node

    def test_scaled_gap(self):
        # 256-id space with 16 nodes: gap 16; distance 48 = 3 gaps = 0b11.
        from repro.core.analysis import theoretical_basic_depth

        assert theoretical_basic_depth(48, 16, 8) == 2

    def test_rejects_misaligned_distance(self):
        from repro.core.analysis import theoretical_basic_depth

        with pytest.raises(ValueError):
            theoretical_basic_depth(3, 16, 8)  # not a multiple of gap 16

    def test_rejects_non_power_of_two(self):
        from repro.core.analysis import theoretical_basic_depth

        with pytest.raises(ValueError):
            theoretical_basic_depth(0, 100, 10)


class TestInternalCountAndAvgBranching:
    def test_internal_count_half(self):
        from repro.core.analysis import theoretical_basic_internal_count

        assert theoretical_basic_internal_count(16) == 8
        assert theoretical_basic_internal_count(1024) == 512

    def test_avg_branching_formula(self):
        from repro.core.analysis import theoretical_basic_avg_branching

        assert theoretical_basic_avg_branching(16) == pytest.approx(1.875)

    def test_matches_measured(self):
        from repro.core.analysis import (
            theoretical_basic_avg_branching,
            theoretical_basic_internal_count,
        )

        space = IdSpace(12)
        ring = UniformIdAssigner().build_ring(space, 256)
        tree = build_basic_dat(ring, key=0)
        stats = tree.stats()
        assert stats.n_internal == theoretical_basic_internal_count(256)
        assert stats.avg_branching == pytest.approx(
            theoretical_basic_avg_branching(256)
        )


class TestBoundsHelpers:
    def test_max_branching_basic(self):
        assert theoretical_max_branching_basic(8192) == 13

    def test_balanced_constants(self):
        assert theoretical_balanced_max_branching() == 2
        assert theoretical_balanced_height_bound(256) == 8

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            theoretical_max_branching_basic(0)
        with pytest.raises(ValueError):
            theoretical_balanced_height_bound(0)


class TestImbalanceFactor:
    def test_uniform_loads_are_one(self):
        assert imbalance_factor([3, 3, 3]) == 1.0

    def test_skewed(self):
        assert imbalance_factor([10, 0, 0, 0, 0]) == 5.0

    def test_mapping_input(self):
        assert imbalance_factor({1: 4, 2: 0}) == 2.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            imbalance_factor([])

    def test_all_zero_raises(self):
        with pytest.raises(ValueError):
            imbalance_factor([0, 0])


class TestLoadDistribution:
    def test_descending_order(self):
        dist = load_distribution({1: 5, 2: 9, 3: 1})
        assert [load for _n, load in dist] == [9, 5, 1]

    def test_ties_broken_by_node(self):
        dist = load_distribution({5: 2, 3: 2})
        assert dist == [(3, 2), (5, 2)]

"""Unit tests for Fig9Result metrics (independent of the simulation)."""

import pytest

from repro.experiments.fig9_accuracy import Fig9Result


def make(actual, aggregated) -> Fig9Result:
    result = Fig9Result(n_nodes=4, mode="continuous")
    result.times = [float(i) for i in range(len(actual))]
    result.actual = list(actual)
    result.aggregated = list(aggregated)
    return result


class TestErrorMetrics:
    def test_exact_series(self):
        result = make([10.0, 20.0], [10.0, 20.0])
        assert result.max_relative_error() == 0.0
        assert result.mean_relative_error() == 0.0

    def test_known_errors(self):
        result = make([100.0, 200.0], [110.0, 190.0])
        assert result.max_relative_error() == pytest.approx(0.10)
        assert result.mean_relative_error() == pytest.approx(0.075)

    def test_zero_actual_guard(self):
        # A zero ground-truth slot must not divide by zero.
        result = make([0.0, 100.0], [1.0, 100.0])
        assert result.max_relative_error() == pytest.approx(1.0)

    def test_correlation_perfect(self):
        result = make([1.0, 2.0, 3.0], [2.0, 4.0, 6.0])
        assert result.correlation() == pytest.approx(1.0)

    def test_correlation_inverse(self):
        result = make([1.0, 2.0, 3.0], [3.0, 2.0, 1.0])
        assert result.correlation() == pytest.approx(-1.0)

    def test_scatter_points(self):
        result = make([1.0, 2.0], [1.5, 2.5])
        assert result.scatter_points() == [(1.0, 1.5), (2.0, 2.5)]

    def test_errors_array(self):
        result = make([10.0, 20.0], [12.0, 18.0])
        assert list(result.errors()) == [2.0, 2.0]

"""Unit tests for the repro.telemetry subsystem.

Covers the metric primitives (counter/gauge/histogram on the log-spaced
bucket grid), span recording and nesting, hotspot accounting (including
the thread-safety regression MessageStats inherited), the global runtime's
no-op path, both exporters, and the report CLI.
"""

from __future__ import annotations

import csv
import io
import json
import threading

import pytest

from repro import telemetry
from repro.telemetry import (
    NULL_SPAN,
    HotspotAccountant,
    MetricsRegistry,
    SpanRecorder,
    Telemetry,
    TelemetryConfig,
    jsonl_lines,
    log_buckets,
    prometheus_text,
    write_jsonl,
)
from repro.telemetry.hotspot import percentile
from repro.telemetry.report import main as report_main
from repro.telemetry.report import (
    ROLLING_FIELDS,
    render_report,
    rolling_samples,
    write_rolling_csv,
    write_rolling_json,
)


@pytest.fixture(autouse=True)
def _global_telemetry_off():
    """Every test starts and ends with the global runtime uninstalled."""
    telemetry.disable()
    yield
    telemetry.disable()


class FakeClock:
    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t


# --------------------------------------------------------------------- #
# Config
# --------------------------------------------------------------------- #


class TestConfig:
    def test_disabled_by_default(self):
        assert TelemetryConfig().enabled is False

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_spans": 0},
            {"histogram_start": 0.0},
            {"histogram_factor": 1.0},
            {"histogram_count": 0},
            {"percentiles": (0.5, 1.5)},
        ],
    )
    def test_rejects_invalid_knobs(self, kwargs):
        with pytest.raises(ValueError):
            TelemetryConfig(**kwargs)

    def test_default_buckets_are_log_spaced(self):
        config = TelemetryConfig(histogram_start=1.0, histogram_factor=2.0, histogram_count=4)
        assert config.default_buckets() == (1.0, 2.0, 4.0, 8.0)


# --------------------------------------------------------------------- #
# Metrics
# --------------------------------------------------------------------- #


class TestMetrics:
    def test_log_buckets_grid(self):
        assert log_buckets(1, 2, 3) == (1.0, 2.0, 4.0)
        with pytest.raises(ValueError):
            log_buckets(0, 2, 3)

    def test_counter_increments_and_labels(self):
        registry = MetricsRegistry(clock=FakeClock())
        counter = registry.counter("msgs", labels=("kind",))
        counter.inc(kind="lookup")
        counter.inc(2.0, kind="lookup")
        counter.inc(kind="notify")
        assert counter.value(kind="lookup") == 3.0
        assert counter.value(kind="notify") == 1.0

    def test_counter_rejects_negative(self):
        counter = MetricsRegistry(clock=FakeClock()).counter("c")
        with pytest.raises(ValueError):
            counter.inc(-1.0)

    def test_label_set_mismatch_is_an_error(self):
        counter = MetricsRegistry(clock=FakeClock()).counter("c", labels=("kind",))
        with pytest.raises(ValueError):
            counter.inc(scheme="basic")

    def test_registry_kind_and_label_conflicts(self):
        registry = MetricsRegistry(clock=FakeClock())
        registry.counter("x", labels=("a",))
        with pytest.raises(ValueError):
            registry.gauge("x", labels=("a",))
        with pytest.raises(ValueError):
            registry.counter("x", labels=("b",))

    def test_gauge_set_and_inc(self):
        gauge = MetricsRegistry(clock=FakeClock()).gauge("g")
        gauge.set(4.0)
        gauge.inc(-1.5)
        assert gauge.value() == 2.5

    def test_histogram_bucketing_and_inf_tail(self):
        registry = MetricsRegistry(clock=FakeClock(), default_buckets=(1.0, 2.0, 4.0))
        hist = registry.histogram("h")
        for value in (0.5, 1.0, 3.0, 100.0):
            hist.observe(value)
        (sample,) = hist.samples()
        # 0.5 and 1.0 land in le=1, 3.0 in le=4, 100.0 in the +Inf tail.
        assert sample.bucket_counts == (2, 0, 1, 1)
        assert sample.count == 4
        assert hist.sum_of() == pytest.approx(104.5)
        assert hist.count_of() == 4

    def test_samples_carry_clock_timestamps(self):
        clock = FakeClock()
        registry = MetricsRegistry(clock=clock)
        counter = registry.counter("c")
        clock.t = 7.5
        counter.inc()
        (sample,) = counter.samples()
        assert sample.updated_at == 7.5


# --------------------------------------------------------------------- #
# Spans
# --------------------------------------------------------------------- #


class TestSpans:
    def test_context_manager_records_duration(self):
        clock = FakeClock()
        recorder = SpanRecorder(clock=clock)
        with recorder.start("build", key=42) as sp:
            clock.t = 1.5
            sp.set(height=3)
        (span,) = recorder.finished
        assert span.duration == 1.5
        assert span.attrs == {"key": 42, "height": 3}

    def test_nesting_assigns_parents(self):
        recorder = SpanRecorder(clock=FakeClock())
        with recorder.start("outer") as outer:
            with recorder.start("inner"):
                pass
        inner, finished_outer = recorder.finished
        assert inner.name == "inner" and inner.parent_id == outer.span_id
        assert finished_outer.parent_id is None

    def test_exception_recorded_as_error(self):
        recorder = SpanRecorder(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with recorder.start("boom"):
                raise RuntimeError("x")
        (span,) = recorder.finished
        assert span.error == "RuntimeError"

    def test_explicit_finish_is_idempotent(self):
        clock = FakeClock()
        recorder = SpanRecorder(clock=clock)
        span = recorder.start("round")
        clock.t = 1.0
        span.finish(n_states=4)
        clock.t = 2.0
        span.finish()
        assert span.end == 1.0
        assert span.attrs == {"n_states": 4}
        assert len(recorder.finished) == 1

    def test_retention_cap_evicts_oldest(self):
        recorder = SpanRecorder(clock=FakeClock(), max_spans=3)
        for i in range(5):
            recorder.start("s", i=i).finish()
        assert recorder.dropped == 2
        assert [span.attrs["i"] for span in recorder.finished] == [2, 3, 4]

    def test_by_name_and_names(self):
        recorder = SpanRecorder(clock=FakeClock())
        recorder.start("a").finish()
        recorder.start("b").finish()
        recorder.start("a").finish()
        assert len(recorder.by_name("a")) == 2
        assert recorder.names() == ["a", "b"]


# --------------------------------------------------------------------- #
# Hotspot accounting
# --------------------------------------------------------------------- #


class TestHotspots:
    def test_percentile_interpolates(self):
        assert percentile([0, 10], 0.5) == 5.0
        with pytest.raises(ValueError):
            percentile([], 0.5)
        with pytest.raises(ValueError):
            percentile([1], 1.0)

    def test_imbalance_matches_fig8_definition(self):
        acc = HotspotAccountant()
        acc.add_load(1, sent=8)
        acc.add_load(2, sent=1)
        acc.add_load(3, sent=1)
        # max=8, mean=10/3
        assert acc.imbalance() == pytest.approx(8 / (10 / 3))
        assert acc.max_load() == 8

    def test_zero_load_nodes_enter_population(self):
        acc = HotspotAccountant()
        acc.add_load(1, sent=4)
        acc.add_load(2)  # idle node, still counted in the mean
        assert acc.loads() == {1: 4, 2: 0}
        assert acc.imbalance() == pytest.approx(2.0)

    def test_add_load_rejects_negative(self):
        with pytest.raises(ValueError):
            HotspotAccountant().add_load(1, sent=-1)

    def test_sample_builds_series(self):
        acc = HotspotAccountant(percentiles=(0.5,))
        acc.add_load(1, sent=2)
        acc.add_load(2, sent=6)
        point = acc.sample(now=3.0)
        assert acc.series == [point]
        assert point.at == 3.0
        assert point.maximum == 6 and point.mean == 4.0
        assert point.imbalance == pytest.approx(1.5)
        assert point.percentile(0.5) == 4.0
        with pytest.raises(KeyError):
            point.percentile(0.99)

    def test_empty_accountant_statistics(self):
        acc = HotspotAccountant()
        assert acc.imbalance() == 0.0
        assert acc.max_load() == 0
        assert acc.mean_load() == 0.0
        with pytest.raises(ValueError):
            acc.percentile(0.5)

    def test_reset_clears_counters_and_series(self):
        acc = HotspotAccountant()
        acc.record_send(1, 10, kind="x")
        acc.sample(now=0.0)
        acc.reset()
        assert acc.nodes() == set()
        assert acc.series == []
        assert acc.by_kind() == {}

    def test_concurrent_writers_and_readers(self):
        """Regression: readers must not observe torn counter state.

        MessageStats historically locked writes only; unlocked reads from
        the UDP receive thread's counters could straddle a sent/received
        update. Hammer reads and writes concurrently and then check exact
        totals.
        """
        acc = HotspotAccountant()
        errors: list[Exception] = []
        stop = threading.Event()

        def writer():
            for _ in range(2000):
                acc.record_send(7, 1, kind="x")
                acc.record_receive(7, 1)

        def reader():
            while not stop.is_set():
                try:
                    load = acc.load(7)
                    assert load.sent >= 0 and load.received >= 0
                    acc.imbalance()
                    acc.loads()
                except Exception as exc:  # noqa: BLE001 - captured for the main thread
                    errors.append(exc)
                    return

        writers = [threading.Thread(target=writer) for _ in range(4)]
        readers = [threading.Thread(target=reader) for _ in range(2)]
        for t in readers + writers:
            t.start()
        for t in writers:
            t.join()
        stop.set()
        for t in readers:
            t.join()
        assert errors == []
        assert acc.load(7).sent == 8000
        assert acc.load(7).received == 8000


# --------------------------------------------------------------------- #
# Runtime: global install, helpers, no-op path
# --------------------------------------------------------------------- #


class TestRuntime:
    def test_disabled_helpers_are_noops(self):
        assert telemetry.active() is None
        assert telemetry.span("anything", key=1) is NULL_SPAN
        telemetry.count("x")  # must not raise
        telemetry.observe("y", 3.0)
        telemetry.gauge_set("z", 1.0)
        assert not telemetry.is_enabled()

    def test_configure_installs_and_disable_uninstalls(self):
        tel = telemetry.configure(enabled=True)
        assert tel is telemetry.active()
        telemetry.count("hits", kind="a")
        assert tel.counter("hits", labels=("kind",)).value(kind="a") == 1.0
        telemetry.disable()
        assert telemetry.active() is None

    def test_configure_disabled_config_uninstalls(self):
        telemetry.configure(enabled=True)
        assert telemetry.configure(TelemetryConfig()) is None
        assert telemetry.active() is None

    def test_enabled_context_restores_previous(self):
        with telemetry.enabled() as tel:
            assert telemetry.active() is tel
        assert telemetry.active() is None

    def test_names_are_namespaced(self):
        with telemetry.enabled() as tel:
            telemetry.count("dat_builds_total", scheme="basic")
            (family,) = tel.metrics.families()
            assert family.name == "repro_dat_builds_total"

    def test_span_helper_records_on_active_runtime(self):
        with telemetry.enabled() as tel:
            with telemetry.span("dat.build", key=5) as sp:
                assert sp is not NULL_SPAN
            (span,) = tel.spans.by_name("dat.build")
            assert span.attrs["key"] == 5

    def test_bind_clock_stamps_future_updates(self):
        clock = FakeClock()
        with telemetry.enabled() as tel:
            telemetry.bind_clock(clock)
            clock.t = 9.0
            telemetry.count("ticks")
            (sample,) = tel.counter("ticks").samples()
            assert sample.updated_at == 9.0

    def test_hotspots_get_or_create_and_register(self):
        with telemetry.enabled() as tel:
            acc = tel.hotspots("fig8.basic")
            assert tel.hotspots("fig8.basic") is acc
            external = HotspotAccountant()
            tel.register_hotspots("transport", external)
            assert tel.hotspots("transport") is external
            assert tel.hotspot_names() == ["fig8.basic", "transport"]

    def test_reset_clears_all_stores(self):
        with telemetry.enabled() as tel:
            telemetry.count("c")
            telemetry.span("s").finish()
            tel.hotspots("h").record_send(1)
            tel.reset()
            assert list(tel.metrics.samples()) == []
            assert tel.spans.finished == []
            assert tel.hotspots("h").nodes() == set()


# --------------------------------------------------------------------- #
# Exporters
# --------------------------------------------------------------------- #


def _populated_telemetry() -> Telemetry:
    tel = Telemetry(TelemetryConfig(enabled=True))
    tel.counter("events_total", labels=("kind",)).inc(kind="build")
    tel.histogram("hops", buckets=(1.0, 2.0, 4.0)).observe(3.0)
    tel.span("dat.build", key=1).finish()
    acc = tel.hotspots("transport")
    acc.add_load(1, sent=3, received=1)
    acc.add_load(2, sent=1)
    acc.sample(tel.now())
    return tel


class TestExport:
    def test_jsonl_event_types_and_roundtrip(self):
        tel = _populated_telemetry()
        events = [json.loads(line) for line in jsonl_lines(tel)]
        by_type = {e["type"] for e in events}
        assert by_type == {
            "config",
            "metric",
            "span",
            "span_drops",
            "hotspot_node",
            "hotspot_sample",
        }
        node1 = next(
            e for e in events if e["type"] == "hotspot_node" and e["node"] == 1
        )
        assert node1["total"] == 4

    def test_jsonl_is_deterministic(self):
        a = list(jsonl_lines(_populated_telemetry()))
        b = list(jsonl_lines(_populated_telemetry()))
        assert a == b

    def test_write_jsonl_counts_lines(self):
        out = io.StringIO()
        n = write_jsonl(_populated_telemetry(), out)
        # config + 2 metrics + span + span_drops + 2 nodes + sample
        assert n == len(out.getvalue().splitlines()) == 8

    def test_prometheus_histogram_is_cumulative(self):
        text = prometheus_text(_populated_telemetry())
        assert '# TYPE repro_hops histogram' in text
        assert 'repro_hops_bucket{le="2"} 0' in text
        assert 'repro_hops_bucket{le="4"} 1' in text
        assert 'repro_hops_bucket{le="+Inf"} 1' in text
        assert "repro_hops_count 1" in text

    def test_prometheus_hotspot_summaries(self):
        text = prometheus_text(_populated_telemetry())
        assert (
            'repro_hotspot_node_messages{accountant="transport",'
            'direction="sent",node="1"} 3'
        ) in text
        # max=4, mean=2.5 -> imbalance 1.6
        assert 'repro_hotspot_imbalance{accountant="transport"} 1.6' in text

    def test_prometheus_escapes_label_values(self):
        tel = Telemetry(TelemetryConfig(enabled=True))
        tel.gauge("g", labels=("tag",)).set(1.0, tag='a"b\\c')
        text = prometheus_text(tel)
        assert 'tag="a\\"b\\\\c"' in text


# --------------------------------------------------------------------- #
# Report CLI
# --------------------------------------------------------------------- #


class TestReport:
    def _export(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with open(path, "w", encoding="utf-8") as handle:
            write_jsonl(_populated_telemetry(), handle)
        return path

    def test_render_report_sections(self, tmp_path):
        path = self._export(tmp_path)
        with open(path, encoding="utf-8") as handle:
            from repro.telemetry.report import _load_events

            events = _load_events(handle)
        text = render_report(events)
        assert "== metrics ==" in text
        assert "repro_events_total" in text
        assert "dat.build" in text
        assert "[transport]" in text and "imbalance=1.600" in text

    def test_cli_happy_path(self, tmp_path, capsys):
        path = self._export(tmp_path)
        assert report_main([str(path), "--section", "hotspots"]) == 0
        out = capsys.readouterr().out
        assert "== hotspots ==" in out
        assert "== metrics ==" not in out

    def test_cli_missing_file_exits_2(self, tmp_path, capsys):
        assert report_main([str(tmp_path / "nope.jsonl")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_cli_malformed_line_exits_2(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type":"metric"}\nnot json\n')
        assert report_main([str(path)]) == 2
        assert "line 2" in capsys.readouterr().err


class TestRollingArtifacts:
    """The plot-ready CSV/JSON emitters for the rolling-imbalance series."""

    def _events(self):
        return [json.loads(line) for line in jsonl_lines(_populated_telemetry())]

    def test_rolling_samples_shape(self):
        records = rolling_samples(self._events())
        assert len(records) == 1
        record = records[0]
        assert tuple(record) == ROLLING_FIELDS
        assert record["accountant"] == "transport"
        # loads: node1=4, node2=1 -> total 5, mean 2.5, max 4, imbalance 1.6
        assert record["n_nodes"] == 2
        assert record["total"] == 5
        assert record["maximum"] == 4
        assert record["imbalance"] == 1.6

    def test_rolling_samples_accountant_filter(self):
        events = self._events()
        assert rolling_samples(events, accountant="transp")
        assert rolling_samples(events, accountant="no-such") == []

    def test_csv_roundtrip(self, tmp_path):
        path = tmp_path / "rolling.csv"
        assert write_rolling_csv(self._events(), str(path)) == 1
        with open(path, encoding="utf-8", newline="") as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 1
        assert rows[0]["accountant"] == "transport"
        assert float(rows[0]["imbalance"]) == 1.6
        assert int(rows[0]["maximum"]) == 4

    def test_csv_empty_series_writes_header_only(self, tmp_path):
        path = tmp_path / "empty.csv"
        assert write_rolling_csv([], str(path)) == 0
        header = path.read_text(encoding="utf-8").strip()
        assert header == ",".join(ROLLING_FIELDS)

    def test_json_roundtrip(self, tmp_path):
        path = tmp_path / "rolling.json"
        assert write_rolling_json(self._events(), str(path)) == 1
        document = json.loads(path.read_text(encoding="utf-8"))
        assert document["fields"] == list(ROLLING_FIELDS)
        assert document["samples"][0]["imbalance"] == 1.6

    def test_cli_flags_write_artifacts(self, tmp_path, capsys):
        export = tmp_path / "run.jsonl"
        with open(export, "w", encoding="utf-8") as handle:
            write_jsonl(_populated_telemetry(), handle)
        csv_path = tmp_path / "out.csv"
        json_path = tmp_path / "out.json"
        code = report_main(
            [
                str(export),
                "--section", "samples",
                "--rolling-csv", str(csv_path),
                "--rolling-json", str(json_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert f"wrote 1 rolling sample(s) to {csv_path}" in out
        assert csv_path.exists() and json_path.exists()

    def test_cli_unwritable_artifact_exits_2(self, tmp_path, capsys):
        export = tmp_path / "run.jsonl"
        with open(export, "w", encoding="utf-8") as handle:
            write_jsonl(_populated_telemetry(), handle)
        bad = tmp_path / "no-such-dir" / "out.csv"
        assert report_main([str(export), "--rolling-csv", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err

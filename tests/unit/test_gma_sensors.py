"""Unit tests for the sensor layer."""

import numpy as np
import pytest

from repro.gma.sensors import (
    CallbackSensor,
    ConstantSensor,
    RandomWalkSensor,
    TraceSensor,
)
from repro.gma.traces import CpuTrace


class TestConstantSensor:
    def test_fixed_reading(self):
        sensor = ConstantSensor("host", "cpu-speed", 2.8)
        assert sensor.read(0) == 2.8
        assert sensor.read(1000) == 2.8

    def test_event_wrapping(self):
        sensor = ConstantSensor("host", "cpu-speed", 2.8)
        event = sensor.event(5.0)
        assert event.timestamp == 5.0
        assert event.resource_id == "host"
        assert event.attribute == "cpu-speed"
        assert event.value == 2.8
        assert event.key() == ("host", "cpu-speed")


class TestCallbackSensor:
    def test_delegates(self):
        sensor = CallbackSensor("host", "load", lambda t: t * 2)
        assert sensor.read(3.0) == 6.0


class TestRandomWalkSensor:
    def test_bounded(self):
        sensor = RandomWalkSensor("host", "cpu-usage", low=0, high=100, seed=1)
        for t in range(200):
            assert 0 <= sensor.read(float(t)) <= 100

    def test_same_time_is_stable(self):
        sensor = RandomWalkSensor("host", "cpu-usage", seed=2)
        first = sensor.read(5.0)
        assert sensor.read(5.0) == first

    def test_advances_with_time(self):
        sensor = RandomWalkSensor("host", "cpu-usage", seed=3, step_scale=10.0)
        readings = {sensor.read(float(t)) for t in range(50)}
        assert len(readings) > 10

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            RandomWalkSensor("host", "x", low=10, high=10)


class TestTraceSensor:
    def test_replays_trace(self):
        trace = CpuTrace(values=np.array([1.0, 2.0, 3.0]), period=10.0)
        sensor = TraceSensor("host", "cpu-usage", trace)
        assert sensor.read(0.0) == 1.0
        assert sensor.read(15.0) == 2.0
        assert sensor.read_slot(2) == 3.0

"""Unit tests for the extreme-dynamics experiment (small, fast configs)."""

import pytest

from repro.experiments.dynamics import DynamicsPoint, run_dynamics


class TestDynamicsPoint:
    def test_row_shape(self):
        point = DynamicsPoint(
            churn_rate=0.5,
            n_samples=10,
            mean_relative_error=0.1234,
            max_relative_error=0.5,
            availability=0.9,
        )
        row = point.as_row()
        assert row["churn_per_s"] == 0.5
        assert row["mean_rel_err"] == 0.1234


class TestRunDynamics:
    def test_stable_overlay_is_exact(self):
        result = run_dynamics(
            churn_rates=[0.0], n_nodes=8, duration=10.0, seed=3
        )
        point = result.points[0]
        assert point.mean_relative_error == 0.0
        assert point.availability == 1.0
        assert point.n_samples > 0

    def test_churn_degrades_but_keeps_sampling(self):
        result = run_dynamics(
            churn_rates=[0.0, 0.5], n_nodes=8, duration=15.0, seed=4
        )
        stable, churny = result.points
        assert churny.mean_relative_error >= stable.mean_relative_error
        assert churny.n_samples >= 20  # the root kept answering

    def test_deterministic_under_seed(self):
        a = run_dynamics(churn_rates=[0.3], n_nodes=8, duration=10.0, seed=7)
        b = run_dynamics(churn_rates=[0.3], n_nodes=8, duration=10.0, seed=7)
        assert a.points[0].as_row() == b.points[0].as_row()

"""Unit tests for the monitoring scheduler loop."""

import pytest

from repro.gma.monitor import GridMonitor, MonitorConfig
from repro.gma.scheduler import MonitoringScheduler, WatchSpec
from repro.gma.traces import TraceGenerator
from repro.workloads.grids import default_schemas, make_producers


@pytest.fixture
def monitor() -> GridMonitor:
    config = MonitorConfig(n_nodes=16, bits=20, seed=21)
    monitor = GridMonitor(config, default_schemas())
    traces = TraceGenerator(seed=21).generate_fleet(16, identical=False)
    for producer in make_producers(monitor.ring, traces=traces, seed=21).values():
        monitor.attach_producer(producer)
    monitor.register_all()
    return monitor


class TestWatchSpec:
    def test_rejects_bad_cadence(self):
        with pytest.raises(ValueError):
            WatchSpec(attribute="x", every_steps=0)


class TestSchedulerLoop:
    def test_history_accumulates(self, monitor):
        scheduler = MonitoringScheduler(monitor, step=10.0)
        scheduler.watch("cpu-usage", "sum")
        scheduler.run_steps(5)
        history = scheduler.history("cpu-usage", "sum")
        assert len(history) == 5
        assert [t for t, _v in history] == [10.0, 20.0, 30.0, 40.0, 50.0]

    def test_values_match_ground_truth(self, monitor):
        scheduler = MonitoringScheduler(monitor, step=10.0)
        scheduler.watch("cpu-usage", "sum")
        scheduler.run_steps(3)
        for t, value in scheduler.history("cpu-usage", "sum"):
            assert value == pytest.approx(
                monitor.actual_aggregate("cpu-usage", "sum", t=t)
            )

    def test_cadence_respected(self, monitor):
        scheduler = MonitoringScheduler(monitor, step=10.0)
        scheduler.watch("cpu-usage", "sum", every_steps=1)
        scheduler.watch("cpu-usage", "max", every_steps=3)
        scheduler.run_steps(6)
        assert len(scheduler.history("cpu-usage", "sum")) == 6
        assert len(scheduler.history("cpu-usage", "max")) == 2

    def test_latest(self, monitor):
        scheduler = MonitoringScheduler(monitor, step=10.0)
        scheduler.watch("cpu-usage", "avg")
        assert scheduler.latest("cpu-usage", "avg") is None
        scheduler.run_steps(1)
        assert scheduler.latest("cpu-usage", "avg") is not None

    def test_refresh_keeps_index_consistent(self, monitor):
        scheduler = MonitoringScheduler(monitor, step=10.0, refresh_every_steps=2)
        scheduler.watch("cpu-usage", "count")
        scheduler.run_steps(4)
        assert scheduler.refresh_hops > 0
        # Registrations moved with the changing values but never duplicated.
        assert monitor.index.total_records() == 16 * 4

    def test_refresh_disabled(self, monitor):
        scheduler = MonitoringScheduler(monitor, step=10.0, refresh_every_steps=0)
        scheduler.watch("cpu-usage", "count")
        scheduler.run_steps(3)
        assert scheduler.refresh_hops == 0

    def test_unwatched_history_empty(self, monitor):
        scheduler = MonitoringScheduler(monitor, step=10.0)
        assert scheduler.history("disk-size") == []
        assert scheduler.latest("disk-size") is None

    def test_validation(self, monitor):
        with pytest.raises(ValueError):
            MonitoringScheduler(monitor, step=0)
        with pytest.raises(ValueError):
            MonitoringScheduler(monitor, refresh_every_steps=-1)
        scheduler = MonitoringScheduler(monitor)
        with pytest.raises(ValueError):
            scheduler.run_steps(-1)

"""Unit tests for the DatOverlay facade."""

import pytest

from repro.chord.idspace import IdSpace
from repro.chord.node import ChordConfig
from repro.core.overlay import DatOverlay
from repro.errors import RingError
from repro.sim.latency import ConstantLatency
from repro.sim.simnet import SimTransport


def make_overlay(n: int = 8, bits: int = 12) -> DatOverlay:
    space = IdSpace(bits)
    transport = SimTransport(latency=ConstantLatency(0.005))
    config = ChordConfig(stabilize_interval=0.25, fix_fingers_interval=0.05)
    overlay = DatOverlay(space, transport, config)
    for i in range(n):
        overlay.add_node((i * space.size) // n + 1)
        overlay.run(1.0)
    overlay.network.settle_until_converged()
    for node in overlay.network.nodes.values():
        node.fix_all_fingers()
    overlay.run(3.0)
    return overlay


class TestMembership:
    def test_add_wires_service(self):
        overlay = make_overlay(4)
        assert len(overlay) == 4
        assert set(overlay.services) == set(overlay.network.nodes)

    def test_remove_stops_service(self):
        overlay = make_overlay(4)
        victim = next(iter(overlay.network.nodes))
        overlay.remove_node(victim)
        assert victim not in overlay.services
        assert len(overlay) == 3

    def test_remove_node_fully_detaches_service(self):
        # Regression (DAT011): remove_node only stopped continuous pushes;
        # the departed node's host kept the service's upcall registrations
        # and batcher.
        overlay = make_overlay(4)
        victim = next(iter(overlay.network.nodes))
        host = overlay.network.nodes[victim]
        assert "agg_push" in host.upcalls
        overlay.remove_node(victim)
        for kind in ("agg_push", "agg_collect", "net_batch"):
            assert kind not in host.upcalls

    def test_close_tears_down_every_service(self):
        # Regression (DAT011): close() finalized telemetry but left every
        # DatNodeService registered on its host.
        overlay = make_overlay(4)
        hosts = dict(overlay.network.nodes)
        overlay.close()
        assert not overlay.services
        for host in hosts.values():
            for kind in ("agg_push", "agg_collect", "net_batch"):
                assert kind not in host.upcalls
        overlay.close()  # idempotent

    def test_enroll_requires_membership(self):
        overlay = make_overlay(4)
        with pytest.raises(RingError):
            overlay.enroll(999999, 0, "count", 0.5)


class TestAggregation:
    def test_count_converges_to_membership(self):
        overlay = make_overlay(8)
        key = 17
        overlay.start_continuous_everywhere(key, "count", 0.5)
        overlay.run(8.0)
        assert overlay.root_estimate(key) == 8

    def test_custom_value_provider(self):
        space = IdSpace(12)
        transport = SimTransport(latency=ConstantLatency(0.005))
        config = ChordConfig(stabilize_interval=0.25, fix_fingers_interval=0.05)
        overlay = DatOverlay(
            space, transport, config, value_provider=lambda ident: 2.0
        )
        for i in range(4):
            overlay.add_node((i * space.size) // 4 + 1)
            overlay.run(1.0)
        overlay.network.settle_until_converged()
        for node in overlay.network.nodes.values():
            node.fix_all_fingers()
        overlay.run(3.0)
        overlay.start_continuous_everywhere(5, "sum", 0.5)
        overlay.run(6.0)
        assert overlay.root_estimate(5) == pytest.approx(8.0)

    def test_estimate_none_before_start(self):
        overlay = make_overlay(4)
        assert overlay.root_estimate(123) is None

    def test_join_mid_aggregation_is_counted(self):
        overlay = make_overlay(8)
        key = 17
        overlay.start_continuous_everywhere(key, "count", 0.5)
        overlay.run(8.0)
        newcomer = 999
        overlay.add_node(newcomer)
        overlay.enroll(newcomer, key, "count", 0.5)
        overlay.run(15.0)
        assert overlay.root_estimate(key) == 9

    def test_crash_mid_aggregation_is_uncounted(self):
        overlay = make_overlay(8)
        key = 17
        overlay.start_continuous_everywhere(key, "count", 0.5)
        overlay.run(8.0)
        root = overlay.current_root(key)
        victim = next(i for i in overlay.network.nodes if i != root)
        overlay.remove_node(victim, graceful=False)
        overlay.run(25.0)
        assert overlay.root_estimate(key) == 7


class TestRootRelocation:
    def test_root_follows_key_ownership(self):
        overlay = make_overlay(8)
        key = 17
        old_root = overlay.current_root(key)
        overlay.start_continuous_everywhere(key, "count", 0.5)
        overlay.run(8.0)
        # Join a node between the key and the old root: it takes over.
        new_root = (key + 1) % overlay.space.size
        if new_root in overlay.network.nodes:
            new_root += 1
        overlay.add_node(new_root)
        overlay.enroll(new_root, key, "count", 0.5)
        overlay.run(25.0)
        assert overlay.current_root(key) == new_root != old_root
        assert overlay.root_estimate(key) == 9


class TestRunGuards:
    def test_run_requires_sim_transport(self):
        from repro.sim.inproc import InprocTransport

        overlay = DatOverlay(IdSpace(8), InprocTransport())
        with pytest.raises(RingError):
            overlay.run(1.0)

"""Unit tests for argument validation helpers."""

import pytest

from repro.util.validation import (
    check_non_negative,
    check_positive,
    check_probability,
    check_range,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        check_positive("x", 0.1)
        check_positive("x", 5)

    def test_rejects_zero_and_negative(self):
        with pytest.raises(ValueError, match="x"):
            check_positive("x", 0)
        with pytest.raises(ValueError):
            check_positive("x", -1)


class TestCheckNonNegative:
    def test_accepts_zero(self):
        check_non_negative("x", 0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_non_negative("x", -0.001)


class TestCheckProbability:
    def test_accepts_bounds(self):
        check_probability("p", 0.0)
        check_probability("p", 1.0)
        check_probability("p", 0.5)

    def test_rejects_outside(self):
        with pytest.raises(ValueError):
            check_probability("p", -0.1)
        with pytest.raises(ValueError):
            check_probability("p", 1.1)


class TestCheckRange:
    def test_accepts_inside(self):
        check_range("v", 5, 0, 10)

    def test_rejects_outside(self):
        with pytest.raises(ValueError, match="v"):
            check_range("v", 11, 0, 10)

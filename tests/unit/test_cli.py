"""Unit tests for the experiments CLI."""

import pytest

from repro.experiments.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_accepts_known_experiments(self):
        args = build_parser().parse_args(["fig7", "--quick"])
        assert args.experiments == ["fig7"]
        assert args.quick

    def test_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig42"])

    def test_all_keyword(self):
        args = build_parser().parse_args(["all"])
        assert args.experiments == ["all"]

    def test_defaults(self):
        args = build_parser().parse_args(["fig9"])
        assert args.nodes == 512 and args.seed == 2007 and not args.quick


class TestExecution:
    def test_each_experiment_produces_a_table(self, capsys):
        # Quick mode keeps this fast; every registered experiment must run.
        for name in sorted(EXPERIMENTS):
            assert main([name, "--quick"]) == 0
            out = capsys.readouterr().out
            assert "---" in out or "—" in out, name

    def test_all_runs_everything(self, capsys):
        assert main(["all", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Fig 7" in out
        assert "Fig 8(a)" in out
        assert "Fig 9" in out
        assert "MAAN" in out
        assert "Churn" in out

    def test_seed_changes_output_deterministically(self, capsys):
        main(["fig8a", "--quick", "--seed", "1"])
        first = capsys.readouterr().out
        main(["fig8a", "--quick", "--seed", "1"])
        second = capsys.readouterr().out
        assert first == second

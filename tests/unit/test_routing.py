"""Unit tests for greedy finger routing."""

import pytest

from repro.chord.idgen import RandomIdAssigner
from repro.chord.idspace import IdSpace
from repro.chord.ring import StaticRing
from repro.chord.routing import finger_route, route_lengths
from repro.util.bits import ceil_log2


class TestFingerRoute:
    def test_paper_route_n1_to_n0(self, full_ring4):
        # Paper Sec. 3.2: the finger route from N1 to N0 is <1, 9, 13, 15, 0>.
        result = finger_route(full_ring4, 1, 0)
        assert result.path == (1, 9, 13, 15, 0)
        assert result.hops == 4

    def test_source_is_destination(self, full_ring4):
        result = finger_route(full_ring4, 0, 0)
        assert result.path == (0,)
        assert result.hops == 0

    def test_terminates_at_successor_of_key(self, full_ring4):
        ring = StaticRing(full_ring4.space, [2, 8, 14])
        result = finger_route(ring, 2, 5)
        assert result.destination == 8

    def test_route_properties(self):
        assert finger_route.__doc__  # public API is documented

    def test_loop_free(self, full_ring4):
        for source in full_ring4:
            path = finger_route(full_ring4, source, 0).path
            assert len(set(path)) == len(path)

    def test_each_hop_halves_distance(self, full_ring4):
        # Fingers are exponentially spaced: each hop at least halves the
        # remaining clockwise distance to the key (paper Sec. 3.1).
        space = full_ring4.space
        key = 0
        for source in full_ring4:
            path = finger_route(full_ring4, source, key).path
            for current, nxt in zip(path, path[1:]):
                remaining = space.cw(current, key) or space.size
                after = space.cw(nxt, key)
                assert after <= remaining / 2 or nxt == 0

    def test_shared_tables_give_identical_routes(self, full_ring4):
        tables = full_ring4.all_finger_tables()
        for source in (1, 6, 11):
            a = finger_route(full_ring4, source, 0)
            b = finger_route(full_ring4, source, 0, tables=tables)
            assert a.path == b.path

    def test_next_hop_consistency(self, full_ring4):
        # Paper Sec. 3.2 property (2): a node's next hop toward the root is
        # the same regardless of which finger route it appears in.
        next_hop: dict[int, int] = {}
        for source in full_ring4:
            path = finger_route(full_ring4, source, 0).path
            for node, nxt in zip(path, path[1:]):
                assert next_hop.setdefault(node, nxt) == nxt


class TestRouteLengths:
    def test_log_bound_random_ring(self):
        space = IdSpace(32)
        ring = RandomIdAssigner().build_ring(space, 256, rng=11)
        lengths = route_lengths(ring, key=12345)
        # O(log n): with high probability <= 2*log2(n) hops.
        assert max(lengths.values()) <= 2 * ceil_log2(256)

    def test_full_ring_max_length_is_bits(self, full_ring4):
        lengths = route_lengths(full_ring4, key=0)
        assert max(lengths.values()) == full_ring4.space.bits

    def test_destination_has_zero_hops(self, full_ring4):
        lengths = route_lengths(full_ring4, key=0)
        assert lengths[0] == 0


class TestRouteResult:
    def test_accessors(self, full_ring4):
        result = finger_route(full_ring4, 3, 0)
        assert result.source == 3
        assert result.destination == 0
        assert result.hops == len(result.path) - 1

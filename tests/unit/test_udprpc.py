"""Unit tests for the real-socket UDP RPC transport.

These exchange datagrams over 127.0.0.1 and use short real-time waits; they
are kept small and deterministic (single transport, few messages).
"""

import time

import pytest

from repro.errors import TransportError
from repro.sim.messages import Message
from repro.sim.udprpc import UdpRpcTransport


def wait_until(predicate, timeout=3.0, interval=0.01) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


@pytest.fixture
def transport():
    with UdpRpcTransport() as t:
        yield t


class TestDelivery:
    def test_send_between_local_nodes(self, transport):
        received: list[Message] = []
        transport.register(1, lambda m: None)
        transport.register(2, lambda m: received.append(m) or None)
        transport.send(Message(kind="hi", source=1, destination=2, payload={"v": 7}))
        assert wait_until(lambda: len(received) == 1)
        assert received[0].payload == {"v": 7}

    def test_unknown_destination_dropped(self, transport):
        transport.register(1, lambda m: None)
        transport.send(Message(kind="hi", source=1, destination=42))
        time.sleep(0.05)  # nothing to assert beyond "no crash"

    def test_rpc_roundtrip(self, transport):
        transport.register(1, lambda m: None)
        transport.register(2, lambda m: m.response(double=m.payload["x"] * 2))
        replies: list[int] = []
        transport.call(
            Message(kind="calc", source=1, destination=2, payload={"x": 21}),
            lambda reply: replies.append(reply.payload["double"]),
            timeout=3.0,
        )
        assert wait_until(lambda: replies == [42])

    def test_rpc_timeout(self, transport):
        transport.register(1, lambda m: None)
        timeouts: list[Message] = []
        transport.call(
            Message(kind="calc", source=1, destination=99),
            lambda reply: pytest.fail("no reply expected"),
            on_timeout=timeouts.append,
            timeout=0.2,
        )
        assert wait_until(lambda: len(timeouts) == 1)

    def test_handler_exception_does_not_kill_loop(self, transport):
        received: list[Message] = []

        def bad_handler(message: Message):
            raise RuntimeError("handler bug")

        transport.register(1, lambda m: None)
        transport.register(2, bad_handler)
        transport.register(3, lambda m: received.append(m) or None)
        transport.send(Message(kind="x", source=1, destination=2))
        transport.send(Message(kind="x", source=1, destination=3))
        assert wait_until(lambda: len(received) == 1)


class TestTimeoutRetry:
    """The continuation-passing timeout/retry paths callers build on."""

    def test_late_reply_after_timeout_is_dropped(self, transport):
        """A response matched after the deadline must not fire on_reply."""
        replies: list[Message] = []
        timeouts: list[Message] = []

        def slow_handler(m: Message):
            # Reply well after the caller's deadline via a timer.
            transport.schedule(0.4, lambda: transport.send(m.response(ok=1)))
            return None

        transport.register(1, lambda m: None)
        transport.register(2, slow_handler)
        transport.call(
            Message(kind="q", source=1, destination=2),
            replies.append,
            on_timeout=timeouts.append,
            timeout=0.1,
        )
        assert wait_until(lambda: len(timeouts) == 1)
        time.sleep(0.5)  # let the late reply arrive
        assert replies == []
        assert transport.pending_calls() == 0

    def test_timeout_receives_original_message(self, transport):
        transport.register(1, lambda m: None)
        timeouts: list[Message] = []
        request = Message(kind="q", source=1, destination=99, payload={"x": 1})
        transport.call(
            request, lambda r: pytest.fail("unreachable"), timeouts.append, timeout=0.1
        )
        assert wait_until(lambda: timeouts == [request])

    def test_retry_after_timeout_succeeds(self, transport):
        """The caller-side retry idiom: re-issue the call from on_timeout."""
        transport.register(1, lambda m: None)
        replies: list[int] = []
        attempts: list[int] = []

        def attempt(n: int) -> None:
            attempts.append(n)
            if n == 2:  # destination comes up between attempts
                transport.register(2, lambda m: m.response(ok=n))
            transport.call(
                Message(kind="q", source=1, destination=2),
                lambda r: replies.append(r.payload["ok"]),
                on_timeout=lambda _m: attempt(n + 1),
                timeout=0.15,
            )

        attempt(1)
        assert wait_until(lambda: replies == [2])
        assert attempts == [1, 2]
        assert transport.pending_calls() == 0

    def test_timeout_without_callback_just_expires(self, transport):
        transport.register(1, lambda m: None)
        transport.call(
            Message(kind="q", source=1, destination=99),
            lambda r: pytest.fail("unreachable"),
            timeout=0.1,
        )
        assert wait_until(lambda: transport.pending_calls() == 0)

    def test_reply_cancels_timeout(self, transport):
        transport.register(1, lambda m: None)
        transport.register(2, lambda m: m.response(ok=1))
        replies: list[Message] = []
        timeouts: list[Message] = []
        transport.call(
            Message(kind="q", source=1, destination=2),
            replies.append,
            on_timeout=timeouts.append,
            timeout=0.3,
        )
        assert wait_until(lambda: len(replies) == 1)
        time.sleep(0.4)  # past the deadline: the cancelled timer must not fire
        assert timeouts == []

    def test_default_timeout_used_when_unspecified(self, transport):
        transport.default_timeout = 0.1
        transport.register(1, lambda m: None)
        timeouts: list[Message] = []
        transport.call(
            Message(kind="q", source=1, destination=99),
            lambda r: pytest.fail("unreachable"),
            on_timeout=timeouts.append,
        )
        assert wait_until(lambda: len(timeouts) == 1)


class TestNetLayerOverUdp:
    """RpcClient retransmission over real loopback sockets."""

    def test_loopback_retry_recovers_dropped_requests(self, transport):
        from repro.net import RetryPolicy, RpcClient

        calls: list[int] = []

        def drops_first_two(m: Message):
            calls.append(m.msg_id)
            if len(calls) <= 2:
                return None  # swallow the request: the datagram "was lost"
            return m.response(ok=len(calls))

        transport.register(1, lambda m: None)
        transport.register(2, drops_first_two)
        client = RpcClient(transport, 1)
        replies: list[Message] = []
        client.call(
            client.request("q", 2),
            replies.append,
            on_timeout=lambda m: pytest.fail("retries should recover"),
            policy=RetryPolicy(timeout=0.15, max_attempts=5),
        )
        assert wait_until(lambda: len(replies) == 1)
        assert replies[0].payload["ok"] == 3
        # Every attempt carried the same msg_id (UDP retransmit semantics).
        assert len(set(calls)) == 1
        assert wait_until(lambda: transport.pending_calls() == 0)

    def test_loopback_bounded_give_up(self, transport):
        from repro.net import RetryPolicy, RpcClient

        transport.register(1, lambda m: None)
        client = RpcClient(transport, 1)
        failures: list[Message] = []
        request = client.request("q", 99)
        client.call(
            request,
            lambda r: pytest.fail("unreachable destination"),
            on_timeout=failures.append,
            policy=RetryPolicy(timeout=0.1, max_attempts=3),
        )
        assert wait_until(lambda: failures == [request])
        assert transport.pending_calls() == 0


class TestRouting:
    def test_address_of_local(self, transport):
        transport.register(5, lambda m: None)
        host, port = transport.address_of(5)
        assert host == "127.0.0.1" and port > 0

    def test_address_of_unknown_raises(self, transport):
        with pytest.raises(TransportError):
            transport.address_of(77)

    def test_cross_transport_route(self):
        # Two transports = two independent "machines" on localhost.
        with UdpRpcTransport() as a, UdpRpcTransport() as b:
            received: list[Message] = []
            a.register(1, lambda m: None)
            b.register(2, lambda m: received.append(m) or None)
            host, port = b.address_of(2)
            a.add_route(2, host, port)
            a.send(Message(kind="x", source=1, destination=2))
            assert wait_until(lambda: len(received) == 1)

    def test_unregister_closes_socket(self, transport):
        transport.register(9, lambda m: None)
        transport.unregister(9)
        with pytest.raises(TransportError):
            transport.address_of(9)


class TestLifecycle:
    def test_timers_are_insertion_ordered(self):
        # Regression (DAT012): timers were kept in a set, making the
        # cancel-on-close iteration order hash-dependent; the dict
        # replacement preserves scheduling order.
        with UdpRpcTransport() as transport:
            cancels = [
                transport.schedule(30.0 + i, lambda: None) for i in range(8)
            ]
            with transport._lock:
                delays = [t.interval for t in transport._timers]
            assert delays == sorted(delays)
            for cancel in cancels:
                cancel()
            with transport._lock:
                assert not transport._timers

    def test_schedule_after_close_is_noop(self):
        # Regression (DAT010): _closed is written and checked under the
        # lock, so a timer scheduled against a closed transport must not
        # be retained (it would be a leak close() can no longer cancel).
        transport = UdpRpcTransport()
        transport.close()
        cancel = transport.schedule(30.0, lambda: None)
        cancel()
        assert not transport._timers

    def test_close_idempotent(self):
        transport = UdpRpcTransport()
        transport.register(1, lambda m: None)
        transport.close()
        transport.close()

    def test_close_cancels_pending_calls(self):
        # Regression: close() used to cancel the raw timer objects but left
        # the pending-call table populated — the teardown path must cancel
        # in-flight calls exactly like Transport.unregister does, so neither
        # continuation fires and no timer survives the transport.
        transport = UdpRpcTransport()
        transport.register(1, lambda m: None)
        outcome: list[str] = []
        request = Message(kind="q", source=1, destination=999)  # unroutable
        transport.call(
            request,
            lambda reply: outcome.append("reply"),
            on_timeout=lambda msg: outcome.append("timeout"),
            timeout=0.2,
        )
        assert transport.pending_calls() == 1
        transport.close()
        assert transport.pending_calls() == 0
        assert not transport._timers
        time.sleep(0.3)  # past the call deadline: the expiry must not fire
        assert outcome == []

    def test_close_with_pending_call_cancels_via_unregister_path(self):
        # The cancelled entry's timer is removed through the same canceller
        # unregister uses, so repeated close()/cancel interleavings stay
        # idempotent.
        transport = UdpRpcTransport()
        transport.register(1, lambda m: None)
        transport.call(
            Message(kind="q", source=1, destination=999),
            lambda reply: None,
            timeout=30.0,
        )
        assert transport.cancel_all_calls() == 1  # manual cancel first
        transport.close()  # close finds nothing left to cancel
        assert transport.pending_calls() == 0

    def test_register_after_close_rejected(self):
        transport = UdpRpcTransport()
        transport.close()
        with pytest.raises(TransportError):
            transport.register(1, lambda m: None)

    def test_oversized_datagram_rejected(self, transport):
        transport.register(1, lambda m: None)
        transport.register(2, lambda m: None)
        huge = Message(
            kind="x", source=1, destination=2, payload={"blob": "a" * 70000}
        )
        with pytest.raises(TransportError):
            transport.send(huge)

    def test_timer_schedule_and_cancel(self, transport):
        fired: list[int] = []
        cancel = transport.schedule(0.05, lambda: fired.append(1))
        cancel()
        transport.schedule(0.05, lambda: fired.append(2))
        assert wait_until(lambda: fired == [2])

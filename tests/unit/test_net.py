"""Unit tests for the repro.net session layer.

Covers the retry/backoff policy (validation, deterministic jitter, the
retry-storm guard), RpcClient retransmission semantics over the in-process
and simulated transports, the envelope helpers (UpcallRegistry, error
replies, DeferredResponder), the fan-out primitives (gather, Batcher),
and transport-level teardown (unregister cancels pending calls).
"""

import math

import pytest

from repro.net import (
    BATCH_KIND,
    DEFAULT_POLICY,
    UNBOUNDED_POLICY,
    Batcher,
    DeferredResponder,
    RetryPolicy,
    RpcClient,
    UpcallRegistry,
    error_reply,
    gather,
    install_batch_unwrapper,
    is_error_reply,
)
from repro.sim.inproc import InprocTransport
from repro.sim.messages import Message
from repro.sim.simnet import SimTransport
from repro.util.rng import ensure_rng


# --------------------------------------------------------------------- #
# RetryPolicy
# --------------------------------------------------------------------- #


class TestRetryPolicy:
    def test_default_is_single_attempt_transport_deadline(self):
        assert DEFAULT_POLICY.max_attempts == 1
        assert DEFAULT_POLICY.timeout is None
        assert DEFAULT_POLICY.attempt_timeout(2.0) == 2.0
        assert not DEFAULT_POLICY.unbounded

    def test_unbounded_policy(self):
        assert UNBOUNDED_POLICY.unbounded
        assert math.isinf(UNBOUNDED_POLICY.attempt_timeout(2.0))

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"max_attempts": 65},
            {"timeout": 0.0},
            {"timeout": -1.0},
            {"backoff_base": -0.1},
            {"backoff_factor": 0.5},
            {"backoff_max": -1.0},
            {"jitter": -0.1},
            {"jitter": 1.5},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_backoff_exponential_growth_and_cap(self):
        policy = RetryPolicy(
            max_attempts=8, backoff_base=1.0, backoff_factor=2.0, backoff_max=5.0
        )
        rng = ensure_rng(0)
        assert policy.schedule(rng) == [1.0, 2.0, 4.0, 5.0, 5.0, 5.0, 5.0]

    def test_zero_base_retries_immediately(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.schedule(ensure_rng(0)) == [0.0, 0.0]

    def test_retry_index_must_be_positive(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=2, backoff_base=1.0).backoff(0, ensure_rng(0))

    def test_jitter_schedule_is_deterministic(self):
        policy = RetryPolicy(
            max_attempts=6, backoff_base=0.5, jitter=0.3, backoff_max=10.0
        )
        assert policy.schedule(ensure_rng(7)) == policy.schedule(ensure_rng(7))
        assert policy.schedule(ensure_rng(7)) != policy.schedule(ensure_rng(8))

    def test_jitter_stays_in_band(self):
        policy = RetryPolicy(
            max_attempts=10, backoff_base=1.0, backoff_factor=1.0, jitter=0.25
        )
        for delay in policy.schedule(ensure_rng(42)):
            assert 0.75 <= delay <= 1.25

    def test_no_jitter_leaves_rng_untouched(self):
        policy = RetryPolicy(max_attempts=5, backoff_base=1.0)
        rng = ensure_rng(9)
        policy.schedule(rng)
        assert rng.random() == ensure_rng(9).random()


# --------------------------------------------------------------------- #
# RpcClient over InprocTransport
# --------------------------------------------------------------------- #


class TestRpcClient:
    def _client(self, transport, ident=1):
        transport.register(ident, lambda m: None)
        return RpcClient(transport, ident)

    def test_default_policy_single_send_then_timeout(self):
        transport = InprocTransport()
        client = self._client(transport)
        timeouts: list[Message] = []
        request = client.request("q", 99)
        client.call(request, lambda r: pytest.fail("no reply expected"),
                    on_timeout=timeouts.append)
        assert transport.stats.load(1).sent == 1
        transport.advance(transport.default_timeout * 2)
        assert timeouts == [request]
        assert transport.pending_calls() == 0

    def test_gives_up_after_max_attempts(self):
        transport = InprocTransport()
        client = self._client(transport)
        timeouts: list[Message] = []
        request = client.request("q", 99)
        client.call(
            request,
            lambda r: pytest.fail("no reply expected"),
            on_timeout=timeouts.append,
            policy=RetryPolicy(timeout=1.0, max_attempts=3),
        )
        transport.advance(10.0)
        assert transport.stats.load(1).sent == 3
        assert timeouts == [request]  # on_timeout fires exactly once

    def test_retry_reuses_msg_id_and_reply_correlates(self):
        transport = InprocTransport()
        client = self._client(transport)
        seen: list[int] = []

        def flaky(message: Message) -> Message | None:
            seen.append(message.msg_id)
            if len(seen) == 1:
                return None  # drop the first attempt
            return message.response(ok=True)

        transport.register(2, flaky)
        replies: list[Message] = []
        request = client.request("q", 2)
        client.call(
            request, replies.append,
            policy=RetryPolicy(timeout=1.0, max_attempts=3),
        )
        assert replies == []
        transport.advance(1.5)
        assert seen == [request.msg_id, request.msg_id]
        assert len(replies) == 1 and replies[0].reply_to == request.msg_id
        # The retry's deadline was cancelled by the reply.
        transport.advance(10.0)
        assert transport.stats.load(1).sent == 2

    def test_backoff_spaces_retries(self):
        transport = InprocTransport()
        client = self._client(transport)
        arrivals: list[float] = []
        transport.register(3, lambda m: arrivals.append(transport.now()))
        client.call(
            client.request("q", 3),
            lambda r: None,
            policy=RetryPolicy(
                timeout=1.0, max_attempts=3, backoff_base=1.0, backoff_factor=2.0
            ),
        )
        transport.advance(20.0)
        # send at 0; expiry 1 + backoff 1 -> resend at 2; expiry 3 +
        # backoff 2 -> resend at 5.
        assert arrivals == [0.0, 2.0, 5.0]

    def test_error_reply_routed_to_on_error(self):
        transport = InprocTransport()
        client = self._client(transport)
        transport.register(2, lambda m: error_reply(m, "busy", "try later"))
        errors: list[Message] = []
        client.call(
            client.request("q", 2),
            lambda r: pytest.fail("error must not reach on_reply"),
            on_timeout=lambda m: pytest.fail("error must not reach on_timeout"),
            on_error=errors.append,
        )
        assert len(errors) == 1
        assert is_error_reply(errors[0])
        assert errors[0].payload["error"] == "busy"

    def test_error_reply_falls_back_to_on_timeout(self):
        transport = InprocTransport()
        client = self._client(transport)
        transport.register(2, lambda m: error_reply(m, "busy"))
        failures: list[Message] = []
        client.call(
            client.request("q", 2),
            lambda r: pytest.fail("error must not reach on_reply"),
            on_timeout=failures.append,
        )
        assert len(failures) == 1

    def test_send_override_used_for_every_attempt(self):
        transport = InprocTransport()
        client = self._client(transport)
        local: list[Message] = []
        client.call(
            client.request("q", 1),
            lambda r: None,
            policy=RetryPolicy(timeout=1.0, max_attempts=2),
            send=local.append,
        )
        transport.advance(5.0)
        assert len(local) == 2  # first attempt + one retry, both local
        assert transport.stats.load(1).sent == 0  # nothing hit the wire

    def test_cancel_all_silences_continuations(self):
        transport = InprocTransport()
        client = self._client(transport)
        client.call(
            client.request("q", 99),
            lambda r: pytest.fail("cancelled"),
            on_timeout=lambda m: pytest.fail("cancelled"),
        )
        assert transport.pending_calls() == 1
        client.cancel_all()
        assert transport.pending_calls() == 0
        transport.advance(10.0)  # the armed deadline is a no-op now

    def test_peer_round_trip(self):
        transport = InprocTransport()
        client = self._client(transport)
        transport.register(2, lambda m: m.response(echo=m.payload["x"]))
        peer = client.peer(2)
        request = peer.request("echo", x=5)
        assert request.source == 1 and request.destination == 2
        replies: list[object] = []
        peer.call("echo", {"x": 7}, lambda r: replies.append(r.payload["echo"]))
        assert replies == [7]


class TestRetryStormGuard:
    def test_total_loss_bounds_sends(self):
        """Under 100% loss a retrying call sends exactly max_attempts times."""
        transport = SimTransport(loss_rate=1.0, rng=1)
        transport.register(1, lambda m: None)
        transport.register(2, lambda m: m.response(ok=True))
        client = RpcClient(transport, 1)
        failures: list[Message] = []
        client.call(
            client.request("q", 2),
            lambda r: pytest.fail("nothing can arrive at 100% loss"),
            on_timeout=failures.append,
            policy=RetryPolicy(
                timeout=0.5, max_attempts=4, backoff_base=0.1, jitter=0.5
            ),
        )
        transport.run(until=120.0)
        assert transport.stats.load(1).sent == 4
        assert len(failures) == 1
        assert transport.pending_calls() == 0


# --------------------------------------------------------------------- #
# Envelopes
# --------------------------------------------------------------------- #


class TestUpcallRegistry:
    def test_mapping_surface(self):
        registry = UpcallRegistry()
        handler = lambda m: None  # noqa: E731
        registry["ping"] = handler
        assert registry["ping"] is handler
        assert registry.knows("ping") and not registry.knows("pong")
        assert list(registry) == ["ping"] and len(registry) == 1
        del registry["ping"]
        assert len(registry) == 0

    def test_dispatch_routes_by_kind(self):
        registry = UpcallRegistry()
        registry["echo"] = lambda m: m.response(ok=True)
        reply = registry.dispatch(Message(kind="echo", source=1, destination=2))
        assert reply is not None and reply.payload["ok"] is True

    def test_unknown_kind_dropped(self):
        assert UpcallRegistry().dispatch(
            Message(kind="mystery", source=1, destination=2)
        ) is None


class TestDeferredResponder:
    def _request(self):
        return Message(kind="agg_collect", source=1, destination=2)

    def test_first_begin_claims(self):
        transport = InprocTransport()
        responder = DeferredResponder(transport)
        assert responder.begin("k", self._request()) is True
        assert responder.pending() == 1

    def test_inflight_duplicate_dropped(self):
        transport = InprocTransport()
        responder = DeferredResponder(transport)
        request = self._request()
        assert responder.begin("k", request)
        assert responder.begin("k", request) is False
        assert transport.stats.load(2).sent == 0  # no reply sent yet

    def test_complete_sends_and_duplicate_replays(self):
        transport = InprocTransport()
        delivered: list[Message] = []
        transport.register(1, delivered.append)
        responder = DeferredResponder(transport)
        request = self._request()
        responder.begin("k", request)
        responder.complete("k", request.response(kind="agg_partial", state=3))
        assert responder.pending() == 0
        # A retransmission after completion re-sends the cached reply.
        assert responder.begin("k", request) is False
        assert transport.stats.load(2).sent == 2

    def test_abandon_releases_claim(self):
        responder = DeferredResponder(InprocTransport())
        request = self._request()
        responder.begin("k", request)
        responder.abandon("k")
        assert responder.pending() == 0
        assert responder.begin("k", request) is True

    def test_capacity_evicts_oldest(self):
        transport = InprocTransport()
        responder = DeferredResponder(transport, capacity=2)
        for key in ("a", "b", "c"):
            request = self._request()
            responder.begin(key, request)
            responder.complete(key, request.response(kind="r", key=key))
        # "a" was evicted: a late duplicate re-claims instead of replaying.
        assert responder.begin("a", self._request()) is True

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            DeferredResponder(InprocTransport(), capacity=0)


# --------------------------------------------------------------------- #
# Fan-out
# --------------------------------------------------------------------- #


class TestGather:
    def test_empty_completes_synchronously(self):
        transport = InprocTransport()
        transport.register(1, lambda m: None)
        client = RpcClient(transport, 1)
        results: list[tuple[dict, list]] = []
        gather(client, [], lambda replies, failed: results.append((replies, failed)))
        assert results == [({}, [])]

    def test_all_reply(self):
        transport = InprocTransport()
        transport.register(1, lambda m: None)
        for node in (2, 3, 4):
            transport.register(node, lambda m: m.response(who=m.destination))
        client = RpcClient(transport, 1)
        results: list[tuple[dict, list]] = []
        gather(
            client,
            [client.request("q", n) for n in (2, 3, 4)],
            lambda replies, failed: results.append((replies, failed)),
        )
        assert len(results) == 1
        replies, failed = results[0]
        assert sorted(replies) == [2, 3, 4] and failed == []
        assert replies[3].payload["who"] == 3

    def test_mixed_replies_and_failures(self):
        transport = InprocTransport()
        transport.register(1, lambda m: None)
        transport.register(2, lambda m: m.response(ok=True))
        client = RpcClient(transport, 1)
        results: list[tuple[dict, list]] = []
        requests = [client.request("q", 2), client.request("q", 99)]
        gather(
            client,
            requests,
            lambda replies, failed: results.append((replies, failed)),
            policy=RetryPolicy(timeout=1.0, max_attempts=2),
        )
        assert results == []  # node 99 is still retrying
        transport.advance(10.0)
        assert len(results) == 1
        replies, failed = results[0]
        assert sorted(replies) == [2]
        assert failed == [requests[1]]


class TestBatcher:
    def _wired(self, window):
        transport = InprocTransport()
        delivered: list[Message] = []
        upcalls = UpcallRegistry()
        upcalls["agg_push"] = lambda m: delivered.append(m)
        install_batch_unwrapper(upcalls, lambda m: upcalls.dispatch(m))
        transport.register(5, upcalls.dispatch)
        return transport, Batcher(transport, window), delivered

    def _push(self, n):
        return Message(kind="agg_push", source=1, destination=5, payload={"n": n})

    def test_negative_window_rejected(self):
        with pytest.raises(ValueError):
            Batcher(InprocTransport(), -0.5)

    def test_zero_window_is_passthrough(self):
        transport, batcher, delivered = self._wired(0.0)
        batcher.enqueue(self._push(1))
        assert len(delivered) == 1 and batcher.pending() == 0
        assert delivered[0].kind == "agg_push"

    def test_window_coalesces_same_destination(self):
        transport, batcher, delivered = self._wired(1.0)
        for n in range(3):
            batcher.enqueue(self._push(n))
        assert delivered == [] and batcher.pending() == 3
        transport.advance(1.0)
        assert [m.payload["n"] for m in delivered] == [0, 1, 2]
        # One envelope on the wire, three logical messages delivered.
        assert transport.stats.load(1).sent == 1
        assert transport.stats.by_kind() == {}  # inproc doesn't tag kinds

    def test_single_queued_message_sent_unwrapped(self):
        transport, batcher, delivered = self._wired(1.0)
        batcher.enqueue(self._push(7))
        transport.advance(1.0)
        assert len(delivered) == 1 and delivered[0].payload["n"] == 7

    def test_flush_all_drains_now(self):
        transport, batcher, delivered = self._wired(5.0)
        batcher.enqueue(self._push(1))
        batcher.enqueue(self._push(2))
        batcher.flush_all()
        assert len(delivered) == 2 and batcher.pending() == 0
        transport.advance(10.0)  # the armed flush timer is a no-op
        assert len(delivered) == 2

    def test_close_flushes_and_degrades_to_passthrough(self):
        transport, batcher, delivered = self._wired(5.0)
        batcher.enqueue(self._push(1))
        batcher.close()
        assert len(delivered) == 1
        batcher.enqueue(self._push(2))
        assert len(delivered) == 2  # sent immediately after close

    def test_envelope_kind_on_wire(self):
        transport = InprocTransport()
        seen: list[Message] = []
        transport.register(5, lambda m: seen.append(m))
        batcher = Batcher(transport, 1.0)
        batcher.enqueue(self._push(1))
        batcher.enqueue(self._push(2))
        transport.advance(1.0)
        assert [m.kind for m in seen] == [BATCH_KIND]


# --------------------------------------------------------------------- #
# Teardown
# --------------------------------------------------------------------- #


class TestTeardown:
    def test_unregister_cancels_pending_calls(self):
        transport = InprocTransport()
        transport.register(1, lambda m: None)
        client = RpcClient(transport, 1)
        client.call(
            client.request("q", 99),
            lambda r: pytest.fail("node left"),
            on_timeout=lambda m: pytest.fail("node left"),
        )
        assert transport.pending_calls() == 1
        transport.unregister(1)
        assert transport.pending_calls() == 0
        transport.advance(10.0)

    def test_unregister_only_cancels_own_calls(self):
        transport = InprocTransport()
        transport.register(1, lambda m: None)
        transport.register(2, lambda m: None)
        for ident in (1, 2):
            client = RpcClient(transport, ident)
            client.call(client.request("q", 99), lambda r: None)
        transport.unregister(1)
        assert transport.pending_calls() == 1

    def test_host_rebuild_on_shared_transport(self):
        """Hosts/services can be torn down and rebuilt without leaks."""
        from repro.chord.idspace import IdSpace
        from repro.core.service import DatNodeService, StandaloneDatHost

        space = IdSpace(8)
        transport = InprocTransport()
        for _ in range(3):
            host = StandaloneDatHost(7, space, transport)
            service = DatNodeService(
                host,
                finger_provider=lambda: None,
                value_provider=lambda: 1.0,
                scheme="basic",
            )
            service.close()
            host.shutdown()
        assert transport.registered_nodes() == []
        assert transport.pending_calls() == 0

"""Fleet replay planning: purity, determinism, and — the load-bearing
property — seed threading identical to the in-sim churn replay.

Everything here is sockets-free: the planner is pure data-in/data-out, so
the cross-substrate determinism contract (same ``(seed, scenario)`` ->
same event sequence in the simulator and in the live fleet) is checked as
a plain unit test.
"""

import pytest

from repro.chord.idgen import make_assigner
from repro.chord.idspace import IdSpace
from repro.chord.incremental import DatUpdateEngine
from repro.fleet.plan import (
    ChurnReplayPlan,
    Fig9ReplayPlan,
    plan_fleet_churn,
    plan_fleet_fig9,
)
from repro.workloads.churn import ChurnKind, plan_churn, replay_churn
from repro.workloads.scenarios import scenario

SPACE = IdSpace(16)
SEED = 2007


def build_members(n=16, seed=SEED):
    return list(make_assigner("probing").build_ring(SPACE, n, rng=seed).nodes)


class TestSeedThreading:
    """Satellite: same (seed, scenario) -> identical sequences in-sim vs fleet."""

    @pytest.mark.parametrize("scenario_name", ["grid", "cluster", "planetlab"])
    def test_fleet_plan_matches_sim_replay(self, scenario_name):
        """The fleet planner and the in-sim engine replay must resolve the
        exact same (kind, ident) sequence from one (seed, scenario) pair."""
        members = build_members()
        events = scenario(scenario_name).churn_workload(240.0, seed=SEED).generate()

        # In-sim: replay against a real incremental engine and read the
        # applied deltas back out of the reports.
        ring = make_assigner("probing").build_ring(SPACE, len(members), rng=SEED)
        engine = DatUpdateEngine(ring)
        reports = replay_churn(engine, events, seed=SEED, min_nodes=4)
        sim_sequence = [(r.delta.kind, r.delta.ident) for r in reports]

        # Fleet: pure planning from the identical inputs.
        plan = plan_fleet_churn(
            scenario_name, 240.0, SEED, SPACE, members, min_nodes=4
        )
        op_to_kind = {"join": "join", "leave": "leave", "kill": "crash"}
        fleet_sequence = [(op_to_kind[a.op], a.ident) for a in plan.actions]

        assert fleet_sequence == sim_sequence

    def test_plan_churn_is_deterministic(self):
        members = build_members()
        events = scenario("grid").churn_workload(120.0, seed=3).generate()
        first = plan_churn(events, SPACE, members, seed=3)
        second = plan_churn(events, SPACE, members, seed=3)
        assert first == second

    def test_different_seed_different_plan(self):
        members = build_members()
        events = scenario("grid").churn_workload(120.0, seed=3).generate()
        a = plan_churn(events, SPACE, members, seed=3)
        b = plan_churn(events, SPACE, members, seed=4)
        assert a != b  # identity resolution is seed-driven


class TestChurnPlan:
    def test_min_nodes_floor_respected(self):
        members = build_members(4)
        plan = plan_fleet_churn("grid", 600.0, SEED, SPACE, members, min_nodes=3)
        population = set(members)
        for action in plan.actions:
            if action.op == "join":
                population.add(action.ident)
            else:
                assert len(population) > 3  # departure only above the floor
                population.discard(action.ident)

    def test_final_members_tracks_actions(self):
        members = build_members(8)
        plan = plan_fleet_churn("grid", 300.0, SEED, SPACE, members)
        expected = set(members)
        for action in plan.actions:
            if action.op == "join":
                expected.add(action.ident)
            else:
                expected.discard(action.ident)
        assert plan.final_members() == tuple(sorted(expected))

    def test_departures_target_current_members(self):
        members = build_members(8)
        plan = plan_fleet_churn("grid", 400.0, SEED, SPACE, members)
        population = set(members)
        for action in plan.actions:
            if action.op == "join":
                assert action.ident not in population
                population.add(action.ident)
            else:
                assert action.ident in population
                population.discard(action.ident)

    def test_crashes_map_to_kill(self):
        members = build_members(8)
        # planetlab has a nonzero crash fraction; scan for one.
        events = scenario("planetlab").churn_workload(900.0, seed=5).generate()
        planned = plan_churn(events, SPACE, members, seed=5)
        plan = plan_fleet_churn("planetlab", 900.0, 5, SPACE, members)
        kinds = {a.ident: a.op for a in plan.actions}
        for p in planned:
            if p.kind is ChurnKind.CRASH:
                assert kinds[p.ident] == "kill"

    def test_plan_is_frozen(self):
        plan = plan_fleet_churn("grid", 60.0, SEED, SPACE, build_members(4))
        assert isinstance(plan, ChurnReplayPlan)
        with pytest.raises(AttributeError):
            plan.seed = 1  # type: ignore[misc]


class TestFig9Plan:
    def test_key_is_attribute_hash(self):
        from repro.chord.hashing import sha1_id

        plan = plan_fleet_fig9(seed=SEED, n_nodes=16)
        assert plan.key(SPACE) == sha1_id("cpu-usage", SPACE)

    def test_rejects_zero_slots(self):
        with pytest.raises(ValueError):
            plan_fleet_fig9(seed=SEED, n_nodes=16, n_slots=0)

    def test_defaults_are_smoke_sized(self):
        plan = plan_fleet_fig9(seed=SEED, n_nodes=16)
        assert isinstance(plan, Fig9ReplayPlan)
        assert plan.n_slots * plan.slot_duration < 60.0

"""Unit tests for the per-node resource store."""

from repro.maan.attrs import Resource
from repro.maan.store import ResourceStore


def r(rid: str, **attrs) -> Resource:
    return Resource(rid, attrs)


class TestPutScan:
    def test_scan_range(self):
        store = ResourceStore()
        store.put("cpu", 2.0, r("a", cpu=2.0))
        store.put("cpu", 3.0, r("b", cpu=3.0))
        store.put("cpu", 9.0, r("c", cpu=9.0))
        found = store.scan("cpu", 2.5, 5.0)
        assert {x.resource_id for x in found} == {"b"}

    def test_put_refreshes_value(self):
        store = ResourceStore()
        store.put("cpu", 2.0, r("a", cpu=2.0))
        store.put("cpu", 8.0, r("a", cpu=8.0))
        assert store.count("cpu") == 1
        assert [x.resource_id for x in store.scan("cpu", 7, 9)] == ["a"]

    def test_scan_unknown_attribute(self):
        assert ResourceStore().scan("nope", 0, 1) == []


class TestRemoval:
    def test_remove_record(self):
        store = ResourceStore()
        store.put("cpu", 2.0, r("a", cpu=2.0))
        assert store.remove("cpu", "a") is True
        assert store.remove("cpu", "a") is False
        assert store.count() == 0

    def test_remove_resource_everywhere(self):
        store = ResourceStore()
        store.put("cpu", 2.0, r("a", cpu=2.0))
        store.put("mem", 4.0, r("a", mem=4.0))
        store.put("cpu", 3.0, r("b", cpu=3.0))
        assert store.remove_resource("a") == 2
        assert store.count() == 1

    def test_clear(self):
        store = ResourceStore()
        store.put("cpu", 2.0, r("a", cpu=2.0))
        store.clear()
        assert store.count() == 0


class TestIntrospection:
    def test_counts(self):
        store = ResourceStore()
        store.put("cpu", 2.0, r("a", cpu=2.0))
        store.put("mem", 4.0, r("a", mem=4.0))
        assert store.count() == 2
        assert store.count("cpu") == 1
        assert store.count("disk") == 0

    def test_attributes_listing(self):
        store = ResourceStore()
        store.put("cpu", 2.0, r("a", cpu=2.0))
        store.put("mem", 4.0, r("b", mem=4.0))
        store.remove("mem", "b")
        assert list(store.attributes()) == ["cpu"]

    def test_values_for_attribute(self):
        store = ResourceStore()
        store.put("cpu", 2.0, r("a", cpu=2.0))
        store.put("cpu", 5.0, r("b", cpu=5.0))
        assert sorted(store.values_for_attribute("cpu")) == [2.0, 5.0]

    def test_all_for_attribute(self):
        store = ResourceStore()
        store.put("cpu", 2.0, r("a", cpu=2.0))
        assert [x.resource_id for x in store.all_for_attribute("cpu")] == ["a"]

"""Unit tests for text visualization."""

import pytest

from repro.chord.idspace import IdSpace
from repro.chord.ring import StaticRing
from repro.core.builder import build_balanced_dat
from repro.core.tree import DatTree
from repro.viz import render_load_histogram, render_ring, render_tree


class TestRenderTree:
    def test_paper_tree_contains_all_nodes(self, full_ring4):
        tree = build_balanced_dat(full_ring4, key=0)
        text = render_tree(tree)
        for node in range(16):
            assert f"N{node}" in text

    def test_root_on_first_line(self):
        tree = DatTree(root=7, parent={3: 7, 5: 7})
        assert render_tree(tree).splitlines()[0] == "N7"

    def test_truncation(self):
        tree = DatTree(root=0, parent={i: 0 for i in range(1, 50)})
        text = render_tree(tree, max_nodes=5)
        assert "truncated" in text

    def test_custom_label(self):
        tree = DatTree(root=1, parent={2: 1})
        assert "node1" in render_tree(tree, label="node")

    def test_structure_markers(self):
        tree = DatTree(root=0, parent={1: 0, 2: 0, 3: 1})
        text = render_tree(tree)
        assert "├── N1" in text
        assert "└── N2" in text
        assert "│   └── N3" in text


class TestRenderRing:
    def test_width_and_brackets(self, full_ring4):
        text = render_ring(full_ring4, width=16)
        assert text.startswith("[") and text.endswith("]")
        assert len(text) == 18

    def test_full_ring_all_occupied(self, full_ring4):
        assert "." not in render_ring(full_ring4, width=16)

    def test_empty_buckets_shown(self):
        ring = StaticRing(IdSpace(8), [0, 128])
        text = render_ring(ring, width=8)
        assert text.count("o") == 2
        assert "." in text

    def test_mark(self):
        ring = StaticRing(IdSpace(8), [0, 128])
        assert "@" in render_ring(ring, width=8, mark=128)

    def test_collision_bucket(self):
        ring = StaticRing(IdSpace(8), [0, 1, 2])
        assert "#" in render_ring(ring, width=8)

    def test_rejects_bad_width(self, full_ring4):
        with pytest.raises(ValueError):
            render_ring(full_ring4, width=0)


class TestRenderLoadHistogram:
    def test_sorted_descending(self):
        text = render_load_histogram({1: 5, 2: 20, 3: 1})
        lines = text.splitlines()
        assert "node            2" in lines[0]
        assert lines[0].count("#") > lines[1].count("#")

    def test_folding(self):
        loads = {i: 100 - i for i in range(40)}
        text = render_load_histogram(loads, max_rows=5)
        assert "35 more nodes" in text

    def test_empty(self):
        assert render_load_histogram({}) == "(no loads)"

    def test_zero_loads_render(self):
        text = render_load_histogram({1: 0, 2: 0})
        assert "rank" in text

"""Unit tests for consistent and locality-preserving hashing."""

import pytest

from repro.chord.hashing import LocalityPreservingHash, sha1_id
from repro.chord.idspace import IdSpace
from repro.errors import IdentifierError


class TestSha1Id:
    def test_deterministic(self):
        space = IdSpace(32)
        assert sha1_id("cpu-usage", space) == sha1_id("cpu-usage", space)

    def test_in_range(self):
        for bits in (4, 16, 64, 160):
            space = IdSpace(bits)
            ident = sha1_id("hello", space)
            assert 0 <= ident < space.size

    def test_distinct_names_distinct_ids(self):
        space = IdSpace(64)
        ids = {sha1_id(f"attr-{i}", space) for i in range(100)}
        assert len(ids) == 100

    def test_bytes_and_str_forms(self):
        space = IdSpace(32)
        assert sha1_id("abc", space) == sha1_id(b"abc", space)

    def test_wide_space_beyond_sha1(self):
        space = IdSpace(320)
        ident = sha1_id("x", space)
        assert 0 <= ident < space.size

    def test_truncation_consistency(self):
        # The 8-bit id must be the top byte of the 16-bit id.
        wide = sha1_id("name", IdSpace(16))
        narrow = sha1_id("name", IdSpace(8))
        assert narrow == wide >> 8

    def test_roughly_uniform(self):
        space = IdSpace(8)
        buckets = [0] * 4
        for i in range(2000):
            buckets[sha1_id(f"key-{i}", space) // 64] += 1
        assert min(buckets) > 2000 / 4 * 0.7


class TestLocalityPreservingHash:
    def test_monotone(self):
        h = LocalityPreservingHash(IdSpace(16), low=0.0, high=100.0)
        values = [0, 1, 10, 49.5, 50, 99, 100]
        images = [h(v) for v in values]
        assert images == sorted(images)

    def test_bounds_map_to_extremes(self):
        space = IdSpace(16)
        h = LocalityPreservingHash(space, low=0.0, high=100.0)
        assert h(0.0) == 0
        assert h(100.0) == space.max_id

    def test_clamps_out_of_domain(self):
        space = IdSpace(16)
        h = LocalityPreservingHash(space, low=0.0, high=100.0)
        assert h(-5) == h(0)
        assert h(105) == h(100)

    def test_rejects_degenerate_domain(self):
        with pytest.raises(IdentifierError):
            LocalityPreservingHash(IdSpace(16), low=5.0, high=5.0)

    def test_invert_approx_roundtrip(self):
        space = IdSpace(24)
        h = LocalityPreservingHash(space, low=0.0, high=100.0)
        for v in (0.0, 12.5, 50.0, 99.0):
            assert abs(h.invert_approx(h(v)) - v) < 0.01

    def test_invert_validates(self):
        h = LocalityPreservingHash(IdSpace(8), low=0.0, high=1.0)
        with pytest.raises(IdentifierError):
            h.invert_approx(256)

    def test_proportional_spacing(self):
        # Equal value gaps map to equal identifier gaps (affine map).
        space = IdSpace(20)
        h = LocalityPreservingHash(space, low=0.0, high=10.0)
        gap1 = h(4.0) - h(2.0)
        gap2 = h(8.0) - h(6.0)
        assert abs(gap1 - gap2) <= 1

"""Unit tests for the exception hierarchy contracts."""

import pytest

from repro import errors


class TestHierarchy:
    def test_everything_derives_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                if obj is not errors.ReproError:
                    assert issubclass(obj, errors.ReproError), name

    def test_value_error_compatibility(self):
        # Identifier and schema problems should be catchable as ValueError
        # (idiomatic for argument validation).
        assert issubclass(errors.IdentifierError, ValueError)
        assert issubclass(errors.SchemaError, ValueError)

    def test_key_error_compatibility(self):
        assert issubclass(errors.UnknownNodeError, KeyError)
        assert issubclass(errors.UnknownAggregateError, KeyError)

    def test_timeout_compatibility(self):
        assert issubclass(errors.RpcTimeoutError, TimeoutError)

    def test_ring_errors_grouped(self):
        for cls in (
            errors.EmptyRingError,
            errors.DuplicateNodeError,
            errors.UnknownNodeError,
        ):
            assert issubclass(cls, errors.RingError)

    def test_one_catch_all(self):
        with pytest.raises(errors.ReproError):
            raise errors.TreeError("boom")
        with pytest.raises(errors.ReproError):
            raise errors.QueryError("boom")

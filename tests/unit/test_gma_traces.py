"""Unit tests for CPU trace generation and replay."""

import numpy as np
import pytest

from repro.gma.traces import CpuTrace, TraceGenerator


class TestCpuTrace:
    def make(self) -> CpuTrace:
        return CpuTrace(values=np.array([10.0, 20.0, 30.0]), period=10.0)

    def test_slots_and_duration(self):
        trace = self.make()
        assert trace.n_slots == 3
        assert trace.duration == 30.0

    def test_at_time(self):
        trace = self.make()
        assert trace.at_time(0.0) == 10.0
        assert trace.at_time(9.99) == 10.0
        assert trace.at_time(10.0) == 20.0
        assert trace.at_time(25.0) == 30.0

    def test_at_time_clamps(self):
        trace = self.make()
        assert trace.at_time(-5.0) == 10.0
        assert trace.at_time(1000.0) == 30.0

    def test_at_slot_clamps(self):
        trace = self.make()
        assert trace.at_slot(-1) == 10.0
        assert trace.at_slot(99) == 30.0

    def test_shifted_rolls(self):
        shifted = self.make().shifted(1)
        assert shifted.at_slot(0) == 30.0
        assert shifted.at_slot(1) == 10.0

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            CpuTrace(values=np.zeros((2, 2)), period=1.0)
        with pytest.raises(ValueError):
            CpuTrace(values=np.zeros(3), period=0.0)


class TestTraceGenerator:
    def test_paper_dimensions(self):
        # 2 hours at 10 s resolution -> 720 slots.
        gen = TraceGenerator(seed=1)
        trace = gen.generate()
        assert trace.n_slots == 720
        assert trace.duration == pytest.approx(7200.0)

    def test_values_bounded(self):
        trace = TraceGenerator(seed=2).generate()
        assert trace.values.min() >= 0.0
        assert trace.values.max() <= 100.0

    def test_deterministic(self):
        a = TraceGenerator(seed=3).generate()
        b = TraceGenerator(seed=3).generate()
        assert np.array_equal(a.values, b.values)

    def test_has_temporal_structure(self):
        # AR(1) + envelope -> strong lag-1 autocorrelation, unlike white noise.
        trace = TraceGenerator(seed=4).generate()
        x = trace.values - trace.values.mean()
        autocorr = float(np.dot(x[:-1], x[1:]) / np.dot(x, x))
        assert autocorr > 0.5

    def test_fleet_identical(self):
        gen = TraceGenerator(seed=5)
        traces = gen.generate_fleet(10, identical=True)
        assert len(traces) == 10
        assert all(t is traces[0] for t in traces)

    def test_fleet_varied(self):
        gen = TraceGenerator(seed=6)
        traces = gen.generate_fleet(5, identical=False)
        assert len({id(t) for t in traces}) == 5
        assert not np.array_equal(traces[0].values, traces[1].values)

    def test_fleet_rejects_bad_count(self):
        with pytest.raises(ValueError):
            TraceGenerator(seed=0).generate_fleet(0)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            TraceGenerator(duration=0)
        with pytest.raises(ValueError):
            TraceGenerator(ar_coefficient=1.0)
        with pytest.raises(ValueError):
            TraceGenerator(burst_rate=2.0)

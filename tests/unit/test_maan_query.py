"""Unit tests for the MAAN query model."""

import pytest

from repro.errors import QueryError
from repro.maan.attrs import Resource
from repro.maan.query import MultiAttributeQuery, QueryResult, RangeQuery


class TestRangeQuery:
    def test_rejects_inverted_range(self):
        with pytest.raises(QueryError):
            RangeQuery("cpu", 10, 5)

    def test_point_query_allowed(self):
        q = RangeQuery("cpu", 5, 5)
        assert q.matches(Resource("a", {"cpu": 5.0}))

    def test_matches(self):
        q = RangeQuery("cpu", 2, 4)
        assert q.matches(Resource("a", {"cpu": 3.0}))
        assert not q.matches(Resource("a", {"cpu": 5.0}))
        assert not q.matches(Resource("a", {"mem": 3.0}))

    def test_selectivity(self):
        q = RangeQuery("cpu", 25, 75)
        assert q.selectivity(0, 100) == pytest.approx(0.5)

    def test_selectivity_clips_to_domain(self):
        q = RangeQuery("cpu", -50, 50)
        assert q.selectivity(0, 100) == pytest.approx(0.5)

    def test_selectivity_degenerate_domain(self):
        with pytest.raises(QueryError):
            RangeQuery("cpu", 0, 1).selectivity(5, 5)


class TestMultiAttributeQuery:
    def test_requires_sub_queries(self):
        with pytest.raises(QueryError):
            MultiAttributeQuery(sub_queries=())

    def test_rejects_duplicate_attributes(self):
        with pytest.raises(QueryError):
            MultiAttributeQuery.of(
                RangeQuery("cpu", 0, 1), RangeQuery("cpu", 2, 3)
            )

    def test_conjunction_semantics(self):
        q = MultiAttributeQuery.of(
            RangeQuery("cpu", 0, 50), RangeQuery("mem", 2, 8)
        )
        assert q.matches(Resource("a", {"cpu": 25.0, "mem": 4.0}))
        assert not q.matches(Resource("b", {"cpu": 75.0, "mem": 4.0}))
        assert not q.matches(Resource("c", {"cpu": 25.0, "mem": 16.0}))

    def test_attribute_names(self):
        q = MultiAttributeQuery.of(
            RangeQuery("cpu", 0, 1), RangeQuery("mem", 0, 1)
        )
        assert q.attribute_names() == ["cpu", "mem"]


class TestQueryResult:
    def test_total_hops(self):
        result = QueryResult(lookup_hops=5, nodes_visited=3)
        assert result.total_hops == 8

    def test_resource_ids_dedup(self):
        result = QueryResult(
            resources=[Resource("a", {}), Resource("a", {}), Resource("b", {})]
        )
        assert result.resource_ids() == {"a", "b"}

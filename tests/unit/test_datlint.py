"""datlint: every rule fires on a known-bad fixture and stays quiet on a
known-good one; suppression comments and the CLI (text/JSON, exit codes)
behave as documented."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.devtools.datlint import all_program_rules, all_rules, lint_file, lint_paths
from repro.devtools.datlint.cli import main
from repro.devtools.datlint.context import module_name_for
from repro.devtools.datlint.diagnostics import PARSE_ERROR_CODE


def lint_snippet(tmp_path: Path, source: str, relpath: str = "repro/mod.py"):
    """Write ``source`` at ``tmp_path/relpath`` and lint it."""
    target = tmp_path / relpath
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source)
    diagnostics, suppressed = lint_file(target)
    return diagnostics, suppressed


def codes(diagnostics) -> set[str]:
    return {d.rule for d in diagnostics}


# --------------------------------------------------------------------- #
# Rule catalogue sanity
# --------------------------------------------------------------------- #


def test_all_rules_registered():
    assert [r.code for r in all_rules()] == [
        "DAT001",
        "DAT002",
        "DAT003",
        "DAT004",
        "DAT005",
        "DAT006",
        "DAT007",
        "DAT008",
        "DAT009",
        "DAT014",
        "DAT015",
    ]
    assert [r.code for r in all_program_rules()] == [
        "DAT005",
        "DAT010",
        "DAT011",
        "DAT012",
    ]
    for rule in list(all_rules()) + list(all_program_rules()):
        assert rule.name and rule.rationale


def test_module_name_detection(tmp_path):
    assert module_name_for(Path("src/repro/chord/node.py")) == "repro.chord.node"
    assert module_name_for(Path("src/repro/util/__init__.py")) == "repro.util"
    outside = tmp_path / "scratch.py"
    assert module_name_for(outside) == "scratch"


# --------------------------------------------------------------------- #
# DAT001 — determinism
# --------------------------------------------------------------------- #


def test_dat001_flags_stdlib_random(tmp_path):
    diagnostics, _ = lint_snippet(tmp_path, "import random\n")
    assert codes(diagnostics) == {"DAT001"}


def test_dat001_flags_argless_and_global_rng(tmp_path):
    source = (
        "import numpy as np\n"
        "rng = np.random.default_rng()\n"
        "np.random.seed(3)\n"
    )
    diagnostics, _ = lint_snippet(tmp_path, source)
    assert [d.rule for d in diagnostics] == ["DAT001"] * 2


def test_dat001_does_not_own_wall_clock_reads(tmp_path):
    # Wall-clock policing moved wholesale to DAT008 (one rule, one concern).
    diagnostics, _ = lint_snippet(tmp_path, "import time\nnow = time.time()\n")
    assert codes(diagnostics) == {"DAT008"}


def test_dat001_clean_on_seeded_rng(tmp_path):
    source = (
        "import numpy as np\n"
        "def make(seed):\n"
        "    return np.random.default_rng(seed)\n"
    )
    diagnostics, _ = lint_snippet(tmp_path, source)
    assert diagnostics == []


def test_dat001_exempts_util_rng(tmp_path):
    source = "import numpy as np\nrng = np.random.default_rng()\n"
    diagnostics, _ = lint_snippet(tmp_path, source, relpath="repro/util/rng.py")
    assert diagnostics == []


# --------------------------------------------------------------------- #
# DAT002 — id-space hygiene
# --------------------------------------------------------------------- #


def test_dat002_flags_raw_modulo_variants(tmp_path):
    source = (
        "def f(key, space, bits):\n"
        "    a = key % space.size\n"
        "    b = key % (2 ** bits)\n"
        "    c = key % (1 << bits)\n"
        "    d = (key + 1) % space.bits\n"
        "    return a, b, c, d\n"
    )
    diagnostics, _ = lint_snippet(tmp_path, source)
    assert [d.rule for d in diagnostics] == ["DAT002"] * 4


def test_dat002_flags_max_id_mask(tmp_path):
    source = "def f(key, space):\n    return key & space.max_id\n"
    diagnostics, _ = lint_snippet(tmp_path, source)
    assert codes(diagnostics) == {"DAT002"}


def test_dat002_clean_on_idspace_helpers_and_unrelated_modulo(tmp_path):
    source = (
        "def f(key, space, items, step):\n"
        "    w = space.wrap(key)\n"
        "    d = space.cw(w, key)\n"
        "    pick = items[key % len(items)]\n"
        "    phase = step % 7\n"
        "    return w, d, pick, phase\n"
    )
    diagnostics, _ = lint_snippet(tmp_path, source)
    assert diagnostics == []


def test_dat002_exempt_in_idspace_module(tmp_path):
    source = "def wrap(value, size):\n    return value % size\n"
    diagnostics, _ = lint_snippet(
        tmp_path, source, relpath="repro/chord/idspace.py"
    )
    assert diagnostics == []


# --------------------------------------------------------------------- #
# DAT003 — float equality
# --------------------------------------------------------------------- #


def test_dat003_flags_float_literal_and_cast(tmp_path):
    source = (
        "def f(x, y):\n"
        "    if x == 0.5:\n"
        "        return True\n"
        "    return float(x) != y\n"
    )
    diagnostics, _ = lint_snippet(tmp_path, source)
    assert [d.rule for d in diagnostics] == ["DAT003"] * 2


def test_dat003_clean_on_isclose_and_integer_compare(tmp_path):
    source = (
        "import math\n"
        "def f(x, n):\n"
        "    return math.isclose(x, 0.5) or n == 0\n"
    )
    diagnostics, _ = lint_snippet(tmp_path, source)
    assert diagnostics == []


# --------------------------------------------------------------------- #
# DAT004 — no print in library code
# --------------------------------------------------------------------- #


def test_dat004_flags_print_in_library(tmp_path):
    source = "def f():\n    print('debug')\n"
    diagnostics, _ = lint_snippet(tmp_path, source, relpath="repro/core/x.py")
    assert codes(diagnostics) == {"DAT004"}


def test_dat004_allows_cli_experiments_viz(tmp_path):
    source = "def f():\n    print('report')\n"
    for relpath in (
        "repro/experiments/fig7.py",
        "repro/viz.py",
        "repro/gma/cli.py",
        "repro/experiments/__main__.py",
    ):
        diagnostics, _ = lint_snippet(tmp_path, source, relpath=relpath)
        assert diagnostics == [], relpath


def test_dat004_flags_raw_stream_write(tmp_path):
    source = "import sys\ndef f():\n    sys.stdout.write('x')\n"
    diagnostics, _ = lint_snippet(tmp_path, source)
    assert codes(diagnostics) == {"DAT004"}


# --------------------------------------------------------------------- #
# DAT005 — no blocking calls
# --------------------------------------------------------------------- #


def test_dat005_flags_sleep_and_socket(tmp_path):
    source = (
        "import time, socket\n"
        "def handler(sock):\n"
        "    time.sleep(1)\n"
        "    s = socket.socket()\n"
        "    sock.recv(1024)\n"
    )
    diagnostics, _ = lint_snippet(tmp_path, source)
    assert [d.rule for d in diagnostics] == ["DAT005"] * 3


def test_dat005_exempts_realtime_transport(tmp_path):
    source = "import socket\ndef f(sock):\n    return sock.recvfrom(65536)\n"
    diagnostics, _ = lint_snippet(
        tmp_path, source, relpath="repro/sim/udprpc.py"
    )
    assert diagnostics == []


def test_dat005_clean_on_scheduled_events(tmp_path):
    source = "def f(transport, cb):\n    transport.schedule(1.5, cb)\n"
    diagnostics, _ = lint_snippet(tmp_path, source)
    assert diagnostics == []


# --------------------------------------------------------------------- #
# DAT006 — mutable defaults
# --------------------------------------------------------------------- #


def test_dat006_flags_mutable_defaults(tmp_path):
    source = (
        "def f(a=[], b={}, *, c=set(), d=dict()):\n"
        "    return a, b, c, d\n"
    )
    diagnostics, _ = lint_snippet(tmp_path, source)
    assert [d.rule for d in diagnostics] == ["DAT006"] * 4


def test_dat006_clean_on_none_default(tmp_path):
    source = (
        "def f(a=None, n=3, name='x'):\n"
        "    return list(a or []), n, name\n"
    )
    diagnostics, _ = lint_snippet(tmp_path, source)
    assert diagnostics == []


# --------------------------------------------------------------------- #
# DAT007 — except hygiene
# --------------------------------------------------------------------- #


def test_dat007_flags_bare_and_swallowing_broad_except(tmp_path):
    source = (
        "def f():\n"
        "    try:\n"
        "        work()\n"
        "    except:\n"
        "        pass\n"
        "def g():\n"
        "    try:\n"
        "        work()\n"
        "    except Exception:\n"
        "        return None\n"
    )
    diagnostics, _ = lint_snippet(tmp_path, source)
    assert [d.rule for d in diagnostics] == ["DAT007"] * 2


def test_dat007_allows_narrow_catch_and_reraising_broad(tmp_path):
    source = (
        "def f():\n"
        "    try:\n"
        "        work()\n"
        "    except ValueError:\n"
        "        return None\n"
        "    try:\n"
        "        work()\n"
        "    except Exception as exc:\n"
        "        cleanup()\n"
        "        raise\n"
    )
    diagnostics, _ = lint_snippet(tmp_path, source)
    assert diagnostics == []


# --------------------------------------------------------------------- #
# DAT008 — sim-clock discipline
# --------------------------------------------------------------------- #


def test_dat008_flags_the_whole_clock_family(tmp_path):
    source = (
        "import time\n"
        "import datetime\n"
        "a = time.time()\n"
        "b = time.monotonic()\n"
        "c = time.perf_counter()\n"
        "d = datetime.datetime.now()\n"
    )
    diagnostics, _ = lint_snippet(tmp_path, source)
    assert [d.rule for d in diagnostics] == ["DAT008"] * 4


def test_dat008_flags_from_time_imports(tmp_path):
    diagnostics, _ = lint_snippet(
        tmp_path, "from time import monotonic\nnow = monotonic()\n"
    )
    assert [d.rule for d in diagnostics] == ["DAT008"]
    assert "smuggles" in diagnostics[0].message


def test_dat008_allows_virtual_clock_and_sleepless_time_use(tmp_path):
    source = (
        "def snapshot(transport):\n"
        "    return transport.now()\n"
    )
    diagnostics, _ = lint_snippet(tmp_path, source)
    assert diagnostics == []


def test_dat008_line_suppression_marks_the_substrate_boundary(tmp_path):
    source = (
        "import time\n"
        "def now():\n"
        "    return time.monotonic()  # datlint: disable=DAT008\n"
    )
    diagnostics, suppressed = lint_snippet(tmp_path, source)
    assert diagnostics == []
    assert suppressed == 1


# --------------------------------------------------------------------- #
# DAT009 — raw transport RPC outside repro.net
# --------------------------------------------------------------------- #


def test_dat009_flags_raw_transport_call_and_expect(tmp_path):
    source = (
        "def probe(self, request, on_reply):\n"
        "    self.transport.call(request, on_reply)\n"
        "    self.host.transport.expect(request, on_reply)\n"
        "    transport.call(request, on_reply)\n"
    )
    diagnostics, _ = lint_snippet(
        tmp_path, source, relpath="repro/chord/somefeature.py"
    )
    assert [d.rule for d in diagnostics] == ["DAT009"] * 3
    assert "RpcClient" in diagnostics[0].message


def test_dat009_allows_session_layer_and_substrates(tmp_path):
    source = "def go(self, m, cb):\n    self.transport.call(m, cb)\n"
    for relpath in ("repro/net/client.py", "repro/sim/transport.py"):
        diagnostics, _ = lint_snippet(tmp_path, source, relpath=relpath)
        assert diagnostics == []


def test_dat009_ignores_unrelated_call_methods(tmp_path):
    source = (
        "def fine(self, request, on_reply):\n"
        "    self.net.call(request, on_reply)\n"      # the sanctioned path
        "    self.transport.send(request)\n"          # fire-and-forget is fine
        "    self.mock.call(request)\n"               # not a transport
    )
    diagnostics, _ = lint_snippet(
        tmp_path, source, relpath="repro/core/somefeature.py"
    )
    assert diagnostics == []


# --------------------------------------------------------------------- #
# DAT014 — untraced multi-hop forwards
# --------------------------------------------------------------------- #


def test_dat014_flags_forward_without_context_threading(tmp_path):
    source = (
        "def _forward(self, message):\n"
        "    payload = message.payload\n"
        "    forward = Message(\n"
        "        kind='scan',\n"
        "        source=self.ident,\n"
        "        destination=nxt,\n"
        "        payload={**payload, 'hops': payload['hops'] + 1},\n"
        "    )\n"
        "    self.net.send(forward)\n"
    )
    diagnostics, _ = lint_snippet(
        tmp_path, source, relpath="repro/maan/somefeature.py"
    )
    assert [d.rule for d in diagnostics] == ["DAT014"]
    assert "propagate" in diagnostics[0].message


def test_dat014_allows_forward_with_propagate(tmp_path):
    source = (
        "def _forward(self, message):\n"
        "    payload = message.payload\n"
        "    with telemetry.remote_span(message, 'scan_hop') as hop:\n"
        "        forward = Message(\n"
        "            kind='scan',\n"
        "            source=self.ident,\n"
        "            destination=nxt,\n"
        "            payload={**payload, 'hops': payload['hops'] + 1},\n"
        "        )\n"
        "        hop.propagate(forward)\n"
        "        self.net.send(forward)\n"
    )
    diagnostics, _ = lint_snippet(
        tmp_path, source, relpath="repro/maan/somefeature.py"
    )
    assert diagnostics == []


def test_dat014_allows_hand_managed_trace_key(tmp_path):
    source = (
        "def _forward(self, message):\n"
        "    payload = dict(message.payload)\n"
        "    payload.pop('_trace', None)\n"
        "    fwd = Message(kind='scan', source=1, destination=2,\n"
        "                  payload={**payload, 'hops': 1})\n"
        "    self.net.send(fwd)\n"
    )
    diagnostics, _ = lint_snippet(
        tmp_path, source, relpath="repro/chord/somefeature.py"
    )
    assert diagnostics == []


def test_dat014_ignores_fresh_payloads_and_other_layers(tmp_path):
    fresh = (
        "def _reply(self, message):\n"
        "    self.net.send(Message(kind='ok', source=1, destination=2,\n"
        "                          payload={'value': 3}))\n"
    )
    diagnostics, _ = lint_snippet(tmp_path, fresh, relpath="repro/core/feature.py")
    assert diagnostics == []
    # Infrastructure layers carry contexts opaquely and are exempt.
    forward = (
        "def relay(self, message):\n"
        "    self.send(Message(kind='x', source=1, destination=2,\n"
        "                      payload={**message.payload}))\n"
    )
    diagnostics, _ = lint_snippet(tmp_path, forward, relpath="repro/net/relay.py")
    assert diagnostics == []


# --------------------------------------------------------------------- #
# DAT015 — per-message allocation in batched hot paths
# --------------------------------------------------------------------- #


def test_dat015_flags_per_message_alloc_in_hot_loop(tmp_path):
    source = (
        "def send_batch(self, batch, deliver):\n"
        "    for i in range(len(batch)):\n"
        "        payload = {'value': batch.values[i]}\n"
        "        self._enqueue(Message(kind='push', source=1,\n"
        "                              destination=2, payload=payload))\n"
    )
    diagnostics, _ = lint_snippet(
        tmp_path, source, relpath="repro/sim/simnet.py"
    )
    assert [d.rule for d in diagnostics] == ["DAT015", "DAT015"]


def test_dat015_allows_per_batch_alloc_outside_loop(tmp_path):
    # One dict per *batch* is the intended shape; only per-row
    # allocation inside the loop is flagged.
    source = (
        "def send_batch(self, batch, deliver):\n"
        "    by_delay = {}\n"
        "    columns = {name: col.copy() for name, col in batch.columns()}\n"
        "    for i in range(len(batch)):\n"
        "        by_delay.setdefault(batch.delays[i], []).append(i)\n"
    )
    diagnostics, _ = lint_snippet(
        tmp_path, source, relpath="repro/sim/simnet.py"
    )
    assert diagnostics == []


def test_dat015_ignores_non_hot_modules_and_functions(tmp_path):
    source = (
        "def send_batch(self, batch, deliver):\n"
        "    for i in range(len(batch)):\n"
        "        payload = {'value': i}\n"
    )
    # Same code outside the hot-module map is someone else's slow path.
    diagnostics, _ = lint_snippet(
        tmp_path, source, relpath="repro/chord/node.py"
    )
    assert diagnostics == []
    # A non-hot function in a hot module is also exempt.
    slow = (
        "def debug_dump(self, batch):\n"
        "    for i in range(len(batch)):\n"
        "        self.rows.append({'value': i})\n"
    )
    diagnostics, _ = lint_snippet(tmp_path, slow, relpath="repro/sim/simnet.py")
    assert diagnostics == []


def test_dat015_ignores_deferred_bodies(tmp_path):
    # Lambdas and nested defs run on the slow path (lazy
    # materialization), not per delivered message.
    source = (
        "def _deliver_batch(self, batch):\n"
        "    for i in range(len(batch)):\n"
        "        thunk = lambda i=i: {'value': batch.values[i]}\n"
        "        self._lazy.append(thunk)\n"
    )
    diagnostics, _ = lint_snippet(
        tmp_path, source, relpath="repro/sim/simnet.py"
    )
    assert diagnostics == []


# --------------------------------------------------------------------- #
# Suppression comments
# --------------------------------------------------------------------- #


def test_line_level_suppression_only_silences_that_line(tmp_path):
    source = (
        "def f():\n"
        "    print('one')  # datlint: disable=DAT004\n"
        "    print('two')\n"
    )
    diagnostics, suppressed = lint_snippet(tmp_path, source)
    assert suppressed == 1
    assert [d.rule for d in diagnostics] == ["DAT004"]
    assert diagnostics[0].line == 3


def test_file_level_suppression_silences_whole_file(tmp_path):
    source = (
        "# datlint: disable=DAT004\n"
        "def f():\n"
        "    print('one')\n"
        "    print('two')\n"
    )
    diagnostics, suppressed = lint_snippet(tmp_path, source)
    assert diagnostics == []
    assert suppressed == 2


def test_file_level_suppression_is_rule_specific(tmp_path):
    source = (
        "# datlint: disable=DAT004\n"
        "import random\n"
        "def f():\n"
        "    print('one')\n"
    )
    diagnostics, _ = lint_snippet(tmp_path, source)
    assert codes(diagnostics) == {"DAT001"}


def test_disable_all_on_a_line(tmp_path):
    source = (
        "def f():\n"
        "    print(random_thing := 1)  # datlint: disable=all\n"
    )
    diagnostics, _ = lint_snippet(tmp_path, source)
    assert diagnostics == []


# --------------------------------------------------------------------- #
# Parse failures
# --------------------------------------------------------------------- #


def test_unparsable_file_yields_dat000(tmp_path):
    diagnostics, _ = lint_snippet(tmp_path, "def broken(:\n")
    assert [d.rule for d in diagnostics] == [PARSE_ERROR_CODE]


# --------------------------------------------------------------------- #
# Runner + CLI
# --------------------------------------------------------------------- #


def write_tree(tmp_path: Path) -> Path:
    root = tmp_path / "proj"
    (root / "pkg").mkdir(parents=True)
    (root / "pkg" / "bad.py").write_text("import random\n")
    (root / "pkg" / "good.py").write_text("VALUE = 1\n")
    return root


def test_lint_paths_walks_directories(tmp_path):
    report = lint_paths([write_tree(tmp_path)])
    assert report.files_checked == 2
    assert codes(report.diagnostics) == {"DAT001"}
    assert report.exit_code == 1


def test_cli_text_output_and_exit_code(tmp_path, capsys):
    root = write_tree(tmp_path)
    assert main([str(root)]) == 1
    out = capsys.readouterr().out
    assert "DAT001" in out and "bad.py" in out

    assert main([str(root / "pkg" / "good.py")]) == 0


def test_cli_json_output(tmp_path, capsys):
    root = write_tree(tmp_path)
    assert main([str(root), "--format=json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["files_checked"] == 2
    assert payload["suppressed"] == 0
    (finding,) = payload["diagnostics"]
    assert finding["rule"] == "DAT001"
    assert finding["path"].endswith("bad.py")
    assert finding["line"] == 1
    assert set(finding) == {"path", "line", "col", "rule", "message"}


def test_cli_select_and_ignore(tmp_path):
    root = write_tree(tmp_path)
    assert main([str(root), "--select=DAT004"]) == 0
    assert main([str(root), "--ignore=DAT001"]) == 0
    assert main([str(root), "--select=DAT001"]) == 1


def test_cli_usage_errors_exit_2(tmp_path):
    with pytest.raises(SystemExit) as excinfo:
        main([])
    assert excinfo.value.code == 2
    with pytest.raises(SystemExit) as excinfo:
        main([str(tmp_path), "--select=DAT999"])
    assert excinfo.value.code == 2
    with pytest.raises(SystemExit) as excinfo:
        main([str(tmp_path / "no_such_dir")])
    assert excinfo.value.code == 2


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("DAT001", "DAT007"):
        assert code in out


def test_repo_source_tree_is_clean():
    """The shipped tree must lint clean (the CI gate, run in-process)."""
    src = Path(__file__).resolve().parents[2] / "src"
    report = lint_paths([src])
    assert report.exit_code == 0, [d.format() for d in report.diagnostics]

"""Unit tests for table rendering."""

from repro.experiments.report import format_table


class TestFormatTable:
    def test_basic_alignment(self):
        text = format_table([{"a": 1, "bb": "x"}, {"a": 22, "bb": "yy"}])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert set(lines[1]) <= {"-", " "}
        assert len(lines) == 4

    def test_title(self):
        text = format_table([{"a": 1}], title="My table")
        assert text.splitlines()[0] == "My table"

    def test_empty_rows(self):
        assert "(empty)" in format_table([])
        assert format_table([], title="T").startswith("T")

    def test_column_selection_and_order(self):
        text = format_table([{"a": 1, "b": 2, "c": 3}], columns=["c", "a"])
        header = text.splitlines()[0]
        assert header.index("c") < header.index("a")
        assert "b" not in header

    def test_missing_cells_blank(self):
        text = format_table([{"a": 1}, {"a": 2, "b": 9}], columns=["a", "b"])
        assert "9" in text

    def test_float_formatting(self):
        text = format_table([{"x": 3.14159}])
        assert "3.142" in text

    def test_float_trailing_zeros_trimmed(self):
        text = format_table([{"x": 2.5}])
        assert "2.5" in text and "2.500" not in text

    def test_zero_renders(self):
        assert "0" in format_table([{"x": 0.0}])

"""Unit tests for the per-node aggregation table."""

import pytest

from repro.core.aggregates import AverageAggregate, SumAggregate
from repro.core.aggtable import AggregationEntry, AggregationMode, AggregationTable
from repro.errors import AggregationError


class TestAggregationEntry:
    def make(self, expected=None) -> AggregationEntry:
        return AggregationEntry(
            key=42,
            aggregate=SumAggregate(),
            mode=AggregationMode.ON_DEMAND,
            expected_children=frozenset(expected) if expected else None,
        )

    def test_local_and_children_merge(self):
        entry = self.make()
        entry.set_local(10.0)
        entry.add_child_state(1, 5.0)
        entry.add_child_state(2, 3.0)
        assert entry.partial_state() == 18.0

    def test_finalize(self):
        entry = AggregationEntry(
            key=1, aggregate=AverageAggregate(), mode=AggregationMode.ON_DEMAND
        )
        entry.set_local(4.0)
        entry.add_child_state(9, (6.0, 1))
        assert entry.finalize() == 5.0

    def test_duplicate_child_replaces(self):
        entry = self.make()
        entry.set_local(0.0)
        entry.add_child_state(1, 5.0)
        entry.add_child_state(1, 7.0)  # retransmission
        assert entry.partial_state() == 7.0

    def test_stale_epoch_rejected(self):
        entry = self.make()
        entry.reset_round(epoch=3)
        with pytest.raises(AggregationError):
            entry.add_child_state(1, 5.0, epoch=2)

    def test_completeness_with_expected_children(self):
        entry = self.make(expected=[1, 2])
        entry.set_local(0.0)
        assert not entry.is_complete()
        entry.add_child_state(1, 1.0)
        assert not entry.is_complete()
        entry.add_child_state(2, 1.0)
        assert entry.is_complete()

    def test_completeness_requires_local(self):
        entry = self.make(expected=[])
        assert not entry.is_complete()
        entry.set_local(1.0)
        assert entry.is_complete()

    def test_reset_round_increments_epoch(self):
        entry = self.make()
        entry.set_local(1.0)
        entry.reset_round()
        assert entry.epoch == 1
        assert entry.local_state is None
        with pytest.raises(AggregationError):
            entry.partial_state()


class TestAggregationTable:
    def test_open_get_close(self):
        table = AggregationTable()
        entry = table.open(7, SumAggregate())
        assert table.get(7) is entry
        assert table.has(7)
        table.close(7)
        assert not table.has(7)

    def test_get_missing_raises(self):
        with pytest.raises(AggregationError):
            AggregationTable().get(1)

    def test_close_idempotent(self):
        table = AggregationTable()
        table.close(99)  # no error

    def test_multiple_trees_coexist(self):
        # Fig. 6: one entry per active DAT tree.
        table = AggregationTable()
        table.open(1, SumAggregate())
        table.open(2, AverageAggregate(), mode=AggregationMode.CONTINUOUS)
        assert table.active_keys() == [1, 2]
        assert len(table) == 2
        assert 1 in table

    def test_reopen_replaces(self):
        table = AggregationTable()
        first = table.open(1, SumAggregate())
        second = table.open(1, SumAggregate())
        assert table.get(1) is second and first is not second

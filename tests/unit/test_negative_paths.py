"""Negative-path robustness tests: corrupted state must fail loudly or heal.

The happy paths are covered module-by-module; these tests aim at the
failure modes a long-lived deployment actually hits — corrupted finger
tables, lookups into dead space, unresolvable queries — and pin the
library's contract for each: a typed exception or a documented graceful
fallback, never silent wrong answers.
"""

import pytest

from repro.chord.fingers import FingerTable
from repro.chord.idspace import IdSpace
from repro.chord.ring import StaticRing
from repro.chord.routing import finger_route
from repro.core.parent import select_parent_basic
from repro.core.tree import DatTree
from repro.errors import RoutingError, TreeError


class TestCorruptedFingerTables:
    def test_parent_selection_raises_on_empty_horizon(self):
        # A table whose every entry is the owner (impossible on a converged
        # multi-node ring) must raise, not return a bogus parent.
        space = IdSpace(4)
        table = FingerTable(space=space, owner=5, entries=[5, 5, 5, 5])
        with pytest.raises(TreeError):
            select_parent_basic(table, root=0)

    def test_overshooting_table_falls_back_to_successor_walk(self):
        # Every finger points past the key: FingerTable's own no-overshoot
        # guard rejects them all and routing degrades to the (correct, if
        # slow) successor walk — never a wrong destination.
        space = IdSpace(4)
        ring = StaticRing(space, [0, 4, 8, 12])
        bogus = {
            node: FingerTable(space=space, owner=node, entries=[12, 12, 12, 12])
            for node in ring
        }
        route = finger_route(ring, 0, 6, tables=bogus)
        assert route.destination == 8  # successor(6), despite the bad tables

    def test_routing_detects_overshooting_hop(self):
        # A table whose closest_preceding VIOLATES the no-overshoot
        # contract (a protocol bug) must be caught by the router's guard,
        # not silently produce a wrong path.
        space = IdSpace(4)
        ring = StaticRing(space, [0, 8, 12])

        class PingPong(FingerTable):
            def closest_preceding(self, key, max_slot=None):
                return 12 if self.owner == 8 else 8

        tables = {
            node: PingPong(space=space, owner=node, entries=ring.finger_entries(node))
            for node in ring
        }
        # Key 13 -> destination 0; the 8 <-> 12 ping-pong either overshoots
        # (guard) or exhausts the hop budget. Both are RoutingError.
        with pytest.raises(RoutingError):
            finger_route(ring, 8, 13, tables=tables)


class TestCorruptedTrees:
    def test_forest_of_disconnected_components(self):
        tree = DatTree(root=0, parent={1: 2, 2: 1, 3: 0})
        with pytest.raises(TreeError):
            tree.validate()

    def test_depth_query_on_unreachable_node(self):
        tree = DatTree(root=0, parent={5: 99})
        with pytest.raises(TreeError):
            tree.depth(5)

    def test_long_cycle_detected(self):
        n = 50
        parent = {i: (i % n) + 1 for i in range(1, n + 1)}  # 1->2->...->n->1
        tree = DatTree(root=0, parent=parent)
        with pytest.raises(TreeError):
            tree.validate()


class TestDegenerateInputs:
    def test_single_node_everything(self):
        space = IdSpace(8)
        ring = StaticRing(space, [42])
        assert ring.successor(0) == 42
        assert ring.gap_before(42) == space.size
        route = finger_route(ring, 42, 17)
        assert route.path == (42,)
        from repro.core.builder import build_balanced_dat

        tree = build_balanced_dat(ring, 17)
        assert tree.root == 42 and tree.parent == {}
        assert tree.stats().height == 0

    def test_two_node_ring_trees(self):
        space = IdSpace(8)
        ring = StaticRing(space, [10, 200])
        from repro.core.builder import build_balanced_dat, build_basic_dat

        for build in (build_basic_dat, build_balanced_dat):
            tree = build(ring, 15)
            tree.validate()
            assert tree.n_nodes == 2
            assert tree.height == 1

    def test_ring_with_adjacent_identifiers(self):
        # Minimal gaps: parents must still strictly approach the root.
        space = IdSpace(8)
        ring = StaticRing(space, [0, 1, 2, 3, 4])
        from repro.core.builder import build_balanced_dat

        tree = build_balanced_dat(ring, 0)
        tree.validate()
        for child, parent in tree.parent.items():
            assert space.cw(parent, 0) < space.cw(child, 0)

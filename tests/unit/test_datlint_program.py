"""Unit tests for datlint's whole-program analysis (v2).

Covers the ``ProgramContext`` symbol table, the call graph, the
whole-program rules DAT010–DAT012 and transitive DAT005, suppression
interaction, and JSON output. The per-file rules are covered in
``test_datlint.py``.
"""

from __future__ import annotations

import ast
import json
from pathlib import Path

from repro.devtools.datlint import build_program, lint_paths
from repro.devtools.datlint.callgraph import analyze_blocking, build_call_graph
from repro.devtools.datlint.cli import main
from repro.devtools.datlint.context import FileContext


def write_files(tmp_path: Path, files: dict[str, str]) -> Path:
    for relpath, source in files.items():
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
    return tmp_path


def build(tmp_path: Path, files: dict[str, str]):
    contexts = []
    for relpath, source in files.items():
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
        contexts.append(
            FileContext(target, source, ast.parse(source, filename=str(target)))
        )
    return build_program(contexts)


def lint(tmp_path: Path, files: dict[str, str], **kwargs):
    return lint_paths([write_files(tmp_path, files)], **kwargs)


def codes(diagnostics) -> set[str]:
    return {d.rule for d in diagnostics}


# --------------------------------------------------------------------- #
# Symbol table
# --------------------------------------------------------------------- #


def test_symbol_table_indexes_classes_and_functions(tmp_path):
    program = build(
        tmp_path,
        {
            "repro/a.py": (
                "import threading\n"
                "from repro.b import Helper\n"
                "\n"
                "class Engine:\n"
                "    def __init__(self) -> None:\n"
                "        self._lock = threading.Lock()\n"
                "        self.helper = Helper()\n"
                "        self.members: set[int] = set()\n"
                "\n"
                "    def run(self) -> None:\n"
                "        pass\n"
                "\n"
                "def top() -> None:\n"
                "    pass\n"
            ),
            "repro/b.py": ("class Helper:\n    def ping(self) -> None:\n        pass\n"),
        },
    )
    assert "repro.a.Engine" in program.classes
    assert "repro.b.Helper" in program.classes
    assert "repro.a.top" in program.functions
    assert "repro.a.Engine.run" in program.functions

    engine = program.classes["repro.a.Engine"]
    assert "_lock" in engine.lock_attrs
    assert "members" in engine.set_attrs
    # Cross-module attribute type resolution through the constructor.
    assert program.resolve_class(engine.ctx.module, engine.attr_types["helper"]) is (
        program.classes["repro.b.Helper"]
    )


def test_inferred_guards_from_locked_writes(tmp_path):
    program = build(
        tmp_path,
        {
            "repro/a.py": (
                "import threading\n"
                "\n"
                "class Counter:\n"
                "    def __init__(self) -> None:\n"
                "        self._lock = threading.Lock()\n"
                "        self.count = 0\n"
                "\n"
                "    def bump(self) -> None:\n"
                "        with self._lock:\n"
                "            self.count = self.count + 1\n"
            ),
        },
    )
    counter = program.classes["repro.a.Counter"]
    assert "count" in counter.guarded


# --------------------------------------------------------------------- #
# Call graph
# --------------------------------------------------------------------- #


def test_call_graph_resolves_self_and_imported_calls(tmp_path):
    program = build(
        tmp_path,
        {
            "repro/a.py": (
                "from repro.b import helper\n"
                "\n"
                "class Engine:\n"
                "    def run(self) -> None:\n"
                "        self._step()\n"
                "\n"
                "    def _step(self) -> None:\n"
                "        helper()\n"
            ),
            "repro/b.py": "def helper() -> None:\n    pass\n",
        },
    )
    graph = build_call_graph(program)
    assert "repro.a.Engine._step" in graph.callees("repro.a.Engine.run")
    assert "repro.b.helper" in graph.callees("repro.a.Engine._step")


def test_blocking_analysis_propagates_with_witness_chain(tmp_path):
    program = build(
        tmp_path,
        {
            "repro/a.py": (
                "import time\n"
                "\n"
                "def slow() -> None:\n"
                "    time.sleep(1)\n"
                "\n"
                "def outer() -> None:\n"
                "    slow()\n"
            ),
        },
    )
    graph = build_call_graph(program)
    analysis = analyze_blocking(graph, barrier=lambda qualname: False)
    assert "repro.a.slow" in analysis.direct
    assert analysis.is_blocking("repro.a.outer")
    chain = analysis.chain("repro.a.outer")
    assert chain[0] == "repro.a.outer"
    assert "repro.a.slow" in chain


# --------------------------------------------------------------------- #
# Transitive DAT005
# --------------------------------------------------------------------- #


def test_dat005_transitive_flags_indirect_blocking(tmp_path):
    report = lint(
        tmp_path,
        {
            "repro/mod.py": (
                "import time\n"
                "\n"
                "def slow() -> None:\n"
                "    time.sleep(1)\n"
                "\n"
                "def outer() -> None:\n"
                "    slow()\n"
            ),
        },
    )
    dat005 = [d for d in report.diagnostics if d.rule == "DAT005"]
    # The direct site (file rule) plus the transitive caller (program rule).
    assert len(dat005) == 2
    transitive = [d for d in dat005 if "->" in d.message]
    assert len(transitive) == 1
    assert "repro.mod.slow" in transitive[0].message


def test_dat005_sanctioned_modules_are_barriers(tmp_path):
    # udprpc may block; its callers must NOT inherit the finding.
    report = lint(
        tmp_path,
        {
            "repro/sim/udprpc.py": (
                "import time\n"
                "\n"
                "def pump() -> None:\n"
                "    time.sleep(0.1)\n"
            ),
            "repro/mod.py": (
                "from repro.sim.udprpc import pump\n"
                "\n"
                "def caller() -> None:\n"
                "    pump()\n"
            ),
        },
    )
    assert "DAT005" not in codes(report.diagnostics)


# --------------------------------------------------------------------- #
# DAT010 lock discipline
# --------------------------------------------------------------------- #

LOCKED_CLASS = (
    "import threading\n"
    "\n"
    "class Counter:\n"
    "    def __init__(self) -> None:\n"
    "        self._lock = threading.Lock()\n"
    "        self.count = 0\n"
    "\n"
    "    def bump(self) -> None:\n"
    "        with self._lock:\n"
    "            self.count = self.count + 1\n"
)


def test_dat010_flags_unguarded_write(tmp_path):
    report = lint(
        tmp_path,
        {
            "repro/a.py": LOCKED_CLASS
            + ("\n    def reset(self) -> None:\n        self.count = 0\n"),
        },
    )
    (finding,) = [d for d in report.diagnostics if d.rule == "DAT010"]
    assert "count" in finding.message


def test_dat010_exempts_init_and_locked_suffix(tmp_path):
    report = lint(
        tmp_path,
        {
            "repro/a.py": LOCKED_CLASS
            + ("\n    def _reset_locked(self) -> None:\n        self.count = 0\n"),
        },
    )
    assert "DAT010" not in codes(report.diagnostics)


def test_dat010_flags_external_read_of_annotated_guard(tmp_path):
    report = lint(
        tmp_path,
        {
            "repro/a.py": (
                "import threading\n"
                "\n"
                "class Owner:\n"
                "    def __init__(self) -> None:\n"
                "        self._lock = threading.Lock()\n"
                "        self.count = 0  # guarded-by: _lock\n"
                "\n"
                "class Reader:\n"
                "    def peek(self, owner: Owner) -> int:\n"
                "        return owner.count\n"
            ),
        },
    )
    (finding,) = [d for d in report.diagnostics if d.rule == "DAT010"]
    assert "snapshot" in finding.message


def test_dat010_clean_class_without_lock(tmp_path):
    report = lint(
        tmp_path,
        {
            "repro/a.py": (
                "class Plain:\n"
                "    def __init__(self) -> None:\n"
                "        self.count = 0\n"
                "\n"
                "    def bump(self) -> None:\n"
                "        self.count = self.count + 1\n"
            ),
        },
    )
    assert "DAT010" not in codes(report.diagnostics)


# --------------------------------------------------------------------- #
# DAT011 resource lifecycle
# --------------------------------------------------------------------- #


def test_dat011_flags_handle_without_teardown(tmp_path):
    report = lint(
        tmp_path,
        {
            "repro/a.py": (
                "class Holder:\n"
                "    def __init__(self, path: str) -> None:\n"
                "        self._fh = open(path)\n"
            ),
        },
    )
    (finding,) = [d for d in report.diagnostics if d.rule == "DAT011"]
    assert "open(...)" in finding.message
    assert "no teardown" in finding.message


def test_dat011_clean_when_close_releases(tmp_path):
    report = lint(
        tmp_path,
        {
            "repro/a.py": (
                "class Holder:\n"
                "    def __init__(self, path: str) -> None:\n"
                "        self._fh = open(path)\n"
                "\n"
                "    def close(self) -> None:\n"
                "        self._fh.close()\n"
            ),
        },
    )
    assert "DAT011" not in codes(report.diagnostics)


def test_dat011_release_reachable_through_self_call(tmp_path):
    report = lint(
        tmp_path,
        {
            "repro/a.py": (
                "class Holder:\n"
                "    def __init__(self, path: str) -> None:\n"
                "        self._fh = open(path)\n"
                "\n"
                "    def close(self) -> None:\n"
                "        self._teardown()\n"
                "\n"
                "    def _teardown(self) -> None:\n"
                "        self._fh.close()\n"
            ),
        },
    )
    assert "DAT011" not in codes(report.diagnostics)


def test_dat011_flags_unreleased_foreign_upcall(tmp_path):
    source_leak = (
        "class Service:\n"
        "    def __init__(self, host) -> None:\n"
        "        self.host = host\n"
        '        host.upcalls["bcast"] = self._on_bcast\n'
        "\n"
        "    def _on_bcast(self, message) -> None:\n"
        "        pass\n"
    )
    report = lint(tmp_path, {"repro/a.py": source_leak})
    (finding,) = [d for d in report.diagnostics if d.rule == "DAT011"]
    assert "upcall registration" in finding.message

    source_clean = source_leak + (
        "\n"
        "    def close(self) -> None:\n"
        '        self.host.upcalls.pop("bcast", None)\n'
    )
    report = lint(tmp_path / "clean", {"repro/a.py": source_clean})
    assert "DAT011" not in codes(report.diagnostics)


# --------------------------------------------------------------------- #
# DAT012 deterministic iteration
# --------------------------------------------------------------------- #

SET_CLASS = (
    "class Roster:\n"
    "    def __init__(self) -> None:\n"
    "        self.members: set[int] = set()\n"
)


def test_dat012_flags_iteration_over_set_attr(tmp_path):
    report = lint(
        tmp_path,
        {
            "repro/a.py": SET_CLASS
            + (
                "\n"
                "    def notify(self) -> None:\n"
                "        for member in self.members:\n"
                "            print(member)  # datlint: disable=DAT004\n"
            ),
        },
    )
    (finding,) = [d for d in report.diagnostics if d.rule == "DAT012"]
    assert "members" in finding.message


def test_dat012_clean_when_sorted_or_order_free(tmp_path):
    report = lint(
        tmp_path,
        {
            "repro/a.py": SET_CLASS
            + (
                "\n"
                "    def ordered(self) -> list[int]:\n"
                "        return sorted(self.members)\n"
                "\n"
                "    def size(self) -> int:\n"
                "        return len(self.members)\n"
            ),
        },
    )
    assert "DAT012" not in codes(report.diagnostics)


# --------------------------------------------------------------------- #
# Suppression interaction + JSON output
# --------------------------------------------------------------------- #

DAT012_VIOLATION = SET_CLASS + (
    "\n"
    "    def snapshot(self) -> list[int]:\n"
    "        return [m for m in self.members]\n"
)


def test_program_findings_respect_line_suppressions(tmp_path):
    suppressed = DAT012_VIOLATION.replace(
        "return [m for m in self.members]",
        "return [m for m in self.members]  # datlint: disable=DAT012",
    )
    report = lint(tmp_path, {"repro/a.py": suppressed})
    assert "DAT012" not in codes(report.diagnostics)
    assert report.suppressed == 1


def test_unused_suppressions_reported_as_dat013(tmp_path):
    report = lint(
        tmp_path,
        {"repro/a.py": "VALUE = 1  # datlint: disable=DAT012\n"},
        warn_unused_suppressions=True,
    )
    (finding,) = report.diagnostics
    assert finding.rule == "DAT013"
    assert "stale" in finding.message


def test_used_suppressions_not_reported_as_stale(tmp_path):
    suppressed = DAT012_VIOLATION.replace(
        "return [m for m in self.members]",
        "return [m for m in self.members]  # datlint: disable=DAT012",
    )
    report = lint(
        tmp_path, {"repro/a.py": suppressed}, warn_unused_suppressions=True
    )
    assert not report.diagnostics


def test_cli_json_output_includes_program_findings(tmp_path, capsys):
    write_files(tmp_path, {"repro/a.py": DAT012_VIOLATION})
    assert main([str(tmp_path), "--format=json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    (finding,) = payload["diagnostics"]
    assert finding["rule"] == "DAT012"
    assert finding["path"].endswith("a.py")
    assert set(finding) == {"path", "line", "col", "rule", "message"}


def test_cli_select_filters_program_rules(tmp_path):
    write_files(tmp_path, {"repro/a.py": DAT012_VIOLATION})
    assert main([str(tmp_path), "--select=DAT010"]) == 0
    assert main([str(tmp_path), "--select=DAT012"]) == 1


def test_cli_list_rules_tags_whole_program(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("DAT010", "DAT011", "DAT012"):
        assert code in out
    assert "[whole-program]" in out

"""Unit tests for the experiment harness (small, fast configurations)."""

import pytest

from repro.experiments.common import geometric_sizes, mean, seeded_sweep
from repro.experiments.churn_overhead import run_churn_overhead
from repro.experiments.fig7_tree_properties import measure_tree, run_fig7_tree_properties
from repro.experiments.fig8_load_balance import (
    run_fig8a_message_distribution,
    run_fig8b_imbalance_sweep,
)
from repro.experiments.fig9_accuracy import run_fig9_accuracy
from repro.experiments.maan_routing import run_maan_routing
from repro.experiments.report import format_table


class TestCommon:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        with pytest.raises(ValueError):
            mean([])

    def test_geometric_sizes(self):
        assert geometric_sizes(16, 128) == [16, 32, 64, 128]
        with pytest.raises(ValueError):
            geometric_sizes(0, 10)

    def test_seeded_sweep_shape(self):
        points = seeded_sweep([1, 2], lambda x, seed: x * 10.0, n_seeds=3)
        assert len(points) == 2
        assert points[0].y == 10.0
        assert points[0].y_min == points[0].y_max == 10.0
        assert points[1].as_row()["x"] == 2

    def test_seeded_sweep_deterministic(self):
        calls: list[tuple] = []

        def measure(x, seed):
            calls.append((x, seed))
            return float(seed % 7)

        a = seeded_sweep([1], measure, n_seeds=2, master_seed=5)
        b = seeded_sweep([1], measure, n_seeds=2, master_seed=5)
        assert a[0].y == b[0].y


class TestFig7:
    def test_measure_tree_returns_triple(self):
        max_b, avg_b, height = measure_tree("balanced", "probing", 32, 16, seed=1)
        assert max_b >= 1 and avg_b >= 1 and height >= 1

    def test_small_sweep_shapes(self):
        points = run_fig7_tree_properties(sizes=[16, 64], n_seeds=2, bits=16)
        assert len(points) == 8  # 4 configs x 2 sizes
        by_config = {
            (p.scheme, p.id_strategy, p.n_nodes): p for p in points
        }
        # Balanced+probing max branching stays small; basic grows with n.
        assert by_config[("balanced", "probing", 64)].max_branching <= 6
        assert (
            by_config[("basic", "random", 64)].max_branching
            > by_config[("balanced", "probing", 64)].max_branching
        )

    def test_rows_renderable(self):
        points = run_fig7_tree_properties(sizes=[16], n_seeds=1, bits=16)
        table = format_table([p.as_row() for p in points])
        assert "max_branching" in table


class TestFig8:
    def test_distribution_anchors(self):
        dist = run_fig8a_message_distribution(n_nodes=128, seed=3)
        summary = dist.summary()
        # The root receives n - 1 value messages; the heaviest relay (its
        # closest-preceding child) can carry up to ~2x that in sends+receives.
        assert summary["centralized_max"] >= 127
        assert summary["balanced_max"] < summary["basic_max"] < summary["centralized_max"]

    def test_distribution_sorted_descending(self):
        dist = run_fig8a_message_distribution(n_nodes=64, seed=4)
        for series in (dist.centralized, dist.basic, dist.balanced):
            assert series == sorted(series, reverse=True)
            assert len(series) == 64

    def test_imbalance_ordering(self):
        points = run_fig8b_imbalance_sweep(sizes=[100, 300], n_seeds=1)
        for point in points:
            assert point.balanced < point.basic < point.centralized

    def test_imbalance_growth_classes(self):
        points = run_fig8b_imbalance_sweep(sizes=[100, 800], n_seeds=1)
        small, large = points
        # Centralized grows ~linearly (x8 sizes -> much bigger ratio than DATs).
        assert large.centralized / small.centralized > 3.0
        assert large.balanced / small.balanced < 2.0


class TestFig9:
    def test_synchronous_is_exact(self):
        result = run_fig9_accuracy(n_nodes=32, n_slots=10, mode="synchronous")
        assert result.max_relative_error() < 1e-9
        assert result.correlation() > 0.999999

    def test_continuous_is_accurate(self):
        result = run_fig9_accuracy(
            n_nodes=64,
            n_slots=60,
            mode="continuous",
            identical_traces=False,
            push_period=1.0,
        )
        assert result.mean_relative_error() < 0.05
        assert len(result.scatter_points()) == 60

    def test_avg_aggregate(self):
        result = run_fig9_accuracy(
            n_nodes=32, n_slots=5, mode="synchronous", aggregate="avg"
        )
        assert all(0 <= v <= 100 for v in result.aggregated)

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            run_fig9_accuracy(mode="psychic")


class TestMaanRouting:
    def test_structure(self):
        result = run_maan_routing(
            n_nodes=64, n_resources=64, queries_per_point=3,
            selectivities=[0.05, 0.2],
        )
        assert result.registration_hops_per_attribute() <= 12  # ~log2(64)
        assert set(result.range_costs) == {0.05, 0.2}
        # Wider ranges visit more nodes.
        assert result.range_costs[0.2][1] > result.range_costs[0.05][1]
        # Multi-attribute cost follows the dominant (min) selectivity.
        assert result.multi_costs[0.05] < result.multi_costs[0.2]


class TestChurnOverhead:
    def test_runs_and_reports(self):
        result = run_churn_overhead(n_nodes=12, n_churn_events=3, bits=12, seed=5)
        assert result.n_events >= 1
        assert result.total_messages > 0
        assert result.dat_maintenance_messages() == 0
        assert result.mean_repair_rounds() < 30
        # Only Chord protocol kinds appear.
        for kind in result.by_kind:
            assert not kind.startswith("agg_")

"""Unit tests for exact bit math."""

import pytest

from repro.util.bits import (
    ceil_div,
    ceil_log2,
    cyclic_increment,
    floor_log2,
    is_power_of_two,
    next_power_of_two,
)


class TestFloorLog2:
    def test_powers_of_two(self):
        for k in range(0, 64):
            assert floor_log2(1 << k) == k

    def test_between_powers(self):
        assert floor_log2(3) == 1
        assert floor_log2(5) == 2
        assert floor_log2(1023) == 9

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            floor_log2(0)
        with pytest.raises(ValueError):
            floor_log2(-4)


class TestCeilLog2:
    def test_powers_of_two_are_exact(self):
        for k in range(0, 64):
            assert ceil_log2(1 << k) == k

    def test_rounds_up_between_powers(self):
        assert ceil_log2(3) == 2
        assert ceil_log2(5) == 3
        assert ceil_log2(1025) == 11

    def test_one(self):
        assert ceil_log2(1) == 0

    def test_large_values_no_float_error(self):
        # 2^100 + 1 would misround through math.log2.
        assert ceil_log2((1 << 100) + 1) == 101
        assert ceil_log2(1 << 100) == 100

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            ceil_log2(0)


class TestIsPowerOfTwo:
    def test_powers(self):
        assert all(is_power_of_two(1 << k) for k in range(40))

    def test_non_powers(self):
        assert not is_power_of_two(0)
        assert not is_power_of_two(3)
        assert not is_power_of_two(-8)
        assert not is_power_of_two(6)


class TestNextPowerOfTwo:
    def test_exact_power_unchanged(self):
        assert next_power_of_two(8) == 8

    def test_rounds_up(self):
        assert next_power_of_two(5) == 8
        assert next_power_of_two(9) == 16

    def test_one(self):
        assert next_power_of_two(1) == 1

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            next_power_of_two(0)


class TestCeilDiv:
    def test_exact_division(self):
        assert ceil_div(10, 5) == 2

    def test_rounds_up(self):
        assert ceil_div(7, 3) == 3
        assert ceil_div(1, 100) == 1

    def test_zero_numerator(self):
        assert ceil_div(0, 7) == 0

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            ceil_div(5, 0)
        with pytest.raises(ValueError):
            ceil_div(-1, 3)


class TestCyclicIncrement:
    def test_wraps_at_modulus(self):
        assert cyclic_increment(0, 4) == 1
        assert cyclic_increment(2, 4) == 3
        assert cyclic_increment(3, 4) == 0

    def test_modulus_one_is_fixed_point(self):
        assert cyclic_increment(0, 1) == 0

    def test_full_cycle_visits_every_slot(self):
        cursor, seen = 0, []
        for _ in range(8):
            seen.append(cursor)
            cursor = cyclic_increment(cursor, 8)
        assert sorted(seen) == list(range(8))
        assert cursor == 0

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            cyclic_increment(0, 0)
        with pytest.raises(ValueError):
            cyclic_increment(4, 4)
        with pytest.raises(ValueError):
            cyclic_increment(-1, 4)

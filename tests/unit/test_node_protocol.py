"""Unit tests for the dynamic Chord protocol node."""

import pytest

from repro.chord.idspace import IdSpace
from repro.chord.node import ChordConfig, ChordProtocolNode
from repro.sim.latency import ConstantLatency
from repro.sim.messages import Message
from repro.sim.simnet import SimTransport


def make_overlay(idents: list[int], bits: int = 8, settle: float = 60.0):
    """Build a small overlay and let it stabilize."""
    space = IdSpace(bits)
    transport = SimTransport(latency=ConstantLatency(0.01))
    config = ChordConfig(stabilize_interval=0.5, fix_fingers_interval=0.1)
    nodes: dict[int, ChordProtocolNode] = {}
    first = ChordProtocolNode(idents[0], space, transport, config)
    first.create()
    nodes[idents[0]] = first
    for ident in idents[1:]:
        node = ChordProtocolNode(ident, space, transport, config)
        node.join(idents[0])
        nodes[ident] = node
        transport.run(until=transport.now() + 5.0)
    transport.run(until=transport.now() + settle)
    return space, transport, nodes


class TestSingleNode:
    def test_create_self_ring(self):
        space = IdSpace(8)
        transport = SimTransport()
        node = ChordProtocolNode(42, space, transport)
        node.create()
        assert node.successor == 42
        assert node.predecessor is None

    def test_lookup_on_single_node_ring(self):
        space = IdSpace(8)
        transport = SimTransport()
        node = ChordProtocolNode(42, space, transport)
        node.create()
        results: list[int] = []
        node.lookup(100, lambda result, path: results.append(result))
        transport.run(until=5.0)
        assert results == [42]


class TestStabilization:
    def test_two_node_ring_converges(self):
        _space, _transport, nodes = make_overlay([10, 200])
        assert nodes[10].successor == 200
        assert nodes[200].successor == 10
        assert nodes[10].predecessor == 200
        assert nodes[200].predecessor == 10

    def test_five_node_ring_converges(self):
        idents = [10, 60, 120, 180, 240]
        _space, _transport, nodes = make_overlay(idents)
        for i, ident in enumerate(idents):
            expected_succ = idents[(i + 1) % len(idents)]
            expected_pred = idents[i - 1]
            assert nodes[ident].successor == expected_succ, ident
            assert nodes[ident].predecessor == expected_pred, ident

    def test_successor_lists_populated(self):
        idents = [10, 60, 120, 180, 240]
        _space, _transport, nodes = make_overlay(idents)
        for node in nodes.values():
            assert len(node.successor_list) >= 2

    def test_fingers_converge(self):
        idents = [10, 60, 120, 180, 240]
        space, transport, nodes = make_overlay(idents)
        from repro.chord.ring import StaticRing

        ideal = StaticRing(space, idents)
        for node in nodes.values():
            node.fix_all_fingers()
        transport.run(until=transport.now() + 10.0)
        for ident, node in nodes.items():
            assert node.finger_table().entries == ideal.finger_entries(ident), ident


class TestLookup:
    def test_lookup_resolves_successor(self):
        idents = [10, 60, 120, 180, 240]
        space, transport, nodes = make_overlay(idents)
        for node in nodes.values():
            node.fix_all_fingers()
        transport.run(until=transport.now() + 10.0)

        results: list[int] = []
        nodes[10].lookup(119, lambda result, path: results.append(result))
        transport.run(until=transport.now() + 5.0)
        assert results == [120]

    def test_lookup_own_key(self):
        idents = [10, 200]
        _space, transport, nodes = make_overlay(idents)
        results: list[int] = []
        nodes[10].lookup(10, lambda result, path: results.append(result))
        transport.run(until=transport.now() + 5.0)
        assert results == [10]

    def test_lookup_path_recorded(self):
        idents = [10, 60, 120, 180, 240]
        space, transport, nodes = make_overlay(idents)
        for node in nodes.values():
            node.fix_all_fingers()
        transport.run(until=transport.now() + 10.0)
        paths: list[list[int]] = []
        nodes[10].lookup(239, lambda result, path: paths.append(path))
        transport.run(until=transport.now() + 5.0)
        assert len(paths) == 1
        assert paths[0][0] == 10  # starts at the origin


class TestDepartures:
    def test_graceful_leave_repairs_ring(self):
        idents = [10, 60, 120]
        _space, transport, nodes = make_overlay(idents)
        nodes[60].leave()
        transport.run(until=transport.now() + 30.0)
        assert nodes[10].successor == 120
        assert nodes[120].predecessor == 10

    def test_crash_repaired_by_stabilization(self):
        idents = [10, 60, 120, 180]
        _space, transport, nodes = make_overlay(idents)
        nodes[60].crash()
        transport.run(until=transport.now() + 60.0)
        assert nodes[10].successor == 120


class TestUpcalls:
    def test_custom_kind_dispatched(self):
        space = IdSpace(8)
        transport = SimTransport()
        node = ChordProtocolNode(5, space, transport)
        node.create()
        seen: list[Message] = []
        node.upcalls["custom"] = lambda m: seen.append(m) or None
        transport.send(Message(kind="custom", source=99, destination=5))
        transport.run(until=1.0)
        assert len(seen) == 1

    def test_unknown_kind_raises(self):
        space = IdSpace(8)
        transport = SimTransport()
        node = ChordProtocolNode(5, space, transport)
        node.create()
        from repro.errors import RoutingError

        with pytest.raises(RoutingError):
            node._handle(Message(kind="bogus", source=1, destination=5))


class TestProbeJoin:
    def test_probe_returns_midpoint_of_largest_gap(self):
        idents = [0, 128]
        _space, transport, nodes = make_overlay(idents)
        request = Message(kind="probe_join", source=0, destination=128, payload={})
        reply = nodes[128]._handle(request)
        designated = reply.payload["designated"]
        # Largest visible interval is (0, 128] or (128, 0]; both split to
        # a point far from the two existing nodes.
        assert designated not in (0, 128)
        assert 30 < designated % 256 < 230 or designated in (64, 192)

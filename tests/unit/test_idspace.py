"""Unit tests for the circular identifier space."""

import pytest

from repro.chord.idspace import IdSpace
from repro.errors import IdentifierError


class TestConstruction:
    def test_size_and_max(self):
        space = IdSpace(4)
        assert space.size == 16
        assert space.max_id == 15

    def test_rejects_bad_bits(self):
        with pytest.raises(IdentifierError):
            IdSpace(0)
        with pytest.raises(IdentifierError):
            IdSpace(1000)

    def test_sha1_width_supported(self):
        assert IdSpace(160).size == 1 << 160


class TestValidation:
    def test_contains(self):
        space = IdSpace(4)
        assert space.contains(0)
        assert space.contains(15)
        assert not space.contains(16)
        assert not space.contains(-1)

    def test_validate_returns_value(self):
        assert IdSpace(4).validate(7) == 7

    def test_validate_raises(self):
        with pytest.raises(IdentifierError):
            IdSpace(4).validate(16)

    def test_wrap(self):
        space = IdSpace(4)
        assert space.wrap(16) == 0
        assert space.wrap(17) == 1
        assert space.wrap(-1) == 15


class TestDistances:
    def test_cw_basic(self):
        space = IdSpace(4)
        assert space.cw(1, 5) == 4
        assert space.cw(5, 1) == 12  # wraps around
        assert space.cw(7, 7) == 0

    def test_cw_paper_example(self):
        # Algorithm 1 example: x = cw(8, 0) = 8 in a 4-bit space.
        assert IdSpace(4).cw(8, 0) == 8

    def test_cw_plus_reverse_is_ring_size(self):
        space = IdSpace(6)
        for a, b in [(3, 50), (0, 63), (10, 11)]:
            assert space.cw(a, b) + space.cw(b, a) == space.size

    def test_ccw_is_reverse(self):
        space = IdSpace(5)
        assert space.ccw(3, 10) == space.cw(10, 3)

    def test_ring_distance_symmetric(self):
        space = IdSpace(6)
        assert space.ring_distance(1, 63) == 2
        assert space.ring_distance(63, 1) == 2
        assert space.ring_distance(5, 5) == 0


class TestIntervals:
    def test_in_open(self):
        space = IdSpace(4)
        assert space.in_open(5, 3, 8)
        assert not space.in_open(3, 3, 8)
        assert not space.in_open(8, 3, 8)
        # wrapping interval (14, 2)
        assert space.in_open(15, 14, 2)
        assert space.in_open(0, 14, 2)
        assert not space.in_open(2, 14, 2)

    def test_in_open_degenerate_full_circle(self):
        space = IdSpace(4)
        assert space.in_open(5, 3, 3)
        assert not space.in_open(3, 3, 3)

    def test_in_half_open_right(self):
        space = IdSpace(4)
        assert space.in_half_open_right(8, 3, 8)
        assert not space.in_half_open_right(3, 3, 8)
        # a == b means whole circle (one-node ring successor test)
        assert space.in_half_open_right(11, 4, 4)

    def test_in_half_open_left(self):
        space = IdSpace(4)
        assert space.in_half_open_left(3, 3, 8)
        assert not space.in_half_open_left(8, 3, 8)

    def test_in_closed(self):
        space = IdSpace(4)
        assert space.in_closed(3, 3, 8)
        assert space.in_closed(8, 3, 8)
        assert not space.in_closed(9, 3, 8)
        assert space.in_closed(3, 3, 3)
        assert not space.in_closed(4, 3, 3)


class TestFingerOffsets:
    def test_finger_start(self):
        space = IdSpace(4)
        assert space.finger_start(8, 0) == 9
        assert space.finger_start(8, 3) == 0  # 8 + 8 wraps

    def test_inbound_finger_point(self):
        space = IdSpace(4)
        assert space.inbound_finger_point(0, 3) == 8
        assert space.inbound_finger_point(2, 2) == 14  # wraps backward

    def test_inverse_relationship(self):
        space = IdSpace(8)
        for j in range(space.bits):
            assert space.inbound_finger_point(space.finger_start(77, j), j) == 77

    def test_rejects_bad_index(self):
        space = IdSpace(4)
        with pytest.raises(IdentifierError):
            space.finger_start(0, 4)
        with pytest.raises(IdentifierError):
            space.inbound_finger_point(0, -1)


class TestMeanGap:
    def test_even_division(self):
        assert IdSpace(4).mean_gap(16) == 1.0
        assert IdSpace(4).mean_gap(4) == 4.0

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            IdSpace(4).mean_gap(0)

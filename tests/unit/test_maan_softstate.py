"""Unit tests for TTL-based soft-state registration."""

import pytest

from repro.chord.idgen import UniformIdAssigner
from repro.chord.idspace import IdSpace
from repro.errors import SchemaError
from repro.maan.attrs import AttributeSchema, Resource
from repro.maan.network import MaanNetwork
from repro.maan.query import RangeQuery
from repro.maan.softstate import SoftStateRegistry, SoftStateStore
from repro.maan.store import ResourceStore


def make_network() -> MaanNetwork:
    space = IdSpace(20)
    ring = UniformIdAssigner().build_ring(space, 32)
    return MaanNetwork(
        ring, {"cpu-usage": AttributeSchema("cpu-usage", low=0.0, high=100.0)}
    )


class TestSoftStateStore:
    def test_expiry(self):
        store = SoftStateStore(ResourceStore())
        store.put("cpu", 5.0, Resource("a", {"cpu": 5.0}), now=0.0, ttl=10.0)
        assert store.live_count(5.0) == 1
        assert store.expired_count(15.0) == 1
        assert store.sweep(15.0) == 1
        assert store.store.count() == 0

    def test_touch_extends(self):
        store = SoftStateStore(ResourceStore())
        store.put("cpu", 5.0, Resource("a", {"cpu": 5.0}), now=0.0, ttl=10.0)
        assert store.touch("cpu", "a", now=8.0, ttl=10.0)
        assert store.sweep(15.0) == 0
        assert store.live_count(15.0) == 1

    def test_touch_unknown(self):
        store = SoftStateStore(ResourceStore())
        assert not store.touch("cpu", "ghost", now=0.0, ttl=1.0)

    def test_sweep_only_removes_expired(self):
        store = SoftStateStore(ResourceStore())
        store.put("cpu", 1.0, Resource("a", {"cpu": 1.0}), now=0.0, ttl=5.0)
        store.put("cpu", 2.0, Resource("b", {"cpu": 2.0}), now=0.0, ttl=50.0)
        assert store.sweep(10.0) == 1
        assert store.store.count() == 1

    def test_rejects_bad_ttl(self):
        store = SoftStateStore(ResourceStore())
        with pytest.raises(ValueError):
            store.put("cpu", 1.0, Resource("a", {"cpu": 1.0}), now=0.0, ttl=0)


class TestSoftStateRegistry:
    def test_register_and_query(self):
        network = make_network()
        registry = SoftStateRegistry(network, default_ttl=30.0)
        hops = registry.register(Resource("a", {"cpu-usage": 42.0}), now=0.0)
        assert hops >= 0
        result = network.range_query(RangeQuery("cpu-usage", 40.0, 45.0))
        assert result.resource_ids() == {"a"}

    def test_expired_records_leave_query_results(self):
        network = make_network()
        registry = SoftStateRegistry(network, default_ttl=10.0)
        registry.register(Resource("a", {"cpu-usage": 42.0}), now=0.0)
        registry.sweep(now=20.0)
        result = network.range_query(RangeQuery("cpu-usage", 40.0, 45.0))
        assert result.resources == []

    def test_refresh_keeps_alive(self):
        network = make_network()
        registry = SoftStateRegistry(network, default_ttl=10.0)
        resource = Resource("a", {"cpu-usage": 42.0})
        registry.register(resource, now=0.0)
        registry.refresh(resource, now=8.0)
        assert registry.sweep(now=15.0) == 0
        result = network.range_query(RangeQuery("cpu-usage", 40.0, 45.0))
        assert result.resource_ids() == {"a"}

    def test_report(self):
        network = make_network()
        registry = SoftStateRegistry(network, default_ttl=10.0)
        registry.register(Resource("a", {"cpu-usage": 1.0}), now=0.0)
        registry.register(Resource("b", {"cpu-usage": 2.0}), now=5.0)
        report = registry.report(now=12.0)
        assert report.live_records == 1
        assert report.expired_records == 1
        assert report.total_records == 2

    def test_rejects_undeclared_only_resource(self):
        network = make_network()
        registry = SoftStateRegistry(network)
        with pytest.raises(SchemaError):
            registry.register(Resource("x", {"gpu": 1.0}), now=0.0)

    def test_rejects_bad_default_ttl(self):
        with pytest.raises(ValueError):
            SoftStateRegistry(make_network(), default_ttl=0)

"""Unit tests for MaanNodeService plumbing (injected providers, failures).

The integration suite covers the live-protocol behavior; these tests pin
the service's contracts in isolation using the in-process transport and
hand-rolled lookup functions, including the failure paths that are hard
to trigger on a healthy overlay.
"""

import pytest

from repro.chord.idspace import IdSpace
from repro.core.service import StandaloneDatHost
from repro.errors import QueryError, SchemaError
from repro.maan.attrs import AttributeKind, AttributeSchema, Resource
from repro.maan.query import RangeQuery
from repro.maan.service import MaanNodeService
from repro.sim.inproc import InprocTransport

SCHEMAS = {"cpu": AttributeSchema("cpu", low=0.0, high=100.0)}


def make_service(ident=1, lookup=None, successor=None, predecessor=None):
    transport = InprocTransport()
    host = StandaloneDatHost(ident, IdSpace(16), transport)
    service = MaanNodeService(
        host,
        SCHEMAS,
        lookup_fn=lookup or (lambda key, ok, fail=None: ok(ident, [ident])),
        successor_provider=successor or (lambda: ident),
        predecessor_provider=predecessor or (lambda: ident),
    )
    return transport, host, service


class TestConstruction:
    def test_requires_lookup(self):
        transport = InprocTransport()
        host = StandaloneDatHost(1, IdSpace(16), transport)
        with pytest.raises(QueryError):
            MaanNodeService(host, SCHEMAS, successor_provider=lambda: 1)

    def test_requires_successor_provider(self):
        transport = InprocTransport()
        host = StandaloneDatHost(2, IdSpace(16), transport)
        with pytest.raises(QueryError):
            MaanNodeService(host, SCHEMAS, lookup_fn=lambda *a: None)


class TestRegistration:
    def test_local_placement_when_self_owns(self):
        _transport, _host, service = make_service()
        done: list[int] = []
        service.register(Resource("a", {"cpu": 42.0}), on_done=done.append)
        assert done == [1]
        assert service.store.count("cpu") == 1

    def test_lookup_failure_counts_as_unstored(self):
        def failing_lookup(key, ok, fail=None):
            fail(key)

        _transport, _host, service = make_service(lookup=failing_lookup)
        done: list[int] = []
        service.register(Resource("a", {"cpu": 42.0}), on_done=done.append)
        assert done == [0]
        assert service.store.count() == 0

    def test_no_declared_attributes_rejected(self):
        _transport, _host, service = make_service()
        with pytest.raises(SchemaError):
            service.register(Resource("a", {"gpu": 1.0}))


class TestQueryValidation:
    def test_undeclared_attribute(self):
        _transport, _host, service = make_service()
        with pytest.raises(SchemaError):
            service.range_query(RangeQuery("disk", 0, 1), lambda r: None)

    def test_string_attribute_rejects_range(self):
        transport = InprocTransport()
        host = StandaloneDatHost(3, IdSpace(16), transport)
        service = MaanNodeService(
            host,
            {"os": AttributeSchema("os", kind=AttributeKind.STRING)},
            lookup_fn=lambda key, ok, fail=None: ok(3, [3]),
            successor_provider=lambda: 3,
            predecessor_provider=lambda: 3,
        )
        with pytest.raises(QueryError):
            service.range_query(RangeQuery("os", 0, 1), lambda r: None)

    def test_lookup_failure_yields_empty_result(self):
        def failing_lookup(key, ok, fail=None):
            fail(key)

        _transport, _host, service = make_service(lookup=failing_lookup)
        results = []
        service.range_query(RangeQuery("cpu", 0, 100), results.append)
        assert len(results) == 1
        assert results[0].resources == []


class TestSingleNodeWalk:
    def test_self_owned_full_range(self):
        # One-node overlay: the walk starts and terminates locally.
        _transport, _host, service = make_service()
        service.register(Resource("a", {"cpu": 10.0}))
        service.register(Resource("b", {"cpu": 90.0}))
        results = []
        service.range_query(RangeQuery("cpu", 0.0, 100.0), results.append)
        assert len(results) == 1
        assert results[0].resource_ids() == {"a", "b"}

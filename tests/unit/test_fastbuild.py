"""Equivalence tests: vectorized fast path vs scalar reference builders."""

import numpy as np
import pytest

from repro.chord.fastbuild import (
    FAST_PATH_MAX_BITS,
    build_dat_fast,
    fast_balanced_parents,
    fast_basic_parents,
    fast_finger_matrix,
)
from repro.chord.idgen import ProbingIdAssigner, RandomIdAssigner, UniformIdAssigner
from repro.chord.idspace import IdSpace
from repro.chord.ring import StaticRing
from repro.core.builder import build_balanced_dat, build_basic_dat
from repro.errors import TreeError


RING_CASES = [
    ("full4", IdSpace(4), lambda s: StaticRing(s, range(16))),
    ("uniform", IdSpace(16), lambda s: UniformIdAssigner().build_ring(s, 64)),
    ("random", IdSpace(32), lambda s: RandomIdAssigner().build_ring(s, 200, rng=3)),
    ("probing", IdSpace(32), lambda s: ProbingIdAssigner().build_ring(s, 150, rng=4)),
    ("sparse", IdSpace(20), lambda s: StaticRing(s, [5, 1000, 99999, 524287])),
]


@pytest.mark.parametrize("name,space,factory", RING_CASES)
class TestEquivalence:
    def test_finger_matrix_matches_scalar(self, name, space, factory):
        ring = factory(space)
        matrix = fast_finger_matrix(ring)
        for i, node in enumerate(ring.nodes):
            assert list(matrix[i]) == ring.finger_entries(node), node

    def test_basic_parents_match(self, name, space, factory):
        ring = factory(space)
        for key in (0, space.size // 3, space.max_id):
            scalar = build_basic_dat(ring, key).parent
            assert fast_basic_parents(ring, key) == scalar, key

    def test_balanced_parents_match(self, name, space, factory):
        ring = factory(space)
        for key in (0, space.size // 3, space.max_id):
            scalar = build_balanced_dat(ring, key).parent
            assert fast_balanced_parents(ring, key) == scalar, key

    def test_build_dat_fast_trees_identical(self, name, space, factory):
        ring = factory(space)
        for scheme in ("basic", "balanced"):
            fast = build_dat_fast(ring, 7 % space.size, scheme=scheme)
            from repro.core.builder import build_dat

            slow = build_dat(ring, 7 % space.size, scheme=scheme)
            assert fast.root == slow.root
            assert fast.parent == slow.parent


class TestFallbacksAndLimits:
    def test_wide_space_falls_back(self):
        space = IdSpace(160)
        ring = StaticRing(space, [1, 2**100, 2**150])
        tree = build_dat_fast(ring, 5)
        assert tree.n_nodes == 3  # scalar fallback worked

    def test_direct_call_on_wide_space_rejected(self):
        space = IdSpace(160)
        ring = StaticRing(space, [1, 2**100])
        with pytest.raises(TreeError):
            fast_finger_matrix(ring)

    def test_empty_ring_rejected(self):
        with pytest.raises(TreeError):
            fast_finger_matrix(StaticRing(IdSpace(8)))

    def test_single_node_fast_build(self):
        ring = StaticRing(IdSpace(8), [42])
        tree = build_dat_fast(ring, 0)
        assert tree.root == 42 and tree.parent == {}

    def test_max_bits_boundary(self):
        space = IdSpace(FAST_PATH_MAX_BITS)
        ring = RandomIdAssigner().build_ring(space, 50, rng=5)
        scalar = build_balanced_dat(ring, 12345).parent
        assert fast_balanced_parents(ring, 12345) == scalar


class TestVectorizedCeilLog2:
    def test_exact_on_powers_and_neighbors(self):
        from repro.chord.fastbuild import _vectorized_ceil_log2
        from repro.util.bits import ceil_log2

        values = []
        for k in range(1, 50):
            values.extend([(1 << k) - 1, 1 << k, (1 << k) + 1])
        arr = np.array(values, dtype=np.int64)
        expected = np.array([ceil_log2(int(v)) for v in values])
        assert np.array_equal(_vectorized_ceil_log2(arr), expected)


class TestExactCeilQ:
    def test_matches_ceil_div_in_vector_range(self):
        from repro.chord.fastbuild import _exact_ceil_q
        from repro.util.bits import ceil_div

        x = np.array([0, 1, 2, 5, 1000, 2**20, 2**30], dtype=np.int64)
        n, size = 4096, 2**32
        expected = [ceil_div(int(v) * n + 2 * size, 3 * n) for v in x]
        assert _exact_ceil_q(x, n, size).tolist() == expected

    def test_overflow_branch_stays_exact(self):
        from repro.chord.fastbuild import _exact_ceil_q
        from repro.util.bits import ceil_div

        # x*n + 2*size >= 2^63 forces the arbitrary-precision fallback.
        size = 2**48
        n = 2**16
        x = np.array([size - 1, size - 2, size // 2], dtype=np.int64)
        assert int(x.max()) * n + 2 * size >= 2**63
        expected = [ceil_div(int(v) * n + 2 * size, 3 * n) for v in x]
        assert _exact_ceil_q(x, n, size).tolist() == expected

    def test_empty_input(self):
        from repro.chord.fastbuild import _exact_ceil_q

        assert _exact_ceil_q(np.array([], dtype=np.int64), 8, 256).size == 0


class TestSharedMatrix:
    def test_supplied_matrix_used_across_keys(self):
        space = IdSpace(16)
        ring = UniformIdAssigner().build_ring(space, 64)
        matrix = fast_finger_matrix(ring)
        for key in (0, 1234, space.max_id):
            with_shared = fast_balanced_parents(ring, key, matrix=matrix)
            fresh = fast_balanced_parents(ring, key)
            assert with_shared == fresh
            with_shared = fast_basic_parents(ring, key, matrix=matrix)
            fresh = fast_basic_parents(ring, key)
            assert with_shared == fresh

    def test_build_dat_fast_accepts_matrix(self):
        space = IdSpace(16)
        ring = UniformIdAssigner().build_ring(space, 32)
        matrix = fast_finger_matrix(ring)
        tree = build_dat_fast(ring, 42, matrix=matrix)
        plain = build_dat_fast(ring, 42)
        assert tree.root == plain.root and tree.parent == plain.parent

    def test_wrong_shape_matrix_rejected(self):
        space = IdSpace(16)
        ring = UniformIdAssigner().build_ring(space, 32)
        bad = np.zeros((3, space.bits), dtype=np.int64)
        with pytest.raises(TreeError):
            fast_balanced_parents(ring, 0, matrix=bad)


class TestSpeedupSanity:
    def test_fast_path_is_faster_at_scale(self):
        import time

        space = IdSpace(32)
        ring = ProbingIdAssigner().build_ring(space, 4096, rng=9)
        t0 = time.perf_counter()
        fast = build_dat_fast(ring, 777, scheme="balanced")
        t_fast = time.perf_counter() - t0
        t0 = time.perf_counter()
        slow = build_balanced_dat(ring, 777)
        t_slow = time.perf_counter() - t0
        assert fast.parent == slow.parent
        # Generous bound: merely require the fast path not be slower.
        assert t_fast <= t_slow * 1.5

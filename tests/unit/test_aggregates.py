"""Unit tests for mergeable aggregate functions."""

import math

import pytest

from repro.core.aggregates import (
    AverageAggregate,
    CountAggregate,
    HistogramAggregate,
    MaxAggregate,
    MinAggregate,
    StdAggregate,
    SumAggregate,
    TopKAggregate,
    available_aggregates,
    get_aggregate,
    register_aggregate,
)
from repro.core.aggregates import Aggregate
from repro.errors import AggregationError, UnknownAggregateError

VALUES = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]


class TestSum:
    def test_aggregate(self):
        assert SumAggregate().aggregate(VALUES) == sum(VALUES)

    def test_single_value(self):
        assert SumAggregate().aggregate([7.5]) == 7.5


class TestCount:
    def test_counts_readings(self):
        assert CountAggregate().aggregate(VALUES) == len(VALUES)

    def test_values_irrelevant(self):
        assert CountAggregate().aggregate([0.0, 0.0]) == 2


class TestMinMax:
    def test_min(self):
        assert MinAggregate().aggregate(VALUES) == 1.0

    def test_max(self):
        assert MaxAggregate().aggregate(VALUES) == 9.0


class TestAverage:
    def test_aggregate(self):
        assert AverageAggregate().aggregate(VALUES) == pytest.approx(
            sum(VALUES) / len(VALUES)
        )

    def test_merge_keeps_exact_counts(self):
        agg = AverageAggregate()
        left = agg.merge_all([agg.lift(v) for v in VALUES[:3]])
        right = agg.merge_all([agg.lift(v) for v in VALUES[3:]])
        merged = agg.merge(left, right)
        assert merged[1] == len(VALUES)


class TestStd:
    def test_matches_numpy(self):
        import numpy as np

        assert StdAggregate().aggregate(VALUES) == pytest.approx(np.std(VALUES))

    def test_constant_series_is_zero(self):
        assert StdAggregate().aggregate([4.0] * 10) == pytest.approx(0.0)

    def test_merge_order_invariant(self):
        agg = StdAggregate()
        states = [agg.lift(v) for v in VALUES]
        forward = agg.merge_all(states)
        backward = agg.merge_all(reversed(states))
        assert agg.finalize(forward) == pytest.approx(agg.finalize(backward))


class TestHistogram:
    def test_bin_assignment(self):
        hist = HistogramAggregate(low=0, high=100, n_bins=10)
        assert hist.bin_index(0) == 0
        assert hist.bin_index(9.99) == 0
        assert hist.bin_index(10) == 1
        assert hist.bin_index(99.9) == 9

    def test_out_of_range_clamps(self):
        hist = HistogramAggregate(low=0, high=100, n_bins=10)
        assert hist.bin_index(-5) == 0
        assert hist.bin_index(150) == 9

    def test_aggregate_counts_sum_to_n(self):
        hist = HistogramAggregate(low=0, high=10, n_bins=5)
        counts = hist.aggregate(VALUES)
        assert sum(counts) == len(VALUES)

    def test_merge_width_mismatch(self):
        hist = HistogramAggregate(low=0, high=10, n_bins=5)
        with pytest.raises(AggregationError):
            hist.merge((1, 2), (1, 2, 3))

    def test_bin_edges(self):
        hist = HistogramAggregate(low=0, high=10, n_bins=5)
        assert hist.bin_edges() == [0, 2, 4, 6, 8, 10]

    def test_rejects_bad_domain(self):
        with pytest.raises(ValueError):
            HistogramAggregate(low=5, high=5)
        with pytest.raises(ValueError):
            HistogramAggregate(low=0, high=1, n_bins=0)


class TestQuantile:
    def test_median_of_uniform_grid(self):
        from repro.core.aggregates import QuantileAggregate

        agg = QuantileAggregate(q=0.5, low=0, high=100, n_bins=100)
        values = list(range(0, 100))
        assert agg.aggregate(values) == pytest.approx(50.0, abs=2.0)

    def test_p95(self):
        from repro.core.aggregates import QuantileAggregate

        agg = QuantileAggregate(q=0.95, low=0, high=100, n_bins=200)
        values = list(range(0, 100))
        assert agg.aggregate(values) == pytest.approx(95.0, abs=2.0)

    def test_extremes(self):
        from repro.core.aggregates import QuantileAggregate

        values = [10.0, 20.0, 30.0]
        low = QuantileAggregate(q=0.0, low=0, high=100).aggregate(values)
        high = QuantileAggregate(q=1.0, low=0, high=100).aggregate(values)
        assert low <= 11.0
        assert high >= 29.0

    def test_error_bounded_by_bin_width(self):
        from repro.core.aggregates import QuantileAggregate
        import numpy as np

        rng = np.random.default_rng(5)
        values = rng.uniform(0, 100, size=500)
        agg = QuantileAggregate(q=0.5, low=0, high=100, n_bins=100)
        exact = float(np.quantile(values, 0.5))
        assert abs(agg.aggregate(values) - exact) <= 2.0  # ~2 bin widths

    def test_empty_population_rejected(self):
        from repro.core.aggregates import QuantileAggregate
        from repro.errors import AggregationError

        agg = QuantileAggregate()
        with pytest.raises(AggregationError):
            agg.finalize(tuple([0] * agg.n_bins))

    def test_validation(self):
        from repro.core.aggregates import QuantileAggregate

        with pytest.raises(ValueError):
            QuantileAggregate(q=1.5)
        with pytest.raises(ValueError):
            QuantileAggregate(low=5, high=5)
        with pytest.raises(ValueError):
            QuantileAggregate(n_bins=0)

    def test_registered(self):
        agg = get_aggregate("quantile", q=0.9, low=0, high=10)
        assert agg.q == 0.9


class TestTopK:
    def test_keeps_k_largest(self):
        top = TopKAggregate(k=3)
        assert top.aggregate(VALUES) == (9.0, 6.0, 5.0)

    def test_fewer_than_k(self):
        assert TopKAggregate(k=10).aggregate([2.0, 1.0]) == (2.0, 1.0)

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            TopKAggregate(k=0)


class TestMergeAll:
    def test_empty_raises(self):
        with pytest.raises(AggregationError):
            SumAggregate().merge_all([])

    def test_single_state_passthrough(self):
        agg = SumAggregate()
        assert agg.merge_all([agg.lift(5.0)]) == 5.0


class TestRegistry:
    def test_builtins_available(self):
        names = available_aggregates()
        for expected in ("sum", "count", "min", "max", "avg", "std", "histogram", "topk"):
            assert expected in names

    def test_get_with_kwargs(self):
        top = get_aggregate("topk", k=2)
        assert top.k == 2

    def test_unknown_raises(self):
        with pytest.raises(UnknownAggregateError):
            get_aggregate("median")

    def test_register_custom(self):
        class ProductAggregate(Aggregate):
            name = "test-product"

            def lift(self, value):
                return float(value)

            def merge(self, left, right):
                return left * right

            def finalize(self, state):
                return state

        register_aggregate(ProductAggregate)
        assert get_aggregate("test-product").aggregate([2, 3, 4]) == 24.0

    def test_register_requires_name(self):
        class Anonymous(Aggregate):
            name = "abstract"

            def lift(self, value):
                return value

            def merge(self, left, right):
                return left

            def finalize(self, state):
                return state

        with pytest.raises(ValueError):
            register_aggregate(Anonymous)

"""Unit tests for the in-process transport and base Transport RPC plumbing."""

import pytest

from repro.errors import TransportError
from repro.sim.inproc import InprocTransport
from repro.sim.messages import Message


def echo_handler(message: Message) -> Message:
    return message.response(echo=message.payload.get("text"))


class TestRegistration:
    def test_register_and_send(self):
        transport = InprocTransport()
        received: list[Message] = []
        transport.register(1, lambda m: received.append(m) or None)
        transport.send(Message(kind="hi", source=0, destination=1))
        assert len(received) == 1

    def test_duplicate_registration_rejected(self):
        transport = InprocTransport()
        transport.register(1, lambda m: None)
        with pytest.raises(TransportError):
            transport.register(1, lambda m: None)

    def test_unregistered_destination_dropped(self):
        transport = InprocTransport()
        transport.send(Message(kind="hi", source=0, destination=9))  # no error

    def test_unregister(self):
        transport = InprocTransport()
        received: list[Message] = []
        transport.register(1, lambda m: received.append(m) or None)
        transport.unregister(1)
        transport.send(Message(kind="hi", source=0, destination=1))
        assert received == []
        assert not transport.is_registered(1)

    def test_registered_nodes(self):
        transport = InprocTransport()
        transport.register(3, lambda m: None)
        transport.register(1, lambda m: None)
        assert transport.registered_nodes() == [1, 3]


class TestRpc:
    def test_call_gets_reply(self):
        transport = InprocTransport()
        transport.register(2, echo_handler)
        transport.register(1, lambda m: None)
        replies: list[str] = []
        request = Message(kind="echo", source=1, destination=2, payload={"text": "hey"})
        transport.call(request, lambda reply: replies.append(reply.payload["echo"]))
        assert replies == ["hey"]
        assert transport.pending_calls() == 0

    def test_timeout_fires(self):
        transport = InprocTransport()
        transport.register(1, lambda m: None)
        timeouts: list[int] = []
        request = Message(kind="q", source=1, destination=99)
        transport.call(
            request,
            lambda reply: pytest.fail("unexpected reply"),
            on_timeout=lambda m: timeouts.append(m.msg_id),
            timeout=1.0,
        )
        transport.advance(2.0)
        assert timeouts == [request.msg_id]
        assert transport.pending_calls() == 0

    def test_reply_cancels_timeout(self):
        transport = InprocTransport()
        transport.register(2, echo_handler)
        replies: list[Message] = []
        request = Message(kind="echo", source=1, destination=2)
        transport.call(
            request,
            replies.append,
            on_timeout=lambda m: pytest.fail("timeout after reply"),
            timeout=1.0,
        )
        transport.advance(5.0)
        assert len(replies) == 1

    def test_late_response_dropped(self):
        # A response with no pending call is silently discarded.
        transport = InprocTransport()
        transport.register(1, lambda m: None)
        orphan = Message(kind="r", source=2, destination=1, reply_to=12345)
        transport.send(orphan)  # no error

    def test_handler_response_without_reply_to_rejected(self):
        transport = InprocTransport()

        def bad_handler(message: Message) -> Message:
            return Message(kind="r", source=2, destination=1)  # missing reply_to

        transport.register(2, bad_handler)
        with pytest.raises(TransportError):
            transport.send(Message(kind="q", source=1, destination=2))


class TestTimers:
    def test_advance_fires_in_order(self):
        transport = InprocTransport()
        fired: list[str] = []
        transport.schedule(2.0, lambda: fired.append("b"))
        transport.schedule(1.0, lambda: fired.append("a"))
        transport.advance(3.0)
        assert fired == ["a", "b"]
        assert transport.now() == 3.0

    def test_cancel(self):
        transport = InprocTransport()
        fired: list[str] = []
        cancel = transport.schedule(1.0, lambda: fired.append("x"))
        cancel()
        transport.advance(2.0)
        assert fired == []

    def test_partial_advance(self):
        transport = InprocTransport()
        fired: list[str] = []
        transport.schedule(5.0, lambda: fired.append("x"))
        transport.advance(3.0)
        assert fired == []
        transport.advance(3.0)
        assert fired == ["x"]


class TestAccounting:
    def test_send_and_receive_counted(self):
        transport = InprocTransport()
        transport.register(2, echo_handler)
        transport.register(1, lambda m: None)
        transport.send(Message(kind="echo", source=1, destination=2))
        assert transport.stats.load(1).sent == 1
        assert transport.stats.load(2).received == 1
        # The echo reply is also counted.
        assert transport.stats.load(2).sent == 1
        assert transport.stats.load(1).received == 1

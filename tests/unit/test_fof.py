"""Unit tests for the fingers-of-fingers extension (paper Sec. 4)."""

import pytest

from repro.chord.fof import FofCache, FofMaintainer
from repro.chord.idspace import IdSpace
from repro.chord.network import ChordNetwork
from repro.chord.node import ChordConfig
from repro.sim.latency import ConstantLatency
from repro.sim.simnet import SimTransport


class TestFofCache:
    def test_update_and_known_nodes(self):
        cache = FofCache(space=IdSpace(8))
        cache.update(10, [20, 30, 40, 40, 10, 10, 10, 10])
        assert cache.known_nodes() == {10, 20, 30, 40}

    def test_forget(self):
        cache = FofCache(space=IdSpace(8))
        cache.update(10, [20] * 8)
        cache.forget(10)
        assert cache.known_nodes() == set()

    def test_best_toward_prefers_closest_preceding(self):
        space = IdSpace(8)
        cache = FofCache(space=space)
        cache.update(10, [20, 40, 80, 80, 80, 80, 80, 80])
        # From owner 0 toward key 100: candidates {10, 20, 40, 80}; 80 is
        # the farthest without overshooting.
        assert cache.best_toward(0, 100) == 80

    def test_best_toward_never_overshoots(self):
        space = IdSpace(8)
        cache = FofCache(space=space)
        cache.update(10, [20, 40, 200, 200, 200, 200, 200, 200])
        assert cache.best_toward(0, 100) == 40

    def test_best_toward_empty(self):
        cache = FofCache(space=IdSpace(8))
        assert cache.best_toward(0, 100) is None

    def test_best_toward_zero_distance(self):
        cache = FofCache(space=IdSpace(8))
        cache.update(10, [20] * 8)
        assert cache.best_toward(5, 5) is None


@pytest.fixture
def fof_overlay():
    space = IdSpace(12)
    transport = SimTransport(latency=ConstantLatency(0.005))
    config = ChordConfig(stabilize_interval=0.25, fix_fingers_interval=0.05)
    network = ChordNetwork(space, transport, config)
    n = 32
    for i in range(n):
        network.add_node((i * space.size) // n + 1)
        network.settle(0.5)
    network.settle_until_converged()
    for node in network.nodes.values():
        node.fix_all_fingers()
    network.settle(5.0)
    maintainers = {
        ident: FofMaintainer(node, interval=0.2)
        for ident, node in network.nodes.items()
    }
    for maintainer in maintainers.values():
        maintainer.refresh_all()
    network.settle(5.0)
    return network, maintainers


class TestFofMaintainer:
    def test_cache_fills(self, fof_overlay):
        network, maintainers = fof_overlay
        for ident, maintainer in maintainers.items():
            fingers = network.nodes[ident].finger_table().distinct_fingers()
            assert set(maintainer.cache.tables) == set(fingers), ident

    def test_cached_tables_are_correct(self, fof_overlay):
        network, maintainers = fof_overlay
        for ident, maintainer in maintainers.items():
            for finger, entries in maintainer.cache.tables.items():
                assert entries == network.nodes[finger].finger_table().entries

    def test_next_hop_at_least_as_good(self, fof_overlay):
        network, maintainers = fof_overlay
        space = network.space
        for ident, maintainer in list(maintainers.items())[:8]:
            table = network.nodes[ident].finger_table()
            for key in range(0, space.size, 509):
                plain = table.closest_preceding(key)
                improved = maintainer.next_hop(key)
                if plain is None:
                    continue
                assert improved is not None
                assert space.cw(ident, improved) >= space.cw(ident, plain)
                assert space.cw(ident, improved) <= space.cw(ident, key)

    def test_two_hop_horizon_reduces_distance(self, fof_overlay):
        # Somewhere on the ring FoF must strictly beat the plain finger
        # (otherwise the cache adds nothing).
        network, maintainers = fof_overlay
        space = network.space
        improvements = 0
        for ident, maintainer in maintainers.items():
            table = network.nodes[ident].finger_table()
            for key in range(0, space.size, 127):
                plain = table.closest_preceding(key)
                improved = maintainer.next_hop(key)
                if plain is not None and improved is not None:
                    if space.cw(ident, improved) > space.cw(ident, plain):
                        improvements += 1
        assert improvements > 0

    def test_start_stop(self, fof_overlay):
        network, maintainers = fof_overlay
        maintainer = next(iter(maintainers.values()))
        maintainer.start()
        network.settle(1.0)
        maintainer.stop()
        # No crash; periodic refresh ran and stopped.

    def test_close_stops_and_releases_upcall(self, fof_overlay):
        # Regression (DAT011): stop() cancelled the timer but the
        # `get_fingers` upcall registration survived the maintainer.
        network, maintainers = fof_overlay
        ident, maintainer = next(iter(maintainers.items()))
        node = network.nodes[ident]
        assert node.upcalls["get_fingers"] == maintainer._on_get_fingers
        maintainer.start()
        maintainer.close()
        assert not maintainer._running
        assert "get_fingers" not in node.upcalls
        maintainer.close()  # idempotent

    def test_dead_finger_forgotten(self, fof_overlay):
        network, maintainers = fof_overlay
        victim = list(network.nodes)[3]
        observers = [
            maintainer
            for ident, maintainer in maintainers.items()
            if victim in maintainer.cache.tables
        ]
        assert observers
        network.remove_node(victim, graceful=False)
        for maintainer in observers:
            maintainer.refresh_all()
        network.settle(5.0)
        for maintainer in observers:
            assert victim not in maintainer.cache.tables

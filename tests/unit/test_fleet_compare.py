"""The sim twin and the comparison report, without any live fleet.

The twin runs on the DES transport in virtual time, so these are fast and
fully deterministic; live results are synthesized to exercise the report's
pass/fail logic on both sides of each tolerance.
"""

import json

from repro.chord.idgen import make_assigner
from repro.chord.idspace import IdSpace
from repro.fleet.compare import Fig9SimResult, compare_fig9, run_fig9_sim_twin
from repro.fleet.plan import plan_fleet_fig9
from repro.fleet.replay import Fig9LiveResult

SPACE = IdSpace(16)
SEED = 2007


def members(n=8):
    return list(make_assigner("probing").build_ring(SPACE, n, rng=SEED).nodes)


def twin(n=8, slots=2):
    plan = plan_fleet_fig9(seed=SEED, n_nodes=n, n_slots=slots)
    return plan, run_fig9_sim_twin(members(n), plan, SPACE)


class TestSimTwin:
    def test_twin_is_exact_for_identical_traces(self):
        _plan, sim = twin()
        # Virtual time has no scheduling jitter: after the first dwell the
        # root's estimate equals ground truth in every slot.
        for truth, estimate in zip(sim.actual, sim.aggregated):
            assert abs(estimate - truth) <= 1e-9 * max(abs(truth), 1.0)

    def test_twin_is_deterministic(self):
        _p1, a = twin()
        _p2, b = twin()
        assert a.aggregated == b.aggregated
        assert a.total_pushes == b.total_pushes
        assert a.total_messages == b.total_messages
        assert a.imbalance == b.imbalance

    def test_twin_counts_traffic(self):
        _plan, sim = twin()
        assert sim.total_pushes > 0
        assert sim.total_messages >= sim.total_pushes
        assert sim.imbalance >= 1.0  # the root always carries the most


def live_like(sim: Fig9SimResult, plan, **overrides) -> Fig9LiveResult:
    """A live result that mirrors the twin, with targeted deviations."""
    live = Fig9LiveResult(plan=plan, root=sim.root, key=sim.key)
    live.actual = list(sim.actual)
    live.aggregated = list(overrides.get("aggregated", sim.aggregated))
    live.total_pushes = overrides.get("total_pushes", sim.total_pushes)
    # Mild, realistic per-node loads: root slightly hotter.
    base = {ident: 10 for ident in members()}
    base[sim.root] = overrides.get("root_load", 14)
    live.per_node_sent = base
    live.per_node_received = dict(base)
    return live


class TestComparisonReport:
    def test_passes_when_live_matches_twin(self):
        plan, sim = twin()
        report = compare_fig9(live_like(sim, plan), sim)
        assert report.passed, report.render_text()

    def test_fails_on_bad_accuracy(self):
        plan, sim = twin()
        live = live_like(sim, plan, aggregated=[v * 0.5 for v in sim.aggregated])
        report = compare_fig9(live, sim)
        assert not report.passed
        failed = {c.name for c in report.checks if not c.ok}
        assert "live_accuracy" in failed

    def test_fails_on_push_volume_collapse(self):
        plan, sim = twin()
        live = live_like(sim, plan, total_pushes=sim.total_pushes // 10)
        report = compare_fig9(live, sim)
        assert {c.name for c in report.checks if not c.ok} == {"push_volume"}

    def test_fails_on_runaway_imbalance(self):
        plan, sim = twin()
        live = live_like(sim, plan, root_load=100000)
        report = compare_fig9(live, sim)
        assert "load_imbalance" in {c.name for c in report.checks if not c.ok}

    def test_warmup_slot_excluded_from_accuracy(self):
        plan, sim = twin(slots=3)
        # Garbage in slot 0 only: warm-up, must not fail the check.
        aggregated = list(sim.aggregated)
        aggregated[0] = 0.0
        report = compare_fig9(live_like(sim, plan, aggregated=aggregated), sim)
        assert report.passed, report.render_text()

    def test_json_round_trips(self):
        plan, sim = twin()
        report = compare_fig9(live_like(sim, plan), sim)
        payload = json.loads(report.to_json())
        assert payload["passed"] is True
        assert {c["name"] for c in payload["checks"]} == {
            "same_root",
            "live_accuracy",
            "sim_accuracy",
            "push_volume",
            "load_imbalance",
        }
        assert "tolerances" in payload

    def test_render_text_verdict(self):
        plan, sim = twin()
        text = compare_fig9(live_like(sim, plan), sim).render_text()
        assert "verdict: PASS" in text

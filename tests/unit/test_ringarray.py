"""Unit tests for the array-backed ring index and StaticRing's dual storage."""

import numpy as np
import pytest

from repro.chord.idspace import IdSpace
from repro.chord.ring import ARRAY_BACKED_THRESHOLD, StaticRing
from repro.chord.ringarray import ARRAY_MAX_BITS, RingArray, fast_probing_ids
from repro.errors import (
    DuplicateNodeError,
    EmptyRingError,
    IdentifierError,
    UnknownNodeError,
)

SPACE = IdSpace(8)  # identifiers 0..255


def make(ids):
    return RingArray(SPACE, np.array(ids, dtype=np.int64))


class TestConstruction:
    def test_rejects_wide_spaces(self):
        with pytest.raises(IdentifierError):
            RingArray(IdSpace(ARRAY_MAX_BITS + 1), np.array([], dtype=np.int64))

    def test_rejects_unsorted(self):
        with pytest.raises(DuplicateNodeError):
            make([5, 3, 9])

    def test_rejects_duplicates(self):
        with pytest.raises(DuplicateNodeError):
            make([3, 3, 9])

    def test_rejects_out_of_space(self):
        with pytest.raises(IdentifierError):
            make([0, 300])

    def test_rejects_2d(self):
        with pytest.raises(IdentifierError):
            RingArray(SPACE, np.zeros((2, 2), dtype=np.int64))

    def test_empty_ok(self):
        ring = make([])
        assert len(ring) == 0
        with pytest.raises(EmptyRingError):
            ring.successor(0)


class TestMembership:
    def test_contains_and_index(self):
        ring = make([10, 40, 200])
        assert ring.contains(40)
        assert not ring.contains(41)
        assert not ring.contains(-1)
        assert not ring.contains(999)
        assert ring.index_of(200) == 2
        with pytest.raises(UnknownNodeError):
            ring.index_of(7)

    def test_insert_keeps_sorted(self):
        ring = make([10, 200])
        ring.insert(40)
        assert list(ring.ids) == [10, 40, 200]
        with pytest.raises(DuplicateNodeError):
            ring.insert(40)

    def test_delete(self):
        ring = make([10, 40, 200])
        ring.delete(40)
        assert list(ring.ids) == [10, 200]
        with pytest.raises(UnknownNodeError):
            ring.delete(40)


class TestQueries:
    def test_successor_wraps(self):
        ring = make([10, 40, 200])
        assert ring.successor(10) == 10  # inclusive
        assert ring.successor(11) == 40
        assert ring.successor(201) == 10  # wraps past the top
        assert ring.successor_index(250) == 0

    def test_predecessor_wraps(self):
        ring = make([10, 40, 200])
        assert ring.predecessor(10) == 200  # strict, wraps below the bottom
        assert ring.predecessor(11) == 10
        assert ring.predecessor(0) == 200

    def test_neighbors_by_index(self):
        ring = make([10, 40, 200])
        assert ring.successor_of_index(2) == 10
        assert ring.predecessor_of_index(0) == 200

    def test_vectorized_successors(self):
        ring = make([10, 40, 200])
        keys = np.array([0, 10, 11, 201, 255], dtype=np.int64)
        assert list(ring.successors(keys)) == [10, 10, 40, 10, 10]

    def test_slice_closed(self):
        ring = make([10, 40, 200])
        assert list(ring.slice_closed(10, 40)) == [10, 40]
        assert list(ring.slice_closed(11, 39)) == []
        assert list(ring.slice_closed(200, 40)) == [200, 10, 40]  # wrap
        assert list(ring.slice_closed(40, 40)) == [40]

    def test_gaps(self):
        ring = make([10, 40, 200])
        assert list(ring.gaps()) == [66, 30, 160]  # 10+256-200 = 66
        assert list(make([7]).gaps()) == [256]  # sole member owns the space


class TestStaticRingDualStorage:
    def test_auto_mode_by_threshold(self):
        small = StaticRing(IdSpace(32), range(100))
        assert not small.array_backed
        ids = list(range(ARRAY_BACKED_THRESHOLD))
        big = StaticRing.from_sorted_ids(IdSpace(32), ids)
        assert big.array_backed

    def test_wide_space_stays_object_backed(self):
        ring = StaticRing(IdSpace(128), range(64), array_backed=None)
        assert not ring.array_backed
        with pytest.raises(IdentifierError):
            StaticRing(IdSpace(128), range(64), array_backed=True)
        with pytest.raises(IdentifierError):
            ring.id_index()

    def test_forced_modes_answer_identically(self):
        space = IdSpace(16)
        idents = [5, 99, 1000, 40000, 65000]
        obj = StaticRing(space, idents, array_backed=False)
        arr = StaticRing(space, idents, array_backed=True)
        for key in [0, 5, 6, 64999, 65001, 65535]:
            assert obj.successor(key) == arr.successor(key)
            assert obj.predecessor(key) == arr.predecessor(key)
        assert obj.nodes == arr.nodes
        assert obj.nodes_in_interval(40000, 99) == arr.nodes_in_interval(40000, 99)
        for ident in idents:
            assert obj.gap_before(ident) == arr.gap_before(ident)

    def test_id_index_view_is_cached_and_version_aware(self):
        ring = StaticRing(IdSpace(16), [1, 2, 3], array_backed=False)
        first = ring.id_index()
        assert first is ring.id_index()  # cached until membership changes
        ring.add(7)
        second = ring.id_index()
        assert second is not first
        assert list(second.ids) == [1, 2, 3, 7]

    def test_array_mode_mutation(self):
        ring = StaticRing(IdSpace(16), [10, 20, 30], array_backed=True)
        ring.add(25)
        ring.remove(10)
        assert ring.nodes == [20, 25, 30]
        assert ring.successor(26) == 30
        assert 25 in ring and 10 not in ring

    def test_from_sorted_ids_rejects_bad_input(self):
        with pytest.raises(DuplicateNodeError):
            StaticRing.from_sorted_ids(IdSpace(16), [3, 2])
        with pytest.raises(IdentifierError):
            StaticRing.from_sorted_ids(IdSpace(8), [0, 256])


class TestFastProbingIds:
    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            fast_probing_ids(SPACE, -1)

    def test_rejects_overfull(self):
        with pytest.raises(ValueError):
            fast_probing_ids(IdSpace(3), 9)

    def test_sorted_unique_within_space(self):
        ids = fast_probing_ids(IdSpace(20), 500, rng=3)
        assert ids == sorted(set(ids))
        assert 0 <= ids[0] and ids[-1] < 2**20

    def test_deterministic_per_seed(self):
        a = fast_probing_ids(IdSpace(24), 200, rng=9)
        b = fast_probing_ids(IdSpace(24), 200, rng=9)
        c = fast_probing_ids(IdSpace(24), 200, rng=10)
        assert a == b
        assert a != c

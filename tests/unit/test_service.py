"""Unit tests for the DAT protocol service (on-demand + continuous modes)."""

import pytest

from repro.chord.idspace import IdSpace
from repro.chord.ring import StaticRing
from repro.core.builder import build_balanced_dat
from repro.core.service import DatNodeService, StandaloneDatHost
from repro.errors import AggregationError
from repro.sim.latency import ConstantLatency
from repro.sim.simnet import SimTransport


def build_services(
    n: int = 16,
    bits: int = 8,
    scheme: str = "balanced",
    values: dict[int, float] | None = None,
):
    """A full overlay of standalone DAT services over a sim transport."""
    space = IdSpace(bits)
    ring = StaticRing(space, [(i * space.size) // n for i in range(n)])
    tables = ring.all_finger_tables()
    transport = SimTransport(latency=ConstantLatency(0.001))
    key = 0
    tree = build_balanced_dat(ring, key, tables=tables)
    children_map = tree.children_map()
    local_values = values if values is not None else {node: float(node) for node in ring}

    services: dict[int, DatNodeService] = {}
    for node in ring:
        host = StandaloneDatHost(node, space, transport)
        services[node] = DatNodeService(
            host,
            finger_provider=lambda node=node: tables[node],
            value_provider=lambda node=node: local_values[node],
            scheme=scheme,
            d0_provider=lambda: space.size / n,
            children_resolver=lambda key, root, node=node: children_map.get(node, []),
        )
    return space, ring, transport, tree, services, local_values


class TestParentComputation:
    def test_matches_static_builder(self):
        _space, ring, _transport, tree, services, _values = build_services()
        for node, service in services.items():
            expected = tree.parent.get(node)
            assert service.parent_for(tree.root) == expected

    def test_basic_scheme(self):
        _space, ring, _transport, _tree, services, _values = build_services(
            scheme="basic"
        )
        from repro.core.builder import build_basic_dat

        basic = build_basic_dat(ring, 0)
        for node, service in services.items():
            assert service.parent_for(basic.root) == basic.parent.get(node)

    def test_balanced_requires_d0(self):
        space = IdSpace(8)
        transport = SimTransport()
        host = StandaloneDatHost(1, space, transport)
        with pytest.raises(ValueError):
            DatNodeService(
                host,
                finger_provider=lambda: None,
                value_provider=lambda: 0.0,
                scheme="balanced",
            )

    def test_rejects_unknown_scheme(self):
        space = IdSpace(8)
        transport = SimTransport()
        host = StandaloneDatHost(2, space, transport)
        with pytest.raises(ValueError):
            DatNodeService(
                host,
                finger_provider=lambda: None,
                value_provider=lambda: 0.0,
                scheme="turbo",
            )


class TestOnDemand:
    def test_sum_over_tree(self):
        _space, ring, transport, tree, services, values = build_services()
        results: list[float] = []
        services[tree.root].collect(0, tree.root, "sum", results.append)
        transport.run(until=5.0)
        assert results == [sum(values.values())]

    def test_avg(self):
        _space, ring, transport, tree, services, values = build_services()
        results: list[float] = []
        services[tree.root].collect(0, tree.root, "avg", results.append)
        transport.run(until=5.0)
        assert results[0] == pytest.approx(sum(values.values()) / len(values))

    def test_count_equals_n(self):
        _space, ring, transport, tree, services, _values = build_services(n=20)
        results: list[int] = []
        services[tree.root].collect(0, tree.root, "count", results.append)
        transport.run(until=5.0)
        assert results == [20]

    def test_collect_from_non_root_rejected(self):
        _space, ring, transport, tree, services, _values = build_services()
        non_root = next(node for node in services if node != tree.root)
        with pytest.raises(AggregationError):
            services[non_root].collect(0, tree.root, "sum", lambda r: None)

    def test_collect_without_resolver_rejected(self):
        space = IdSpace(8)
        transport = SimTransport()
        host = StandaloneDatHost(3, space, transport)
        service = DatNodeService(
            host,
            finger_provider=lambda: None,
            value_provider=lambda: 0.0,
            scheme="basic",
        )
        with pytest.raises(AggregationError):
            service.collect(0, 3, "sum", lambda r: None)

    def test_message_economics(self):
        # One on-demand round costs 2 messages per non-root node
        # (collect down + partial up).
        _space, ring, transport, tree, services, _values = build_services(n=16)
        transport.stats.reset()
        done: list[float] = []
        services[tree.root].collect(0, tree.root, "sum", done.append)
        transport.run(until=5.0)
        assert done
        assert transport.stats.total_messages() == 2 * (len(ring) - 1)

    def test_two_rounds_independent(self):
        _space, ring, transport, tree, services, values = build_services()
        results: list[float] = []
        services[tree.root].collect(0, tree.root, "sum", results.append)
        transport.run(until=5.0)
        values[ring.nodes[1]] += 100.0
        services[tree.root].collect(0, tree.root, "sum", results.append)
        transport.run(until=10.0)
        assert results[1] == results[0] + 100.0


class TestContinuous:
    def test_root_estimate_converges(self):
        _space, ring, transport, tree, services, values = build_services()
        for node, service in services.items():
            service.start_continuous(0, tree.root, "sum", interval=0.5)
        # After height * interval the estimate covers the whole network.
        transport.run(until=0.5 * (tree.height + 2) + 0.1)
        estimate = services[tree.root].root_estimate(0)
        assert estimate == pytest.approx(sum(values.values()))

    def test_estimate_tracks_changes(self):
        _space, ring, transport, tree, services, values = build_services()
        for service in services.values():
            service.start_continuous(0, tree.root, "sum", interval=0.5)
        transport.run(until=10.0)
        before = services[tree.root].root_estimate(0)
        leaf = tree.leaves()[0]
        values[leaf] += 50.0
        transport.run(until=20.0)
        after = services[tree.root].root_estimate(0)
        assert after == pytest.approx(before + 50.0)

    def test_stop_continuous(self):
        _space, ring, transport, tree, services, _values = build_services()
        for service in services.values():
            service.start_continuous(0, tree.root, "sum", interval=0.5)
        transport.run(until=5.0)
        for service in services.values():
            service.stop_continuous(0)
        sent_before = transport.stats.total_messages()
        transport.run(until=10.0)
        assert transport.stats.total_messages() == sent_before

    def test_root_estimate_requires_active_key(self):
        _space, _ring, _transport, tree, services, _values = build_services()
        with pytest.raises(AggregationError):
            services[tree.root].root_estimate(123)

    def test_push_economics(self):
        # Continuous mode: one push per non-root node per interval.
        _space, ring, transport, tree, services, _values = build_services(n=8)
        for service in services.values():
            service.start_continuous(0, tree.root, "sum", interval=1.0)
        transport.stats.reset()
        transport.run(until=10.0)
        pushes = transport.stats.by_kind().get("agg_push", 0)
        assert pushes == 10 * (len(ring) - 1)


class TestStateCoding:
    def test_moment_state_roundtrip(self):
        from repro.core.aggregates import StdAggregate
        from repro.core.service import _decode_state, _encode_state

        agg = StdAggregate()
        state = agg.merge(agg.lift(3.0), agg.lift(5.0))
        restored = _decode_state(_encode_state(state), agg)
        assert restored == state

    def test_tuple_roundtrip(self):
        from repro.core.aggregates import AverageAggregate
        from repro.core.service import _decode_state, _encode_state

        agg = AverageAggregate()
        state = (10.0, 3)
        assert _decode_state(_encode_state(state), agg) == state

    def test_json_list_decodes_to_tuple(self):
        from repro.core.aggregates import AverageAggregate
        from repro.core.service import _decode_state

        assert _decode_state([10.0, 3], AverageAggregate()) == (10.0, 3)

"""Unit tests for the incremental DAT maintenance engine."""

import numpy as np
import pytest

from repro.chord.fingers import FingerTable
from repro.chord.idgen import ProbingIdAssigner, RandomIdAssigner
from repro.chord.idspace import IdSpace
from repro.chord.incremental import (
    DatUpdateEngine,
    ReverseFingerIndex,
    RingMaintainer,
)
from repro.chord.ring import StaticRing
from repro.core.builder import DatScheme, DatTreeBuilder, build_dat
from repro.core.multitree import DatForest
from repro.errors import DuplicateNodeError, UnknownNodeError
from repro.workloads.churn import ChurnWorkload, replay_churn


@pytest.fixture
def ring():
    return RandomIdAssigner().build_ring(IdSpace(16), 48, rng=7)


class TestReverseFingerIndex:
    def test_from_tables_covers_all_slots(self, ring):
        tables = ring.all_finger_tables()
        index = ReverseFingerIndex.from_tables(tables)
        assert index.n_slots() == len(ring) * ring.space.bits

    def test_slots_into_matches_tables(self, ring):
        tables = ring.all_finger_tables()
        index = ReverseFingerIndex.from_tables(tables)
        for node in ring:
            for owner, slot in index.slots_into(node):
                assert tables[owner].entries[slot] == node

    def test_move_rehomes_one_slot(self):
        index = ReverseFingerIndex()
        index.add(1, 0, 5)
        index.move(1, 0, 5, 9)
        assert index.slots_into(5) == []
        assert index.slots_into(9) == [(1, 0)]

    def test_discard_drops_empty_buckets(self):
        index = ReverseFingerIndex()
        index.add(1, 0, 5)
        index.discard(1, 0, 5)
        assert index.as_dict() == {}


class TestRingMaintainer:
    def test_initial_state_matches_scratch(self, ring):
        maintainer = RingMaintainer(ring)
        reference = ring.all_finger_tables()
        for node, table in maintainer.tables.items():
            assert table.entries == reference[node].entries
        matrix = maintainer.matrix
        assert matrix is not None
        for row, node in zip(matrix, ring.nodes):
            assert list(row) == reference[node].entries

    def test_join_and_leave_roundtrip(self, ring):
        maintainer = RingMaintainer(ring)
        before = {n: list(t.entries) for n, t in maintainer.tables.items()}
        newcomer = next(
            ident for ident in range(ring.space.size) if ident not in ring
        )
        delta = maintainer.join(newcomer)
        assert delta.is_join and delta.n_after == delta.n_before + 1
        delta = maintainer.leave(newcomer)
        assert not delta.is_join
        after = {n: list(t.entries) for n, t in maintainer.tables.items()}
        assert before == after  # join then leave restores every table

    def test_join_duplicate_rejected(self, ring):
        maintainer = RingMaintainer(ring)
        with pytest.raises(DuplicateNodeError):
            maintainer.join(ring.nodes[0])

    def test_leave_unknown_rejected(self, ring):
        maintainer = RingMaintainer(ring)
        missing = next(
            ident for ident in range(ring.space.size) if ident not in ring
        )
        with pytest.raises(UnknownNodeError):
            maintainer.leave(missing)

    def test_empty_ring_first_join(self):
        space = IdSpace(8)
        ring = StaticRing(space)
        maintainer = RingMaintainer(ring)
        maintainer.join(42)
        assert maintainer.tables[42].entries == [42] * space.bits
        matrix = maintainer.matrix
        assert matrix is not None and matrix.shape == (1, space.bits)

    def test_last_leave_empties_state(self):
        ring = StaticRing(IdSpace(8), [42])
        maintainer = RingMaintainer(ring)
        maintainer.leave(42)
        assert maintainer.tables == {}
        matrix = maintainer.matrix
        assert matrix is not None and matrix.shape[0] == 0

    def test_out_of_band_mutation_triggers_rebuild(self, ring):
        maintainer = RingMaintainer(ring)
        newcomer = next(
            ident for ident in range(ring.space.size) if ident not in ring
        )
        ring.add(newcomer)  # behind the maintainer's back
        other = next(
            ident
            for ident in range(ring.space.size)
            if ident not in ring
        )
        maintainer.join(other)  # must detect the stale version and recover
        reference = ring.all_finger_tables()
        for node, table in maintainer.tables.items():
            assert table.entries == reference[node].entries
        assert set(maintainer.tables) == set(reference)

    def test_adopts_prebuilt_tables(self, ring):
        tables = ring.all_finger_tables()
        maintainer = RingMaintainer(ring, tables=tables)
        assert maintainer.tables is tables  # shared, not copied

    def test_wide_space_has_no_matrix(self):
        ring = StaticRing(IdSpace(160), [1, 2**100, 2**150])
        maintainer = RingMaintainer(ring)
        assert maintainer.matrix is None
        maintainer.join(2**80)
        reference = ring.all_finger_tables()
        for node, table in maintainer.tables.items():
            assert table.entries == reference[node].entries


class TestDatUpdateEngine:
    def test_untracked_key_raises(self, ring):
        engine = DatUpdateEngine(ring)
        with pytest.raises(KeyError):
            engine.tree(123)

    def test_track_and_untrack(self, ring):
        engine = DatUpdateEngine(ring)
        tree = engine.track(123)
        assert engine.tree(123) is tree
        engine.untrack(123)
        with pytest.raises(KeyError):
            engine.tree(123)

    def test_root_handover_forces_rebuild(self):
        space = IdSpace(12)
        ring = StaticRing(space, [100, 2000, 3000])
        engine = DatUpdateEngine(ring)
        key = 150
        engine.track(key)
        assert engine.tree(key).root == 2000
        report = engine.apply("join", 200)  # new successor(150) => handover
        assert key in report.rebuilt_keys
        assert engine.tree(key).root == 200

    def test_report_counts(self, ring):
        engine = DatUpdateEngine(ring)
        engine.track(5)
        newcomer = next(
            ident for ident in range(ring.space.size) if ident not in ring
        )
        report = engine.apply("join", newcomer)
        assert report.finger_updates == len(report.delta.patches)
        assert report.parent_updates >= 0
        assert report.reparented.keys() == {5}

    def test_crash_is_leave(self, ring):
        engine = DatUpdateEngine(ring)
        victim = ring.nodes[3]
        delta = engine.apply("crash", victim).delta
        assert delta.kind == "crash" and not delta.is_join
        assert victim not in engine.ring

    def test_unknown_kind_rejected(self, ring):
        engine = DatUpdateEngine(ring)
        with pytest.raises(ValueError):
            engine.apply("merge", 1)

    @pytest.mark.parametrize("scheme", [DatScheme.BASIC, DatScheme.BALANCED])
    def test_single_events_bit_identical_at_4096(self, scheme):
        """Acceptance: one join and one leave on a 4096-node ring match the
        full rebuild exactly (the companion benchmark asserts the >= 20x
        speedup on this same configuration)."""
        space = IdSpace(32)
        ring = ProbingIdAssigner().build_ring(space, 4096, rng=11)
        key = 0xDEADBEEF
        engine = DatUpdateEngine(ring, scheme=scheme)
        engine.track(key)
        newcomer = next(
            ident for ident in range(space.size) if ident not in ring
        )
        engine.apply("join", newcomer)
        reference = build_dat(
            StaticRing(space, ring.nodes), key, scheme=scheme, fast=True
        )
        tree = engine.tree(key)
        assert tree.root == reference.root and tree.parent == reference.parent
        engine.apply("leave", ring.nodes[1234])
        reference = build_dat(
            StaticRing(space, ring.nodes), key, scheme=scheme, fast=True
        )
        tree = engine.tree(key)
        assert tree.root == reference.root and tree.parent == reference.parent


class TestBuilderIntegration:
    def test_apply_event_patches_built_trees(self, ring):
        builder = DatTreeBuilder(ring)
        keys = [7, 7000, 42000]
        builder.build_many(keys)
        newcomer = next(
            ident for ident in range(ring.space.size) if ident not in ring
        )
        builder.apply_event("join", newcomer)
        builder.apply_event("leave", ring.nodes[0])
        reference_ring = StaticRing(ring.space, ring.nodes)
        for key in keys:
            reference = build_dat(reference_ring, key)
            tree = builder.build(key)
            assert tree.root == reference.root
            assert tree.parent == reference.parent

    def test_finger_matrix_cached_across_keys(self, ring):
        builder = DatTreeBuilder(ring)
        first = builder.finger_matrix
        second = builder.finger_matrix
        assert first is second and first is not None

    def test_build_uses_fast_path_output(self, ring):
        builder = DatTreeBuilder(ring, scheme=DatScheme.BALANCED)
        tree = builder.build(999)
        reference = build_dat(ring, 999, scheme=DatScheme.BALANCED)
        assert tree.root == reference.root
        assert tree.parent == reference.parent

    def test_custom_d0_still_scalar(self, ring):
        builder = DatTreeBuilder(ring)
        custom = builder.build(999, d0=ring.mean_gap() * 2)
        default = builder.build(999)
        assert custom.root == default.root
        assert custom.parent != default.parent or len(ring) <= 2


class TestForestIntegration:
    def test_apply_event_updates_every_tree(self, ring):
        from repro.chord.hashing import sha1_id

        attributes = ["cpu", "mem", "disk"]
        forest = DatForest(ring, attributes)
        newcomer = next(
            ident for ident in range(ring.space.size) if ident not in ring
        )
        report = forest.apply_event("join", newcomer)
        assert report.delta.ident == newcomer
        reference_ring = StaticRing(ring.space, ring.nodes)
        for attribute in attributes:
            reference = build_dat(
                reference_ring, sha1_id(attribute, ring.space)
            )
            tree = forest.tree(attribute)
            assert tree.root == reference.root
            assert tree.parent == reference.parent
        forest.load_report()  # combined-load analysis still works


class TestChurnReplay:
    def test_replay_keeps_engine_consistent(self, ring):
        engine = DatUpdateEngine(ring)
        engine.track(777)
        workload = ChurnWorkload(
            duration=20.0, join_rate=1.0, leave_rate=1.0,
            crash_fraction=0.25, seed=3,
        )
        reports = replay_churn(engine, workload.generate(), seed=4)
        assert reports  # some events were applied
        reference_ring = StaticRing(ring.space, engine.ring.nodes)
        reference = build_dat(reference_ring, 777)
        tree = engine.tree(777)
        assert tree.root == reference.root
        assert tree.parent == reference.parent

    def test_replay_respects_min_nodes(self):
        space = IdSpace(10)
        engine = DatUpdateEngine(StaticRing(space, [1, 500]))
        workload = ChurnWorkload(
            duration=30.0, join_rate=0.0, leave_rate=2.0, seed=5
        )
        replay_churn(engine, workload.generate(), seed=6, min_nodes=2)
        assert len(engine.ring) == 2  # departures below the floor skipped


class TestMatrixMaintenance:
    def test_matrix_rows_follow_sorted_order_after_events(self, ring):
        maintainer = RingMaintainer(ring)
        for ident in (3, 60000, 31000):
            if ident not in maintainer.ring:
                maintainer.join(ident)
        maintainer.leave(maintainer.ring.nodes[5])
        matrix = maintainer.matrix
        assert matrix is not None
        reference = np.array(
            [maintainer.ring.finger_entries(n) for n in maintainer.ring.nodes],
            dtype=np.int64,
        )
        assert (matrix == reference).all()

"""Unit tests for the message tracer and the library logging layer."""

import logging

from repro.sim.inproc import InprocTransport
from repro.sim.messages import Message
from repro.sim.tracing import MessageTracer, get_logger, trace


def make_pair():
    transport = InprocTransport()
    transport.register(1, lambda m: None)
    transport.register(2, lambda m: m.response(ok=True))
    return transport


class TestRecording:
    def test_records_sends(self):
        transport = make_pair()
        tracer = MessageTracer(transport)
        transport.send(Message(kind="hello", source=1, destination=2))
        assert tracer.count() == 2  # request + auto response
        assert tracer.count("hello") == 1
        assert tracer.count("hello_reply") == 1

    def test_kind_filter(self):
        transport = make_pair()
        tracer = MessageTracer(transport, kinds={"hello"})
        transport.send(Message(kind="hello", source=1, destination=2))
        transport.send(Message(kind="other", source=1, destination=2))
        assert tracer.count() == 1

    def test_detach_stops_recording(self):
        transport = make_pair()
        tracer = MessageTracer(transport)
        tracer.detach()
        transport.send(Message(kind="hello", source=1, destination=2))
        assert tracer.count() == 0

    def test_context_manager(self):
        transport = make_pair()
        with MessageTracer(transport) as tracer:
            transport.send(Message(kind="hello", source=1, destination=2))
        transport.send(Message(kind="hello", source=1, destination=2))
        assert tracer.count("hello") == 1

    def test_messages_still_delivered(self):
        transport = make_pair()
        received = []
        transport.unregister(1)
        transport.register(3, lambda m: received.append(m) or None)
        MessageTracer(transport)
        transport.send(Message(kind="x", source=2, destination=3))
        assert len(received) == 1


class TestQueries:
    def test_between(self):
        transport = make_pair()
        tracer = MessageTracer(transport)
        transport.send(Message(kind="a", source=1, destination=2))
        transport.send(Message(kind="b", source=2, destination=1))
        edge = tracer.between(1, 2)
        assert [r.kind for r in edge] == ["a"]

    def test_timeline_format(self):
        transport = make_pair()
        tracer = MessageTracer(transport)
        transport.send(Message(kind="hello", source=1, destination=2))
        text = tracer.timeline()
        assert "hello" in text and "1 -> 2" in text

    def test_timeline_limit(self):
        transport = make_pair()
        tracer = MessageTracer(transport, kinds={"ping"})
        for _ in range(10):
            transport.send(Message(kind="ping", source=1, destination=2))
        text = tracer.timeline(limit=3)
        assert "7 more" in text

    def test_clear(self):
        transport = make_pair()
        tracer = MessageTracer(transport)
        transport.send(Message(kind="x", source=1, destination=2))
        tracer.clear()
        assert tracer.count() == 0


class TestLoggingLayer:
    def test_get_logger_roots_under_repro(self):
        assert get_logger().name == "repro"
        assert get_logger("sim").name == "repro.sim"
        assert get_logger("repro.core").name == "repro.core"

    def test_trace_emits_on_repro_sim_logger(self, caplog):
        with caplog.at_level(logging.DEBUG, logger="repro.sim"):
            trace("fires at t=%s", 1.5)
        assert caplog.records[-1].name == "repro.sim"
        assert "fires at t=1.5" in caplog.records[-1].getMessage()

    def test_silent_by_default(self, caplog):
        # No handler configured and propagation gated above DEBUG: the
        # library must not emit anything at default WARNING level.
        with caplog.at_level(logging.WARNING, logger="repro.sim"):
            trace("invisible")
        assert caplog.records == []

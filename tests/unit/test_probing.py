"""Unit tests for identifier probing (Sec. 3.5 / Adler et al.)."""

import pytest

from repro.chord.idspace import IdSpace
from repro.chord.probing import (
    default_probe_count,
    probe_neighbors,
    probe_split_identifier,
)
from repro.chord.ring import StaticRing


class TestDefaultProbeCount:
    def test_scales_with_log(self):
        assert default_probe_count(2) == 2
        assert default_probe_count(1024) == 20  # 2 * log2(1024)

    def test_minimum_one(self):
        assert default_probe_count(1) == 1

    def test_multiplier(self):
        assert default_probe_count(1024, multiplier=1.0) == 10


class TestProbeNeighbors:
    def test_walks_clockwise(self, space4):
        ring = StaticRing(space4, [2, 5, 9, 14])
        assert probe_neighbors(ring, 3, 3) == [5, 9, 14]

    def test_wraps(self, space4):
        ring = StaticRing(space4, [2, 5, 9, 14])
        assert probe_neighbors(ring, 15, 2) == [2, 5]

    def test_count_clamped_to_ring_size(self, space4):
        ring = StaticRing(space4, [2, 5])
        assert probe_neighbors(ring, 0, 10) == [2, 5]

    def test_rejects_non_positive_count(self, space4):
        ring = StaticRing(space4, [2])
        with pytest.raises(ValueError):
            probe_neighbors(ring, 0, 0)


class TestProbeSplitIdentifier:
    def test_empty_ring_gets_random_id(self, space16):
        ring = StaticRing(space16)
        ident = probe_split_identifier(ring, rng=3)
        assert space16.contains(ident)

    def test_splits_largest_probed_gap(self, space4):
        # Nodes at 0 and 1: the gap before 0 (from 1, size 15) dominates.
        ring = StaticRing(space4, [0, 1])
        ident = probe_split_identifier(ring, rng=5)
        # Midpoint of (1, 0]: 1 + 15//2 = 8.
        assert ident == 8

    def test_never_collides(self, space16):
        ring = StaticRing(space16, [7])
        for seed in range(30):
            ident = probe_split_identifier(ring, rng=seed)
            assert ident not in ring
            ring.add(ident)

    def test_bounds_gap_ratio(self):
        # The headline property: after n probing joins the max/min gap
        # ratio is a small constant, vs O(log n) for random ids.
        space = IdSpace(32)
        ring = StaticRing(space)
        import numpy as np

        rng = np.random.default_rng(42)
        for _ in range(512):
            ring.add(probe_split_identifier(ring, rng=rng))
        assert ring.gap_ratio() <= 8.0

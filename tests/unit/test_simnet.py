"""Unit tests for the discrete-event transport."""

import pytest

from repro.sim.latency import ConstantLatency
from repro.sim.messages import Message
from repro.sim.simnet import SimTransport


def collector(sink: list) -> callable:
    return lambda message: sink.append(message) or None


class TestDelivery:
    def test_delivery_after_latency(self):
        transport = SimTransport(latency=ConstantLatency(0.5))
        received: list[Message] = []
        transport.register(2, collector(received))
        transport.send(Message(kind="x", source=1, destination=2))
        assert received == []  # not yet delivered
        transport.run(until=0.4)
        assert received == []
        transport.run(until=0.6)
        assert len(received) == 1

    def test_fifo_for_equal_latency(self):
        transport = SimTransport(latency=ConstantLatency(0.1))
        received: list[int] = []
        transport.register(2, lambda m: received.append(m.payload["i"]) or None)
        for i in range(5):
            transport.send(Message(kind="x", source=1, destination=2, payload={"i": i}))
        transport.run()
        assert received == [0, 1, 2, 3, 4]

    def test_unregistered_destination_dropped(self):
        transport = SimTransport()
        transport.send(Message(kind="x", source=1, destination=9))
        transport.run()
        assert transport.stats.load(9).received == 0


class TestLoss:
    def test_full_loss_drops_everything(self):
        transport = SimTransport(loss_rate=1.0, rng=0)
        received: list[Message] = []
        transport.register(2, collector(received))
        for _ in range(10):
            transport.send(Message(kind="x", source=1, destination=2))
        transport.run()
        assert received == []

    def test_partial_loss_statistical(self):
        transport = SimTransport(loss_rate=0.5, rng=1)
        received: list[Message] = []
        transport.register(2, collector(received))
        for _ in range(400):
            transport.send(Message(kind="x", source=1, destination=2))
        transport.run()
        assert 120 < len(received) < 280

    def test_rejects_bad_loss_rate(self):
        with pytest.raises(ValueError):
            SimTransport(loss_rate=1.5)


class TestFailureInjection:
    def test_failed_destination_drops(self):
        transport = SimTransport()
        received: list[Message] = []
        transport.register(2, collector(received))
        transport.fail(2)
        transport.send(Message(kind="x", source=1, destination=2))
        transport.run()
        assert received == []
        assert transport.is_failed(2)

    def test_failed_source_drops(self):
        transport = SimTransport()
        received: list[Message] = []
        transport.register(2, collector(received))
        transport.fail(1)
        transport.send(Message(kind="x", source=1, destination=2))
        transport.run()
        assert received == []

    def test_recover(self):
        transport = SimTransport()
        received: list[Message] = []
        transport.register(2, collector(received))
        transport.fail(2)
        transport.recover(2)
        transport.send(Message(kind="x", source=1, destination=2))
        transport.run()
        assert len(received) == 1

    def test_failure_mid_flight(self):
        # A message already in flight is lost if the destination dies
        # before delivery.
        transport = SimTransport(latency=ConstantLatency(1.0))
        received: list[Message] = []
        transport.register(2, collector(received))
        transport.send(Message(kind="x", source=1, destination=2))
        transport.fail(2)
        transport.run()
        assert received == []


class TestRpcOverSim:
    def test_call_and_timeout(self):
        transport = SimTransport(latency=ConstantLatency(0.1))
        transport.register(2, lambda m: m.response(ok=True))
        transport.register(1, lambda m: None)
        replies: list[Message] = []
        timeouts: list[Message] = []
        transport.call(
            Message(kind="q", source=1, destination=2),
            replies.append,
            on_timeout=timeouts.append,
            timeout=5.0,
        )
        transport.call(
            Message(kind="q", source=1, destination=99),
            replies.append,
            on_timeout=timeouts.append,
            timeout=5.0,
        )
        transport.run(until=10.0)
        assert len(replies) == 1
        assert len(timeouts) == 1

    def test_kind_accounting(self):
        transport = SimTransport()
        transport.register(2, lambda m: None)
        transport.send(Message(kind="lookup", source=1, destination=2))
        transport.send(Message(kind="lookup", source=1, destination=2))
        transport.run()
        assert transport.stats.by_kind()["lookup"] == 2

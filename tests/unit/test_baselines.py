"""Unit tests for the centralized aggregation baseline."""

import pytest

from repro.baselines.centralized import (
    CentralizedAggregator,
    centralized_direct_loads,
    centralized_routed_loads,
)
from repro.chord.idgen import ProbingIdAssigner
from repro.chord.idspace import IdSpace
from repro.core.aggregates import SumAggregate


class TestDirectLoads:
    def test_root_receives_everything(self, full_ring4):
        loads = centralized_direct_loads(full_ring4, key=0)
        assert loads[0] == 15  # n - 1 receives, zero sends

    def test_others_send_one(self, full_ring4):
        loads = centralized_direct_loads(full_ring4, key=0)
        for node in range(1, 16):
            assert loads[node] == 1

    def test_total_conservation(self, full_ring4):
        loads = centralized_direct_loads(full_ring4, key=0)
        # Each message counted once at the sender and once at the root.
        assert sum(loads.values()) == 2 * 15

    def test_imbalance_linear(self):
        from repro.core.analysis import imbalance_factor

        space = IdSpace(32)
        small = ProbingIdAssigner().build_ring(space, 64, rng=1)
        large = ProbingIdAssigner().build_ring(space, 512, rng=1)
        imb_small = imbalance_factor(centralized_direct_loads(small, 5))
        imb_large = imbalance_factor(centralized_direct_loads(large, 5))
        assert imb_large > 4 * imb_small  # ~linear growth


class TestRoutedLoads:
    def test_root_receives_n_minus_one(self, full_ring4):
        loads = centralized_routed_loads(full_ring4, key=0)
        # The root terminates every route: n - 1 receives (plus 0 sends).
        assert loads[0] == 15

    def test_forwarders_loaded_near_root(self, full_ring4):
        # Paper Fig. 8(a): "the closer a node precedes the root node in the
        # Chord identifier space, the more aggregation messages it has to
        # forward" — N15 relays the whole left half of the ring toward N0.
        loads = centralized_routed_loads(full_ring4, key=0)
        assert loads[15] > loads[1]
        assert loads[15] > loads[8]

    def test_total_counts_every_hop_twice(self, full_ring4):
        from repro.chord.routing import finger_route

        loads = centralized_routed_loads(full_ring4, key=0)
        total_hops = sum(
            finger_route(full_ring4, node, 0).hops for node in full_ring4 if node != 0
        )
        assert sum(loads.values()) == 2 * total_hops

    def test_matches_paper_scale_at_512(self):
        space = IdSpace(32)
        ring = ProbingIdAssigner().build_ring(space, 512, rng=42)
        loads = centralized_routed_loads(ring, key=12345)
        root = ring.successor(12345)
        assert loads[root] == 511  # the paper's headline number


class TestCentralizedAggregator:
    def test_aggregate_value_matches_truth(self, full_ring4):
        aggregator = CentralizedAggregator(full_ring4, key=0)
        values = {node: float(node) for node in full_ring4}
        assert aggregator.aggregate(values, SumAggregate()) == sum(values.values())

    def test_missing_values_rejected(self, full_ring4):
        aggregator = CentralizedAggregator(full_ring4, key=0)
        with pytest.raises(ValueError):
            aggregator.aggregate({0: 1.0}, SumAggregate())

    def test_loads_variant_switch(self, full_ring4):
        routed = CentralizedAggregator(full_ring4, key=0, routed=True).message_loads()
        direct = CentralizedAggregator(full_ring4, key=0, routed=False).message_loads()
        assert routed != direct
        assert direct[1] == 1

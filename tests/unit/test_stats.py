"""Unit tests for per-node message accounting on transports.

The accounting class is :class:`repro.telemetry.hotspot.HotspotAccountant`
(every ``transport.stats`` is one).
"""

from repro.telemetry.hotspot import HotspotAccountant


class TestTransportAccounting:
    def test_counts(self):
        stats = HotspotAccountant()
        stats.record_send(1, 100)
        stats.record_send(1, 50)
        stats.record_receive(2, 100)
        load1 = stats.load(1)
        assert load1.sent == 2 and load1.bytes_sent == 150
        assert stats.load(2).received == 1
        assert stats.load(2).bytes_received == 100

    def test_total_property(self):
        stats = HotspotAccountant()
        stats.record_send(1)
        stats.record_receive(1)
        assert stats.load(1).total == 2

    def test_unknown_node_zeros(self):
        assert HotspotAccountant().load(99).total == 0

    def test_nodes_set(self):
        stats = HotspotAccountant()
        stats.record_send(1)
        stats.record_receive(2)
        assert stats.nodes() == {1, 2}

    def test_total_messages_counts_sends(self):
        stats = HotspotAccountant()
        stats.record_send(1)
        stats.record_send(2)
        stats.record_receive(3)
        assert stats.total_messages() == 2

    def test_loads_includes_idle_nodes(self):
        stats = HotspotAccountant()
        stats.record_send(1)
        loads = stats.loads(nodes=[1, 2, 3])
        assert loads == {1: 1, 2: 0, 3: 0}

    def test_by_kind(self):
        stats = HotspotAccountant()
        stats.record_send(1, kind="lookup")
        stats.record_send(1, kind="lookup")
        stats.record_send(2, kind="notify")
        assert stats.by_kind() == {"lookup": 2, "notify": 1}

    def test_reset(self):
        stats = HotspotAccountant()
        stats.record_send(1, 10, kind="x")
        stats.reset()
        assert stats.total_messages() == 0
        assert stats.by_kind() == {}

    def test_thread_safety_smoke(self):
        import threading

        stats = HotspotAccountant()

        def hammer():
            for _ in range(1000):
                stats.record_send(7, 1)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert stats.load(7).sent == 4000

    def test_concurrent_reads_during_writes(self):
        """Regression: reads are lock-guarded too, not just writes.

        The UDP receive thread increments counters while callers read
        loads()/by_kind(); historically only the write side took the lock,
        so a reader could iterate a dict mid-resize (RuntimeError) or see
        torn totals.
        """
        import threading

        stats = HotspotAccountant()
        errors: list[Exception] = []
        stop = threading.Event()

        def writer():
            for i in range(3000):
                stats.record_send(i % 50, 1, kind="k")
                stats.record_receive(i % 50, 1)

        def reader():
            while not stop.is_set():
                try:
                    stats.loads()
                    stats.by_kind()
                    stats.nodes()
                    stats.total_messages()
                except Exception as exc:  # noqa: BLE001 - surfaced to the main thread
                    errors.append(exc)
                    return

        writers = [threading.Thread(target=writer) for _ in range(2)]
        readers = [threading.Thread(target=reader) for _ in range(2)]
        for t in readers + writers:
            t.start()
        for t in writers:
            t.join()
        stop.set()
        for t in readers:
            t.join()
        assert errors == []
        assert stats.total_messages() == 6000

"""Unit tests for the fleet control-plane codec (pure, no sockets)."""

import json

import pytest

from repro.errors import FleetWireError
from repro.fleet.wire import (
    MAX_FRAME_BYTES,
    Event,
    Hello,
    Reply,
    Request,
    decode_frame,
    encode_frame,
)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "frame",
        [
            Hello(ident=42, pid=1234, udp_host="127.0.0.1", udp_port=54321),
            Hello(ident=7, pid=99, udp_host="::1", udp_port=1, clock=12.345678),
            Request(op="status", req_id=7),
            Request(op="join", req_id=8, args={"bootstrap": 9374, "timeout": 5.0}),
            Reply(req_id=7, ok=True, result={"successor": 25758}),
            Reply(req_id=8, ok=False, error="agent 3 is not running"),
            Event(name="telemetry", data={"sent": 10, "estimates": {"0": 1.5}}),
        ],
    )
    def test_encode_decode_identity(self, frame):
        assert decode_frame(encode_frame(frame)) == frame

    def test_one_line_per_frame(self):
        data = encode_frame(Request(op="ping", req_id=1))
        assert data.endswith(b"\n")
        assert data.count(b"\n") == 1

    def test_decode_accepts_str(self):
        line = encode_frame(Event(name="x")).decode("utf-8")
        assert decode_frame(line) == Event(name="x")

    def test_reply_error_omitted_when_empty(self):
        obj = json.loads(encode_frame(Reply(req_id=1, ok=True)))
        assert "error" not in obj

    def test_hello_without_clock_decodes_to_zero(self):
        # Backward compatibility: pre-tracing agents send no clock field;
        # the supervisor degrades to "no alignment" for them.
        line = json.dumps(
            {"hello": {"ident": 1, "pid": 2, "udp_host": "h", "udp_port": 3}}
        )
        frame = decode_frame(line + "\n")
        assert isinstance(frame, Hello) and frame.clock == 0.0

    def test_hello_null_clock_decodes_to_zero(self):
        line = json.dumps(
            {
                "hello": {
                    "ident": 1,
                    "pid": 2,
                    "udp_host": "h",
                    "udp_port": 3,
                    "clock": None,
                }
            }
        )
        frame = decode_frame(line + "\n")
        assert isinstance(frame, Hello) and frame.clock == 0.0


class TestMalformed:
    @pytest.mark.parametrize(
        "line",
        [
            b"not json\n",
            b"[1, 2, 3]\n",
            b'{"neither": "fish", "nor": "fowl"}\n',
            b'{"op": "x"}\n',  # request without req_id
            b'{"req_id": 1}\n',  # reply without ok
            b'{"hello": {"ident": 1}}\n',  # hello missing fields
            b'{"op": 42, "req_id": 1}\n',  # op wrong type
            b'{"hello": {"ident": "x", "pid": 1, "udp_host": "h", "udp_port": 1}}\n',
            b"\xff\xfe\n",  # not UTF-8
        ],
    )
    def test_rejected(self, line):
        with pytest.raises(FleetWireError):
            decode_frame(line)

    def test_oversized_frame_rejected_on_encode(self):
        huge = Event(name="blob", data={"x": "a" * MAX_FRAME_BYTES})
        with pytest.raises(FleetWireError):
            encode_frame(huge)

    def test_oversized_frame_rejected_on_decode(self):
        with pytest.raises(FleetWireError):
            decode_frame(b"x" * (MAX_FRAME_BYTES + 1))

    def test_unserializable_payload_rejected(self):
        with pytest.raises(FleetWireError):
            encode_frame(Event(name="bad", data={"obj": object()}))

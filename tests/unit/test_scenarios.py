"""Unit tests for named deployment scenarios."""

import pytest

from repro.workloads.scenarios import Scenario, available_scenarios, scenario


class TestRegistry:
    def test_known_names(self):
        assert set(available_scenarios()) == {"cluster", "planetlab", "grid", "seti"}

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            scenario("cloud")

    def test_paper_scales(self):
        assert scenario("cluster").monitor.n_nodes == 512
        assert scenario("planetlab").monitor.n_nodes == 706
        assert scenario("grid").monitor.n_nodes == 8192


class TestDerivedWorkloads:
    def test_trace_generator_uses_noise(self):
        gen = scenario("seti").trace_generator(seed=1)
        assert gen.noise_scale == 12.0

    def test_churn_workload_scales_with_size(self):
        small = scenario("cluster").churn_workload(3600.0, seed=1)
        big = scenario("seti").churn_workload(3600.0, seed=1)
        assert big.expected_events() > 50 * small.expected_events()

    def test_churn_rate_math(self):
        # planetlab: 2 events/hour/100 nodes * 7.06 = ~14.1 events/hour.
        workload = scenario("planetlab").churn_workload(3600.0, seed=2)
        assert workload.expected_events() == pytest.approx(14.12, rel=0.01)

    def test_seti_is_crash_heavy(self):
        workload = scenario("seti").churn_workload(100.0, seed=3)
        assert workload.crash_fraction == 0.5

    def test_scenario_is_frozen(self):
        s = scenario("grid")
        with pytest.raises(AttributeError):
            s.name = "other"  # type: ignore[misc]

"""Unit tests for the DatTree structure and metrics."""

import pytest

from repro.core.tree import DatTree
from repro.errors import TreeError


def chain_tree() -> DatTree:
    """0 <- 1 <- 2 <- 3 (a path)."""
    return DatTree(root=0, parent={1: 0, 2: 1, 3: 2})


def star_tree() -> DatTree:
    """Root 0 with children 1..4."""
    return DatTree(root=0, parent={i: 0 for i in range(1, 5)})


def binary_tree() -> DatTree:
    """Complete binary tree over 7 nodes."""
    return DatTree(root=1, parent={2: 1, 3: 1, 4: 2, 5: 2, 6: 3, 7: 3})


class TestConstruction:
    def test_root_with_parent_rejected(self):
        with pytest.raises(TreeError):
            DatTree(root=0, parent={0: 1})

    def test_n_nodes(self):
        assert chain_tree().n_nodes == 4
        assert DatTree(root=5, parent={}).n_nodes == 1


class TestStructure:
    def test_children(self):
        tree = binary_tree()
        assert tree.children(1) == [2, 3]
        assert tree.children(7) == []

    def test_branching_factor(self):
        assert star_tree().branching_factor(0) == 4
        assert star_tree().branching_factor(3) == 0

    def test_depths(self):
        tree = binary_tree()
        depths = tree.depths()
        assert depths[1] == 0
        assert depths[2] == depths[3] == 1
        assert depths[7] == 2

    def test_path_to_root(self):
        assert chain_tree().path_to_root(3) == [3, 2, 1, 0]
        assert chain_tree().path_to_root(0) == [0]

    def test_cycle_detected(self):
        tree = DatTree(root=0, parent={1: 2, 2: 1})
        with pytest.raises(TreeError):
            tree.depths()

    def test_path_from_dangling_parent(self):
        tree = DatTree(root=0, parent={1: 99})
        with pytest.raises(TreeError):
            tree.path_to_root(1)

    def test_validate_ok(self):
        binary_tree().validate()

    def test_validate_self_parent(self):
        # Self-parent is both a cycle and an explicit failure mode.
        tree = DatTree(root=0, parent={1: 1})
        with pytest.raises(TreeError):
            tree.validate()


class TestMetrics:
    def test_height(self):
        assert chain_tree().height == 3
        assert star_tree().height == 1
        assert binary_tree().height == 2
        assert DatTree(root=9, parent={}).height == 0

    def test_branching_factors_map(self):
        factors = binary_tree().branching_factors()
        assert factors[1] == 2 and factors[4] == 0

    def test_leaves_and_internal(self):
        tree = binary_tree()
        assert tree.leaves() == [4, 5, 6, 7]
        assert tree.internal_nodes() == [1, 2, 3]

    def test_stats_binary(self):
        stats = binary_tree().stats()
        assert stats.n_nodes == 7
        assert stats.height == 2
        assert stats.max_branching == 2
        assert stats.avg_branching == 2.0
        assert stats.n_leaves == 4
        assert stats.n_internal == 3

    def test_stats_avg_over_internal_only(self):
        # Star: one internal node with 4 children -> avg branching 4.
        assert star_tree().stats().avg_branching == 4.0

    def test_stats_single_node(self):
        stats = DatTree(root=3, parent={}).stats()
        assert stats.max_branching == 0
        assert stats.avg_branching == 0.0

    def test_stats_as_dict(self):
        row = binary_tree().stats().as_dict()
        assert row["n_nodes"] == 7 and "height" in row

    def test_subtree_sizes(self):
        sizes = binary_tree().subtree_sizes()
        assert sizes[1] == 7
        assert sizes[2] == 3
        assert sizes[7] == 1

    def test_message_loads(self):
        # Each non-root sends 1; each node receives its branching factor.
        tree = binary_tree()
        loads = tree.message_loads()
        assert loads[1] == 2      # root: receives 2, sends 0
        assert loads[2] == 3      # internal: receives 2, sends 1
        assert loads[7] == 1      # leaf: sends 1
        assert sum(loads.values()) == 2 * (tree.n_nodes - 1)

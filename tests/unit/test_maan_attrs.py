"""Unit tests for MAAN attribute schemas and resources."""

import pytest

from repro.chord.idspace import IdSpace
from repro.errors import SchemaError
from repro.maan.attrs import AttributeKind, AttributeSchema, Resource


class TestAttributeSchema:
    def test_numeric_requires_bounds(self):
        with pytest.raises(SchemaError):
            AttributeSchema("cpu-speed")
        with pytest.raises(SchemaError):
            AttributeSchema("cpu-speed", low=1.0)

    def test_numeric_bounds_ordered(self):
        with pytest.raises(SchemaError):
            AttributeSchema("x", low=5.0, high=5.0)

    def test_string_needs_no_bounds(self):
        schema = AttributeSchema("os", kind=AttributeKind.STRING)
        assert schema.kind is AttributeKind.STRING

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            AttributeSchema("", low=0, high=1)

    def test_numeric_hasher_is_locality_preserving(self):
        schema = AttributeSchema("mem", low=0.0, high=100.0)
        hasher = schema.hasher(IdSpace(16))
        assert hasher(10) < hasher(20) < hasher(90)

    def test_string_hasher_deterministic(self):
        schema = AttributeSchema("os", kind=AttributeKind.STRING)
        hasher = schema.hasher(IdSpace(16))
        assert hasher("linux") == hasher("linux")
        assert hasher("linux") != hasher("freebsd")

    def test_validate_numeric(self):
        schema = AttributeSchema("mem", low=0.0, high=100.0)
        assert schema.validate_value("42") == 42.0
        with pytest.raises(SchemaError):
            schema.validate_value("not-a-number")

    def test_validate_string(self):
        schema = AttributeSchema("os", kind=AttributeKind.STRING)
        assert schema.validate_value("linux") == "linux"
        with pytest.raises(SchemaError):
            schema.validate_value(3.14)


class TestResource:
    def test_value_of(self):
        resource = Resource("host-1", {"cpu-speed": 2.8})
        assert resource.value_of("cpu-speed") == 2.8
        with pytest.raises(KeyError):
            resource.value_of("missing")

    def test_matches_range(self):
        resource = Resource("host-1", {"cpu-usage": 95.0})
        assert resource.matches("cpu-usage", 90, 100)
        assert not resource.matches("cpu-usage", 0, 50)
        assert not resource.matches("memory", 0, 100)  # absent attribute

    def test_paper_example_shape(self):
        # Sec. 2.2's example resource.
        resource = Resource(
            "usc-node", {"cpu-speed": 2.8, "memory-size": 1.0, "cpu-usage": 95.0}
        )
        assert resource.matches("cpu-speed", 2.0, 3.0)

"""Unit tests for ChordNetwork orchestration."""

import pytest

from repro.chord.idspace import IdSpace
from repro.chord.network import ChordNetwork
from repro.chord.node import ChordConfig
from repro.errors import RingError
from repro.sim.latency import ConstantLatency
from repro.sim.simnet import SimTransport


def make_network(bits: int = 8) -> ChordNetwork:
    transport = SimTransport(latency=ConstantLatency(0.01))
    config = ChordConfig(stabilize_interval=0.5, fix_fingers_interval=0.1)
    return ChordNetwork(IdSpace(bits), transport, config)


class TestMembership:
    def test_bootstrap_then_joins(self):
        network = make_network()
        network.create_first(10)
        network.add_node(100)
        network.add_node(200)
        network.settle(30.0)
        assert network.is_converged()

    def test_double_bootstrap_rejected(self):
        network = make_network()
        network.create_first(10)
        with pytest.raises(RingError):
            network.create_first(20)

    def test_duplicate_join_rejected(self):
        network = make_network()
        network.create_first(10)
        with pytest.raises(RingError):
            network.add_node(10)

    def test_add_node_bootstraps_empty_network(self):
        network = make_network()
        network.add_node(5)
        assert 5 in network.nodes

    def test_remove_node(self):
        network = make_network()
        network.create_first(10)
        network.add_node(100)
        network.settle(30.0)
        network.remove_node(100, graceful=True)
        network.settle(10.0)
        assert 100 not in network.nodes
        assert network.is_converged()

    def test_build_incrementally(self):
        network = make_network()
        network.build_incrementally([10, 50, 100, 150, 200], settle_between=3.0)
        network.settle_until_converged()
        assert len(network.nodes) == 5


class TestConvergence:
    def test_settle_until_converged(self):
        network = make_network()
        for ident in (10, 60, 120, 180):
            network.add_node(ident)
        rounds = network.settle_until_converged()
        assert rounds >= 1
        assert network.is_converged()

    def test_finger_convergence_fraction_reaches_one(self):
        network = make_network()
        for ident in (10, 60, 120, 180):
            network.add_node(ident)
        network.settle_until_converged()
        for node in network.nodes.values():
            node.fix_all_fingers()
        network.settle(10.0)
        assert network.finger_convergence_fraction() == 1.0
        assert network.is_converged(check_fingers=True)

    def test_ideal_ring_matches_membership(self):
        network = make_network()
        for ident in (10, 60, 120):
            network.add_node(ident)
        assert network.ideal_ring().nodes == [10, 60, 120]

    def test_empty_network_is_converged(self):
        assert make_network().is_converged()

    def test_snapshot_finger_tables(self):
        network = make_network()
        network.add_node(10)
        network.add_node(100)
        network.settle(20.0)
        tables = network.snapshot_finger_tables()
        assert set(tables) == {10, 100}


class TestProbeJoin:
    def test_probe_returns_designated_identifier(self):
        network = make_network()
        network.add_node(0)
        network.add_node(128)
        network.settle_until_converged()
        designated = network.probe_join(rng=7)
        assert designated is not None
        assert designated not in network.nodes

    def test_probe_on_empty_network(self):
        assert make_network().probe_join(rng=1) is None

"""Teardown cost regression: unregister must not scan the pending table.

An earlier ``Transport.unregister`` cancelled a node's outstanding calls
by scanning every pending entry — O(pending) per node, O(n^2) for a mass
teardown, which at 10^5 nodes turned shutdown into the dominant cost. The
fix is a per-source secondary index (``_pending_by_source``); these tests
pin the *operation counts*, not wall-clock, so they are deterministic:
tearing down n nodes with one outstanding call each must perform zero
full-table iterations and O(1) dict operations per node. Run at n=16384
(the array-backed threshold) to make any reintroduced scan unmistakable.
"""

import math

from repro.sim.messages import Message
from repro.sim.simnet import SimTransport

N_NODES = 16384


class CountingDict(dict):
    """Dict that counts full iterations and per-key pops."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.iterations = 0
        self.pops = 0

    def __iter__(self):
        self.iterations += 1
        return super().__iter__()

    def keys(self):
        self.iterations += 1
        return super().keys()

    def values(self):
        self.iterations += 1
        return super().values()

    def items(self):
        self.iterations += 1
        return super().items()

    def pop(self, *args):
        self.pops += 1
        return super().pop(*args)


def build_loaded_transport(n):
    """n registered nodes, each with one outstanding (deadline-free) call."""
    transport = SimTransport()
    pending = CountingDict()
    transport._pending = pending
    for node in range(1, n + 1):
        transport.register(node, lambda message: None)
        request = Message(
            kind="probe", source=node, destination=0, payload={}
        )
        transport.expect(
            request, on_reply=lambda reply: None, timeout=math.inf
        )
    assert transport.pending_calls() == n
    return transport, pending


class TestUnregisterScaling:
    def test_mass_unregister_never_scans_pending(self):
        transport, pending = build_loaded_transport(N_NODES)
        pending.iterations = 0
        pending.pops = 0
        for node in range(1, N_NODES + 1):
            transport.unregister(node)
        assert transport.pending_calls() == 0
        assert not transport._pending_by_source
        # Zero full-table scans; exactly one pop per cancelled entry.
        assert pending.iterations == 0
        assert pending.pops == N_NODES

    def test_unregister_only_cancels_own_calls(self):
        transport, _ = build_loaded_transport(8)
        transport.unregister(3)
        assert transport.pending_calls() == 7
        remaining = {entry.source for entry in transport._pending.values()}
        assert remaining == {1, 2, 4, 5, 6, 7, 8}

    def test_cancel_all_calls_clears_source_index(self):
        transport, _ = build_loaded_transport(16)
        assert transport.cancel_all_calls() == 16
        assert transport.pending_calls() == 0
        assert not transport._pending_by_source

    def test_reply_routing_cleans_source_index(self):
        transport, _ = build_loaded_transport(4)
        # A matched response must remove the entry from both tables.
        request_id = next(iter(transport._pending))
        source = transport._pending[request_id].source
        response = Message(
            kind="probe_reply",
            source=0,
            destination=source,
            payload={},
            reply_to=request_id,
        )
        transport.send(response)
        transport.run(until=transport.now() + 1.0)
        assert request_id not in transport._pending
        assert all(
            request_id not in bucket
            for bucket in transport._pending_by_source.values()
        )

"""Unit tests for distributed tracing.

Covers the wire context (`TraceContext` encode/decode/extract), the
recorder's tracing semantics (root minting, inheritance, `start_trace`,
`start_remote`), propagation (fill-only-if-absent vs explicit overwrite,
batched-push per-message fan-out), causal assembly (`repro.telemetry.
traces`) with its edge cases — orphaned spans, duplicate span ids from
retransmissions, skewed per-node clock offsets — the critical-path tiling
invariant, the traces CLI, the multi-file report merge, and the fleet
report built from a synthetic state directory.
"""

from __future__ import annotations

import json

import pytest

from repro import telemetry
from repro.net import Batcher, UpcallRegistry, install_batch_unwrapper
from repro.sim.inproc import InprocTransport
from repro.sim.messages import Message
from repro.telemetry import (
    TRACE_KEY,
    SpanRecorder,
    TraceContext,
)
from repro.telemetry.report import main as report_main
from repro.telemetry.traces import (
    TraceSpan,
    assemble,
    assemble_files,
    load_trace_spans,
    offset_for,
)
from repro.telemetry.traces import main as traces_main


@pytest.fixture(autouse=True)
def _global_telemetry_off():
    telemetry.disable()
    yield
    telemetry.disable()


class FakeClock:
    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t


def tracing_recorder(site: str = "0") -> tuple[SpanRecorder, FakeClock]:
    clock = FakeClock()
    return SpanRecorder(clock=clock, site=site, tracing=True), clock


# --------------------------------------------------------------------- #
# TraceContext wire format
# --------------------------------------------------------------------- #


class TestTraceContext:
    def test_wire_roundtrip(self):
        ctx = TraceContext(trace_id="7:42", parent="7:43", hop=2)
        assert ctx.to_wire() == ["7:42", "7:43", 2]
        assert TraceContext.from_wire(ctx.to_wire()) == ctx

    @pytest.mark.parametrize(
        "wire",
        [
            None,
            "7:42",
            ["7:42", "7:43"],  # too short
            ["7:42", "7:43", 2, 9],  # too long
            [1, "7:43", 2],  # trace_id wrong type
            ["7:42", 2, 2],  # parent wrong type
            ["7:42", "7:43", "2"],  # hop wrong type
            {"trace_id": "7:42"},
        ],
    )
    def test_malformed_wire_is_none(self, wire):
        assert TraceContext.from_wire(wire) is None

    def test_extract_from_message_payload_and_passthrough(self):
        ctx = TraceContext(trace_id="1:1", parent="1:1", hop=0)
        msg = Message(
            kind="x", source=1, destination=2, payload={TRACE_KEY: ctx.to_wire()}
        )
        assert TraceContext.extract(msg) == ctx
        assert TraceContext.extract({TRACE_KEY: ctx.to_wire()}) == ctx
        assert TraceContext.extract(ctx) is ctx
        assert TraceContext.extract(None) is None
        assert TraceContext.extract({"no": "context"}) is None
        assert TraceContext.extract(object()) is None


# --------------------------------------------------------------------- #
# Recorder tracing semantics
# --------------------------------------------------------------------- #


class TestRecorderTracing:
    def test_root_span_mints_qualified_trace_id(self):
        rec, _clock = tracing_recorder(site="9")
        span = rec.start("op")
        assert span.trace_id == f"9:{span.span_id}"
        assert span.sid == f"9:{span.span_id}"
        assert span.hop == 0
        span.finish()

    def test_child_inherits_trace_id_and_hop(self):
        rec, _clock = tracing_recorder()
        with rec.start("outer") as outer:
            child = rec.start("inner")
            assert child.trace_id == outer.trace_id
            assert child.hop == outer.hop
            assert child.qualified_parent() == outer.sid
            child.finish()

    def test_start_trace_ignores_ambient_span(self):
        rec, _clock = tracing_recorder()
        with rec.start("harness") as ambient:
            root = rec.start_trace("dat.push")
            assert root.parent_id is None
            assert root.qualified_parent() is None
            assert root.trace_id == root.sid
            assert root.trace_id != ambient.trace_id
            # It still joins the stack: its own children nest under it.
            child = rec.start("child")
            assert child.trace_id == root.trace_id
            child.finish()
            root.finish()

    def test_start_remote_joins_remote_trace_not_local_stack(self):
        rec, _clock = tracing_recorder(site="2")
        ctx = TraceContext(trace_id="1:5", parent="1:5", hop=0)
        with rec.start("local.noise"):
            span = rec.start_remote(ctx, "dat.push_recv")
            assert span.trace_id == "1:5"
            assert span.qualified_parent() == "1:5"
            assert span.hop == 1
            span.finish()

    def test_start_remote_without_context_is_plain_start(self):
        rec, _clock = tracing_recorder()
        span = rec.start_remote(None, "op")
        assert span.trace_id == span.sid and span.hop == 0
        span.finish()

    def test_no_tracing_means_no_trace_fields(self):
        rec = SpanRecorder(clock=FakeClock(), tracing=False)
        span = rec.start_trace("dat.push")
        assert span.trace_id is None
        assert span.trace_context() is None
        payload: dict[str, object] = {}
        span.propagate(payload)
        assert TRACE_KEY not in payload
        span.finish()


# --------------------------------------------------------------------- #
# Propagation
# --------------------------------------------------------------------- #


class TestPropagation:
    def test_propagate_overwrites_copied_context(self):
        rec, _clock = tracing_recorder()
        hop = rec.start("forward.hop")
        stale = ["0:999", "0:999", 7]
        msg = Message(
            kind="fwd", source=1, destination=2, payload={TRACE_KEY: stale, "k": 1}
        )
        hop.propagate(msg)
        assert msg.payload[TRACE_KEY] == [hop.trace_id, hop.sid, hop.hop]
        hop.finish()

    def test_propagate_current_fills_only_if_absent(self):
        with telemetry.enabled(tracing=True):
            with telemetry.span("op") as sp:
                fresh = Message(kind="x", source=1, destination=2, payload={})
                stamped = Message(
                    kind="x",
                    source=1,
                    destination=2,
                    payload={TRACE_KEY: ["0:999", "0:999", 3]},
                )
                telemetry.propagate_current(fresh)
                telemetry.propagate_current(stamped)
                assert fresh.payload[TRACE_KEY] == [sp.trace_id, sp.sid, sp.hop]
                assert stamped.payload[TRACE_KEY] == ["0:999", "0:999", 3]

    def test_batched_pushes_keep_individual_contexts(self):
        """Satellite edge case: batching must not collapse contexts.

        Two pushes enqueued under two different spans ride one net_batch
        envelope; the unwrapped messages must each carry their *own*
        originating context, captured at enqueue time.
        """
        transport = InprocTransport()
        delivered: list[Message] = []
        upcalls = UpcallRegistry()
        upcalls["agg_push"] = lambda m: delivered.append(m)
        install_batch_unwrapper(upcalls, lambda m: upcalls.dispatch(m))
        transport.register(5, upcalls.dispatch)
        batcher = Batcher(transport, window=1.0)

        with telemetry.enabled(tracing=True) as tel:
            contexts = []
            for n in range(2):
                with tel.spans.start_trace(f"push.{n}") as sp:
                    msg = Message(
                        kind="agg_push", source=1, destination=5, payload={"n": n}
                    )
                    batcher.enqueue(msg)
                    contexts.append([sp.trace_id, sp.sid, sp.hop])
            assert delivered == []  # still queued in the window
            transport.advance(1.0)

        assert [m.payload["n"] for m in delivered] == [0, 1]
        got = [m.payload[TRACE_KEY] for m in delivered]
        assert got == contexts
        assert got[0] != got[1]


# --------------------------------------------------------------------- #
# Assembly
# --------------------------------------------------------------------- #


def tspan(
    sid,
    name="op",
    start=0.0,
    end=1.0,
    parent=None,
    trace_id=None,
    hop=0,
    node=None,
):
    return TraceSpan(
        sid=sid,
        name=name,
        start=start,
        end=end,
        trace_parent=parent,
        trace_id=trace_id or sid.split(":")[0] + ":root",
        hop=hop,
        node=node,
    )


class TestAssemble:
    def test_parent_child_linking_and_depth(self):
        root = tspan("0:1", name="dat.push", start=0.0, end=3.0)
        child = tspan("1:1", name="dat.push_recv", start=1.0, end=2.0, parent="0:1", hop=1)
        result = assemble([root, child])
        assert len(result.traces) == 1
        trace = result.traces[0]
        assert not trace.orphaned
        assert trace.depth() == 1
        assert trace.hops() == 1
        assert [s.sid for s in trace.spans] == ["0:1", "1:1"]

    def test_orphaned_span_becomes_flagged_root(self):
        lonely = tspan("2:9", name="dat.push_recv", parent="1:404", hop=3)
        result = assemble([lonely])
        assert len(result.traces) == 1
        assert result.traces[0].orphaned
        assert result.orphans() == result.traces
        assert result.rooted("dat.push_recv") == []  # orphans never count as rooted

    def test_duplicate_sids_first_wins_and_counted(self):
        first = tspan("0:1", name="original")
        retransmit = tspan("0:1", name="retransmitted")
        result = assemble([first, retransmit, tspan("0:2", name="other")])
        assert result.duplicates == 1
        assert result.total_spans == 2
        names = {t.root.name for t in result.traces}
        assert "original" in names and "retransmitted" not in names

    def test_children_sorted_by_start(self):
        root = tspan("0:1", start=0.0, end=10.0)
        late = tspan("0:3", start=5.0, end=6.0, parent="0:1")
        early = tspan("0:2", start=1.0, end=2.0, parent="0:1")
        result = assemble([root, late, early])
        assert [c.sid for c in result.traces[0].root.children] == ["0:2", "0:3"]

    def test_mutual_parent_links_do_not_hang(self):
        a = tspan("0:1", parent="0:2")
        b = tspan("0:2", parent="0:1")
        result = assemble([a, b])  # corrupt links: no root, no infinite loop
        assert result.total_spans == 2
        assert result.traces == []

    def test_nodes_first_seen_order(self):
        root = tspan("0:1", start=0.0, end=3.0, node=7)
        child = tspan("1:1", start=1.0, end=2.0, parent="0:1", node=3)
        trace = assemble([root, child]).traces[0]
        assert trace.nodes() == [7, 3]


class TestCriticalPath:
    def test_segments_tile_root_interval_exactly(self):
        root = tspan("0:1", start=0.0, end=10.0, node="a")
        c1 = tspan("0:2", start=1.0, end=4.0, parent="0:1", node="b")
        c2 = tspan("0:3", start=3.0, end=9.0, parent="0:1", node="c")
        trace = assemble([root, c1, c2]).traces[0]
        segments = trace.critical_path()
        # Contiguous tiling of [0, 10].
        assert segments[0][1] == pytest.approx(0.0)
        assert segments[-1][2] == pytest.approx(10.0)
        for (_s1, _a, b), (_s2, c, _d) in zip(segments, segments[1:]):
            assert b == pytest.approx(c)
        assert trace.critical_path_latency() == pytest.approx(trace.duration)
        # The latest-ending child owns the stretch before the root's tail.
        owners = [seg[0].sid for seg in segments]
        assert "0:3" in owners
        attribution = trace.node_attribution()
        assert sum(attribution.values()) == pytest.approx(10.0)
        assert attribution["c"] == pytest.approx(6.0)  # [3, 9] on the path

    def test_child_overhang_is_clamped_into_parent(self):
        root = tspan("0:1", start=0.0, end=5.0)
        skewed = tspan("1:1", start=4.0, end=8.0, parent="0:1")  # ends after root
        trace = assemble([root, skewed]).traces[0]
        assert trace.critical_path_latency() == pytest.approx(5.0)
        assert all(t0 >= 0.0 and t1 <= 5.0 for _s, t0, t1 in trace.critical_path())

    def test_open_root_has_zero_critical_path(self):
        root = tspan("0:1", start=2.0, end=None)
        trace = assemble([root]).traces[0]
        assert trace.duration == 0.0
        assert trace.critical_path_latency() == 0.0


# --------------------------------------------------------------------- #
# Clock offsets and multi-file assembly (fleet merge)
# --------------------------------------------------------------------- #


def write_export(path, records):
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record) + "\n")


def span_line(sid, name, start, end, parent=None, hop=0, node=None):
    record = {
        "type": "span",
        "name": name,
        "span_id": int(sid.split(":")[1]),
        "parent_id": None,
        "start": start,
        "end": end,
        "attrs": {},
        "error": None,
        "trace_id": sid if parent is None else parent,
        "sid": sid,
        "trace_parent": parent,
        "hop": hop,
    }
    if node is not None:
        record["node"] = node
    return record


class TestOffsets:
    def test_offset_for_matches_stem_then_ident_token(self):
        offsets = {"spans-7": 1.5, "9": -2.0}
        assert offset_for("x/spans-7.jsonl", offsets) == 1.5
        assert offset_for("x/spans-9.jsonl", offsets) == -2.0
        assert offset_for("x/spans-8.jsonl", offsets) == 0.0
        assert offset_for("x/spans-8.jsonl", None) == 0.0

    def test_skewed_fleet_files_align_under_offsets(self, tmp_path):
        """Satellite edge case: per-node clocks disagree wildly.

        Node 1's push happens at t=5 on the shared timeline; node 2's
        clock is 95 s behind, so its recv span is stamped ~100. Without
        alignment the child would land far outside the parent; with the
        supervisor's offsets the tree reassembles on one timeline.
        """
        parent_file = tmp_path / "spans-1.jsonl"
        child_file = tmp_path / "spans-2.jsonl"
        write_export(
            parent_file,
            [span_line("1:1", "dat.push", 5.0, 6.0, node=1)],
        )
        write_export(
            child_file,
            [span_line("2:1", "dat.push_recv", 100.2, 100.4, parent="1:1", hop=1, node=2)],
        )
        offsets = {"1": 0.0, "2": -94.9}
        result = assemble_files([parent_file, child_file], offsets=offsets)
        assert len(result.traces) == 1 and not result.traces[0].orphaned
        trace = result.traces[0]
        child = trace.root.children[0]
        assert child.start == pytest.approx(5.3)
        assert trace.root.start <= child.start <= child.end <= trace.root.end
        assert trace.critical_path_latency() == pytest.approx(trace.duration)

    def test_load_trace_spans_skips_untraced_and_garbage(self, tmp_path):
        path = tmp_path / "mixed.jsonl"
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps({"type": "metric", "name": "x"}) + "\n")
            handle.write("not json at all\n")
            # A span exported with tracing off: no sid — skipped.
            handle.write(
                json.dumps({"type": "span", "name": "plain", "start": 0.0, "end": 1.0})
                + "\n"
            )
            handle.write(json.dumps(span_line("0:1", "traced", 0.0, 1.0)) + "\n")
        spans = load_trace_spans(path)
        assert [s.name for s in spans] == ["traced"]
        assert spans[0].source == "mixed.jsonl"


# --------------------------------------------------------------------- #
# CLIs
# --------------------------------------------------------------------- #


class TestTracesCli:
    def test_missing_file_exits_2(self, tmp_path, capsys):
        assert traces_main([str(tmp_path / "nope.jsonl")]) == 2
        assert "no such span export" in capsys.readouterr().err

    def test_no_traced_spans_exits_2(self, tmp_path, capsys):
        path = tmp_path / "plain.jsonl"
        write_export(path, [{"type": "span", "name": "p", "start": 0.0, "end": 1.0}])
        assert traces_main([str(path)]) == 2
        assert "tracing enabled" in capsys.readouterr().err

    def test_summary_and_json(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        write_export(
            path,
            [
                span_line("0:1", "dat.push", 0.0, 2.0),
                span_line("1:1", "dat.push_recv", 0.5, 1.5, parent="0:1", hop=1),
            ],
        )
        assert traces_main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "1 traces from 2 spans" in out
        assert traces_main([str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["roots"] == {"dat.push": 1}
        assert payload["orphans"] == 0

    def test_require_root_failure_exits_1(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        write_export(path, [span_line("0:1", "dat.push", 0.0, 2.0)])
        assert traces_main([str(path), "--require-root", "chord.lookup"]) == 1
        assert "CHECK FAIL" in capsys.readouterr().out

    def test_min_depth_with_tail_grace(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        write_export(
            path,
            [
                span_line("0:1", "dat.push", 0.0, 2.0),
                span_line("1:1", "dat.push_recv", 0.5, 1.5, parent="0:1", hop=1),
                # A push at the very end whose recv never made the export:
                span_line("0:9", "dat.push", 9.9, 10.0),
            ],
        )
        argv = [str(path), "--require-root", "dat.push", "--min-depth", "1"]
        assert traces_main(argv) == 1  # the tail push is shallow
        capsys.readouterr()
        assert traces_main(argv + ["--tail-grace", "0.5"]) == 0
        assert "in tail grace" in capsys.readouterr().out

    def test_check_critical_path_and_tree(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        write_export(
            path,
            [
                span_line("0:1", "dat.push", 0.0, 2.0, node=4),
                span_line("1:1", "dat.push_recv", 0.5, 1.5, parent="0:1", hop=1, node=9),
            ],
        )
        assert traces_main([str(path), "--check-critical-path", "--tree", "1"]) == 0
        out = capsys.readouterr().out
        assert "critical path == root duration" in out
        assert "dat.push_recv [1:1]" in out  # rendered tree

    def test_offsets_flag(self, tmp_path, capsys):
        span_file = tmp_path / "spans-2.jsonl"
        write_export(
            span_file, [span_line("2:1", "dat.push", 100.0, 101.0)]
        )
        offsets_file = tmp_path / "clock-offsets.json"
        offsets_file.write_text(json.dumps({"2": -100.0}))
        assert traces_main([str(span_file), "--offsets", str(offsets_file), "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["traces"] == 1
        assert traces_main([str(span_file), "--offsets", str(tmp_path / "gone.json")]) == 2


class TestReportMerge:
    def test_multiple_files_merge_into_traces_section(self, tmp_path, capsys):
        a = tmp_path / "spans-1.jsonl"
        b = tmp_path / "spans-2.jsonl"
        write_export(a, [span_line("1:1", "dat.push", 0.0, 2.0, node=1)])
        write_export(
            b, [span_line("2:1", "dat.push_recv", 0.5, 1.5, parent="1:1", hop=1, node=2)]
        )
        assert report_main([str(a), str(b), "--section", "traces"]) == 0
        out = capsys.readouterr().out
        assert "dat.push" in out
        assert "critical-path time by node" in out

    def test_directory_input_expands(self, tmp_path, capsys):
        write_export(
            tmp_path / "spans-1.jsonl", [span_line("1:1", "dat.push", 0.0, 2.0)]
        )
        assert report_main([str(tmp_path), "--section", "traces"]) == 0
        assert "dat.push" in capsys.readouterr().out

    def test_missing_path_exits_2(self, tmp_path, capsys):
        assert report_main([str(tmp_path / "ghost.jsonl")]) == 2
        assert "error" in capsys.readouterr().err

    def test_empty_directory_exits_2(self, tmp_path, capsys):
        assert report_main([str(tmp_path)]) == 2
        assert "no telemetry" in capsys.readouterr().err


# --------------------------------------------------------------------- #
# Fleet report (synthetic state dir)
# --------------------------------------------------------------------- #


def telemetry_frame(t, sent, pushes):
    return {
        "event": "telemetry",
        "data": {"t": t, "sent": sent, "received": sent, "pushes": {"11": pushes}},
    }


@pytest.fixture()
def state_dir(tmp_path):
    write_export(
        tmp_path / "telemetry-1.jsonl",
        [telemetry_frame(1.0, 4, 2), telemetry_frame(2.0, 9, 5)],
    )
    write_export(tmp_path / "telemetry-2.jsonl", [telemetry_frame(1.5, 3, 1)])
    write_export(
        tmp_path / "spans-1.jsonl",
        [span_line("1:1", "dat.push", 5.0, 6.0, node=1)],
    )
    write_export(
        tmp_path / "spans-2.jsonl",
        [span_line("2:1", "dat.push_recv", 15.2, 15.6, parent="1:1", hop=1, node=2)],
    )
    (tmp_path / "clock-offsets.json").write_text(json.dumps({"1": 0.0, "2": -10.0}))
    return tmp_path


class TestFleetReport:
    def test_build_merges_rollups_and_traces(self, state_dir):
        from repro.fleet.report import build_fleet_report

        report = build_fleet_report(state_dir)
        assert report["n_agents"] == 2
        assert report["agents"]["1"]["samples"] == 2
        assert report["agents"]["1"]["pushes"] == 5  # last sample wins
        assert report["total_pushes"] == 6
        traces = report["traces"]
        assert traces["spans"] == 2 and traces["orphans"] == 0
        stats = traces["roots"]["dat.push"]
        assert stats["count"] == 1
        assert stats["cross_node"] == 1  # offset alignment linked node 2's recv
        assert stats["max_hops"] == 1

    def test_check_traces_passes_and_fails(self, state_dir):
        from repro.fleet.report import build_fleet_report, check_traces

        report = build_fleet_report(state_dir)
        assert check_traces(report, "dat.push") == []
        failures = check_traces(report, "chord.lookup")
        assert failures and "no traces rooted" in failures[0]

    def test_no_span_files_reports_none(self, state_dir):
        from repro.fleet.report import build_fleet_report, check_traces

        for path in state_dir.glob("spans-*.jsonl"):
            path.unlink()
        report = build_fleet_report(state_dir)
        assert report["traces"] is None
        assert check_traces(report, "dat.push") == [
            f"no span exports in {state_dir}"
        ]

    def test_cli_json_and_require_traces(self, state_dir, capsys):
        from repro.fleet.report import main as fleet_report_main

        assert fleet_report_main([str(state_dir), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_agents"] == 2
        assert (
            fleet_report_main([str(state_dir), "--require-traces", "dat.push"]) == 0
        )
        capsys.readouterr()
        assert (
            fleet_report_main([str(state_dir), "--require-traces", "nope"]) == 1
        )
        assert "CHECK FAIL" in capsys.readouterr().err

    def test_cli_missing_dir_exits_2(self, tmp_path, capsys):
        from repro.fleet.report import main as fleet_report_main

        assert fleet_report_main([str(tmp_path / "ghost")]) == 2
        assert "no such fleet state directory" in capsys.readouterr().err

"""Unit tests for workload generators."""

import pytest

from repro.chord.idgen import UniformIdAssigner
from repro.chord.idspace import IdSpace
from repro.gma.traces import TraceGenerator
from repro.workloads.churn import ChurnKind, ChurnWorkload
from repro.workloads.grids import GridResourceGenerator, default_schemas, make_producers
from repro.workloads.queries import QueryWorkload


class TestGridResourceGenerator:
    def test_fleet_naming(self):
        fleet = GridResourceGenerator(seed=1).fleet(5, prefix="m")
        assert [r.resource_id for r in fleet] == [f"m-{i}" for i in range(5)]

    def test_attributes_within_schema_domains(self):
        schemas = default_schemas()
        for resource in GridResourceGenerator(seed=2).fleet(100):
            for name, value in resource.attributes.items():
                schema = schemas[name]
                assert schema.low <= value <= schema.high, name

    def test_deterministic(self):
        a = GridResourceGenerator(seed=3).fleet(10)
        b = GridResourceGenerator(seed=3).fleet(10)
        assert [r.attributes for r in a] == [r.attributes for r in b]

    def test_rejects_negative_count(self):
        with pytest.raises(ValueError):
            GridResourceGenerator(seed=0).fleet(-1)


class TestMakeProducers:
    def test_one_per_node(self):
        ring = UniformIdAssigner().build_ring(IdSpace(16), 8)
        producers = make_producers(ring, seed=4)
        assert set(producers) == set(ring)

    def test_random_walk_sensors_by_default(self):
        ring = UniformIdAssigner().build_ring(IdSpace(16), 4)
        producers = make_producers(ring, seed=5)
        for producer in producers.values():
            assert "cpu-usage" in producer.sensors
            assert 0 <= producer.read("cpu-usage", 0.0) <= 100

    def test_trace_backed_sensors(self):
        ring = UniformIdAssigner().build_ring(IdSpace(16), 4)
        traces = TraceGenerator(seed=6).generate_fleet(4, identical=False)
        producers = make_producers(ring, traces=traces, seed=6)
        for index, node in enumerate(ring):
            expected = traces[index].at_time(0.0)
            assert producers[node].read("cpu-usage", 0.0) == expected


class TestChurnWorkload:
    def test_event_times_sorted_and_bounded(self):
        workload = ChurnWorkload(duration=100.0, join_rate=0.2, leave_rate=0.2, seed=7)
        events = workload.generate()
        times = [e.time for e in events]
        assert times == sorted(times)
        assert all(0 <= t < 100.0 for t in times)

    def test_rates_roughly_respected(self):
        workload = ChurnWorkload(duration=1000.0, join_rate=0.1, leave_rate=0.0, seed=8)
        events = workload.generate()
        assert 60 <= len(events) <= 150  # ~100 expected
        assert all(e.kind is ChurnKind.JOIN for e in events)

    def test_crash_fraction(self):
        workload = ChurnWorkload(
            duration=1000.0, join_rate=0.0, leave_rate=0.1, crash_fraction=1.0, seed=9
        )
        events = workload.generate()
        assert events
        assert all(e.kind is ChurnKind.CRASH for e in events)

    def test_expected_events(self):
        workload = ChurnWorkload(duration=50.0, join_rate=0.1, leave_rate=0.3)
        assert workload.expected_events() == pytest.approx(20.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ChurnWorkload(duration=0)
        with pytest.raises(ValueError):
            ChurnWorkload(duration=1, crash_fraction=1.5)


class TestQueryWorkload:
    def test_selectivity_respected(self):
        workload = QueryWorkload(default_schemas(), seed=10)
        query = workload.range_query("cpu-usage", 0.25)
        assert query.selectivity(0.0, 100.0) == pytest.approx(0.25, abs=0.01)

    def test_queries_within_domain(self):
        workload = QueryWorkload(default_schemas(), seed=11)
        for query in workload.batch("memory-size", 0.1, 50):
            assert 0.25 <= query.low <= query.high <= 64.0

    def test_multi_query(self):
        workload = QueryWorkload(default_schemas(), seed=12)
        query = workload.multi_query({"cpu-usage": 0.1, "memory-size": 0.5})
        assert sorted(query.attribute_names()) == ["cpu-usage", "memory-size"]

    def test_full_selectivity(self):
        workload = QueryWorkload(default_schemas(), seed=13)
        query = workload.range_query("cpu-usage", 1.0)
        assert query.low == 0.0 and query.high == 100.0

    def test_validation(self):
        with pytest.raises(ValueError):
            QueryWorkload({})
        workload = QueryWorkload(default_schemas(), seed=14)
        with pytest.raises(ValueError):
            workload.range_query("cpu-usage", 1.5)
        with pytest.raises(ValueError):
            workload.batch("cpu-usage", 0.5, -1)

"""Unit tests for DAT construction (paper Fig. 2/5 + Algorithm 1)."""

import pytest

from repro.chord.idgen import RandomIdAssigner, UniformIdAssigner
from repro.chord.idspace import IdSpace
from repro.core.builder import (
    DatScheme,
    DatTreeBuilder,
    build_balanced_dat,
    build_basic_dat,
    build_dat,
)
from repro.util.bits import ceil_log2


class TestBuildBasicDat:
    def test_reproduces_paper_fig2(self, full_ring4):
        tree = build_basic_dat(full_ring4, key=0)
        assert tree.root == 0
        assert tree.children(0) == [8, 12, 14, 15]
        assert tree.path_to_root(1) == [1, 9, 13, 15, 0]
        assert tree.stats().max_branching == 4  # log2(16)
        tree.validate()

    def test_root_is_successor_of_key(self, full_ring4):
        from repro.chord.ring import StaticRing

        ring = StaticRing(full_ring4.space, [2, 8, 14])
        assert build_basic_dat(ring, key=5).root == 8
        assert build_basic_dat(ring, key=15).root == 2  # wraps

    def test_all_nodes_present(self, full_ring4):
        tree = build_basic_dat(full_ring4, key=3)
        assert set(tree.nodes()) == set(full_ring4)

    def test_height_is_longest_route(self, full_ring4):
        # Sec. 3.3: tree height == length of the longest finger route.
        from repro.chord.routing import route_lengths

        tree = build_basic_dat(full_ring4, key=0)
        assert tree.height == max(route_lengths(full_ring4, 0).values())

    def test_prebuilt_tables_equivalent(self, full_ring4):
        tables = full_ring4.all_finger_tables()
        a = build_basic_dat(full_ring4, key=0)
        b = build_basic_dat(full_ring4, key=0, tables=tables)
        assert a.parent == b.parent


class TestBuildBalancedDat:
    def test_reproduces_paper_fig5(self, full_ring4):
        tree = build_balanced_dat(full_ring4, key=0)
        assert tree.root == 0
        assert tree.children(0) == [14, 15]
        assert tree.parent[8] == 12
        assert tree.stats().max_branching == 2
        tree.validate()

    def test_height_bound_on_power_of_two_ring(self):
        # Sec. 3.5: height <= log2(n) on evenly distributed identifiers.
        for bits, n in ((6, 64), (8, 256)):
            space = IdSpace(bits)
            ring = UniformIdAssigner().build_ring(space, n)
            tree = build_balanced_dat(ring, key=0)
            assert tree.height <= ceil_log2(n)
            assert tree.stats().max_branching <= 2

    def test_explicit_d0(self, full_ring4):
        a = build_balanced_dat(full_ring4, key=0)
        b = build_balanced_dat(full_ring4, key=0, d0=1.0)
        assert a.parent == b.parent

    def test_random_ring_valid(self):
        space = IdSpace(32)
        ring = RandomIdAssigner().build_ring(space, 200, rng=4)
        tree = build_balanced_dat(ring, key=999)
        tree.validate()
        assert tree.n_nodes == 200


class TestBuildDat:
    def test_scheme_dispatch(self, full_ring4):
        basic = build_dat(full_ring4, 0, scheme="basic")
        balanced = build_dat(full_ring4, 0, scheme=DatScheme.BALANCED)
        assert basic.parent == build_basic_dat(full_ring4, 0).parent
        assert balanced.parent == build_balanced_dat(full_ring4, 0).parent

    def test_rejects_unknown_scheme(self, full_ring4):
        with pytest.raises(ValueError):
            build_dat(full_ring4, 0, scheme="fancy")


class TestDatTreeBuilder:
    def test_caches_tables(self, full_ring4):
        builder = DatTreeBuilder(full_ring4)
        first = builder.tables
        assert builder.tables is first

    def test_build_many_trees(self, full_ring4):
        builder = DatTreeBuilder(full_ring4, scheme="balanced")
        trees = builder.build_many([0, 5, 11])
        assert set(trees) == {0, 5, 11}
        roots = {trees[k].root for k in trees}
        assert roots == {0, 5, 11}  # distinct keys -> distinct roots here

    def test_invalidate_after_membership_change(self, full_ring4):
        builder = DatTreeBuilder(full_ring4)
        _ = builder.tables
        full_ring4.remove(7)
        builder.invalidate()
        tree = builder.build(0)
        assert 7 not in tree.nodes()

    def test_multiple_trees_load_balanced_roots(self):
        # Consistent hashing spreads rendezvous keys over distinct roots
        # (the paper's argument for multi-tree load balance, Sec. 3.2).
        from repro.chord.hashing import sha1_id

        space = IdSpace(32)
        ring = RandomIdAssigner().build_ring(space, 128, rng=8)
        builder = DatTreeBuilder(ring)
        keys = [sha1_id(f"attr-{i}", space) for i in range(32)]
        roots = {builder.build(k).root for k in keys}
        assert len(roots) >= 20  # overwhelmingly distinct

"""Unit tests for the discrete-event engine."""

import random

import pytest

from repro import telemetry
from repro.errors import SimulationError
from repro.sim.engine import Event, IndexedEventHeap, SimulationEngine


class TestScheduling:
    def test_fires_in_time_order(self):
        engine = SimulationEngine()
        fired: list[str] = []
        engine.schedule(2.0, lambda: fired.append("late"))
        engine.schedule(1.0, lambda: fired.append("early"))
        engine.run()
        assert fired == ["early", "late"]

    def test_ties_fire_in_insertion_order(self):
        engine = SimulationEngine()
        fired: list[int] = []
        for i in range(5):
            engine.schedule(1.0, lambda i=i: fired.append(i))
        engine.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_clock_advances_to_event_time(self):
        engine = SimulationEngine()
        seen: list[float] = []
        engine.schedule(3.5, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [3.5]
        assert engine.now == 3.5

    def test_schedule_at_absolute(self):
        engine = SimulationEngine()
        engine.schedule_at(7.0, lambda: None)
        engine.run()
        assert engine.now == 7.0

    def test_cannot_schedule_in_past(self):
        engine = SimulationEngine()
        engine.schedule(1.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.schedule_at(0.5, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            SimulationEngine().schedule(-1, lambda: None)

    def test_events_can_schedule_events(self):
        engine = SimulationEngine()
        fired: list[float] = []

        def cascade():
            fired.append(engine.now)
            if len(fired) < 3:
                engine.schedule(1.0, cascade)

        engine.schedule(1.0, cascade)
        engine.run()
        assert fired == [1.0, 2.0, 3.0]


class TestCancellation:
    def test_cancelled_event_skipped(self):
        engine = SimulationEngine()
        fired: list[str] = []
        event = engine.schedule(1.0, lambda: fired.append("no"))
        engine.schedule(2.0, lambda: fired.append("yes"))
        event.cancel()
        engine.run()
        assert fired == ["yes"]

    def test_pending_excludes_cancelled(self):
        engine = SimulationEngine()
        event = engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        event.cancel()
        assert engine.pending == 1

    def test_cancel_unlinks_from_heap_immediately(self):
        engine = SimulationEngine()
        event = engine.schedule(5.0, lambda: None)
        assert len(engine._heap) == 1
        event.cancel()
        # No tombstone: the heap is empty, not holding a flagged event.
        assert len(engine._heap) == 0
        assert event.cancelled

    def test_cancel_is_idempotent_and_safe_after_firing(self):
        engine = SimulationEngine()
        event = engine.schedule(1.0, lambda: None)
        engine.run()
        event.cancel()
        event.cancel()
        assert engine.pending == 0

    def test_cancel_10k_timers_without_quadratic_blowup(self):
        # Regression for the former pop-and-scan path: cancelling a timer
        # left a tombstone and every `pending` read scanned the whole heap,
        # so cancel+check loops were quadratic. With indexed removal this
        # loop is ~10k * O(log n); the old path would do ~10^8 scan steps.
        engine = SimulationEngine()
        timers = [
            engine.schedule(float(i % 97) + 1.0, lambda: None, label=f"t{i}")
            for i in range(10_000)
        ]
        survivor = engine.schedule(1000.0, lambda: None)
        order = list(range(len(timers)))
        random.Random(7).shuffle(order)
        for count, i in enumerate(order):
            timers[i].cancel()
            # The O(1) pending read is exact after every single cancel.
            assert engine.pending == len(timers) - count - 1 + 1
        assert engine.pending == 1
        assert len(engine._heap) == 1
        assert engine._heap.peek() is survivor
        engine.run()
        assert engine.events_fired == 1
        assert engine.lazy_deleted == 0

    def test_heap_peak_and_lazy_deleted_gauges(self):
        with telemetry.enabled() as tel:
            engine = SimulationEngine()
            for t in (1.0, 2.0, 3.0):
                engine.schedule(t, lambda: None)
            assert engine.heap_peak == 3
            engine.run()
            gauges = {
                m.name: m.value
                for m in tel.metrics.samples()
                if m.kind == "gauge"
            }
        assert gauges["repro_sim_heap_peak"] == 3.0
        assert gauges["repro_sim_heap_lazy_deleted"] == 0.0

    def test_direct_flag_write_counts_as_lazy_deletion(self):
        # Unsupported path kept as a canary: bypassing Event.cancel() leaves
        # a tombstone that pop() skips and counts.
        engine = SimulationEngine()
        event = engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        event.cancelled = True
        engine.run()
        assert engine.events_fired == 1
        assert engine.lazy_deleted == 1


class TestIndexedEventHeap:
    def _event(self, time, seq):
        return Event(time=time, sequence=seq, callback=lambda: None)

    def test_pop_order_matches_sort_order(self):
        heap = IndexedEventHeap()
        rng = random.Random(42)
        events = [self._event(rng.uniform(0, 100), seq) for seq in range(500)]
        for event in rng.sample(events, len(events)):
            heap.push(event)
        drained = [heap.pop() for _ in range(len(events))]
        assert drained == sorted(events, key=lambda e: (e.time, e.sequence))
        assert len(heap) == 0

    def test_remove_from_middle_keeps_order(self):
        rng = random.Random(1)
        for _ in range(20):
            heap = IndexedEventHeap()
            events = [
                self._event(rng.uniform(0, 10), seq) for seq in range(60)
            ]
            for event in events:
                heap.push(event)
            removed = rng.sample(events, 23)
            for event in removed:
                assert heap.remove(event) is True
            survivors = [e for e in events if e not in removed]
            drained = [heap.pop() for _ in range(len(heap))]
            assert drained == sorted(
                survivors, key=lambda e: (e.time, e.sequence)
            )

    def test_remove_absent_returns_false(self):
        heap = IndexedEventHeap()
        event = self._event(1.0, 0)
        assert heap.remove(event) is False
        heap.push(event)
        popped = heap.pop()
        assert popped is event
        assert heap.remove(event) is False

    def test_position_index_is_consistent(self):
        heap = IndexedEventHeap()
        rng = random.Random(3)
        events = [self._event(rng.uniform(0, 5), seq) for seq in range(200)]
        for event in events:
            heap.push(event)
        for event in rng.sample(events, 80):
            heap.remove(event)
        for slot, event in enumerate(heap._events):
            assert event._index == slot
            assert event._heap is heap

    def test_clear_unlinks_members(self):
        heap = IndexedEventHeap()
        events = [self._event(float(i), i) for i in range(5)]
        for event in events:
            heap.push(event)
        heap.clear()
        assert len(heap) == 0
        assert all(e._heap is None and e._index == -1 for e in events)


class TestRunBounds:
    def test_run_until(self):
        engine = SimulationEngine()
        fired: list[float] = []
        for t in (1.0, 2.0, 3.0):
            engine.schedule(t, lambda t=t: fired.append(t))
        engine.run(until=2.0)
        assert fired == [1.0, 2.0]
        assert engine.now == 2.0
        engine.run()
        assert fired == [1.0, 2.0, 3.0]

    def test_run_until_advances_clock_when_idle(self):
        engine = SimulationEngine()
        engine.run(until=5.0)
        assert engine.now == 5.0

    def test_max_events_guard(self):
        engine = SimulationEngine()

        def loop():
            engine.schedule(0.0, loop)

        engine.schedule(0.0, loop)
        with pytest.raises(SimulationError):
            engine.run(max_events=100)

    def test_reentrant_run_rejected(self):
        engine = SimulationEngine()
        failures: list[Exception] = []

        def nested():
            try:
                engine.run()
            except SimulationError as exc:
                failures.append(exc)

        engine.schedule(1.0, nested)
        engine.run()
        assert len(failures) == 1

    def test_step_and_counts(self):
        engine = SimulationEngine()
        engine.schedule(1.0, lambda: None)
        assert engine.step() is True
        assert engine.step() is False
        assert engine.events_fired == 1

    def test_clear(self):
        engine = SimulationEngine()
        engine.schedule(1.0, lambda: None)
        engine.clear()
        assert engine.pending == 0


class TestTickHooks:
    def test_interval_must_be_positive(self):
        engine = SimulationEngine()
        with pytest.raises(SimulationError):
            engine.add_tick_hook(0.0, lambda at: None)
        with pytest.raises(SimulationError):
            engine.add_tick_hook(-1.0, lambda at: None)

    def test_fires_once_per_crossed_window(self):
        engine = SimulationEngine()
        fired: list[float] = []
        engine.add_tick_hook(1.0, fired.append)
        engine.schedule(3.5, lambda: None)
        engine.run()
        assert fired == [1.0, 2.0, 3.0]

    def test_fires_before_the_crossing_event(self):
        engine = SimulationEngine()
        order: list[str] = []
        engine.add_tick_hook(1.0, lambda at: order.append(f"hook@{at}"))
        engine.schedule(1.0, lambda: order.append("event@1.0"))
        engine.run()
        # A boundary exactly at an event time still samples first, so the
        # observer sees state as of the window edge.
        assert order == ["hook@1.0", "event@1.0"]

    def test_hook_sees_pre_event_clock(self):
        engine = SimulationEngine()
        seen: list[float] = []
        engine.add_tick_hook(1.0, lambda at: seen.append(engine.now))
        engine.schedule(2.5, lambda: None)
        engine.run()
        # The clock has not crossed the boundary yet when the hook fires.
        assert seen == [0.0, 0.0]

    def test_run_until_final_bump_fires_idle_windows(self):
        engine = SimulationEngine()
        fired: list[float] = []
        engine.add_tick_hook(2.0, fired.append)
        engine.schedule(1.0, lambda: None)
        at = engine.run(until=5.0)
        assert at == 5.0
        # No events past t=1, but every elapsed window still sampled.
        assert fired == [2.0, 4.0]

    def test_cancel_stops_future_firings(self):
        engine = SimulationEngine()
        fired: list[float] = []
        hook = engine.add_tick_hook(1.0, fired.append)
        engine.schedule(1.5, lambda: None)
        engine.run()
        assert fired == [1.0]
        hook.cancel()
        engine.schedule(1.0, lambda: None)
        engine.run()
        assert fired == [1.0]

    def test_multiple_hooks_independent_intervals(self):
        engine = SimulationEngine()
        fired: list[tuple[str, float]] = []
        engine.add_tick_hook(1.0, lambda at: fired.append(("fast", at)))
        engine.add_tick_hook(2.0, lambda at: fired.append(("slow", at)))
        for t in (1.5, 2.5, 3.5):
            engine.schedule(t, lambda: None)
        engine.run(until=4.0)
        assert fired == [
            ("fast", 1.0),
            ("fast", 2.0),
            ("slow", 2.0),
            ("fast", 3.0),
            ("fast", 4.0),
            ("slow", 4.0),
        ]

"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import SimulationEngine


class TestScheduling:
    def test_fires_in_time_order(self):
        engine = SimulationEngine()
        fired: list[str] = []
        engine.schedule(2.0, lambda: fired.append("late"))
        engine.schedule(1.0, lambda: fired.append("early"))
        engine.run()
        assert fired == ["early", "late"]

    def test_ties_fire_in_insertion_order(self):
        engine = SimulationEngine()
        fired: list[int] = []
        for i in range(5):
            engine.schedule(1.0, lambda i=i: fired.append(i))
        engine.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_clock_advances_to_event_time(self):
        engine = SimulationEngine()
        seen: list[float] = []
        engine.schedule(3.5, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [3.5]
        assert engine.now == 3.5

    def test_schedule_at_absolute(self):
        engine = SimulationEngine()
        engine.schedule_at(7.0, lambda: None)
        engine.run()
        assert engine.now == 7.0

    def test_cannot_schedule_in_past(self):
        engine = SimulationEngine()
        engine.schedule(1.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.schedule_at(0.5, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            SimulationEngine().schedule(-1, lambda: None)

    def test_events_can_schedule_events(self):
        engine = SimulationEngine()
        fired: list[float] = []

        def cascade():
            fired.append(engine.now)
            if len(fired) < 3:
                engine.schedule(1.0, cascade)

        engine.schedule(1.0, cascade)
        engine.run()
        assert fired == [1.0, 2.0, 3.0]


class TestCancellation:
    def test_cancelled_event_skipped(self):
        engine = SimulationEngine()
        fired: list[str] = []
        event = engine.schedule(1.0, lambda: fired.append("no"))
        engine.schedule(2.0, lambda: fired.append("yes"))
        event.cancel()
        engine.run()
        assert fired == ["yes"]

    def test_pending_excludes_cancelled(self):
        engine = SimulationEngine()
        event = engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        event.cancel()
        assert engine.pending == 1


class TestRunBounds:
    def test_run_until(self):
        engine = SimulationEngine()
        fired: list[float] = []
        for t in (1.0, 2.0, 3.0):
            engine.schedule(t, lambda t=t: fired.append(t))
        engine.run(until=2.0)
        assert fired == [1.0, 2.0]
        assert engine.now == 2.0
        engine.run()
        assert fired == [1.0, 2.0, 3.0]

    def test_run_until_advances_clock_when_idle(self):
        engine = SimulationEngine()
        engine.run(until=5.0)
        assert engine.now == 5.0

    def test_max_events_guard(self):
        engine = SimulationEngine()

        def loop():
            engine.schedule(0.0, loop)

        engine.schedule(0.0, loop)
        with pytest.raises(SimulationError):
            engine.run(max_events=100)

    def test_reentrant_run_rejected(self):
        engine = SimulationEngine()
        failures: list[Exception] = []

        def nested():
            try:
                engine.run()
            except SimulationError as exc:
                failures.append(exc)

        engine.schedule(1.0, nested)
        engine.run()
        assert len(failures) == 1

    def test_step_and_counts(self):
        engine = SimulationEngine()
        engine.schedule(1.0, lambda: None)
        assert engine.step() is True
        assert engine.step() is False
        assert engine.events_fired == 1

    def test_clear(self):
        engine = SimulationEngine()
        engine.schedule(1.0, lambda: None)
        engine.clear()
        assert engine.pending == 0


class TestTickHooks:
    def test_interval_must_be_positive(self):
        engine = SimulationEngine()
        with pytest.raises(SimulationError):
            engine.add_tick_hook(0.0, lambda at: None)
        with pytest.raises(SimulationError):
            engine.add_tick_hook(-1.0, lambda at: None)

    def test_fires_once_per_crossed_window(self):
        engine = SimulationEngine()
        fired: list[float] = []
        engine.add_tick_hook(1.0, fired.append)
        engine.schedule(3.5, lambda: None)
        engine.run()
        assert fired == [1.0, 2.0, 3.0]

    def test_fires_before_the_crossing_event(self):
        engine = SimulationEngine()
        order: list[str] = []
        engine.add_tick_hook(1.0, lambda at: order.append(f"hook@{at}"))
        engine.schedule(1.0, lambda: order.append("event@1.0"))
        engine.run()
        # A boundary exactly at an event time still samples first, so the
        # observer sees state as of the window edge.
        assert order == ["hook@1.0", "event@1.0"]

    def test_hook_sees_pre_event_clock(self):
        engine = SimulationEngine()
        seen: list[float] = []
        engine.add_tick_hook(1.0, lambda at: seen.append(engine.now))
        engine.schedule(2.5, lambda: None)
        engine.run()
        # The clock has not crossed the boundary yet when the hook fires.
        assert seen == [0.0, 0.0]

    def test_run_until_final_bump_fires_idle_windows(self):
        engine = SimulationEngine()
        fired: list[float] = []
        engine.add_tick_hook(2.0, fired.append)
        engine.schedule(1.0, lambda: None)
        at = engine.run(until=5.0)
        assert at == 5.0
        # No events past t=1, but every elapsed window still sampled.
        assert fired == [2.0, 4.0]

    def test_cancel_stops_future_firings(self):
        engine = SimulationEngine()
        fired: list[float] = []
        hook = engine.add_tick_hook(1.0, fired.append)
        engine.schedule(1.5, lambda: None)
        engine.run()
        assert fired == [1.0]
        hook.cancel()
        engine.schedule(1.0, lambda: None)
        engine.run()
        assert fired == [1.0]

    def test_multiple_hooks_independent_intervals(self):
        engine = SimulationEngine()
        fired: list[tuple[str, float]] = []
        engine.add_tick_hook(1.0, lambda at: fired.append(("fast", at)))
        engine.add_tick_hook(2.0, lambda at: fired.append(("slow", at)))
        for t in (1.5, 2.5, 3.5):
            engine.schedule(t, lambda: None)
        engine.run(until=4.0)
        assert fired == [
            ("fast", 1.0),
            ("fast", 2.0),
            ("slow", 2.0),
            ("fast", 3.0),
            ("fast", 4.0),
            ("slow", 4.0),
        ]

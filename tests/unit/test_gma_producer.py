"""Unit tests for the producer layer."""

import pytest

from repro.chord.idgen import UniformIdAssigner
from repro.chord.idspace import IdSpace
from repro.errors import MonitoringError
from repro.gma.producer import Producer
from repro.gma.sensors import CallbackSensor, ConstantSensor
from repro.maan.attrs import AttributeSchema
from repro.maan.network import MaanNetwork


def make_producer(node: int = 0) -> Producer:
    return Producer(
        node=node,
        resource_id="host-1",
        sensors={
            "cpu-usage": CallbackSensor("host-1", "cpu-usage", lambda t: 10.0 + t)
        },
        static_attributes={"cpu-speed": 2.8},
    )


def make_index() -> MaanNetwork:
    space = IdSpace(16)
    ring = UniformIdAssigner().build_ring(space, 16)
    return MaanNetwork(
        ring,
        {
            "cpu-usage": AttributeSchema("cpu-usage", low=0.0, high=10000.0),
            "cpu-speed": AttributeSchema("cpu-speed", low=0.0, high=5.0),
        },
    )


class TestReads:
    def test_sensor_read(self):
        assert make_producer().read("cpu-usage", 5.0) == 15.0

    def test_static_read(self):
        assert make_producer().read("cpu-speed", 99.0) == 2.8

    def test_unknown_attribute(self):
        with pytest.raises(MonitoringError):
            make_producer().read("disk", 0.0)

    def test_attributes_listing(self):
        assert make_producer().attributes() == ["cpu-speed", "cpu-usage"]

    def test_sensor_attribute_mismatch_rejected(self):
        with pytest.raises(MonitoringError):
            Producer(
                node=0,
                resource_id="h",
                sensors={"cpu": ConstantSensor("h", "memory", 1.0)},
            )

    def test_add_sensor(self):
        producer = make_producer()
        producer.add_sensor(ConstantSensor("host-1", "load", 0.5))
        assert producer.read("load", 0.0) == 0.5


class TestSnapshotsAndEvents:
    def test_snapshot_merges_static_and_dynamic(self):
        snapshot = make_producer().snapshot(t=2.0)
        assert snapshot.attributes["cpu-speed"] == 2.8
        assert snapshot.attributes["cpu-usage"] == 12.0

    def test_events_only_dynamic(self):
        events = make_producer().events(t=1.0)
        assert len(events) == 1
        assert events[0].attribute == "cpu-usage"


class TestIndexing:
    def test_register_places_records(self):
        index = make_index()
        producer = make_producer()
        hops = producer.register(index, t=0.0)
        assert hops >= 0
        assert index.total_records() == 2

    def test_refresh_moves_dynamic_value(self):
        index = make_index()
        producer = make_producer()
        producer.register(index, t=0.0)
        producer.refresh_index(index, t=5000.0)  # big change moves the record
        assert index.total_records() == 2  # no duplicates left behind

    def test_refresh_without_register(self):
        index = make_index()
        producer = make_producer()
        producer.refresh_index(index, t=1.0)  # acts as first registration
        assert index.total_records() == 2

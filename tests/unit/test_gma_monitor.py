"""Unit tests for the GridMonitor facade and consumers."""

import pytest

from repro.errors import MonitoringError
from repro.gma.monitor import GridMonitor, MonitorConfig
from repro.gma.producer import Producer
from repro.gma.sensors import ConstantSensor
from repro.workloads.grids import default_schemas, make_producers


@pytest.fixture
def monitor() -> GridMonitor:
    config = MonitorConfig(n_nodes=32, bits=24, seed=11)
    monitor = GridMonitor(config, default_schemas())
    for producer in make_producers(monitor.ring, seed=11).values():
        monitor.attach_producer(producer)
    return monitor


class TestSetup:
    def test_ring_size(self, monitor):
        assert len(monitor.ring) == 32

    def test_attach_requires_overlay_membership(self, monitor):
        bogus = Producer(node=99999999, resource_id="x")
        with pytest.raises(MonitoringError):
            monitor.attach_producer(bogus)

    def test_full_coverage_check(self):
        config = MonitorConfig(n_nodes=4, bits=16, seed=1)
        monitor = GridMonitor(config, default_schemas())
        with pytest.raises(MonitoringError):
            monitor.require_full_coverage()

    def test_register_all(self, monitor):
        hops = monitor.register_all()
        assert hops > 0
        assert monitor.index.total_records() == 32 * 4  # 4 attributes each

    def test_refresh_all(self, monitor):
        monitor.register_all()
        monitor.refresh_all(t=10.0)
        assert monitor.index.total_records() == 32 * 4


class TestAggregation:
    def test_rendezvous_key_stable(self, monitor):
        assert monitor.rendezvous_key("cpu-usage") == monitor.rendezvous_key("cpu-usage")

    def test_tree_rooted_at_key_successor(self, monitor):
        key = monitor.rendezvous_key("cpu-usage")
        tree = monitor.tree_for("cpu-usage")
        assert tree.root == monitor.ring.successor(key)

    def test_aggregate_matches_ground_truth(self, monitor):
        outcome = monitor.aggregate("cpu-usage", "sum", t=0.0)
        truth = monitor.actual_aggregate("cpu-usage", "sum", t=0.0)
        assert outcome.value == pytest.approx(truth)

    def test_aggregate_avg(self, monitor):
        outcome = monitor.aggregate("cpu-usage", "avg", t=3.0)
        truth = monitor.actual_aggregate("cpu-usage", "avg", t=3.0)
        assert outcome.value == pytest.approx(truth)

    def test_aggregate_with_kwargs(self, monitor):
        outcome = monitor.aggregate("cpu-usage", "topk", t=0.0, k=3)
        assert len(outcome.value) == 3

    def test_message_economics(self, monitor):
        outcome = monitor.aggregate("cpu-usage", "sum")
        assert outcome.total_messages == 31
        assert sum(outcome.message_loads.values()) == 2 * 31
        assert outcome.root == outcome.tree.root

    def test_static_attribute_aggregation(self, monitor):
        outcome = monitor.aggregate("cpu-speed", "max")
        truth = monitor.actual_aggregate("cpu-speed", "max")
        assert outcome.value == truth


class TestConsumers:
    def test_consumer_search(self, monitor):
        monitor.register_all()
        consumer = monitor.consumer()
        result = consumer.search("cpu-usage", 0.0, 100.0)
        assert len(result.resources) == 32  # everyone matches the full range

    def test_consumer_search_narrow(self, monitor):
        monitor.register_all()
        consumer = monitor.consumer()
        result = consumer.search("memory-size", 0.0, 1.0)
        for resource in result.resources:
            assert resource.attributes["memory-size"] <= 1.0

    def test_search_all_conjunction(self, monitor):
        monitor.register_all()
        consumer = monitor.consumer()
        result = consumer.search_all(cpu_usage=(0.0, 100.0), memory_size=(0.0, 8.0))
        for resource in result.resources:
            assert resource.attributes["memory-size"] <= 8.0

    def test_global_aggregate_via_consumer(self, monitor):
        consumer = monitor.consumer()
        value = consumer.global_aggregate("cpu-usage", "avg")
        assert value == pytest.approx(monitor.actual_aggregate("cpu-usage", "avg"))

    def test_monitor_series(self, monitor):
        consumer = monitor.consumer()
        series = consumer.monitor_series("cpu-usage", "avg", [0.0, 1.0, 2.0])
        assert len(series) == 3

    def test_consumer_at_unknown_node(self, monitor):
        with pytest.raises(MonitoringError):
            monitor.consumer(node=123456789)


class TestSchemes:
    def test_basic_and_balanced_same_value(self):
        values = {}
        for scheme in ("basic", "balanced"):
            config = MonitorConfig(n_nodes=16, bits=20, dat_scheme=scheme, seed=5)
            monitor = GridMonitor(config, default_schemas())
            for producer in make_producers(monitor.ring, seed=5).values():
                monitor.attach_producer(producer)
            values[scheme] = monitor.aggregate("cpu-usage", "sum").value
        # The aggregate value is scheme-independent; only loads differ.
        assert values["basic"] == pytest.approx(values["balanced"])

"""Unit tests for RNG plumbing."""

import numpy as np
import pytest

from repro.util.rng import RngMixin, derive_rng, ensure_rng, spawn_seeds


class TestEnsureRng:
    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).integers(0, 1000, size=5)
        b = ensure_rng(42).integers(0, 1000, size=5)
        assert list(a) == list(b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(1)
        assert ensure_rng(gen) is gen

    def test_none_gives_fresh_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)


class TestDeriveRng:
    def test_children_differ_by_key(self):
        parent = ensure_rng(7)
        a = derive_rng(parent, 1)
        b = derive_rng(parent, 2)
        assert list(a.integers(0, 10**9, 4)) != list(b.integers(0, 10**9, 4))

    def test_child_independent_of_parent_consumption(self):
        # Deriving consumes parent state deterministically.
        p1 = ensure_rng(7)
        p2 = ensure_rng(7)
        c1 = derive_rng(p1, 5)
        c2 = derive_rng(p2, 5)
        assert list(c1.integers(0, 10**9, 4)) == list(c2.integers(0, 10**9, 4))


class TestSpawnSeeds:
    def test_count_and_determinism(self):
        seeds = spawn_seeds(3, 5)
        assert len(seeds) == 5
        assert seeds == spawn_seeds(3, 5)

    def test_distinct(self):
        seeds = spawn_seeds(0, 20)
        assert len(set(seeds)) == 20

    def test_rejects_negative_count(self):
        with pytest.raises(ValueError):
            spawn_seeds(0, -1)


class TestRngMixin:
    def test_stores_generator(self):
        class Thing(RngMixin):
            pass

        thing = Thing(seed=9)
        assert isinstance(thing.rng, np.random.Generator)

    def test_choice_index_respects_weights(self):
        class Thing(RngMixin):
            pass

        thing = Thing(seed=1)
        picks = [thing._choice_index([0.0, 1.0, 0.0]) for _ in range(20)]
        assert set(picks) == {1}

    def test_choice_index_rejects_zero_weights(self):
        class Thing(RngMixin):
            pass

        with pytest.raises(ValueError):
            Thing(seed=1)._choice_index([0.0, 0.0])

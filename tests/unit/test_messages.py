"""Unit tests for wire messages."""

import pytest

from repro.errors import TransportError
from repro.sim.messages import Message, decode_message, encode_message


class TestMessage:
    def test_unique_ids(self):
        a = Message(kind="x", source=1, destination=2)
        b = Message(kind="x", source=1, destination=2)
        assert a.msg_id != b.msg_id

    def test_response_swaps_endpoints(self):
        request = Message(kind="ping", source=1, destination=2)
        reply = request.response(alive=True)
        assert reply.source == 2 and reply.destination == 1
        assert reply.reply_to == request.msg_id
        assert reply.kind == "ping_reply"
        assert reply.payload == {"alive": True}

    def test_response_custom_kind(self):
        request = Message(kind="q", source=1, destination=2)
        assert request.response(kind="ans").kind == "ans"

    def test_is_response(self):
        request = Message(kind="q", source=1, destination=2)
        assert not request.is_response
        assert request.response().is_response


class TestWireCoding:
    def test_roundtrip(self):
        original = Message(
            kind="lookup",
            source=10,
            destination=20,
            payload={"key": 5, "path": [1, 2]},
        )
        decoded = decode_message(encode_message(original))
        assert decoded.kind == original.kind
        assert decoded.source == original.source
        assert decoded.destination == original.destination
        assert decoded.payload == original.payload
        assert decoded.msg_id == original.msg_id

    def test_reply_to_preserved(self):
        reply = Message(kind="r", source=1, destination=2, reply_to=77)
        assert decode_message(encode_message(reply)).reply_to == 77

    def test_encoded_size_positive(self):
        assert Message(kind="x", source=0, destination=0).encoded_size() > 0

    def test_unserializable_payload(self):
        bad = Message(kind="x", source=0, destination=1, payload={"f": object()})
        with pytest.raises(TransportError):
            encode_message(bad)

    def test_malformed_datagram(self):
        with pytest.raises(TransportError):
            decode_message(b"not json")
        with pytest.raises(TransportError):
            decode_message(b'{"kind": "x"}')  # missing fields

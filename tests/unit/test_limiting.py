"""Unit tests for the finger limiting function g(x) (paper Sec. 3.4)."""

from fractions import Fraction

import pytest

from repro.core.limiting import FingerLimiter, ceil_log2_fraction, finger_limit


class TestCeilLog2Fraction:
    def test_integers(self):
        assert ceil_log2_fraction(Fraction(1)) == 0
        assert ceil_log2_fraction(Fraction(2)) == 1
        assert ceil_log2_fraction(Fraction(3)) == 2
        assert ceil_log2_fraction(Fraction(8)) == 3

    def test_fractions(self):
        assert ceil_log2_fraction(Fraction(5, 2)) == 2  # 2.5 -> 2
        assert ceil_log2_fraction(Fraction(9, 2)) == 3  # 4.5 -> 3
        assert ceil_log2_fraction(Fraction(4, 1)) == 2

    def test_below_one_floors_at_zero(self):
        assert ceil_log2_fraction(Fraction(2, 3)) == 0
        assert ceil_log2_fraction(Fraction(1, 100)) == 0

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            ceil_log2_fraction(Fraction(0))

    def test_huge_values_exact(self):
        assert ceil_log2_fraction(Fraction((1 << 200) + 1)) == 201


class TestFingerLimit:
    def test_paper_example_n8(self):
        # Fig. 5: node N8, root N0, d0 = 1: g(8) = ceil(log2(10/3)) = 2.
        assert finger_limit(8, 1) == 2

    def test_adjacent_node(self):
        # x = 1, d0 = 1: g = ceil(log2(1)) = 0 -> only the successor finger.
        assert finger_limit(1, 1) == 0

    def test_grows_logarithmically(self):
        values = [finger_limit(x, 1) for x in (1, 2, 4, 8, 16, 32, 64)]
        assert values == sorted(values)
        assert values[-1] - values[0] <= 7

    def test_d0_scaling(self):
        # Doubling d0 shifts the limit by at most one slot.
        for x in (10, 100, 1000):
            assert abs(finger_limit(x, 2) - finger_limit(x, 1)) <= 1

    def test_fraction_d0_exact(self):
        assert finger_limit(8, Fraction(1)) == 2

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            finger_limit(-1, 1)
        with pytest.raises(ValueError):
            finger_limit(5, 0)


class TestFingerLimiter:
    def test_for_ring(self):
        limiter = FingerLimiter.for_ring(bits=4, n_nodes=16)
        assert limiter.d0 == 1
        assert limiter(8) == 2

    def test_for_gap_accepts_float(self):
        limiter = FingerLimiter.for_gap(1.0)
        assert limiter(8) == 2

    def test_max_finger_offset(self):
        limiter = FingerLimiter.for_ring(bits=4, n_nodes=16)
        assert limiter.max_finger_offset(8) == 4

    def test_rejects_bad_ring(self):
        with pytest.raises(ValueError):
            FingerLimiter.for_ring(bits=4, n_nodes=0)
        with pytest.raises(ValueError):
            FingerLimiter.for_gap(0)

    def test_inbound_finger_cases_from_proof(self):
        # Sec. 3.5 cases (3) and (4): for d = cw(i, r) and
        # j = ceil(log2(d+2)), the nodes at i - 2^{j-1} and i - 2^j pick i.
        # Equivalently: g(d + 2^{j-1}) == j - 1 and g(d + 2^j) == j.
        from repro.util.bits import ceil_log2

        for d in range(1, 200):
            j = ceil_log2(d + 2)
            assert finger_limit(d + (1 << (j - 1)), 1) == j - 1, d
            assert finger_limit(d + (1 << j), 1) == j, d

"""ChordNodeBlock / MatrixFingerView — exact equivalence with the object path.

The block is the protocol path's shared routing state; every query it
answers must match the scalar :class:`~repro.chord.fingers.FingerTable`
machinery bit for bit. These tests assert that identity over full rings:
finger views slot-for-slot, ``closest_preceding`` for swept keys and slot
caps, ``key_parents`` against the scalar key-addressed rule of
``DatNodeService.parent_toward_key``, and the vectorized balanced limits
against the ``Fraction``-exact :class:`~repro.core.limiting.FingerLimiter`.
"""

import numpy as np
import pytest

from repro.chord.block import ChordNodeBlock, MatrixFingerView, balanced_limits
from repro.chord.fingers import FingerLike, FingerTable
from repro.chord.idgen import make_assigner
from repro.chord.idspace import IdSpace
from repro.chord.ring import StaticRing
from repro.core.limiting import FingerLimiter
from repro.errors import IdentifierError, TreeError


def build_ring(n, bits=16, seed=11, strategy="random"):
    space = IdSpace(bits)
    return make_assigner(strategy).build_ring(space, n, rng=seed)


def scalar_parent_toward_key(table, key, scheme, d0):
    """The key-addressed rule exactly as DatNodeService.parent_toward_key."""
    space = table.space
    if scheme == "balanced":
        x = space.cw(table.owner, key)
        max_slot = FingerLimiter.for_gap(d0)(x)
    else:
        max_slot = None
    parent = table.closest_preceding(key, max_slot=max_slot)
    if parent is None:
        successor = table.successor
        return successor if successor != table.owner else None
    return parent


class TestMatrixFingerView:
    def test_implements_finger_like(self):
        block = ChordNodeBlock.from_ring(build_ring(32))
        assert isinstance(block.finger_view(0), FingerLike)

    @pytest.mark.parametrize("n", [2, 3, 17, 64, 300])
    def test_matches_finger_table_slot_for_slot(self, n):
        ring = build_ring(n)
        block = ChordNodeBlock.from_ring(ring)
        for i, ident in enumerate(block.ids.tolist()):
            view = block.finger_view(i)
            table = ring.finger_table(ident)
            assert view.owner == table.owner == ident
            assert view.successor == table.successor
            assert len(view) == len(table.entries)
            for j, entry in enumerate(table.entries):
                assert view.finger(j) == entry

    @pytest.mark.parametrize("n", [2, 17, 128])
    def test_closest_preceding_matches(self, n):
        ring = build_ring(n, seed=n)
        block = ChordNodeBlock.from_ring(ring)
        rng = np.random.default_rng(7)
        keys = rng.integers(0, ring.space.size, size=40).tolist()
        keys += block.ids.tolist()  # include every member id (distance 0)
        for i, ident in enumerate(block.ids.tolist()):
            view = block.finger_view(i)
            table = ring.finger_table(ident)
            for key in keys:
                for max_slot in (None, 0, 1, 3, ring.space.bits - 1):
                    assert view.closest_preceding(
                        key, max_slot=max_slot
                    ) == table.closest_preceding(key, max_slot=max_slot), (
                        ident,
                        key,
                        max_slot,
                    )

    def test_finger_index_bounds(self):
        block = ChordNodeBlock.from_ring(build_ring(8))
        view = block.finger_view(0)
        with pytest.raises(IdentifierError):
            view.finger(-1)
        with pytest.raises(IdentifierError):
            view.finger(block.space.bits)


class TestBalancedLimits:
    def test_matches_scalar_limiter_integer_gap(self):
        rng = np.random.default_rng(3)
        x = rng.integers(1, 2**32, size=500)
        for d0 in (1.0, 2.0, 4096.0, 2.0**32 / 300):
            limiter = FingerLimiter.for_gap(d0)
            expected = np.array([limiter(int(v)) for v in x], dtype=np.int64)
            np.testing.assert_array_equal(balanced_limits(x, d0), expected)

    def test_matches_scalar_limiter_fractional_gap(self):
        # Non-power-of-two populations give fractional d0 (q > 1).
        rng = np.random.default_rng(4)
        x = rng.integers(1, 2**20, size=200)
        for n in (3, 7, 300, 1021):
            d0 = 2.0**20 / n
            limiter = FingerLimiter.for_gap(d0)
            expected = np.array([limiter(int(v)) for v in x], dtype=np.int64)
            np.testing.assert_array_equal(balanced_limits(x, d0), expected)

    def test_scalar_fallback_on_wide_values(self):
        # Force the int64 guard to fail: huge x times a large denominator.
        x = np.array([2**61, 2**61 + 12345], dtype=np.int64)
        d0 = 3.0000000001  # limit_denominator gives a large q
        limiter = FingerLimiter.for_gap(d0)
        expected = np.array([limiter(int(v)) for v in x], dtype=np.int64)
        np.testing.assert_array_equal(balanced_limits(x, d0), expected)

    def test_rejects_nonpositive_gap(self):
        with pytest.raises(ValueError):
            balanced_limits(np.array([1]), 0.0)


class TestChordNodeBlock:
    def test_from_ring_matches_ring_queries(self):
        ring = build_ring(100, seed=5)
        block = ChordNodeBlock.from_ring(ring)
        assert len(block) == 100
        assert block.ids.tolist() == sorted(ring.nodes)
        np.testing.assert_array_equal(
            block.successors(),
            np.array([ring.successor_of_node(i) for i in block.ids.tolist()]),
        )
        rng = np.random.default_rng(9)
        for key in rng.integers(0, ring.space.size, size=50).tolist():
            owner = int(block.ids[block.owner_index(key)])
            assert owner == ring.successor(key)

    def test_index_of(self):
        block = ChordNodeBlock.from_ring(build_ring(16))
        for i, ident in enumerate(block.ids.tolist()):
            assert block.index_of(ident) == i
        missing = next(
            v for v in range(block.space.size) if v not in set(block.ids.tolist())
        )
        with pytest.raises(IdentifierError):
            block.index_of(missing)

    def test_rejects_wide_space_and_empty_ring(self):
        with pytest.raises(TreeError):
            ChordNodeBlock.from_ring(StaticRing(IdSpace(64), [1, 2]))
        with pytest.raises(TreeError):
            ChordNodeBlock.from_ring(StaticRing(IdSpace(16)))

    def test_shape_validation(self):
        space = IdSpace(8)
        with pytest.raises(TreeError):
            ChordNodeBlock(
                space,
                np.array([1, 2], dtype=np.int64),
                np.zeros((2, 4), dtype=np.int64),
            )

    @pytest.mark.parametrize("scheme", ["basic", "balanced"])
    @pytest.mark.parametrize("n", [2, 3, 33, 256])
    def test_key_parents_match_scalar_rule(self, n, scheme):
        ring = build_ring(n, seed=n + 1)
        block = ChordNodeBlock.from_ring(ring)
        d0 = ring.space.size / n
        rng = np.random.default_rng(n)
        keys = rng.integers(0, ring.space.size, size=8).tolist()
        keys += block.ids.tolist()[:4]  # keys landing on members
        for key in keys:
            parents = block.key_parents(key, scheme=scheme, d0=d0)
            for i, ident in enumerate(block.ids.tolist()):
                table = ring.finger_table(ident)
                expected = scalar_parent_toward_key(table, key, scheme, d0)
                actual = int(parents[i])
                assert actual == (-1 if expected is None else expected), (
                    n,
                    scheme,
                    key,
                    ident,
                )

    def test_key_parents_lone_ring(self):
        block = ChordNodeBlock.from_ring(StaticRing(IdSpace(8), [42]))
        parents = block.key_parents(7, scheme="basic")
        assert parents.tolist() == [-1]

    def test_key_parents_rejects_unknown_scheme(self):
        block = ChordNodeBlock.from_ring(build_ring(8))
        with pytest.raises(ValueError):
            block.key_parents(0, scheme="bogus")

    def test_state_nbytes_is_shared_and_small(self):
        ring = build_ring(512, bits=32, seed=2)
        block = ChordNodeBlock.from_ring(ring)
        # ids (8 B) + one matrix row (8 * bits B) per node.
        assert block.state_nbytes() == 512 * 8 * (1 + 32)

"""Unit tests for latency models."""

import pytest

from repro.sim.latency import ConstantLatency, LanWanLatency, UniformLatency


class TestConstantLatency:
    def test_fixed(self):
        model = ConstantLatency(0.005)
        assert model.sample(1, 2) == 0.005
        assert model.sample(9, 9) == 0.005

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ConstantLatency(-0.1)


class TestUniformLatency:
    def test_within_bounds(self):
        model = UniformLatency(0.001, 0.002, rng=3)
        for _ in range(100):
            delay = model.sample(0, 1)
            assert 0.001 <= delay <= 0.002

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            UniformLatency(0.5, 0.1)


class TestLanWanLatency:
    def test_same_site_is_lan(self):
        model = LanWanLatency(n_sites=4, lan_delay=0.001, wan_delay=0.1, jitter=0.0)
        assert model.sample(0, 4) == 0.001  # 0 % 4 == 4 % 4

    def test_cross_site_is_wan(self):
        model = LanWanLatency(n_sites=4, lan_delay=0.001, wan_delay=0.1, jitter=0.0)
        assert model.sample(0, 1) == 0.1

    def test_jitter_bounded(self):
        model = LanWanLatency(n_sites=4, wan_delay=0.1, jitter=0.2, rng=1)
        for _ in range(100):
            delay = model.sample(0, 1)
            assert 0.08 <= delay <= 0.12

    def test_site_assignment_deterministic(self):
        model = LanWanLatency(n_sites=8)
        assert model.site_of(13) == 5

    def test_rejects_bad_sites(self):
        with pytest.raises(ValueError):
            LanWanLatency(n_sites=0)

"""Unit tests for multi-tree forests (the Sec. 3.2 multi-tree claim)."""

import pytest

from repro.chord.idgen import ProbingIdAssigner
from repro.chord.idspace import IdSpace
from repro.core.multitree import DatForest

ATTRIBUTES = [f"attr-{i}" for i in range(16)]


@pytest.fixture
def forest() -> DatForest:
    ring = ProbingIdAssigner().build_ring(IdSpace(32), 128, rng=13)
    return DatForest(ring, ATTRIBUTES)


class TestConstruction:
    def test_one_tree_per_attribute(self, forest):
        assert set(forest.trees) == set(ATTRIBUTES)

    def test_trees_are_valid(self, forest):
        for tree in forest.trees.values():
            tree.validate()
            assert tree.n_nodes == 128

    def test_tree_lookup(self, forest):
        assert forest.tree("attr-0").root == forest.roots()["attr-0"]
        with pytest.raises(KeyError):
            forest.tree("nope")

    def test_rejects_bad_attribute_lists(self, forest):
        with pytest.raises(ValueError):
            DatForest(forest.ring, [])
        with pytest.raises(ValueError):
            DatForest(forest.ring, ["a", "a"])


class TestRootSpreading:
    def test_roots_mostly_distinct(self, forest):
        # Consistent hashing spreads rendezvous keys over the overlay.
        roots = set(forest.roots().values())
        assert len(roots) >= 12  # of 16 trees on 128 nodes

    def test_no_node_hoards_roots(self, forest):
        report = forest.load_report()
        assert report.max_root_roles <= 3


class TestCombinedLoad:
    def test_load_conservation(self, forest):
        report = forest.load_report()
        assert sum(report.combined_loads.values()) == 16 * 2 * 127

    def test_combined_imbalance_stays_low(self, forest):
        # The multi-tree claim: many trees together spread load evenly —
        # the combined imbalance is *lower* than a single tree's because
        # different roots/interior sets average out.
        report = forest.load_report()
        single = forest.tree("attr-0")
        from repro.core.analysis import imbalance_factor

        assert report.combined_imbalance < imbalance_factor(single.message_loads())
        assert report.combined_imbalance < 2.5

    def test_report_row(self, forest):
        row = forest.load_report().as_row()
        assert row["n_trees"] == 16 and row["n_nodes"] == 128

    def test_per_tree_stats(self, forest):
        stats = forest.per_tree_stats()
        assert set(stats) == set(ATTRIBUTES)
        assert all(s["max_branching"] <= 10 for s in stats.values())


class TestInvalidate:
    def test_rebuild_after_membership_change(self, forest):
        victim = forest.ring.nodes[0]
        forest.ring.remove(victim)
        forest.invalidate()
        for tree in forest.trees.values():
            assert victim not in tree.nodes()
            assert tree.n_nodes == 127

"""Integration: DES run with tracing -> JSONL export -> causal assembly.

The in-memory analogue of the CI ``trace-roundtrip`` job: a full DAT
overlay on the discrete-event simulator runs continuous pushes and an
on-demand collect round with tracing enabled, streams spans to a JSONL
file, and the assembly side must reconstruct complete causal trees —
every non-root span's parent resolves, hop counts climb the tree, and
the critical path tiles each root's duration exactly.
"""

from __future__ import annotations

import pytest

from repro import telemetry
from repro.chord.idspace import IdSpace
from repro.chord.ring import StaticRing
from repro.core.builder import build_balanced_dat
from repro.core.service import DatNodeService, StandaloneDatHost
from repro.sim.latency import ConstantLatency
from repro.sim.simnet import SimTransport
from repro.telemetry import LiveExport
from repro.telemetry.traces import assemble_files
from repro.telemetry.traces import main as traces_main


@pytest.fixture(autouse=True)
def _global_telemetry_off():
    telemetry.disable()
    yield
    telemetry.disable()


def run_traced_overlay(jsonl_path, n=16, bits=8, until=6.0):
    """Continuous pushes + one collect round, spans streamed to disk."""
    telemetry.configure(enabled=True, tracing=True)
    tel = telemetry.active()
    export = LiveExport(tel, jsonl_path=str(jsonl_path))
    try:
        space = IdSpace(bits)
        ring = StaticRing(space, [(i * space.size) // n for i in range(n)])
        tables = ring.all_finger_tables()
        transport = SimTransport(latency=ConstantLatency(0.001))
        key = 0
        tree = build_balanced_dat(ring, key, tables=tables)
        children_map = tree.children_map()
        values = {node: float(node % 7 + 1) for node in ring}
        services = {}
        for node in ring:
            host = StandaloneDatHost(node, space, transport)
            services[node] = DatNodeService(
                host,
                finger_provider=lambda node=node: tables[node],
                value_provider=lambda node=node: values[node],
                scheme="balanced",
                d0_provider=lambda: space.size / n,
                children_resolver=lambda key, root, node=node: children_map.get(
                    node, []
                ),
            )
        for service in services.values():
            service.start_continuous(key, tree.root, "sum", interval=1.0)
        collected: list[float] = []
        services[tree.root].collect(key, tree.root, "sum", collected.append)
        transport.run(until=until)
        assert collected == [sum(values.values())]
        return tree
    finally:
        export.close()
        telemetry.disable()


class TestTraceRoundtrip:
    def test_every_push_and_collect_assembles_rooted(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        run_traced_overlay(path)
        result = assemble_files([path])

        assert result.total_spans > 0
        assert result.duplicates == 0
        # Complete causal trees: every parent reference resolved.
        assert result.orphans() == []

        pushes = result.rooted("dat.push")
        assert pushes, "continuous mode produced no push traces"
        # All but the final in-flight interval's pushes must have climbed
        # one hop into their parent's dat.push_recv handler.
        horizon = result.max_end() - 1.5
        for trace in pushes:
            if trace.root.start <= horizon:
                assert trace.depth() >= 1
                assert trace.hops() >= 1
                names = {s.name for s in trace.spans}
                assert "dat.push_recv" in names

        # The gathercast/collect round roots its own multi-hop trace.
        collects = result.rooted("dat.collect")
        assert len(collects) == 1
        collect = collects[0]
        assert collect.depth() >= 1
        assert {s.name for s in collect.spans} >= {"dat.collect", "dat.collect_hop"}
        # The round fans out across nodes: context crossed the (simulated)
        # node boundary into every hop handler.
        assert len(collect.nodes()) > 1

        # Critical-path tiling invariant over every assembled trace.
        for trace in result.traces:
            assert trace.critical_path_latency() == pytest.approx(
                trace.duration, abs=1e-9
            )
            attribution = trace.node_attribution()
            assert sum(attribution.values()) == pytest.approx(
                trace.duration, abs=1e-9
            )

    def test_cli_gate_passes_on_real_export(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        run_traced_overlay(path)
        rc = traces_main(
            [
                str(path),
                "--require-root",
                "dat.push",
                "--min-depth",
                "1",
                "--tail-grace",
                "1.5",
                "--check-critical-path",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0, out
        assert "check ok" in out

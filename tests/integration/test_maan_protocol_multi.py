"""Integration: multi-attribute conjunctions over the protocol MAAN."""

import pytest

from repro.chord.idspace import IdSpace
from repro.chord.network import ChordNetwork
from repro.chord.node import ChordConfig
from repro.errors import SchemaError
from repro.maan.attrs import AttributeSchema, Resource
from repro.maan.query import MultiAttributeQuery, RangeQuery
from repro.maan.service import MaanNodeService
from repro.sim.latency import ConstantLatency
from repro.sim.simnet import SimTransport

SCHEMAS = {
    "cpu-usage": AttributeSchema("cpu-usage", low=0.0, high=100.0),
    "memory-size": AttributeSchema("memory-size", low=0.0, high=64.0),
}


@pytest.fixture(scope="module")
def populated():
    space = IdSpace(14)
    transport = SimTransport(latency=ConstantLatency(0.002))
    config = ChordConfig(stabilize_interval=0.25, fix_fingers_interval=0.05)
    network = ChordNetwork(space, transport, config)
    for i in range(12):
        network.add_node((i * space.size) // 12 + 5)
        network.settle(1.0)
    network.settle_until_converged()
    for node in network.nodes.values():
        node.fix_all_fingers()
    network.settle(5.0)
    services = {
        ident: MaanNodeService(node, SCHEMAS)
        for ident, node in network.nodes.items()
    }
    resources = [
        Resource(
            f"m-{i}",
            {"cpu-usage": (i * 11) % 101 * 0.95, "memory-size": (i * 3) % 65 * 0.9},
        )
        for i in range(40)
    ]
    origin = services[next(iter(services))]
    for resource in resources:
        origin.register(resource)
    transport.run(until=transport.now() + 10.0)
    return transport, services, resources


def resolve(transport, service, query):
    results = []
    service.multi_attribute_query(query, results.append)
    transport.run(until=transport.now() + 10.0)
    assert len(results) == 1
    return results[0]


class TestMultiAttributeProtocolQuery:
    def test_conjunction_exact(self, populated):
        transport, services, resources = populated
        service = services[next(iter(services))]
        query = MultiAttributeQuery.of(
            RangeQuery("cpu-usage", 0.0, 40.0),
            RangeQuery("memory-size", 10.0, 60.0),
        )
        result = resolve(transport, service, query)
        expected = {r.resource_id for r in resources if query.matches(r)}
        assert result.resource_ids() == expected

    def test_dominant_subquery_bounds_cost(self, populated):
        transport, services, _resources = populated
        service = services[next(iter(services))]
        narrow = MultiAttributeQuery.of(
            RangeQuery("cpu-usage", 10.0, 14.0),     # selectivity 0.04
            RangeQuery("memory-size", 0.0, 64.0),    # selectivity 1.0
        )
        result = resolve(transport, service, narrow)
        # Cost follows the narrow arc, far below a full lap of 12 nodes.
        assert result.nodes_visited <= 4

    def test_undeclared_attribute_rejected(self, populated):
        _transport, services, _resources = populated
        service = services[next(iter(services))]
        query = MultiAttributeQuery.of(RangeQuery("gpu", 0, 1))
        with pytest.raises(SchemaError):
            service.multi_attribute_query(query, lambda r: None)


class TestProbingJoins:
    def test_add_node_probing_balances_ring(self):
        space = IdSpace(16)
        transport = SimTransport(latency=ConstantLatency(0.002))
        config = ChordConfig(stabilize_interval=0.25, fix_fingers_interval=0.05)
        network = ChordNetwork(space, transport, config)
        network.add_node(17)
        network.settle(3.0)
        import numpy as np

        rng = np.random.default_rng(12)
        joined = 0
        for _ in range(15):
            node = network.add_node_probing(rng=rng)
            if node is not None:
                joined += 1
            network.settle(3.0)
        network.settle_until_converged()
        assert joined >= 12  # probes resolve on a healthy overlay
        ring = network.ideal_ring()
        assert ring.gap_ratio() <= 16  # far better than random joins' tail

"""Integration: the net layer's retry policy under injected loss.

The acceptance scenario for the RPC-plane refactor: an on-demand
collection round over a lossy simulated network. Under the historical
(default, unbounded) policy a single lost ``agg_collect`` or
``agg_partial`` datagram stalls the round forever; with a bounded
:class:`~repro.net.RetryPolicy` the same round retransmits and completes.
Also exercises batched continuous push end-to-end.
"""

import pytest

from repro.chord.idspace import IdSpace
from repro.chord.ring import StaticRing
from repro.core.builder import build_balanced_dat
from repro.core.service import DatNodeService, StandaloneDatHost
from repro.net import RetryPolicy
from repro.sim.latency import ConstantLatency
from repro.sim.simnet import SimTransport

#: Bounded policy used by the robust runs: retransmit lost collects on a
#: fixed 0.5 s deadline. Attempts are deliberately generous — an interior
#: node answers only after its own subtree gather settles, so a parent's
#: retry window must cover the child's whole window recursively.
ROBUST = RetryPolicy(timeout=0.5, max_attempts=30)


def build_overlay(n, loss_rate, seed=1, retry_policy=None, push_batch_window=0.0):
    space = IdSpace(12)
    ring = StaticRing(space, [(i * space.size) // n for i in range(n)])
    tables = ring.all_finger_tables()
    transport = SimTransport(
        latency=ConstantLatency(0.002), loss_rate=loss_rate, rng=seed
    )
    key = 0
    tree = build_balanced_dat(ring, key, tables=tables)
    values = {node: float(node % 7 + 1) for node in ring}
    services = {}
    for node in ring:
        host = StandaloneDatHost(node, space, transport)
        services[node] = DatNodeService(
            host,
            finger_provider=lambda node=node: tables[node],
            value_provider=lambda node=node: values[node],
            scheme="balanced",
            d0_provider=lambda: space.size / n,
            children_resolver=lambda key, root, node=node: sorted(
                tree.children(node)
            ),
            retry_policy=retry_policy,
            push_batch_window=push_batch_window,
        )
    return ring, transport, tree, services, values


class TestOnDemandUnderLoss:
    def test_default_policy_stalls(self):
        """The historical semantics: one lost datagram hangs the round."""
        ring, transport, tree, services, values = build_overlay(32, 0.3, seed=2)
        results = []
        services[tree.root].collect(0, tree.root, "sum", results.append)
        transport.run(until=120.0)
        assert results == []  # the round never completes
        assert transport.pending_calls() > 0  # stuck open forever

    def test_bounded_policy_completes(self):
        """Same topology, same loss, same seed — retries finish the round."""
        ring, transport, tree, services, values = build_overlay(
            32, 0.3, seed=2, retry_policy=ROBUST
        )
        results = []
        services[tree.root].collect(0, tree.root, "sum", results.append)
        transport.run(until=120.0)
        assert len(results) == 1
        # With 30 attempts at 30% loss every subtree answers: the result
        # is exact, not merely approximate.
        assert results[0] == pytest.approx(sum(values.values()))
        assert transport.pending_calls() == 0

    def test_zero_loss_identical_under_both_policies(self):
        """On a clean network the bounded policy changes nothing."""
        outcomes = []
        for policy in (None, ROBUST):
            ring, transport, tree, services, values = build_overlay(
                16, 0.0, retry_policy=policy
            )
            results = []
            services[tree.root].collect(0, tree.root, "sum", results.append)
            transport.run(until=10.0)
            outcomes.append((results[0], transport.stats.total_messages()))
        assert outcomes[0] == outcomes[1]

    def test_duplicate_suppression_keeps_result_exact(self):
        """Retransmitted collects must not double-count subtrees.

        An aggressive policy (short deadline vs. round-trip depth) forces
        redundant retransmissions; DeferredResponder's at-most-once
        execution and cached-reply replay keep the merged sum exact.
        """
        ring, transport, tree, services, values = build_overlay(
            32, 0.2, seed=5,
            retry_policy=RetryPolicy(timeout=0.05, max_attempts=30),
        )
        results = []
        services[tree.root].collect(0, tree.root, "sum", results.append)
        transport.run(until=60.0)
        assert len(results) == 1
        assert results[0] == pytest.approx(sum(values.values()))


class TestBatchedContinuousPush:
    def test_batched_pushes_converge_to_truth(self):
        ring, transport, tree, services, values = build_overlay(
            16, 0.0, push_batch_window=0.1
        )
        for service in services.values():
            service.start_continuous(0, tree.root, "sum", interval=0.5)
        transport.run(until=10.0)
        assert services[tree.root].root_estimate(0) == pytest.approx(
            sum(values.values())
        )

    def test_batching_reduces_wire_messages(self):
        def wire_messages(window):
            ring, transport, tree, services, values = build_overlay(
                16, 0.0, push_batch_window=window
            )
            for service in services.values():
                service.start_continuous(0, tree.root, "sum", interval=0.2)
            transport.run(until=10.0)
            for service in services.values():
                service.close()
            return transport.stats.total_messages()

        # The batcher is per-sender: it coalesces a node's successive
        # pushes to its parent. With a flush window spanning several push
        # intervals, 2-3 pushes ride per datagram.
        assert wire_messages(0.5) < wire_messages(0.0) * 0.6

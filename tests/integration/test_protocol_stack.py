"""Integration: live Chord protocol + DAT service over the DES transport.

This is the paper's simulator configuration end-to-end: protocol nodes
join and stabilize, then the DAT layer aggregates over the *live* finger
tables (not an oracle snapshot).
"""

import pytest

from repro.chord.idspace import IdSpace
from repro.chord.network import ChordNetwork
from repro.chord.node import ChordConfig
from repro.core.builder import build_balanced_dat
from repro.core.service import DatNodeService
from repro.experiments.churn_overhead import live_tree
from repro.sim.latency import ConstantLatency
from repro.sim.simnet import SimTransport


@pytest.fixture(scope="module")
def overlay():
    space = IdSpace(12)
    transport = SimTransport(latency=ConstantLatency(0.005))
    config = ChordConfig(stabilize_interval=0.5, fix_fingers_interval=0.05)
    network = ChordNetwork(space, transport, config)
    idents = [(i * space.size) // 24 + 7 for i in range(24)]
    for ident in idents:
        network.add_node(ident)
        network.settle(2.0)
    network.settle_until_converged()
    for node in network.nodes.values():
        node.fix_all_fingers()
    network.settle(10.0)
    assert network.finger_convergence_fraction() == 1.0
    return network


class TestLiveTreeMatchesStatic:
    def test_live_equals_oracle(self, overlay):
        key = 1234
        live = live_tree(overlay, key)
        static = build_balanced_dat(overlay.ideal_ring(), key)
        assert live.parent == static.parent

    def test_live_tree_valid(self, overlay):
        live = live_tree(overlay, 999)
        live.validate()


class TestContinuousAggregationOverProtocol:
    def test_sum_converges_on_live_overlay(self, overlay):
        transport = overlay.transport
        space = overlay.space
        n = len(overlay.nodes)
        key = 1234
        ring = overlay.ideal_ring()
        root = ring.successor(key)
        values = {ident: float(i) for i, ident in enumerate(sorted(overlay.nodes))}

        services = {}
        for ident, node in overlay.nodes.items():
            services[ident] = DatNodeService(
                node,
                finger_provider=node.finger_table,
                value_provider=lambda ident=ident: values[ident],
                scheme="balanced",
                d0_provider=lambda: space.size / n,
            )
        for service in services.values():
            service.start_continuous(key, root, "sum", interval=0.5)
        transport.run(until=transport.now() + 30.0)
        estimate = services[root].root_estimate(key)
        assert estimate == pytest.approx(sum(values.values()))

    def test_estimate_survives_graceful_leave(self, overlay):
        transport = overlay.transport
        space = overlay.space
        key = 3321
        ring = overlay.ideal_ring()
        root = ring.successor(key)
        victims = [ident for ident in overlay.nodes if ident != root]
        victim = victims[5]

        values = {ident: 1.0 for ident in overlay.nodes}
        n = len(overlay.nodes)
        services = {}
        for ident, node in overlay.nodes.items():
            services[ident] = DatNodeService(
                node,
                finger_provider=node.finger_table,
                value_provider=lambda ident=ident: values[ident],
                scheme="balanced",
                d0_provider=lambda: space.size / n,
            )
        for service in services.values():
            service.start_continuous(key, root, "count", interval=0.5)
        transport.run(until=transport.now() + 30.0)
        assert services[root].root_estimate(key) == n

        # A node leaves; stabilization re-wires fingers; pushes re-route.
        services[victim].stop_continuous(key)
        overlay.remove_node(victim, graceful=True)
        transport.run(until=transport.now() + 60.0)

        # The root's cached child states may briefly double-count the
        # departed node; after caches refresh the count reflects n-1
        # within one stale entry.
        estimate = services[root].root_estimate(key)
        assert abs(estimate - (n - 1)) <= 1

"""Integration: the full P-GMA stack over the live protocol (LiveGridMonitor)."""

import pytest

from repro import telemetry
from repro.errors import MonitoringError
from repro.gma.live import LiveGridMonitor
from repro.gma.monitor import MonitorConfig
from repro.gma.producer import Producer
from repro.workloads.grids import default_schemas, make_producers


@pytest.fixture(scope="module")
def live():
    config = MonitorConfig(n_nodes=16, bits=16, id_strategy="probing", seed=31)
    monitor = LiveGridMonitor(config, default_schemas())
    ring = monitor.network.ideal_ring()
    for producer in make_producers(ring, seed=31).values():
        monitor.attach_producer(producer)
    stored = monitor.register_all(t=0.0)
    assert stored == 16 * 4  # every attribute of every node placed
    return monitor


class TestLiveDiscovery:
    def test_full_range_finds_everyone(self, live):
        result = live.search("cpu-usage", 0.0, 100.0)
        assert len(result.resources) == 16

    def test_narrow_range_filters(self, live):
        result = live.search("memory-size", 0.0, 2.0)
        for resource in result.resources:
            assert resource.attributes["memory-size"] <= 2.0

    def test_routed_costs_reported(self, live):
        result = live.search("cpu-usage", 10.0, 30.0)
        assert result.lookup_hops >= 0
        assert result.nodes_visited >= 0


class TestLiveAggregation:
    def test_on_demand_matches_truth(self, live):
        measured = live.aggregate("cpu-usage", "sum", t=0.0)
        truth = live.actual_aggregate("cpu-usage", "sum", t=0.0)
        assert measured == pytest.approx(truth)

    def test_avg_aggregate(self, live):
        measured = live.aggregate("cpu-usage", "avg", t=5.0)
        truth = live.actual_aggregate("cpu-usage", "avg", t=5.0)
        assert measured == pytest.approx(truth)

    def test_continuous_monitoring_tracks(self, live):
        live.start_monitoring("cpu-usage", "count", interval=0.5)
        live.run(8.0)
        assert live.read_monitoring("cpu-usage") == 16

    def test_explicit_wave_budget(self, live):
        measured = live.aggregate("cpu-usage", "count", t=0.0, waves=8)
        assert measured == 16


class TestLiveEdgeCases:
    def test_attach_producer_rejects_unknown_node(self, live):
        stranger = Producer(node=-1, resource_id="ghost")
        with pytest.raises(MonitoringError):
            live.attach_producer(stranger)

    def test_read_monitoring_unknown_attribute_is_none(self, live):
        assert live.read_monitoring("no-such-attribute") is None

    def test_search_timeout_raises(self, live):
        # A settle window of zero gives the routed query no virtual time
        # to resolve in — the facade must surface that, not hang.
        with pytest.raises(MonitoringError):
            live.search("cpu-usage", 0.0, 100.0, settle=0.0)

    def test_rendezvous_key_is_stable_and_in_space(self, live):
        key = live.rendezvous_key("cpu-usage")
        assert key == live.rendezvous_key("cpu-usage")
        assert 0 <= key < live.space.size


class TestLiveTelemetry:
    def test_search_and_aggregate_emit_spans(self, live):
        with telemetry.enabled() as tel:
            live.search("cpu-usage", 0.0, 100.0)
            live.aggregate("cpu-usage", "sum", t=0.0)
            (search_span,) = tel.spans.by_name("gma.live.search")
            assert search_span.attrs["attribute"] == "cpu-usage"
            assert search_span.attrs["n_resources"] == 16
            assert search_span.attrs["hops"] >= 0
            (agg_span,) = tel.spans.by_name("gma.live.aggregate")
            assert agg_span.attrs["attribute"] == "cpu-usage"
            assert agg_span.attrs["waves"] >= 1


class TestLiveTeardown:
    def test_close_detaches_every_layer(self):
        # Regression (DAT011): broadcast services were constructed as
        # locals and never closed — their `bcast` upcall registrations
        # outlived the monitor, so a second monitor built on the same
        # process inherited ghost broadcast handlers.
        config = MonitorConfig(n_nodes=4, bits=12, id_strategy="probing", seed=7)
        monitor = LiveGridMonitor(config, default_schemas())
        hosts = dict(monitor.network.nodes)
        assert monitor.broadcasts  # one service per node while live
        monitor.close()
        assert not monitor.broadcasts
        assert not monitor.collectors
        assert not monitor.dat
        assert not monitor.maan
        for host in hosts.values():
            for kind in ("bcast", "gather_push", "agg_push", "agg_collect"):
                assert kind not in host.upcalls, kind
        monitor.close()  # idempotent

"""End-to-end integration: sensors -> MAAN -> DAT -> consumer (P-GMA)."""

import pytest

from repro.gma.monitor import GridMonitor, MonitorConfig
from repro.gma.traces import TraceGenerator
from repro.workloads.grids import default_schemas, make_producers


@pytest.fixture(scope="module")
def stack():
    config = MonitorConfig(n_nodes=64, bits=28, id_strategy="probing", seed=77)
    monitor = GridMonitor(config, default_schemas())
    traces = TraceGenerator(seed=77).generate_fleet(64, identical=False)
    producers = make_producers(monitor.ring, traces=traces, seed=77)
    for producer in producers.values():
        monitor.attach_producer(producer)
    monitor.register_all(t=0.0)
    return monitor


class TestDiscoveryThenMonitoring:
    def test_discover_then_aggregate(self, stack):
        # An application finds idle-enough machines, then watches the
        # global average — the paper's motivating consumer workflow.
        consumer = stack.consumer()
        idle = consumer.search("cpu-usage", 0.0, 50.0)
        for resource in idle.resources:
            assert resource.attributes["cpu-usage"] <= 50.0

        average = consumer.global_aggregate("cpu-usage", "avg", t=0.0)
        truth = stack.actual_aggregate("cpu-usage", "avg", t=0.0)
        assert average == pytest.approx(truth)

    def test_search_and_aggregate_consistency(self, stack):
        # COUNT from the DAT equals the MAAN full-range result set size.
        consumer = stack.consumer()
        count = consumer.global_aggregate("cpu-usage", "count", t=0.0)
        full = consumer.search("cpu-usage", 0.0, 100.0)
        assert count == len(full.resources) == 64

    def test_multi_attribute_discovery(self, stack):
        consumer = stack.consumer()
        result = consumer.search_all(
            cpu_usage=(0.0, 100.0), memory_size=(4.0, 64.0), cpu_speed=(2.0, 5.0)
        )
        for resource in result.resources:
            assert resource.attributes["memory-size"] >= 4.0
            assert resource.attributes["cpu-speed"] >= 2.0

    def test_monitoring_time_series(self, stack):
        consumer = stack.consumer()
        times = [0.0, 100.0, 200.0, 300.0]
        series = consumer.monitor_series("cpu-usage", "sum", times)
        truths = [stack.actual_aggregate("cpu-usage", "sum", t=t) for t in times]
        for measured, truth in zip(series, truths):
            assert measured == pytest.approx(truth)

    def test_histogram_of_fleet_load(self, stack):
        outcome = stack.aggregate("cpu-usage", "histogram", t=0.0, low=0, high=100, n_bins=10)
        assert sum(outcome.value) == 64

    def test_multiple_attributes_multiple_trees(self, stack):
        # Different attributes aggregate on different trees (distinct roots
        # with high probability) but all give exact results.
        roots = set()
        for attribute in ("cpu-usage", "cpu-speed", "memory-size", "disk-size"):
            outcome = stack.aggregate(attribute, "max", t=0.0)
            truth = stack.actual_aggregate(attribute, "max", t=0.0)
            assert outcome.value == pytest.approx(truth)
            roots.add(outcome.root)
        assert len(roots) >= 2

    def test_load_balance_on_this_deployment(self, stack):
        from repro.core.analysis import imbalance_factor

        outcome = stack.aggregate("cpu-usage", "sum")
        assert imbalance_factor(outcome.message_loads) < 5.0


class TestChurnOnStack:
    def test_node_departure_keeps_results_exact(self):
        config = MonitorConfig(n_nodes=32, bits=24, seed=5)
        monitor = GridMonitor(config, default_schemas())
        producers = make_producers(monitor.ring, seed=5)
        for producer in producers.values():
            monitor.attach_producer(producer)

        victim = monitor.ring.nodes[3]
        monitor.ring.remove(victim)
        monitor.producers.pop(victim)
        monitor.dat_builder.invalidate()

        outcome = monitor.aggregate("cpu-usage", "count")
        assert outcome.value == 31
        outcome.tree.validate()

"""Scale smoke test: the paper's headline 8192-node configuration.

One pass over everything the big experiments exercise — ring build with
probing ids, vectorized + scalar construction, both schemes, an
aggregation round, and the load metrics — at full 8192-node scale, kept
under a few seconds by sharing the ring across checks.
"""

import pytest

from repro.chord.fastbuild import build_dat_fast
from repro.chord.idgen import ProbingIdAssigner
from repro.chord.idspace import IdSpace
from repro.core.aggregates import get_aggregate
from repro.core.analysis import imbalance_factor
from repro.core.builder import build_balanced_dat, build_basic_dat
from repro.util.bits import ceil_log2


@pytest.fixture(scope="module")
def big_ring():
    return ProbingIdAssigner().build_ring(IdSpace(32), 8192, rng=2007)


@pytest.fixture(scope="module")
def big_tables(big_ring):
    return big_ring.all_finger_tables()


class TestHeadlineScale:
    def test_ring_quality(self, big_ring):
        assert len(big_ring) == 8192
        assert big_ring.gap_ratio() <= 8.0  # probing keeps ids balanced

    def test_balanced_tree_properties(self, big_ring, big_tables):
        tree = build_balanced_dat(big_ring, 0xBEEF, tables=big_tables)
        tree.validate()
        stats = tree.stats()
        assert stats.max_branching <= 8          # ~constant (paper: ~4)
        assert stats.height <= 2 * ceil_log2(8192)
        assert 1.5 <= stats.avg_branching <= 2.6

    def test_basic_tree_properties(self, big_ring, big_tables):
        tree = build_basic_dat(big_ring, 0xBEEF, tables=big_tables)
        tree.validate()
        stats = tree.stats()
        assert stats.max_branching <= 2 * ceil_log2(8192)  # log-scale
        assert stats.height <= 2 * ceil_log2(8192)

    def test_fast_path_agrees_at_scale(self, big_ring):
        fast = build_dat_fast(big_ring, 0xBEEF, scheme="balanced")
        slow = build_balanced_dat(big_ring, 0xBEEF)
        assert fast.parent == slow.parent

    def test_aggregation_round_at_scale(self, big_ring, big_tables):
        tree = build_balanced_dat(big_ring, 0xBEEF, tables=big_tables)
        agg = get_aggregate("avg")
        depths = tree.depths()
        states = {node: agg.lift(float(node % 100)) for node in tree.nodes()}
        for node in sorted(tree.parent, key=lambda v: depths[v], reverse=True):
            parent = tree.parent[node]
            states[parent] = agg.merge(states[parent], states[node])
        value = agg.finalize(states[tree.root])
        truth = sum(node % 100 for node in big_ring) / 8192
        assert value == pytest.approx(truth)

    def test_load_balance_at_scale(self, big_ring, big_tables):
        tree = build_balanced_dat(big_ring, 0xBEEF, tables=big_tables)
        assert imbalance_factor(tree.message_loads()) <= 4.5

"""Integration: MAAN over the live protocol (routed registration + walks)."""

import pytest

from repro.chord.idspace import IdSpace
from repro.chord.network import ChordNetwork
from repro.chord.node import ChordConfig
from repro.maan.attrs import AttributeSchema, Resource
from repro.maan.query import QueryResult, RangeQuery
from repro.maan.service import MaanNodeService
from repro.sim.latency import ConstantLatency
from repro.sim.simnet import SimTransport
from repro.util.bits import ceil_log2

SCHEMAS = {
    "cpu-usage": AttributeSchema("cpu-usage", low=0.0, high=100.0),
    "memory-size": AttributeSchema("memory-size", low=0.0, high=64.0),
}


@pytest.fixture(scope="module")
def overlay():
    space = IdSpace(14)
    transport = SimTransport(latency=ConstantLatency(0.002))
    config = ChordConfig(stabilize_interval=0.25, fix_fingers_interval=0.05)
    network = ChordNetwork(space, transport, config)
    n = 16
    for i in range(n):
        network.add_node((i * space.size) // n + 3)
        network.settle(1.0)
    network.settle_until_converged()
    for node in network.nodes.values():
        node.fix_all_fingers()
    network.settle(5.0)
    services = {
        ident: MaanNodeService(node, SCHEMAS)
        for ident, node in network.nodes.items()
    }
    return network, transport, services


@pytest.fixture(scope="module")
def populated(overlay):
    network, transport, services = overlay
    origin = services[next(iter(services))]
    resources = [
        Resource(
            f"node-{i}",
            {"cpu-usage": (i * 7) % 101 * 0.99, "memory-size": (i * 5) % 65 * 0.9},
        )
        for i in range(32)
    ]
    acks: list[int] = []
    for resource in resources:
        origin.register(resource, on_done=acks.append)
    transport.run(until=transport.now() + 10.0)
    assert len(acks) == 32
    assert all(count == 2 for count in acks)  # both attributes placed
    return network, transport, services, resources


class TestRegistration:
    def test_records_distributed(self, populated):
        _network, _transport, services, _resources = populated
        total = sum(service.store.count() for service in services.values())
        assert total == 32 * 2

    def test_placement_matches_static_model(self, populated):
        network, _transport, services, resources = populated
        ring = network.ideal_ring()
        for resource in resources[:8]:
            for attribute in SCHEMAS:
                key = services[next(iter(services))]._hashers[attribute](
                    resource.attributes[attribute]
                )
                owner = ring.successor(key)
                stored_ids = {
                    r.resource_id
                    for r in services[owner].store.all_for_attribute(attribute)
                }
                assert resource.resource_id in stored_ids


class TestRangeQueries:
    def run_query(self, transport, service, query) -> QueryResult:
        results: list[QueryResult] = []
        service.range_query(query, results.append)
        transport.run(until=transport.now() + 10.0)
        assert len(results) == 1
        return results[0]

    def test_results_exact(self, populated):
        _network, transport, services, resources = populated
        service = services[next(iter(services))]
        query = RangeQuery("cpu-usage", 20.0, 60.0)
        result = self.run_query(transport, service, query)
        expected = {r.resource_id for r in resources if query.matches(r)}
        assert result.resource_ids() == expected

    def test_full_domain(self, populated):
        _network, transport, services, resources = populated
        service = services[next(iter(services))]
        query = RangeQuery("memory-size", 0.0, 64.0)
        result = self.run_query(transport, service, query)
        assert result.resource_ids() == {r.resource_id for r in resources}

    def test_cost_structure(self, populated):
        _network, transport, services, _resources = populated
        service = services[next(iter(services))]
        narrow = self.run_query(transport, service, RangeQuery("cpu-usage", 10.0, 12.0))
        wide = self.run_query(transport, service, RangeQuery("cpu-usage", 0.0, 90.0))
        assert narrow.lookup_hops <= 2 * ceil_log2(16)
        assert wide.nodes_visited > narrow.nodes_visited

    def test_query_from_every_node_consistent(self, populated):
        _network, transport, services, resources = populated
        query = RangeQuery("cpu-usage", 30.0, 70.0)
        expected = {r.resource_id for r in resources if query.matches(r)}
        for service in list(services.values())[:4]:
            result = self.run_query(transport, service, query)
            assert result.resource_ids() == expected

    def test_undeclared_attribute_rejected(self, populated):
        from repro.errors import SchemaError

        _network, _transport, services, _resources = populated
        service = services[next(iter(services))]
        with pytest.raises(SchemaError):
            service.range_query(RangeQuery("disk", 0, 1), lambda r: None)

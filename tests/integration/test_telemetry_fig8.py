"""Integration: Fig. 8 load distributions are reproducible from exported
telemetry alone.

The acceptance property of the telemetry subsystem: run the Fig. 8(a)
experiment with telemetry enabled, write the JSONL export, throw the
in-process results away, and rebuild the per-scheme load distributions and
imbalance factors from the export — they must match the experiment's own
output exactly.
"""

from __future__ import annotations

import json
from collections import defaultdict

import pytest

from repro import telemetry
from repro.core.analysis import imbalance_factor
from repro.experiments.fig8_load_balance import (
    run_fig8a_message_distribution,
    run_fig8b_imbalance_sweep,
)
from repro.telemetry.export import write_jsonl

N_NODES = 64
SCHEMES = ("centralized", "basic", "balanced")


@pytest.fixture(scope="module")
def exported(tmp_path_factory):
    """Run fig8a (and a one-point fig8b) under telemetry; return the events."""
    path = tmp_path_factory.mktemp("telemetry") / "fig8.jsonl"
    with telemetry.enabled() as tel:
        distribution = run_fig8a_message_distribution(n_nodes=N_NODES, seed=2007)
        points = run_fig8b_imbalance_sweep(sizes=[N_NODES], n_seeds=2)
        with open(path, "w", encoding="utf-8") as handle:
            write_jsonl(tel, handle)
    with open(path, encoding="utf-8") as handle:
        events = [json.loads(line) for line in handle if line.strip()]
    return distribution, points, events


def _loads_from_events(events, scheme: str) -> list[int]:
    """Rank-ordered per-node loads of one scheme, from the export alone."""
    totals = [
        int(e["total"])
        for e in events
        if e["type"] == "hotspot_node" and e["accountant"] == f"fig8.{scheme}"
    ]
    return sorted(totals, reverse=True)


class TestFig8FromTelemetry:
    def test_distributions_reconstruct_exactly(self, exported):
        distribution, _points, events = exported
        for scheme in SCHEMES:
            assert _loads_from_events(events, scheme) == sorted(
                getattr(distribution, scheme), reverse=True
            ), scheme

    def test_imbalance_gauges_match_experiment(self, exported):
        distribution, _points, events = exported
        gauges = {
            e["labels"]["scheme"]: e["value"]
            for e in events
            if e["type"] == "metric" and e["name"] == "repro_fig8a_imbalance"
        }
        for scheme in SCHEMES:
            expected = imbalance_factor(getattr(distribution, scheme))
            assert gauges[scheme] == pytest.approx(expected), scheme

    def test_imbalance_recomputable_from_node_events(self, exported):
        _distribution, _points, events = exported
        gauges = {
            e["labels"]["scheme"]: e["value"]
            for e in events
            if e["type"] == "metric" and e["name"] == "repro_fig8a_imbalance"
        }
        for scheme in SCHEMES:
            loads = _loads_from_events(events, scheme)
            assert imbalance_factor(loads) == pytest.approx(gauges[scheme]), scheme

    def test_load_samples_exported_per_scheme(self, exported):
        _distribution, _points, events = exported
        samples = defaultdict(list)
        for e in events:
            if e["type"] == "hotspot_sample":
                samples[e["accountant"]].append(e)
        for scheme in SCHEMES:
            (point,) = samples[f"fig8.{scheme}"]
            assert point["n_nodes"] == N_NODES
            assert point["imbalance"] > 0

    def test_fig8b_gauges_match_sweep(self, exported):
        _distribution, points, events = exported
        (point,) = points
        gauges = {
            e["labels"]["scheme"]: e["value"]
            for e in events
            if e["type"] == "metric" and e["name"] == "repro_fig8b_imbalance"
        }
        for scheme in SCHEMES:
            assert gauges[scheme] == pytest.approx(getattr(point, scheme)), scheme

    def test_experiment_spans_exported(self, exported):
        _distribution, _points, events = exported
        names = {e["name"] for e in events if e["type"] == "span"}
        assert {"experiment.fig8a", "experiment.fig8b"} <= names

    def test_balance_ordering_holds_in_export(self, exported):
        """The paper's qualitative result survives the export round-trip."""
        _distribution, _points, events = exported
        imbalances = {
            scheme: imbalance_factor(_loads_from_events(events, scheme))
            for scheme in SCHEMES
        }
        assert imbalances["balanced"] < imbalances["basic"] < imbalances["centralized"]

"""Integration: every paper figure reconstructs from streamed telemetry alone.

The acceptance property of the live telemetry pipeline: run Fig. 7,
Fig. 9, the dynamics sweep, the churn-overhead experiment, and the
centralized baselines with a streaming JSONL export attached, throw the
in-process results away, and rebuild each figure's numbers from the
export file — they must match the experiments' own outputs. (Fig. 8 has
its own dedicated round-trip test in ``test_telemetry_fig8.py``.)
"""

from __future__ import annotations

import json
import math

import pytest

from repro import telemetry
from repro.chord.idgen import ProbingIdAssigner
from repro.chord.idspace import IdSpace
from repro.baselines.centralized import (
    centralized_direct_loads,
    centralized_routed_loads,
)
from repro.experiments.churn_overhead import run_churn_overhead
from repro.experiments.dynamics import run_dynamics
from repro.experiments.fig7_tree_properties import run_fig7_tree_properties
from repro.experiments.fig9_accuracy import run_fig9_accuracy
from repro.telemetry import LiveExport
from repro.telemetry.report import rolling_imbalance

FIG7_CONFIGS = [("balanced", "probing"), ("basic", "random")]
FIG7_SIZES = [16, 32]
FIG9_SLOTS = 12
DYNAMICS_RATES = [0.0, 0.5]
DYNAMICS_DURATION = 10.0
SAMPLE_WINDOW = 1.0


@pytest.fixture(scope="module")
def exported(tmp_path_factory):
    """Run every figure experiment under one streamed export."""
    path = tmp_path_factory.mktemp("telemetry") / "figures.jsonl"
    tel = telemetry.configure(enabled=True, sample_window=SAMPLE_WINDOW)
    assert tel is not None
    live = LiveExport(tel, jsonl_path=path)
    try:
        fig7 = run_fig7_tree_properties(
            sizes=FIG7_SIZES, n_seeds=1, configs=FIG7_CONFIGS
        )
        fig9 = run_fig9_accuracy(
            n_nodes=32, bits=16, mode="continuous", n_slots=FIG9_SLOTS
        )
        dynamics = run_dynamics(
            churn_rates=DYNAMICS_RATES,
            n_nodes=16,
            bits=16,
            duration=DYNAMICS_DURATION,
        )
        churn = run_churn_overhead(n_nodes=16, bits=16, n_churn_events=3)
        space = IdSpace(16)
        ring = ProbingIdAssigner().build_ring(space, 24, rng=2007)
        centralized_direct_loads(ring, key=0x1234)
        centralized_routed_loads(ring, key=0x1234)
        live.close()
    finally:
        live.close()
        telemetry.disable()
    with open(path, encoding="utf-8") as handle:
        events = [json.loads(line) for line in handle if line.strip()]
    return {
        "fig7": fig7,
        "fig9": fig9,
        "dynamics": dynamics,
        "churn": churn,
        "ring": ring,
        "events": events,
    }


def _metrics(events, name):
    """All metric records for one (qualified) metric name."""
    return [
        e for e in events if e["type"] == "metric" and e["name"] == f"repro_{name}"
    ]


def _gauge(events, name, **labels):
    """The value of one gauge sample, matched by its full label set."""
    want = {k: str(v) for k, v in labels.items()}
    matches = [e for e in _metrics(events, name) if e["labels"] == want]
    assert len(matches) == 1, (name, labels, matches)
    return float(matches[0]["value"])


class TestFig7FromTelemetry:
    def test_every_point_reconstructs(self, exported):
        events = exported["events"]
        points = exported["fig7"]
        assert len(points) == len(FIG7_CONFIGS) * len(FIG7_SIZES)
        for point in points:
            labels = {
                "scheme": point.scheme, "ids": point.id_strategy, "n": point.n_nodes
            }
            assert _gauge(events, "fig7_max_branching", **labels) == pytest.approx(
                point.max_branching
            )
            assert _gauge(events, "fig7_avg_branching", **labels) == pytest.approx(
                point.avg_branching
            )
            assert _gauge(events, "fig7_height", **labels) == pytest.approx(
                point.height
            )


class TestFig9FromTelemetry:
    def _series(self, events, name):
        samples = _metrics(events, name)
        assert len(samples) == FIG9_SLOTS
        by_slot = {int(e["labels"]["slot"]): float(e["value"]) for e in samples}
        return [by_slot[slot] for slot in sorted(by_slot)]

    def test_per_slot_series_reconstruct(self, exported):
        events = exported["events"]
        fig9 = exported["fig9"]
        assert self._series(events, "fig9_actual") == pytest.approx(fig9.actual)
        assert self._series(events, "fig9_aggregated") == pytest.approx(
            fig9.aggregated
        )

    def test_error_gauges_match_series_recomputation(self, exported):
        events = exported["events"]
        fig9 = exported["fig9"]
        actual = self._series(events, "fig9_actual")
        aggregated = self._series(events, "fig9_aggregated")
        mean_rel = sum(
            abs(a - b) / a for a, b in zip(actual, aggregated)
        ) / len(actual)
        assert _gauge(
            events, "fig9_mean_relative_error", mode="continuous"
        ) == pytest.approx(mean_rel)
        assert _gauge(
            events, "fig9_max_relative_error", mode="continuous"
        ) == pytest.approx(
            max(abs(a - b) / a for a, b in zip(actual, aggregated))
        )
        assert _gauge(
            events, "fig9_correlation", mode="continuous"
        ) == pytest.approx(fig9.correlation())

    def test_staleness_gauge_bounds_reading_age(self, exported):
        events = exported["events"]
        staleness = _gauge(events, "fig9_max_staleness_seconds", mode="continuous")
        assert staleness > 0.0
        assert math.isfinite(staleness)


class TestDynamicsFromTelemetry:
    def test_per_rate_gauges_reconstruct(self, exported):
        events = exported["events"]
        for point in exported["dynamics"].points:
            labels = {"churn_rate": f"{point.churn_rate:g}"}
            assert _gauge(
                events, "dynamics_mean_relative_error", **labels
            ) == pytest.approx(point.mean_relative_error)
            assert _gauge(
                events, "dynamics_max_relative_error", **labels
            ) == pytest.approx(point.max_relative_error)
            assert _gauge(
                events, "dynamics_availability", **labels
            ) == pytest.approx(point.availability)
            assert _gauge(
                events, "dynamics_incremental_updates", **labels
            ) == pytest.approx(point.mean_incremental_updates)
            assert _gauge(events, "dynamics_samples_total", **labels) == float(
                point.n_samples
            )

    def test_rolling_imbalance_covers_every_window(self, exported):
        series = rolling_imbalance(exported["events"], "dynamics")
        assert set(series) == {
            f"dynamics.rate{rate:g}" for rate in DYNAMICS_RATES
        }
        min_samples = int(DYNAMICS_DURATION / SAMPLE_WINDOW) - 1
        for name, points in series.items():
            assert len(points) >= min_samples, name
            times = [t for t, _ in points]
            assert times == sorted(times)
            # consecutive samples are one window apart: no skipped windows
            gaps = [b - a for a, b in zip(times, times[1:])]
            assert all(gap == pytest.approx(SAMPLE_WINDOW) for gap in gaps), name


class TestChurnFromTelemetry:
    def test_overhead_gauges_reconstruct(self, exported):
        events = exported["events"]
        churn = exported["churn"]
        assert _gauge(events, "churn_total_messages") == float(
            churn.total_messages
        )
        assert _gauge(events, "churn_messages_per_node_second") == pytest.approx(
            churn.messages_per_node_second
        )
        rounds = churn.repair_rounds
        assert _gauge(events, "churn_mean_repair_rounds") == pytest.approx(
            sum(rounds) / len(rounds) if rounds else 0.0
        )

    def test_by_kind_counters_reconstruct(self, exported):
        events = exported["events"]
        churn = exported["churn"]
        by_kind = {
            e["labels"]["kind"]: int(e["value"])
            for e in _metrics(events, "churn_messages_total")
        }
        assert by_kind == churn.by_kind

    def test_repair_rounds_histogram_uses_unit_buckets(self, exported):
        events = exported["events"]
        (hist,) = _metrics(events, "churn_repair_rounds")
        assert hist["kind"] == "histogram"
        buckets = hist["buckets"]
        # the per-metric override: unit-width buckets so "repaired in k
        # rounds" is readable directly off the figure
        assert buckets[:4] == [1.0, 2.0, 3.0, 4.0]
        assert hist["count"] == len(exported["churn"].repair_rounds)
        total = sum(hist["bucket_counts"])
        assert total == hist["count"]


class TestBaselinesFromTelemetry:
    def test_direct_variant_counts_one_send_per_node(self, exported):
        events = exported["events"]
        n = len(exported["ring"])
        assert _gauge(
            events, "baseline_messages_total", variant="direct"
        ) == float(n - 1)

    def test_routed_variant_counts_all_hops(self, exported):
        events = exported["events"]
        n = len(exported["ring"])
        routed = _gauge(events, "baseline_messages_total", variant="routed")
        # finger routing relays: at least one message per non-root node,
        # strictly more than the direct baseline once any route multi-hops
        assert routed >= float(n - 1)


class TestStreamedSpansPresent:
    def test_each_experiment_span_streamed(self, exported):
        events = exported["events"]
        names = {e["name"] for e in events if e["type"] == "span"}
        for expected in (
            "experiment.fig7",
            "experiment.fig9",
            "experiment.dynamics",
            "experiment.dynamics.rate",
            "experiment.churn",
            "dat.build",
        ):
            assert expected in names, expected

    def test_drop_accounting_present_and_consistent(self, exported):
        events = exported["events"]
        (drops,) = [e for e in events if e["type"] == "span_drops"]
        streamed = int(drops["streamed"])
        spans_on_disk = sum(1 for e in events if e["type"] == "span")
        assert streamed >= spans_on_disk - int(drops["evicted"])
        assert int(drops["sampled_out"]) == 0  # no sampling configured here

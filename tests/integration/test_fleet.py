"""Integration: a small real fleet of OS processes on localhost.

One fleet per test class keeps the process count (and wall time) small;
every assertion goes through the supervisor's public control surface, the
same path the CLI uses.
"""

import asyncio
import json

import pytest

from repro.chord.hashing import sha1_id
from repro.errors import FleetError
from repro.fleet import FleetConfig, FleetSupervisor, RestartPolicy
from repro.fleet.compare import compare_fig9, run_fig9_sim_twin
from repro.fleet.plan import plan_fleet_fig9
from repro.fleet.replay import replay_fig9_live

N = 4


def fleet_config(tmp_path, **overrides) -> FleetConfig:
    defaults = dict(
        n_nodes=N,
        bits=16,
        join_batch=2,
        state_dir=str(tmp_path / "fleet"),
        hello_timeout=60.0,
        call_timeout=30.0,
        converge_timeout=60.0,
    )
    defaults.update(overrides)
    return FleetConfig(**defaults)


async def booted(config: FleetConfig) -> FleetSupervisor:
    supervisor = FleetSupervisor(config)
    await supervisor.start()
    assert await supervisor.wait_converged(), "fleet did not converge after boot"
    return supervisor


class TestFleetLifecycle:
    def test_boot_status_route_churn_teardown(self, tmp_path):
        async def scenario() -> None:
            supervisor = await booted(fleet_config(tmp_path))
            try:
                members = supervisor.live_idents()
                assert len(members) == N

                # Status snapshots carry the full control surface.
                statuses = await supervisor.statuses()
                assert sorted(statuses) == members
                for ident, status in statuses.items():
                    assert status["ident"] == ident
                    assert status["pid"] > 0
                    assert status["successor"] in members

                # Route display: the path walks live members and lands on
                # the key's successor.
                key = sha1_id("cpu-usage", supervisor.space)
                route = await supervisor.route(key)
                expected = min(
                    (m for m in members if m >= key), default=min(members)
                )
                assert route["result"] == expected
                assert route["hops"] == len(route["path"])
                assert all(hop in members for hop in route["path"])

                # Graceful leave shrinks the ring and reconverges.
                departing = members[-1]
                await supervisor.leave(departing)
                assert departing not in supervisor.live_idents()
                assert await supervisor.wait_converged()

                # SIGKILL (no restart policy): the fleet reconverges around
                # the hole once failure detection kicks in.
                victim = supervisor.live_idents()[-1]
                await supervisor.kill(victim)
                assert victim not in supervisor.live_idents()
                assert await supervisor.wait_converged()

                # Ad-hoc join via a fresh identifier.
                ident = supervisor.pick_ident()
                await supervisor.join_agent(ident)
                assert ident in supervisor.live_idents()
                assert await supervisor.wait_converged()

                # Telemetry streamed to one JSONL file per agent. The first
                # sample is immediate, but it still crosses the control
                # plane — poll briefly rather than racing it.
                want = {
                    supervisor.state_dir / f"telemetry-{m}.jsonl"
                    for m in supervisor.live_idents()
                }
                deadline = asyncio.get_running_loop().time() + 15.0
                while asyncio.get_running_loop().time() < deadline:
                    if all(path.exists() for path in want):
                        break
                    await asyncio.sleep(0.25)
                assert all(path.exists() for path in want)
                telemetry = sorted(supervisor.state_dir.glob("telemetry-*.jsonl"))
                record = json.loads(telemetry[0].read_text().splitlines()[0])
                assert record["event"] == "telemetry"
                assert "sent" in record["data"]
            finally:
                await supervisor.down()
            # Teardown reaps every process.
            assert all(not h.alive for h in supervisor.agents.values())

        asyncio.run(scenario())

    def test_kill_with_restart_policy_rejoins(self, tmp_path):
        async def scenario() -> None:
            config = fleet_config(
                tmp_path, restart=RestartPolicy(enabled=True, max_restarts=1)
            )
            supervisor = await booted(config)
            try:
                victim = supervisor.live_idents()[-1]
                pid_before = supervisor.agents[victim].pid
                await supervisor.kill(victim)
                # The watcher restarts and rejoins the same identifier.
                deadline = asyncio.get_running_loop().time() + 60.0
                while asyncio.get_running_loop().time() < deadline:
                    handle = supervisor.agents.get(victim)
                    if (
                        handle is not None
                        and handle.alive
                        and handle.state == "joined"
                    ):
                        break
                    await asyncio.sleep(0.25)
                handle = supervisor.agents[victim]
                assert handle.alive and handle.state == "joined"
                assert handle.pid != pid_before
                assert handle.restarts == 1
                assert await supervisor.wait_converged()
            finally:
                await supervisor.down()

        asyncio.run(scenario())

    def test_leave_unknown_agent_raises(self, tmp_path):
        async def scenario() -> None:
            supervisor = await booted(fleet_config(tmp_path))
            try:
                with pytest.raises(FleetError):
                    await supervisor.leave(999999)
            finally:
                await supervisor.down()

        asyncio.run(scenario())


class TestFleetReplay:
    def test_fig9_live_vs_sim_comparison(self, tmp_path):
        """The acceptance loop in miniature: live replay, sim twin, report."""

        async def scenario() -> str:
            supervisor = await booted(fleet_config(tmp_path))
            try:
                members = supervisor.live_idents()
                plan = plan_fleet_fig9(seed=2007, n_nodes=len(members), n_slots=2)
                live = await replay_fig9_live(supervisor, plan)
                sim = run_fig9_sim_twin(members, plan, supervisor.space)
                report = compare_fig9(live, sim)
                return report.render_text() if not report.passed else ""
            finally:
                await supervisor.down()

        failure = asyncio.run(scenario())
        assert not failure, failure

"""Integration: aggregation robustness under UDP-style message loss.

The prototype rides on UDP — datagrams vanish. Continuous mode tolerates
loss naturally (the next push replaces the lost one within an interval);
these tests quantify that on a lossy simulated network.
"""

import pytest

from repro.chord.idspace import IdSpace
from repro.chord.ring import StaticRing
from repro.core.builder import build_balanced_dat
from repro.core.service import DatNodeService, StandaloneDatHost
from repro.sim.latency import ConstantLatency
from repro.sim.simnet import SimTransport


def build_lossy_overlay(n: int, loss_rate: float, seed: int = 1):
    space = IdSpace(12)
    ring = StaticRing(space, [(i * space.size) // n for i in range(n)])
    tables = ring.all_finger_tables()
    transport = SimTransport(
        latency=ConstantLatency(0.002), loss_rate=loss_rate, rng=seed
    )
    key = 0
    tree = build_balanced_dat(ring, key, tables=tables)
    values = {node: float(node % 7 + 1) for node in ring}
    services = {}
    for node in ring:
        host = StandaloneDatHost(node, space, transport)
        services[node] = DatNodeService(
            host,
            finger_provider=lambda node=node: tables[node],
            value_provider=lambda node=node: values[node],
            scheme="balanced",
            d0_provider=lambda: space.size / n,
        )
    return ring, transport, tree, services, values


class TestContinuousUnderLoss:
    @pytest.mark.parametrize("loss_rate", [0.05, 0.15])
    def test_estimate_stays_near_truth(self, loss_rate):
        ring, transport, tree, services, values = build_lossy_overlay(
            32, loss_rate
        )
        truth = sum(values.values())
        for service in services.values():
            service.start_continuous(0, tree.root, "sum", interval=0.5)
        transport.run(until=30.0)
        # Sample the root estimate over the last 10 virtual seconds.
        samples = []
        for _ in range(20):
            transport.run(until=transport.now() + 0.5)
            estimate = services[tree.root].root_estimate(0)
            if estimate is not None:
                samples.append(estimate)
        assert samples, "root never produced an estimate"
        worst = max(abs(s - truth) / truth for s in samples)
        # Each lost push blanks one subtree for <= stale_after intervals;
        # with 15% loss the estimate stays within a modest band.
        assert worst < 0.6
        mean_error = sum(abs(s - truth) / truth for s in samples) / len(samples)
        assert mean_error < 0.25

    def test_zero_loss_is_exact(self):
        ring, transport, tree, services, values = build_lossy_overlay(16, 0.0)
        for service in services.values():
            service.start_continuous(0, tree.root, "sum", interval=0.5)
        transport.run(until=10.0)
        assert services[tree.root].root_estimate(0) == pytest.approx(
            sum(values.values())
        )

    def test_loss_hurts_monotonically(self):
        def mean_error(loss_rate: float) -> float:
            ring, transport, tree, services, values = build_lossy_overlay(
                24, loss_rate, seed=3
            )
            truth = sum(values.values())
            for service in services.values():
                service.start_continuous(0, tree.root, "sum", interval=0.5)
            transport.run(until=20.0)
            errors = []
            for _ in range(20):
                transport.run(until=transport.now() + 0.5)
                estimate = services[tree.root].root_estimate(0)
                if estimate is not None:
                    errors.append(abs(estimate - truth) / truth)
            return sum(errors) / len(errors)

        assert mean_error(0.0) <= mean_error(0.3) + 1e-9

"""Integration: a real UDP cluster on localhost (the paper's RPC setup).

Mirrors the prototype's cluster deployment at reduced scale: protocol nodes
exchanging genuine datagrams over 127.0.0.1, stabilizing in wall-clock
time, then aggregating over the live overlay. Kept small (8 nodes, short
timers) so the test finishes in a few seconds.
"""

import time

import pytest

from repro.chord.idspace import IdSpace
from repro.chord.node import ChordConfig, ChordProtocolNode
from repro.core.service import DatNodeService
from repro.sim.udprpc import UdpRpcTransport


def wait_until(predicate, timeout=20.0, interval=0.05) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


@pytest.fixture(scope="module")
def cluster():
    space = IdSpace(12)
    transport = UdpRpcTransport()
    config = ChordConfig(
        stabilize_interval=0.05,
        fix_fingers_interval=0.02,
        check_predecessor_interval=0.1,
        rpc_timeout=0.5,
    )
    idents = [(i * space.size) // 8 + 3 for i in range(8)]
    nodes: dict[int, ChordProtocolNode] = {}
    first = ChordProtocolNode(idents[0], space, transport, config)
    first.create()
    nodes[idents[0]] = first
    for ident in idents[1:]:
        node = ChordProtocolNode(ident, space, transport, config)
        node.join(idents[0])
        nodes[ident] = node
        time.sleep(0.05)

    from repro.chord.ring import StaticRing

    ideal = StaticRing(space, idents)

    def converged() -> bool:
        return all(
            node.successor == ideal.successor_of_node(ident)
            and node.predecessor == ideal.predecessor_of_node(ident)
            for ident, node in nodes.items()
        )

    assert wait_until(converged), "UDP overlay failed to stabilize"

    def fingers_done() -> bool:
        return all(
            node.finger_table().entries == ideal.finger_entries(ident)
            for ident, node in nodes.items()
        )

    for node in nodes.values():
        node.fix_all_fingers()
    assert wait_until(fingers_done), "UDP fingers failed to converge"

    yield space, transport, nodes, ideal
    for node in nodes.values():
        node.stop_maintenance()
    transport.close()


class TestUdpOverlay:
    def test_ring_converged(self, cluster):
        space, _transport, nodes, ideal = cluster
        for ident, node in nodes.items():
            assert node.successor == ideal.successor_of_node(ident)

    def test_lookup_over_udp(self, cluster):
        space, _transport, nodes, ideal = cluster
        origin = next(iter(nodes.values()))
        results: list[int] = []
        target_key = (ideal.nodes[5] - 1) % space.size
        origin.lookup(target_key, lambda result, path: results.append(result))
        assert wait_until(lambda: bool(results))
        assert results[0] == ideal.successor(target_key)

    def test_continuous_aggregation_over_udp(self, cluster):
        space, _transport, nodes, ideal = cluster
        key = 100
        root = ideal.successor(key)
        n = len(nodes)
        values = {ident: float(i + 1) for i, ident in enumerate(sorted(nodes))}
        services = {}
        for ident, node in nodes.items():
            services[ident] = DatNodeService(
                node,
                finger_provider=node.finger_table,
                value_provider=lambda ident=ident: values[ident],
                scheme="balanced",
                d0_provider=lambda: space.size / n,
            )
        for service in services.values():
            service.start_continuous(key, root, "sum", interval=0.05)
        expected = sum(values.values())
        assert wait_until(
            lambda: services[root].root_estimate(key) == pytest.approx(expected),
            timeout=15.0,
        )
        for service in services.values():
            service.stop_continuous(key)

"""Cross-substrate equivalence: the same layers over DES and real UDP.

The paper's prototype claim (Sec. 5.1): the RPC-based and simulator-based
setups share the Chord/DAT layers and "indeed have the consistent results
for the metrics we measured". These tests run identical small scenarios on
both transports and require identical outcomes.
"""

import time

import pytest

from repro.chord.broadcast import BroadcastService
from repro.chord.idspace import IdSpace
from repro.chord.ring import StaticRing
from repro.core.builder import build_balanced_dat
from repro.core.service import DatNodeService, StandaloneDatHost
from repro.sim.latency import ConstantLatency
from repro.sim.simnet import SimTransport
from repro.sim.udprpc import UdpRpcTransport


def wait_until(predicate, timeout=10.0, interval=0.02) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


N = 12
SPACE = IdSpace(12)
RING = StaticRing(SPACE, [(i * SPACE.size) // N for i in range(N)])
TABLES = RING.all_finger_tables()
KEY = 0
VALUES = {node: float(node % 5 + 1) for node in RING}


def deploy_dat(transport):
    services = {}
    for node in RING:
        host = StandaloneDatHost(node, SPACE, transport)
        services[node] = DatNodeService(
            host,
            finger_provider=lambda node=node: TABLES[node],
            value_provider=lambda node=node: VALUES[node],
            scheme="balanced",
            d0_provider=lambda: SPACE.size / N,
            predecessor_provider=lambda node=node: RING.predecessor_of_node(node),
        )
    return services


class TestContinuousAcrossSubstrates:
    def test_same_estimate_on_both_transports(self):
        root = RING.successor(KEY)
        truth = sum(VALUES.values())

        # Simulator run.
        sim = SimTransport(latency=ConstantLatency(0.001))
        sim_services = deploy_dat(sim)
        for service in sim_services.values():
            service.start_continuous(KEY, root, "sum", interval=0.1)
        sim.run(until=5.0)
        sim_estimate = sim_services[root].root_estimate(KEY)

        # Real UDP run.
        with UdpRpcTransport() as udp:
            udp_services = deploy_dat(udp)
            for service in udp_services.values():
                service.start_continuous(KEY, root, "sum", interval=0.05)
            assert wait_until(
                lambda: udp_services[root].root_estimate(KEY) == truth
            )
            udp_estimate = udp_services[root].root_estimate(KEY)
            for service in udp_services.values():
                service.stop_continuous(KEY)

        assert sim_estimate == udp_estimate == truth


class TestBroadcastAcrossSubstrates:
    def deploy_broadcast(self, transport):
        services = {}
        for node in RING:
            host = StandaloneDatHost(node, SPACE, transport)
            services[node] = BroadcastService(
                host, finger_provider=lambda node=node: TABLES[node]
            )
        return services

    def test_same_coverage_and_message_count(self):
        initiator = RING.nodes[2]

        sim = SimTransport(latency=ConstantLatency(0.001))
        sim_services = self.deploy_broadcast(sim)
        sim.stats.reset()
        sim_id = sim_services[initiator].broadcast("cfg")
        sim.run(until=5.0)
        assert all(s.received(sim_id) for s in sim_services.values())
        sim_messages = sim.stats.by_kind().get("bcast", 0)

        with UdpRpcTransport() as udp:
            udp_services = self.deploy_broadcast(udp)
            udp_id = udp_services[initiator].broadcast("cfg")
            assert wait_until(
                lambda: all(s.received(udp_id) for s in udp_services.values())
            )
        assert sim_messages == N - 1  # and UDP delivered to everyone too

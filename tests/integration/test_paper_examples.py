"""Integration tests pinning the paper's worked examples exactly.

These are the strongest regression anchors in the suite: the 16-node 4-bit
overlay of Figs. 2 and 5, checked edge for edge against the published trees
(with the two documented errata — see DESIGN.md Sec. 5).
"""

import pytest

from repro.chord.idspace import IdSpace
from repro.chord.ring import StaticRing
from repro.chord.routing import finger_route
from repro.core.analysis import compare_measured_to_theory
from repro.core.builder import build_balanced_dat, build_basic_dat
from repro.core.limiting import finger_limit


@pytest.fixture(scope="module")
def ring() -> StaticRing:
    return StaticRing(IdSpace(4), range(16))


class TestFig2BasicDat:
    def test_root_children(self, ring):
        tree = build_basic_dat(ring, key=0)
        assert tree.children(0) == [8, 12, 14, 15]

    def test_finger_route_from_n1(self, ring):
        assert finger_route(ring, 1, 0).path == (1, 9, 13, 15, 0)

    def test_tree_path_equals_finger_route(self, ring):
        # Sec. 3.2: "each finger route towards N0 corresponds to the path
        # from Ni to the root in the basic DAT" — for every node.
        tree = build_basic_dat(ring, key=0)
        for node in ring:
            assert tuple(tree.path_to_root(node)) == finger_route(ring, node, 0).path

    def test_full_parent_map(self, ring):
        tree = build_basic_dat(ring, key=0)
        expected = {
            1: 9, 2: 10, 3: 11, 4: 12, 5: 13, 6: 14, 7: 15,
            8: 0, 9: 13, 10: 14, 11: 15, 12: 0, 13: 15, 14: 0, 15: 0,
        }
        assert tree.parent == expected

    def test_branching_matches_closed_form(self, ring):
        tree = build_basic_dat(ring, key=0)
        for node, (measured, predicted) in compare_measured_to_theory(
            tree, bits=4
        ).items():
            assert measured == predicted, node

    def test_height_is_log_n(self, ring):
        assert build_basic_dat(ring, key=0).height == 4


class TestFig5BalancedDat:
    def test_limiting_function_at_n8(self, ring):
        # Sec. 3.4 worked numbers: x = 8, g(x) = ceil(log2(10/3)) = 2.
        assert finger_limit(8, 1) == 2

    def test_n8_rerouted_to_n12(self, ring):
        # The paper's prose says "N1" but N1 overshoots the root; the math
        # (and the balanced tree) give N12 (see DESIGN.md errata).
        tree = build_balanced_dat(ring, key=0)
        assert tree.parent[8] == 12

    def test_max_branching_two(self, ring):
        tree = build_balanced_dat(ring, key=0)
        assert tree.stats().max_branching == 2

    def test_root_children_are_inbound_fingers(self, ring):
        # Sec. 3.5: children of i are its j-th and j+1-th inbound fingers;
        # for the root these are N14 (= 0 - 2^1) and N15 (= 0 - 2^0).
        tree = build_balanced_dat(ring, key=0)
        assert tree.children(0) == [14, 15]

    def test_height_log_n(self, ring):
        assert build_balanced_dat(ring, key=0).height <= 4

    def test_every_internal_node_at_most_two_children(self, ring):
        tree = build_balanced_dat(ring, key=0)
        for node in tree.internal_nodes():
            assert tree.branching_factor(node) <= 2

    def test_proof_cases_for_all_nodes(self, ring):
        # Sec. 3.5 case analysis: the children of node i are exactly
        # i - 2^{j-1} and i - 2^j (mod 16) where j = ceil(log2(d+2)),
        # restricted to existing nodes closer to the root's far side.
        from repro.util.bits import ceil_log2

        tree = build_balanced_dat(ring, key=0)
        space = ring.space
        for node in ring:
            d = space.cw(node, 0)
            if d == 0:
                continue
            children = set(tree.children(node))
            j = ceil_log2(d + 2)
            allowed = {space.wrap(node - (1 << (j - 1))), space.wrap(node - (1 << j))}
            assert children <= allowed, (node, children, allowed)


class TestAggregationOverPaperTree:
    def test_sum_up_balanced_tree(self, ring):
        # End-to-end bottom-up merge over the Fig. 5 tree.
        from repro.core.aggregates import get_aggregate

        tree = build_balanced_dat(ring, key=0)
        agg = get_aggregate("sum")
        depths = tree.depths()
        states = {node: agg.lift(float(node)) for node in tree.nodes()}
        for node in sorted(tree.parent, key=lambda v: depths[v], reverse=True):
            states[tree.parent[node]] = agg.merge(
                states[tree.parent[node]], states[node]
            )
        assert agg.finalize(states[0]) == sum(range(16))

"""Property-based tests for the finger limiting function g(x)."""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.limiting import FingerLimiter, ceil_log2_fraction, finger_limit

POSITIVE_FRACTIONS = st.fractions(
    min_value=Fraction(1, 10**6), max_value=Fraction(10**9)
)


class TestCeilLog2Fraction:
    @given(POSITIVE_FRACTIONS)
    def test_defining_inequality(self, value):
        k = ceil_log2_fraction(value)
        assert Fraction(2) ** k >= min(value, max(value, 1)) or value <= 1
        if value > 1:
            assert Fraction(2) ** k >= value
            assert Fraction(2) ** (k - 1) < value

    @given(st.integers(min_value=0, max_value=200))
    def test_matches_integer_ceil_log2(self, exponent):
        from repro.util.bits import ceil_log2

        value = (1 << exponent) + 1
        assert ceil_log2_fraction(Fraction(value)) == ceil_log2(value)


class TestFingerLimit:
    @given(
        st.integers(min_value=0, max_value=10**9),
        st.fractions(min_value=Fraction(1, 4), max_value=Fraction(10**6)),
    )
    def test_non_negative(self, x, d0):
        assert finger_limit(x, d0) >= 0

    @given(
        st.integers(min_value=0, max_value=10**6),
        st.fractions(min_value=Fraction(1, 4), max_value=Fraction(100)),
    )
    def test_monotone_in_x(self, x, d0):
        assert finger_limit(x, d0) <= finger_limit(x + 1, d0)

    @given(st.integers(min_value=1, max_value=10**6))
    def test_limit_allows_progress(self, x):
        # 2^{g(x)} >= (x+2)/3 > x/4 for d0=1: the allowed jump shrinks at
        # most geometrically, so routes stay O(log) even when limited.
        g = finger_limit(x, 1)
        assert (1 << g) * 4 >= x

    @given(st.integers(min_value=1, max_value=10**6))
    def test_limit_never_reaches_past_root(self, x):
        # The largest allowed finger offset never exceeds the distance to
        # the root by more than the derivation's slack factor.
        g = finger_limit(x, 1)
        assert (1 << g) <= max(2 * (x + 2) // 3, 1)


class TestFingerLimiterConsistency:
    @given(
        st.integers(min_value=4, max_value=24),
        st.integers(min_value=1, max_value=512),
        st.integers(min_value=0, max_value=10**6),
    )
    def test_for_ring_matches_manual_fraction(self, bits, n, x):
        limiter = FingerLimiter.for_ring(bits, n)
        assert limiter(x) == finger_limit(x, Fraction(1 << bits, n))

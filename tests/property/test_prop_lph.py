"""Property-based tests for locality-preserving hashing (MAAN's foundation)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chord.hashing import LocalityPreservingHash
from repro.chord.idspace import IdSpace


@st.composite
def hash_and_values(draw, count: int = 2):
    bits = draw(st.integers(min_value=8, max_value=32))
    low = draw(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False))
    width = draw(st.floats(min_value=1e-3, max_value=1e6, allow_nan=False))
    h = LocalityPreservingHash(IdSpace(bits), low=low, high=low + width)
    values = [
        draw(st.floats(min_value=low, max_value=low + width, allow_nan=False))
        for _ in range(count)
    ]
    return (h, *values)


class TestMonotonicity:
    @given(hash_and_values(2))
    def test_order_preserved(self, args):
        h, a, b = args
        if a <= b:
            assert h(a) <= h(b)
        else:
            assert h(a) >= h(b)

    @given(hash_and_values(1))
    def test_image_in_space(self, args):
        h, v = args
        assert 0 <= h(v) <= h.space.max_id

    @given(hash_and_values(1))
    def test_clamping_is_boundary_image(self, args):
        h, _ = args
        assert h(h.low - 1e9) == h(h.low)
        assert h(h.high + 1e9) == h(h.high)


class TestRangeContiguity:
    @given(hash_and_values(3))
    def test_value_between_hashes_between(self, args):
        # The MAAN range-query guarantee: if l <= v <= u then
        # H(l) <= H(v) <= H(u), so v's record lies on the queried arc.
        h, a, b, c = args
        lo, mid, hi = sorted((a, b, c))
        assert h(lo) <= h(mid) <= h(hi)

"""Property-based tests: aggregate merging must be order-insensitive.

DAT correctness (Sec. 2.3) rests on ``f`` being computable by recursive
merging in *any* tree shape — so merge must be associative and commutative,
and tree-merged results must equal flat aggregation.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregates import available_aggregates, get_aggregate

VALUES = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=30,
)


def make(name: str):
    if name == "histogram":
        return get_aggregate(name, low=-1e6, high=1e6, n_bins=8)
    if name == "quantile":
        return get_aggregate(name, q=0.5, low=-1e6, high=1e6, n_bins=32)
    if name == "topk":
        return get_aggregate(name, k=5)
    return get_aggregate(name)


def approx_equal(a, b) -> bool:
    if isinstance(a, tuple):
        return len(a) == len(b) and all(approx_equal(x, y) for x, y in zip(a, b))
    if isinstance(a, float) or isinstance(b, float):
        return math.isclose(float(a), float(b), rel_tol=1e-6, abs_tol=1e-6)
    return a == b


@pytest.mark.parametrize("name", available_aggregates())
class TestMergeLaws:
    @settings(max_examples=30)
    @given(values=VALUES)
    def test_commutative(self, name, values):
        agg = make(name)
        forward = agg.finalize(agg.merge_all([agg.lift(v) for v in values]))
        backward = agg.finalize(agg.merge_all([agg.lift(v) for v in reversed(values)]))
        assert approx_equal(forward, backward)

    @settings(max_examples=30)
    @given(values=VALUES, data=st.data())
    def test_associative_random_split(self, name, values, data):
        # Merge (left-block, right-block) equals flat merge.
        agg = make(name)
        split = data.draw(st.integers(min_value=0, max_value=len(values)))
        flat = agg.merge_all([agg.lift(v) for v in values])
        if 0 < split < len(values):
            left = agg.merge_all([agg.lift(v) for v in values[:split]])
            right = agg.merge_all([agg.lift(v) for v in values[split:]])
            blocked = agg.merge(left, right)
            assert approx_equal(agg.finalize(flat), agg.finalize(blocked))

    @settings(max_examples=20)
    @given(values=VALUES, data=st.data())
    def test_tree_merge_matches_flat(self, name, values, data):
        # Simulate an arbitrary binary merge tree via random pairwise folds.
        agg = make(name)
        states = [agg.lift(v) for v in values]
        flat = agg.finalize(agg.merge_all(states))
        pool = list(states)
        while len(pool) > 1:
            i = data.draw(st.integers(min_value=0, max_value=len(pool) - 2))
            merged = agg.merge(pool[i], pool[i + 1])
            pool[i : i + 2] = [merged]
        assert approx_equal(flat, agg.finalize(pool[0]))


class TestSemanticAnchors:
    @settings(max_examples=30)
    @given(values=VALUES)
    def test_sum_and_count_and_avg_consistent(self, values):
        total = get_aggregate("sum").aggregate(values)
        count = get_aggregate("count").aggregate(values)
        average = get_aggregate("avg").aggregate(values)
        assert count == len(values)
        assert math.isclose(average, total / count, rel_tol=1e-9, abs_tol=1e-6)

    @settings(max_examples=30)
    @given(values=VALUES)
    def test_min_max_bound_everything(self, values):
        lo = get_aggregate("min").aggregate(values)
        hi = get_aggregate("max").aggregate(values)
        assert lo <= hi
        assert all(lo <= v <= hi for v in values)

    @settings(max_examples=30)
    @given(values=VALUES)
    def test_histogram_mass_conservation(self, values):
        hist = get_aggregate("histogram", low=-1e6, high=1e6, n_bins=7)
        counts = hist.aggregate(values)
        assert sum(counts) == len(values)

    @settings(max_examples=30)
    @given(values=VALUES)
    def test_topk_is_sorted_prefix(self, values):
        top = get_aggregate("topk", k=4).aggregate(values)
        expected = tuple(sorted(values, reverse=True)[:4])
        assert top == expected

    @settings(max_examples=30)
    @given(values=VALUES)
    def test_std_nonnegative_and_zero_iff_constant(self, values):
        std = get_aggregate("std").aggregate(values)
        assert std >= 0
        if len(set(values)) == 1:
            assert std == pytest.approx(0.0, abs=1e-9)

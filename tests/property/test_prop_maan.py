"""Property-based tests: MAAN resolution equals brute-force filtering.

For any resource population and any range query, the DHT-resolved result
must equal a straight scan over all resources — placement and arc-walk
logic can't lose or duplicate anything.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chord.idgen import UniformIdAssigner
from repro.chord.idspace import IdSpace
from repro.maan.attrs import AttributeSchema, Resource
from repro.maan.network import MaanNetwork
from repro.maan.query import MultiAttributeQuery, RangeQuery

SCHEMAS = {
    "cpu": AttributeSchema("cpu", low=0.0, high=100.0),
    "mem": AttributeSchema("mem", low=0.0, high=64.0),
}


@st.composite
def populations(draw):
    count = draw(st.integers(min_value=0, max_value=25))
    resources = []
    for index in range(count):
        resources.append(
            Resource(
                f"r-{index}",
                {
                    "cpu": draw(
                        st.floats(min_value=0, max_value=100, allow_nan=False)
                    ),
                    "mem": draw(
                        st.floats(min_value=0, max_value=64, allow_nan=False)
                    ),
                },
            )
        )
    return resources


@st.composite
def cpu_ranges(draw):
    low = draw(st.floats(min_value=0, max_value=100, allow_nan=False))
    high = draw(st.floats(min_value=0, max_value=100, allow_nan=False))
    if high < low:
        low, high = high, low
    return RangeQuery("cpu", low, high)


def build_network() -> MaanNetwork:
    ring = UniformIdAssigner().build_ring(IdSpace(16), 24)
    return MaanNetwork(ring, SCHEMAS)


class TestResolutionEqualsBruteForce:
    @settings(max_examples=30, deadline=None)
    @given(populations(), cpu_ranges())
    def test_range_query_exact(self, resources, query):
        network = build_network()
        for resource in resources:
            network.register(resource)
        result = network.range_query(query)
        expected = {r.resource_id for r in resources if query.matches(r)}
        assert result.resource_ids() == expected

    @settings(max_examples=30, deadline=None)
    @given(populations(), cpu_ranges(), st.floats(min_value=0, max_value=64))
    def test_multi_attribute_exact(self, resources, cpu_query, mem_low):
        network = build_network()
        for resource in resources:
            network.register(resource)
        query = MultiAttributeQuery.of(
            cpu_query, RangeQuery("mem", mem_low, 64.0)
        )
        result = network.multi_attribute_query(query)
        expected = {r.resource_id for r in resources if query.matches(r)}
        assert result.resource_ids() == expected

    @settings(max_examples=20, deadline=None)
    @given(populations())
    def test_deregistration_leaves_nothing(self, resources):
        network = build_network()
        for resource in resources:
            network.register(resource)
        for resource in resources:
            network.deregister(resource)
        assert network.total_records() == 0

    @settings(max_examples=20, deadline=None)
    @given(populations())
    def test_record_count_invariant(self, resources):
        network = build_network()
        for resource in resources:
            network.register(resource)
        assert network.total_records() == len(resources) * len(SCHEMAS)

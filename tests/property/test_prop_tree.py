"""Property-based tests for DAT structural invariants (paper Sec. 3)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chord.idspace import IdSpace
from repro.chord.ring import StaticRing
from repro.core.builder import build_balanced_dat, build_basic_dat
from repro.util.bits import ceil_log2, is_power_of_two


@st.composite
def ring_and_key(draw, min_nodes: int = 2, max_nodes: int = 48):
    bits = draw(st.integers(min_value=8, max_value=20))
    space = IdSpace(bits)
    count = draw(st.integers(min_value=min_nodes, max_value=max_nodes))
    idents = draw(
        st.sets(
            st.integers(min_value=0, max_value=space.max_id),
            min_size=count,
            max_size=count,
        )
    )
    key = draw(st.integers(min_value=0, max_value=space.max_id))
    return StaticRing(space, idents), key


@st.composite
def uniform_ring_and_key(draw):
    exponent = draw(st.integers(min_value=2, max_value=7))
    n = 1 << exponent
    bits = draw(st.integers(min_value=exponent, max_value=exponent + 10))
    space = IdSpace(bits)
    ring = StaticRing(space, [(i * space.size) // n for i in range(n)])
    key = draw(st.integers(min_value=0, max_value=space.max_id))
    return ring, key


class TestUniversalInvariants:
    """Hold for BOTH schemes on ANY ring (paper Sec. 3.2 properties)."""

    @settings(max_examples=40)
    @given(ring_and_key())
    def test_basic_tree_well_formed(self, args):
        ring, key = args
        tree = build_basic_dat(ring, key)
        tree.validate()
        assert tree.root == ring.successor(key)
        assert set(tree.nodes()) == set(ring)

    @settings(max_examples=40)
    @given(ring_and_key())
    def test_balanced_tree_well_formed(self, args):
        ring, key = args
        tree = build_balanced_dat(ring, key)
        tree.validate()
        assert tree.root == ring.successor(key)
        assert set(tree.nodes()) == set(ring)

    @settings(max_examples=40)
    @given(ring_and_key())
    def test_parents_strictly_approach_root(self, args):
        # Loop-freedom argument: every hop strictly reduces cw-distance to
        # the root, for both schemes.
        ring, key = args
        space = ring.space
        for build in (build_basic_dat, build_balanced_dat):
            tree = build(ring, key)
            for child, parent in tree.parent.items():
                assert space.cw(parent, tree.root) < space.cw(child, tree.root)

    @settings(max_examples=40)
    @given(ring_and_key())
    def test_message_load_conservation(self, args):
        ring, key = args
        tree = build_balanced_dat(ring, key)
        loads = tree.message_loads()
        assert sum(loads.values()) == 2 * (len(ring) - 1)

    @settings(max_examples=30)
    @given(ring_and_key())
    def test_balanced_never_wider_than_basic_at_root(self, args):
        # The balanced scheme exists to cap the root's fan-in.
        ring, key = args
        basic = build_basic_dat(ring, key)
        balanced = build_balanced_dat(ring, key)
        assert balanced.branching_factor(balanced.root) <= max(
            basic.branching_factor(basic.root), 2
        )


class TestBalancedTheorems:
    """The Sec. 3.5 theorems, exact on evenly spaced power-of-two rings."""

    @settings(max_examples=40)
    @given(uniform_ring_and_key())
    def test_branching_at_most_two(self, args):
        ring, key = args
        tree = build_balanced_dat(ring, key)
        assert tree.stats().max_branching <= 2

    @settings(max_examples=40)
    @given(uniform_ring_and_key())
    def test_height_at_most_log_n(self, args):
        ring, key = args
        tree = build_balanced_dat(ring, key)
        assert tree.height <= ceil_log2(len(ring))

    @settings(max_examples=40)
    @given(uniform_ring_and_key())
    def test_basic_root_branching_is_log_n(self, args):
        ring, key = args
        tree = build_basic_dat(ring, key)
        assert tree.branching_factor(tree.root) == ceil_log2(len(ring))


class TestSubtreeLaws:
    @settings(max_examples=30)
    @given(ring_and_key())
    def test_subtree_sizes_consistent(self, args):
        ring, key = args
        tree = build_balanced_dat(ring, key)
        sizes = tree.subtree_sizes()
        assert sizes[tree.root] == tree.n_nodes
        children = tree.children_map()
        for node, kids in children.items():
            assert sizes[node] == 1 + sum(sizes[k] for k in kids)

    @settings(max_examples=30)
    @given(ring_and_key())
    def test_depth_matches_path_length(self, args):
        ring, key = args
        tree = build_basic_dat(ring, key)
        for node in list(tree.parent)[:10]:
            assert tree.depth(node) == len(tree.path_to_root(node)) - 1

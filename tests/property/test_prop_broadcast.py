"""Property-based tests for the Chord broadcast primitive."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chord.broadcast import broadcast_tree
from repro.chord.idspace import IdSpace
from repro.chord.ring import StaticRing
from repro.util.bits import ceil_log2


@st.composite
def ring_and_initiator(draw):
    bits = draw(st.integers(min_value=6, max_value=18))
    space = IdSpace(bits)
    count = draw(st.integers(min_value=1, max_value=40))
    idents = draw(
        st.sets(
            st.integers(min_value=0, max_value=space.max_id),
            min_size=count,
            max_size=count,
        )
    )
    ring = StaticRing(space, idents)
    initiator = draw(st.sampled_from(ring.nodes))
    return ring, initiator


class TestBroadcastProperties:
    @settings(max_examples=50)
    @given(ring_and_initiator())
    def test_exactly_once_coverage(self, args):
        # Every node appears exactly once in the dissemination tree.
        ring, initiator = args
        tree = broadcast_tree(ring, initiator)
        tree.validate()
        assert set(tree.nodes()) == set(ring)
        assert tree.n_nodes == len(ring)

    @settings(max_examples=50)
    @given(ring_and_initiator())
    def test_message_count_is_n_minus_one(self, args):
        ring, initiator = args
        tree = broadcast_tree(ring, initiator)
        assert len(tree.parent) == len(ring) - 1

    @settings(max_examples=50)
    @given(ring_and_initiator())
    def test_depth_logarithmic(self, args):
        # Finger-range dissemination: depth bounded by ~2 log2(n) + slack.
        ring, initiator = args
        tree = broadcast_tree(ring, initiator)
        bound = 2 * ceil_log2(max(len(ring), 2)) + 2
        assert tree.height <= bound

    @settings(max_examples=50)
    @given(ring_and_initiator())
    def test_children_stay_in_delegated_arc(self, args):
        # Every child lies clockwise between its parent and the initiator
        # (no delegation ever reaches "past" the responsibility boundary
        # back around the ring to the initiator).
        ring, initiator = args
        tree = broadcast_tree(ring, initiator)
        space = ring.space
        for child, parent in tree.parent.items():
            assert space.cw(initiator, child) >= space.cw(initiator, parent)


class TestFastbuildHypothesis:
    @settings(max_examples=40)
    @given(ring_and_initiator(), st.integers(min_value=0, max_value=2**18 - 1))
    def test_fast_equals_scalar_on_random_rings(self, args, raw_key):
        from repro.chord.fastbuild import fast_balanced_parents, fast_basic_parents
        from repro.core.builder import build_balanced_dat, build_basic_dat

        ring, _initiator = args
        if len(ring) < 2:
            return
        key = raw_key % ring.space.size
        assert fast_basic_parents(ring, key) == build_basic_dat(ring, key).parent
        assert (
            fast_balanced_parents(ring, key)
            == build_balanced_dat(ring, key).parent
        )

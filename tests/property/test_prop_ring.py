"""Property-based tests for ring invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chord.idspace import IdSpace
from repro.chord.ring import StaticRing


@st.composite
def rings(draw, min_nodes: int = 1, max_nodes: int = 40):
    bits = draw(st.integers(min_value=8, max_value=20))
    space = IdSpace(bits)
    count = draw(st.integers(min_value=min_nodes, max_value=max_nodes))
    idents = draw(
        st.sets(
            st.integers(min_value=0, max_value=space.max_id),
            min_size=count,
            max_size=count,
        )
    )
    return StaticRing(space, idents)


class TestConsistentHashingLaws:
    @given(rings(), st.data())
    def test_successor_is_first_at_or_after(self, ring, data):
        key = data.draw(st.integers(min_value=0, max_value=ring.space.max_id))
        owner = ring.successor(key)
        # No member lies strictly between key and owner (clockwise).
        for node in ring:
            assert not ring.space.in_open(node, key, owner) or owner == key

    @given(rings(min_nodes=2))
    def test_successor_predecessor_inverse(self, ring):
        for node in ring:
            assert ring.predecessor_of_node(ring.successor_of_node(node)) == node
            assert ring.successor_of_node(ring.predecessor_of_node(node)) == node

    @given(rings())
    def test_successor_of_member_is_itself(self, ring):
        for node in ring:
            assert ring.successor(node) == node

    @given(rings())
    def test_gaps_partition_space(self, ring):
        assert sum(ring.gaps().values()) == ring.space.size

    @given(rings(min_nodes=2))
    def test_walking_successors_visits_everyone_once(self, ring):
        start = ring.nodes[0]
        seen = [start]
        current = start
        for _ in range(len(ring) - 1):
            current = ring.successor_of_node(current)
            seen.append(current)
        assert sorted(seen) == ring.nodes
        assert ring.successor_of_node(current) == start


class TestFingerLaws:
    @given(rings())
    def test_fingers_are_members_and_ordered(self, ring):
        space = ring.space
        for node in list(ring)[:10]:
            entries = ring.finger_entries(node)
            distances = [space.cw(node, entry) or space.size for entry in entries]
            for entry in entries:
                assert entry in ring
            # Finger distance is non-decreasing in the slot index.
            assert distances == sorted(distances)

    @given(rings())
    def test_finger_j_covers_offset(self, ring):
        # Finger j is at clockwise distance >= 2^j (or the owner itself on
        # a 1-ring).
        space = ring.space
        node = ring.nodes[0]
        for j, entry in enumerate(ring.finger_entries(node)):
            if entry != node:
                assert space.cw(node, entry) >= 1 << j

"""Property-based protocol tests: stabilization converges from any join order.

Bounded (small rings, few examples) because each case runs a discrete-event
simulation; the property is the crucial one — the overlay the DAT layer
reads always converges to the ideal ring regardless of membership order.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chord.idspace import IdSpace
from repro.chord.network import ChordNetwork
from repro.chord.node import ChordConfig
from repro.sim.latency import ConstantLatency
from repro.sim.simnet import SimTransport


@st.composite
def join_sequences(draw):
    space = IdSpace(10)
    count = draw(st.integers(min_value=2, max_value=8))
    idents = draw(
        st.lists(
            st.integers(min_value=0, max_value=space.max_id),
            min_size=count,
            max_size=count,
            unique=True,
        )
    )
    return space, idents


def build_network(space: IdSpace) -> ChordNetwork:
    transport = SimTransport(latency=ConstantLatency(0.005))
    config = ChordConfig(stabilize_interval=0.25, fix_fingers_interval=0.05)
    return ChordNetwork(space, transport, config)


class TestConvergenceProperties:
    @settings(max_examples=15, deadline=None)
    @given(join_sequences())
    def test_any_join_order_converges(self, args):
        space, idents = args
        network = build_network(space)
        for ident in idents:
            network.add_node(ident)
            network.settle(1.0)
        network.settle_until_converged()
        assert network.is_converged()

    @settings(max_examples=10, deadline=None)
    @given(join_sequences(), st.data())
    def test_converges_after_one_departure(self, args, data):
        space, idents = args
        if len(idents) < 3:
            return
        network = build_network(space)
        for ident in idents:
            network.add_node(ident)
            network.settle(1.0)
        network.settle_until_converged()
        victim = data.draw(st.sampled_from(idents))
        network.remove_node(victim, graceful=True)
        network.settle_until_converged()
        assert victim not in network.nodes
        assert network.is_converged()

    @settings(max_examples=10, deadline=None)
    @given(join_sequences())
    def test_fingers_reach_ideal(self, args):
        space, idents = args
        network = build_network(space)
        for ident in idents:
            network.add_node(ident)
            network.settle(1.0)
        network.settle_until_converged()
        for node in network.nodes.values():
            node.fix_all_fingers()
        network.settle(10.0)
        assert network.finger_convergence_fraction() == 1.0

"""Property-based protocol tests.

Two families share the file: stabilization convergence (the overlay the
DAT layer reads always converges to the ideal ring regardless of
membership order) and the slab equivalence contract (the bulk-simulation
path reproduces the per-node service oracle bit for bit). Bounded (small
rings, few examples) because each case runs a discrete-event simulation.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chord.idgen import make_assigner
from repro.chord.idspace import IdSpace
from repro.chord.network import ChordNetwork
from repro.chord.node import ChordConfig
from repro.core.slab import (
    SLAB_AGGREGATES,
    run_protocol_oracle,
    run_protocol_slab,
)
from repro.sim.latency import ConstantLatency
from repro.sim.messages import reset_msg_ids
from repro.sim.simnet import SimTransport


@st.composite
def join_sequences(draw):
    space = IdSpace(10)
    count = draw(st.integers(min_value=2, max_value=8))
    idents = draw(
        st.lists(
            st.integers(min_value=0, max_value=space.max_id),
            min_size=count,
            max_size=count,
            unique=True,
        )
    )
    return space, idents


def build_network(space: IdSpace) -> ChordNetwork:
    transport = SimTransport(latency=ConstantLatency(0.005))
    config = ChordConfig(stabilize_interval=0.25, fix_fingers_interval=0.05)
    return ChordNetwork(space, transport, config)


class TestConvergenceProperties:
    @settings(max_examples=15, deadline=None)
    @given(join_sequences())
    def test_any_join_order_converges(self, args):
        space, idents = args
        network = build_network(space)
        for ident in idents:
            network.add_node(ident)
            network.settle(1.0)
        network.settle_until_converged()
        assert network.is_converged()

    @settings(max_examples=10, deadline=None)
    @given(join_sequences(), st.data())
    def test_converges_after_one_departure(self, args, data):
        space, idents = args
        if len(idents) < 3:
            return
        network = build_network(space)
        for ident in idents:
            network.add_node(ident)
            network.settle(1.0)
        network.settle_until_converged()
        victim = data.draw(st.sampled_from(idents))
        network.remove_node(victim, graceful=True)
        network.settle_until_converged()
        assert victim not in network.nodes
        assert network.is_converged()

    @settings(max_examples=10, deadline=None)
    @given(join_sequences())
    def test_fingers_reach_ideal(self, args):
        space, idents = args
        network = build_network(space)
        for ident in idents:
            network.add_node(ident)
            network.settle(1.0)
        network.settle_until_converged()
        for node in network.nodes.values():
            node.fix_all_fingers()
        network.settle(10.0)
        assert network.finger_convergence_fraction() == 1.0


# --------------------------------------------------------------------- #
# Slab path == per-node service oracle (the bulk-simulation contract)
# --------------------------------------------------------------------- #


@st.composite
def slab_scenarios(draw):
    bits = draw(st.sampled_from([12, 16, 32]))
    space = IdSpace(bits)
    n = draw(st.integers(min_value=2, max_value=64))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    strategy = draw(st.sampled_from(["random", "probing"]))
    ring = make_assigner(strategy).build_ring(space, n, rng=seed)
    key = draw(st.integers(min_value=0, max_value=space.max_id))
    scheme = draw(st.sampled_from(["basic", "balanced"]))
    aggregate = draw(st.sampled_from(SLAB_AGGREGATES))
    values = np.random.default_rng(seed).uniform(-100.0, 100.0, size=n)
    return ring, key, scheme, aggregate, values


def _run_both(ring, key, scheme, aggregate, values, rounds=6, loss=0.0):
    """Run slab and oracle with identical seeds and message-id streams."""
    reset_msg_ids()
    slab = run_protocol_slab(
        ring, key, rounds, aggregate=aggregate, scheme=scheme,
        values=values, transport=SimTransport(loss_rate=loss, rng=1234),
    )
    reset_msg_ids()
    oracle = run_protocol_oracle(
        ring, key, rounds, aggregate=aggregate, scheme=scheme,
        values=values, transport=SimTransport(loss_rate=loss, rng=1234),
    )
    return slab, oracle


def _assert_identical(slab, oracle):
    """Every protocol-observable quantity, bit for bit."""
    assert slab.root == oracle.root
    assert slab.estimate == oracle.estimate  # exact: same IEEE fold order
    assert slab.pushes_total == oracle.pushes_total
    np.testing.assert_array_equal(slab.ids, oracle.ids)
    np.testing.assert_array_equal(slab.sent, oracle.sent)
    np.testing.assert_array_equal(slab.received, oracle.received)
    np.testing.assert_array_equal(slab.bytes_sent, oracle.bytes_sent)
    np.testing.assert_array_equal(slab.bytes_received, oracle.bytes_received)


class TestSlabOracleEquivalence:
    """run_protocol_slab reproduces run_protocol_oracle exactly.

    Loss-free: all five aggregates, both schemes, random values (float
    merge order matters and must match). Lossy: order-insensitive
    aggregates only (count/min/max) — the oracle's child-dict insertion
    order depends on which pushes survive, which no fixed-order kernel
    can reproduce for float sums.
    """

    @settings(max_examples=20, deadline=None)
    @given(slab_scenarios())
    def test_loss_free_bit_identical(self, scenario):
        ring, key, scheme, aggregate, values = scenario
        slab, oracle = _run_both(ring, key, scheme, aggregate, values)
        _assert_identical(slab, oracle)

    @settings(max_examples=10, deadline=None)
    @given(
        slab_scenarios(),
        st.sampled_from(["count", "min", "max"]),
        st.floats(min_value=0.05, max_value=0.4),
    )
    def test_lossy_order_insensitive_bit_identical(
        self, scenario, aggregate, loss
    ):
        ring, key, scheme, _, values = scenario
        slab, oracle = _run_both(
            ring, key, scheme, aggregate, values, loss=loss
        )
        _assert_identical(slab, oracle)

    def test_converged_sum_at_1024_both_schemes(self):
        # Fixed mid-size anchor: full convergence and exact equality.
        ring = make_assigner("probing").build_ring(IdSpace(32), 1024, rng=2007)
        for scheme in ("basic", "balanced"):
            slab, oracle = _run_both(
                ring, 0xA5A5A5, scheme, "sum",
                np.ones(1024, dtype=np.float64), rounds=24,
            )
            _assert_identical(slab, oracle)
            assert slab.estimate == 1024.0

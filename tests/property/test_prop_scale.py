"""Property tests for the array-native scale pipeline.

The 10^5-10^6-node pipeline (array-backed rings, ``fast_probing_ids``,
:class:`~repro.chord.fastbuild.DatTreeArrays`) claims *identity* with the
object-based reference implementations, not mere statistical agreement.
These tests assert that identity element-wise on randomly drawn
configurations: every parent edge, branching count, depth, message load,
and subtree size equals the object :class:`~repro.core.builder.DatTreeBuilder`
result, for both schemes, random and probing identifier strategies, at
sizes up to 2048.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chord.fastbuild import fast_finger_matrix, fast_tree_arrays
from repro.chord.idgen import ProbingIdAssigner, make_assigner
from repro.chord.idspace import IdSpace
from repro.chord.ring import StaticRing
from repro.chord.ringarray import fast_probing_ids
from repro.core.builder import DatScheme, DatTreeBuilder

SCHEMES = [DatScheme.BASIC, DatScheme.BALANCED]


def _build_ring(id_strategy: str, n_nodes: int, bits: int, seed: int):
    space = IdSpace(bits)
    return make_assigner(id_strategy).build_ring(space, n_nodes, rng=seed)


def _assert_arrays_match_object_tree(ring, key, scheme):
    """Element-wise identity of DatTreeArrays vs the object tree."""
    builder = DatTreeBuilder(ring, scheme=scheme)
    tree = builder.build(key)
    arrays = fast_tree_arrays(ring, key, scheme=scheme)

    nodes = list(arrays.nodes)
    assert nodes == sorted(ring.nodes)
    assert arrays.root == tree.root

    # Parent edges: identical for every non-root node; root self-loops.
    parent_index = arrays.parent_index
    for i, node in enumerate(nodes):
        if node == tree.root:
            assert int(parent_index[i]) == i
        else:
            assert nodes[int(parent_index[i])] == tree.parent[node]

    # Branching counts, depths, message loads, subtree sizes: element-wise.
    branching = tree.branching_factors()
    depths = tree.depths()
    loads = tree.message_loads()
    subtrees = tree.subtree_sizes()
    counts = arrays.branching_counts()
    depth_arr = arrays.depth_array()
    load_arr = arrays.message_load_array()
    size_arr = arrays.subtree_size_array()
    for i, node in enumerate(nodes):
        assert int(counts[i]) == branching[node], node
        assert int(depth_arr[i]) == depths[node], node
        assert int(load_arr[i]) == loads[node], node
        assert int(size_arr[i]) == subtrees[node], node

    # Aggregate stats are equal as values — including the float mean,
    # which both paths compute with the same IEEE operation sequence.
    assert arrays.stats() == tree.stats()
    assert builder.tree_stats(key) == tree.stats()


class TestTreeArraysIdentity:
    @settings(max_examples=25, deadline=None)
    @given(
        n_nodes=st.integers(min_value=2, max_value=160),
        bits=st.integers(min_value=10, max_value=32),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        key=st.integers(min_value=0, max_value=2**32 - 1),
        scheme=st.sampled_from(SCHEMES),
        id_strategy=st.sampled_from(["random", "probing"]),
    )
    def test_random_configurations(
        self, n_nodes, bits, seed, key, scheme, id_strategy
    ):
        ring = _build_ring(id_strategy, n_nodes, bits, seed)
        _assert_arrays_match_object_tree(ring, ring.space.wrap(key), scheme)

    @pytest.mark.parametrize("scheme", SCHEMES)
    @pytest.mark.parametrize("id_strategy", ["random", "probing"])
    def test_at_2048_nodes(self, scheme, id_strategy):
        # The ISSUE's identity bound: n <= 2048, both schemes/strategies.
        ring = _build_ring(id_strategy, 2048, 32, 2007)
        _assert_arrays_match_object_tree(ring, 0xA5A5A5, scheme)

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_shared_matrix_equals_per_call_matrix(self, scheme):
        ring = _build_ring("probing", 300, 24, 11)
        matrix = fast_finger_matrix(ring)
        a = fast_tree_arrays(ring, 1234, scheme=scheme, matrix=matrix)
        b = fast_tree_arrays(ring, 1234, scheme=scheme)
        assert np.array_equal(a.parent_index, b.parent_index)
        assert a.stats() == b.stats()

    def test_single_node_ring(self):
        ring = StaticRing(IdSpace(16), [42])
        arrays = fast_tree_arrays(ring, 7, scheme=DatScheme.BASIC)
        assert arrays.root == 42
        assert arrays.height() == 0
        assert list(arrays.message_load_array()) == [0]
        assert list(arrays.subtree_size_array()) == [1]


class TestFastProbingIdentity:
    @settings(max_examples=20, deadline=None)
    @given(
        n_nodes=st.integers(min_value=0, max_value=220),
        bits=st.integers(min_value=9, max_value=40),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_membership_identity(self, n_nodes, bits, seed):
        # Bisect-based generator is bit-identical to the join-by-join
        # object path: same RNG consumption, same tie-breaking.
        space = IdSpace(bits)
        fast = fast_probing_ids(space, n_nodes, rng=seed)
        ring = ProbingIdAssigner().build_ring(space, n_nodes, rng=seed)
        assert fast == sorted(ring.nodes)
        assert fast == sorted(fast)

    def test_membership_identity_at_2048(self):
        space = IdSpace(32)
        fast = fast_probing_ids(space, 2048, rng=2007)
        ring = ProbingIdAssigner().build_ring(space, 2048, rng=2007)
        assert fast == sorted(ring.nodes)


class TestStorageModeEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(
        bits=st.integers(min_value=8, max_value=40),
        data=st.data(),
    )
    def test_array_and_object_rings_answer_identically(self, bits, data):
        space = IdSpace(bits)
        idents = data.draw(
            st.sets(
                st.integers(min_value=0, max_value=space.max_id),
                min_size=1,
                max_size=64,
            )
        )
        obj = StaticRing(space, idents, array_backed=False)
        arr = StaticRing(space, idents, array_backed=True)
        assert obj.nodes == arr.nodes

        keys = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=space.max_id),
                min_size=1,
                max_size=16,
            )
        )
        for key in keys:
            assert obj.successor(key) == arr.successor(key)
            assert obj.predecessor(key) == arr.predecessor(key)
        lo, hi = keys[0], keys[-1]
        assert obj.nodes_in_interval(lo, hi) == arr.nodes_in_interval(lo, hi)
        for ident in obj.nodes[:8]:
            assert obj.gap_before(ident) == arr.gap_before(ident)
            assert obj.successor_of_node(ident) == arr.successor_of_node(ident)

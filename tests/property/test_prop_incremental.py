"""Property tests: incremental maintenance is bit-identical to rebuilds.

Random join/leave/crash sequences drive a :class:`DatUpdateEngine`; after
*every* event the maintained state — scalar finger tables, the NumPy finger
matrix, the reverse index, and each tracked tree's root and parent map — is
compared against a from-scratch rebuild of the same membership. Any
divergence is a bug in the incremental engine (the rebuild is the oracle).
"""

import random

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chord.idspace import IdSpace
from repro.chord.incremental import DatUpdateEngine
from repro.chord.ring import StaticRing
from repro.core.builder import DatScheme, build_dat


def _random_event(rng, live, size):
    """Pick the next membership event given the current live set."""
    if live and (len(live) > 2 and rng.random() < 0.45):
        ident = rng.choice(sorted(live))
        return rng.choice(["leave", "crash"]), ident
    while True:
        ident = rng.randrange(size)
        if ident not in live:
            return "join", ident


def _assert_state_matches(engine, space, live, keys, scheme, step):
    ref_ring = StaticRing(space, sorted(live))
    ref_tables = ref_ring.all_finger_tables()
    tables = engine.maintainer.tables
    assert set(tables) == set(ref_tables), step
    for node, table in tables.items():
        assert table.entries == ref_tables[node].entries, (step, node)
    matrix = engine.maintainer.matrix
    assert matrix is not None
    if live:
        reference = np.array(
            [ref_tables[node].entries for node in ref_ring.nodes], dtype=np.int64
        )
        assert matrix.shape == reference.shape, step
        assert (matrix == reference).all(), step
    else:
        assert matrix.shape[0] == 0, step
    for key in keys:
        if not live:
            continue
        tree = engine.tree(key)
        ref_tree = build_dat(ref_ring, key, scheme=scheme)
        assert tree.root == ref_tree.root, (step, key)
        assert tree.parent == ref_tree.parent, (step, key)


@settings(max_examples=20, deadline=None)
@given(
    bits=st.integers(min_value=8, max_value=18),
    n_initial=st.integers(min_value=1, max_value=24),
    n_events=st.integers(min_value=1, max_value=40),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    scheme=st.sampled_from([DatScheme.BASIC, DatScheme.BALANCED]),
)
def test_random_churn_matches_rebuild_after_every_event(
    bits, n_initial, n_events, seed, scheme
):
    rng = random.Random(seed)
    space = IdSpace(bits)
    n_initial = min(n_initial, space.size // 4)
    idents = rng.sample(range(space.size), max(n_initial, 1))
    live = set(idents)
    keys = [rng.randrange(space.size) for _ in range(3)]

    engine = DatUpdateEngine(StaticRing(space, idents), scheme=scheme)
    for key in keys:
        engine.track(key)

    for step in range(n_events):
        kind, ident = _random_event(rng, live, space.size)
        if kind == "join":
            live.add(ident)
        else:
            live.discard(ident)
        engine.apply(kind, ident)
        _assert_state_matches(engine, space, live, keys, scheme, step)


@settings(max_examples=10, deadline=None)
@given(
    n_events=st.integers(min_value=5, max_value=30),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_drain_to_empty_and_regrow(n_events, seed):
    """The engine survives the ring emptying completely and refilling."""
    rng = random.Random(seed)
    space = IdSpace(10)
    idents = rng.sample(range(space.size), 3)
    live = set(idents)
    key = rng.randrange(space.size)
    engine = DatUpdateEngine(StaticRing(space, idents))
    engine.track(key)

    for ident in sorted(live):
        engine.apply("leave", ident)
    live.clear()
    assert len(engine.ring) == 0

    for step in range(n_events):
        kind, ident = _random_event(rng, live, space.size)
        if kind == "join":
            live.add(ident)
        else:
            live.discard(ident)
        engine.apply(kind, ident)
        _assert_state_matches(
            engine, space, live, [key], DatScheme.BALANCED, step
        )


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    n_events=st.integers(min_value=1, max_value=25),
)
def test_verify_mode_never_reports_mismatches(seed, n_events):
    """The built-in oracle cross-check agrees with the incremental state."""
    rng = random.Random(seed)
    space = IdSpace(12)
    idents = rng.sample(range(space.size), 12)
    live = set(idents)
    engine = DatUpdateEngine(StaticRing(space, idents), verify=True)
    engine.track(rng.randrange(space.size))
    for _ in range(n_events):
        kind, ident = _random_event(rng, live, space.size)
        live.add(ident) if kind == "join" else live.discard(ident)
        report = engine.apply(kind, ident)
        assert report.verified_mismatches == ()

"""Property-based tests for identifier-space arithmetic laws."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chord.idspace import IdSpace

BITS = st.integers(min_value=2, max_value=24)


@st.composite
def space_and_ids(draw, count: int = 2):
    bits = draw(BITS)
    space = IdSpace(bits)
    idents = [
        draw(st.integers(min_value=0, max_value=space.max_id)) for _ in range(count)
    ]
    return (space, *idents)


class TestDistanceLaws:
    @given(space_and_ids(2))
    def test_cw_antisymmetry(self, args):
        space, a, b = args
        if a == b:
            assert space.cw(a, b) == 0
        else:
            assert space.cw(a, b) + space.cw(b, a) == space.size

    @given(space_and_ids(3))
    def test_cw_triangle_modular(self, args):
        # Walking a->b->c clockwise covers the same ground as a->c modulo
        # full laps.
        space, a, b, c = args
        assert (space.cw(a, b) + space.cw(b, c)) % space.size == space.cw(a, c)

    @given(space_and_ids(2))
    def test_ring_distance_symmetric_and_bounded(self, args):
        space, a, b = args
        assert space.ring_distance(a, b) == space.ring_distance(b, a)
        assert 0 <= space.ring_distance(a, b) <= space.size // 2

    @given(space_and_ids(1), st.integers(min_value=-10**9, max_value=10**9))
    def test_wrap_idempotent(self, args, value):
        space, _ = args
        assert space.wrap(space.wrap(value)) == space.wrap(value)
        assert 0 <= space.wrap(value) < space.size


class TestIntervalLaws:
    @given(space_and_ids(3))
    def test_open_interval_partition(self, args):
        # For a != b, every x is in exactly one of: {a}, {b}, (a,b), (b,a).
        space, x, a, b = args
        if a == b:
            return
        memberships = [
            x == a,
            x == b,
            space.in_open(x, a, b),
            space.in_open(x, b, a),
        ]
        assert sum(bool(m) for m in memberships) == 1

    @given(space_and_ids(3))
    def test_half_open_right_vs_open(self, args):
        space, x, a, b = args
        if a == b:
            return
        assert space.in_half_open_right(x, a, b) == (
            space.in_open(x, a, b) or x == b
        )

    @given(space_and_ids(3))
    def test_closed_contains_endpoints(self, args):
        space, _x, a, b = args
        assert space.in_closed(a, a, b)
        assert space.in_closed(b, a, b)

    @given(space_and_ids(2))
    def test_finger_start_strictly_advances(self, args):
        space, ident, _ = args
        previous = 0
        for j in range(space.bits):
            offset = space.cw(ident, space.finger_start(ident, j))
            assert offset == 1 << j
            assert offset > previous or j == 0
            previous = offset

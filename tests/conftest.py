"""Shared fixtures for the DAT reproduction test suite."""

from __future__ import annotations

import pytest

from repro.chord.idspace import IdSpace
from repro.chord.ring import StaticRing


@pytest.fixture
def space4() -> IdSpace:
    """The paper's worked-example space: 4 bits, 16 identifiers."""
    return IdSpace(4)


@pytest.fixture
def space16() -> IdSpace:
    """A mid-size space for randomized tests."""
    return IdSpace(16)


@pytest.fixture
def space32() -> IdSpace:
    """The default experiment space."""
    return IdSpace(32)


@pytest.fixture
def full_ring4(space4: IdSpace) -> StaticRing:
    """All 16 nodes of the 4-bit space — the paper's Fig. 2/5 network."""
    return StaticRing(space4, range(16))


@pytest.fixture
def uniform_ring(space16: IdSpace) -> StaticRing:
    """64 perfectly evenly spaced nodes in a 16-bit space."""
    n = 64
    return StaticRing(space16, [(i * space16.size) // n for i in range(n)])

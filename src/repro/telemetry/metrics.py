"""Labeled metrics: counters, gauges, and log-spaced-bucket histograms.

Prometheus-shaped but sim-clocked: every sample carries the timestamp of
its last update read from the telemetry clock (the discrete-event engine's
virtual ``now``), never the wall clock, so exported streams are
bit-identical across replays of a seeded run.

All update paths take the registry lock — the threaded UDP transport
increments counters from its receive thread and callers' threads
concurrently (same hazard :class:`~repro.telemetry.hotspot.HotspotAccountant`
guards against).
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left
from dataclasses import dataclass
from typing import Callable, Iterator, Mapping

__all__ = [
    "log_buckets",
    "linear_buckets",
    "MetricSample",
    "Metric",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Label values keyed by label name, in the metric's declared order.
LabelValues = tuple[str, ...]


def log_buckets(start: float, factor: float, count: int) -> tuple[float, ...]:
    """Fixed log-spaced bucket upper bounds ``start * factor**i``.

    The grid every histogram uses unless overridden — log spacing matches
    the quantities this repo measures (hop counts, message loads, byte
    sizes), which span orders of magnitude with most mass at the low end.
    """
    if start <= 0 or factor <= 1 or count <= 0:
        raise ValueError(
            f"invalid bucket grid (start={start}, factor={factor}, count={count})"
        )
    return tuple(start * factor**i for i in range(count))


def linear_buckets(start: float, width: float, count: int) -> tuple[float, ...]:
    """Fixed linear bucket upper bounds ``start + width*i``.

    For small-integer quantities (hop counts, repair rounds) unit-width
    buckets read directly as per-value frequencies, where the log grid
    would merge several values into one bucket.
    """
    if width <= 0 or count <= 0:
        raise ValueError(f"invalid bucket grid (width={width}, count={count})")
    return tuple(start + width * i for i in range(count))


@dataclass(frozen=True)
class MetricSample:
    """One exported time series point: a label set and its current value."""

    name: str
    kind: str  # "counter" | "gauge" | "histogram"
    labels: tuple[tuple[str, str], ...]
    value: float
    updated_at: float
    #: Histogram-only: cumulative bucket counts aligned with ``buckets``.
    bucket_counts: tuple[int, ...] = ()
    buckets: tuple[float, ...] = ()
    count: int = 0

    def labels_dict(self) -> dict[str, str]:
        return dict(self.labels)


class Metric:
    """Base for one named, labeled metric family."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help_text: str,
        label_names: tuple[str, ...],
        clock: Callable[[], float],
        lock: threading.Lock,
    ) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in label_names:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r} on metric {name!r}")
        self.name = name
        self.help_text = help_text
        self.label_names = label_names
        self._clock = clock
        self._lock = lock
        self._updated: dict[LabelValues, float] = {}

    def _key(self, labels: Mapping[str, object]) -> LabelValues:
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.label_names)

    def _labels_for(self, key: LabelValues) -> tuple[tuple[str, str], ...]:
        return tuple(zip(self.label_names, key))

    def samples(self) -> list[MetricSample]:
        """Current samples, one per label set, sorted by label values."""
        raise NotImplementedError


class Counter(Metric):
    """Monotonically increasing count (messages sent, builds run, ...)."""

    kind = "counter"

    def __init__(
        self,
        name: str,
        help_text: str,
        label_names: tuple[str, ...],
        clock: Callable[[], float],
        lock: threading.Lock,
    ) -> None:
        super().__init__(name, help_text, label_names, clock, lock)
        self._values: dict[LabelValues, float] = {}

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        """Add ``amount`` (must be non-negative) to the labeled series."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease ({amount})")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount
            self._updated[key] = self._clock()

    def value(self, **labels: object) -> float:
        """Current value of one labeled series (0 if never incremented)."""
        key = self._key(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def samples(self) -> list[MetricSample]:
        with self._lock:
            return [
                MetricSample(
                    name=self.name,
                    kind=self.kind,
                    labels=self._labels_for(key),
                    value=value,
                    updated_at=self._updated[key],
                )
                for key, value in sorted(self._values.items())
            ]


class Gauge(Metric):
    """A value that can go up and down (tree height, imbalance factor)."""

    kind = "gauge"

    def __init__(
        self,
        name: str,
        help_text: str,
        label_names: tuple[str, ...],
        clock: Callable[[], float],
        lock: threading.Lock,
    ) -> None:
        super().__init__(name, help_text, label_names, clock, lock)
        self._values: dict[LabelValues, float] = {}

    def set(self, value: float, **labels: object) -> None:
        """Set the labeled series to ``value``."""
        key = self._key(labels)
        with self._lock:
            self._values[key] = float(value)
            self._updated[key] = self._clock()

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        """Add ``amount`` (may be negative) to the labeled series."""
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount
            self._updated[key] = self._clock()

    def value(self, **labels: object) -> float:
        """Current value of one labeled series (0 if never set)."""
        key = self._key(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def samples(self) -> list[MetricSample]:
        with self._lock:
            return [
                MetricSample(
                    name=self.name,
                    kind=self.kind,
                    labels=self._labels_for(key),
                    value=value,
                    updated_at=self._updated[key],
                )
                for key, value in sorted(self._values.items())
            ]


@dataclass
class _HistogramSeries:
    """Mutable per-label-set histogram state."""

    bucket_counts: list[int]
    total: float = 0.0
    count: int = 0
    minimum: float = math.inf
    maximum: float = -math.inf


class Histogram(Metric):
    """Distribution over fixed log-spaced buckets (hops, bytes, loads).

    ``buckets`` are *upper bounds*; an implicit +Inf bucket catches the
    tail, so ``observe`` never loses a sample. Bucket counts are stored
    per-bucket (not cumulative); exporters cumulate on the way out, as the
    Prometheus text format requires.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        label_names: tuple[str, ...],
        clock: Callable[[], float],
        lock: threading.Lock,
        buckets: tuple[float, ...],
    ) -> None:
        super().__init__(name, help_text, label_names, clock, lock)
        if not buckets or list(buckets) != sorted(set(buckets)):
            raise ValueError(
                f"histogram {name!r} buckets must be strictly increasing: {buckets}"
            )
        self.buckets = tuple(float(b) for b in buckets)
        self._series: dict[LabelValues, _HistogramSeries] = {}

    def observe(self, value: float, **labels: object) -> None:
        """Record one observation into the labeled series."""
        key = self._key(labels)
        index = bisect_left(self.buckets, value)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = _HistogramSeries(
                    bucket_counts=[0] * (len(self.buckets) + 1)
                )
                self._series[key] = series
            series.bucket_counts[index] += 1
            series.total += value
            series.count += 1
            series.minimum = min(series.minimum, value)
            series.maximum = max(series.maximum, value)
            self._updated[key] = self._clock()

    def count_of(self, **labels: object) -> int:
        """Observations recorded for one labeled series."""
        key = self._key(labels)
        with self._lock:
            series = self._series.get(key)
            return 0 if series is None else series.count

    def sum_of(self, **labels: object) -> float:
        """Sum of observations for one labeled series."""
        key = self._key(labels)
        with self._lock:
            series = self._series.get(key)
            return 0.0 if series is None else series.total

    def samples(self) -> list[MetricSample]:
        with self._lock:
            return [
                MetricSample(
                    name=self.name,
                    kind=self.kind,
                    labels=self._labels_for(key),
                    value=series.total,
                    updated_at=self._updated[key],
                    bucket_counts=tuple(series.bucket_counts),
                    buckets=self.buckets,
                    count=series.count,
                )
                for key, series in sorted(self._series.items())
            ]


class MetricsRegistry:
    """Get-or-create store of metric families, keyed by name.

    Re-requesting a name returns the existing family — instrumentation
    sites can therefore call ``registry.counter("x").inc()`` on every hit
    without caching handles — but a kind or label-set mismatch on an
    existing name is an error (it would silently fork the series).
    """

    def __init__(
        self,
        clock: Callable[[], float],
        default_buckets: tuple[float, ...] | None = None,
    ) -> None:
        self._clock = clock
        self._default_buckets = (
            default_buckets if default_buckets is not None else log_buckets(1, 2, 20)
        )
        self._lock = threading.Lock()
        self._metrics: dict[str, Metric] = {}

    def _get_or_create(
        self,
        name: str,
        kind: type[Metric],
        help_text: str,
        labels: tuple[str, ...],
        **kwargs: object,
    ) -> Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, kind):
                    raise ValueError(
                        f"metric {name!r} is a {existing.kind}, not a "
                        f"{kind.kind}"  # type: ignore[attr-defined]
                    )
                if existing.label_names != labels:
                    raise ValueError(
                        f"metric {name!r} declared with labels "
                        f"{existing.label_names}, requested {labels}"
                    )
                return existing
            metric = kind(
                name, help_text, labels, self._clock, self._lock, **kwargs
            )  # type: ignore[arg-type]
            self._metrics[name] = metric
            return metric

    def counter(
        self, name: str, help_text: str = "", labels: tuple[str, ...] = ()
    ) -> Counter:
        """Get or create the counter family ``name``."""
        metric = self._get_or_create(name, Counter, help_text, labels)
        assert isinstance(metric, Counter)
        return metric

    def gauge(
        self, name: str, help_text: str = "", labels: tuple[str, ...] = ()
    ) -> Gauge:
        """Get or create the gauge family ``name``."""
        metric = self._get_or_create(name, Gauge, help_text, labels)
        assert isinstance(metric, Gauge)
        return metric

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: tuple[str, ...] = (),
        buckets: tuple[float, ...] | None = None,
    ) -> Histogram:
        """Get or create the histogram family ``name``."""
        metric = self._get_or_create(
            name,
            Histogram,
            help_text,
            labels,
            buckets=buckets if buckets is not None else self._default_buckets,
        )
        assert isinstance(metric, Histogram)
        return metric

    def families(self) -> list[Metric]:
        """All metric families, sorted by name."""
        with self._lock:
            return [self._metrics[name] for name in sorted(self._metrics)]

    def samples(self) -> Iterator[MetricSample]:
        """Every current sample across all families (export order)."""
        for family in self.families():
            yield from family.samples()

    def reset(self) -> None:
        """Drop every metric family (between experiment rounds)."""
        with self._lock:
            self._metrics.clear()

"""Causal trace assembly: rebuild distributed request trees from span exports.

The propagation side (:class:`~repro.telemetry.spans.TraceContext` threaded
through message payloads by ``repro.net``) stamps every exported span with
a ``trace_id``, a globally qualified ``sid`` (``"<site>:<span_id>"``), and
its ``trace_parent``. This module is the read side: given one or many JSONL
span files — a single simulator stream, or per-node fleet exports — it
reconstructs the causal trees and answers the questions the paper's
evaluation asks of multi-hop behaviour: how many hops did this aggregate
take, where did the latency go, which node spent it.

Inputs may disagree on clocks: fleet agents stamp spans from their own
monotonic offset. Pass per-file ``offset`` values (the fleet supervisor
derives them from each agent's ``Hello`` handshake and writes
``clock-offsets.json``) and every timestamp is shifted onto the common
supervisor timeline before assembly.

Assembly is defensive by construction:

* **orphaned spans** — a span whose ``trace_parent`` never resolves (the
  parent was sampled out, evicted, or its node's file is missing) becomes
  the root of its own tree, flagged ``orphaned``;
* **duplicate ids** — retransmitted or re-merged records with an
  already-seen ``sid`` are dropped (first record wins) and counted;
* **clock skew** — child intervals are clamped into their parent's when
  computing the critical path, so a few milliseconds of residual skew
  cannot produce negative segments.

The critical path of a trace is the chain of spans that *gated* the root's
completion, computed as a tiling of the root interval: walking backwards
from the root's end, the child that finished last owns the preceding
segment, recursively. By construction the segment durations sum exactly to
the root span's duration — the acceptance self-check — and grouping the
segments by node yields the per-node latency attribution.

CLI::

    python -m repro.telemetry.traces run.jsonl            # summary table
    python -m repro.telemetry.traces .fleet/spans-*.jsonl \
        --offsets .fleet/clock-offsets.json --tree 3
    python -m repro.telemetry.traces run.jsonl \
        --require-root dat.push --min-depth 1 --tail-grace 2.0 \
        --check-critical-path      # CI smoke gate (nonzero exit on failure)
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Iterable, Iterator, Sequence

__all__ = [
    "TraceSpan",
    "Trace",
    "TraceSet",
    "load_trace_spans",
    "iter_span_records",
    "assemble",
    "assemble_files",
    "offset_for",
    "main",
]


@dataclass
class TraceSpan:
    """One exported span, as assembly sees it."""

    sid: str
    name: str
    start: float
    end: float | None
    trace_parent: str | None
    trace_id: str | None = None
    hop: int = 0
    node: object | None = None
    error: str | None = None
    attrs: dict[str, object] = field(default_factory=dict)
    source: str = ""
    children: list["TraceSpan"] = field(default_factory=list)

    @property
    def duration(self) -> float:
        """Span length (0.0 while open-ended)."""
        return 0.0 if self.end is None else self.end - self.start

    @classmethod
    def from_record(
        cls, record: dict[str, object], *, offset: float = 0.0, source: str = ""
    ) -> "TraceSpan | None":
        """Build from one exported ``span`` JSONL record.

        Returns ``None`` for records without trace fields (spans exported
        with tracing disabled carry no ``sid``) or with malformed
        essentials — assembly tolerates mixed and partial inputs.
        """
        sid = record.get("sid")
        name = record.get("name")
        start = record.get("start")
        if not isinstance(sid, str) or not isinstance(name, str):
            return None
        if not isinstance(start, (int, float)):
            return None
        end = record.get("end")
        parent = record.get("trace_parent")
        trace_id = record.get("trace_id")
        hop = record.get("hop")
        error = record.get("error")
        attrs = record.get("attrs")
        return cls(
            sid=sid,
            name=name,
            start=float(start) + offset,
            end=float(end) + offset if isinstance(end, (int, float)) else None,
            trace_parent=parent if isinstance(parent, str) else None,
            trace_id=trace_id if isinstance(trace_id, str) else None,
            hop=hop if isinstance(hop, int) else 0,
            node=record.get("node"),
            error=error if isinstance(error, str) else None,
            attrs=dict(attrs) if isinstance(attrs, dict) else {},
            source=source,
        )


#: One critical-path segment: (span owning the time, segment start, end).
Segment = tuple[TraceSpan, float, float]


@dataclass
class Trace:
    """One assembled causal tree."""

    root: TraceSpan
    spans: list[TraceSpan]
    orphaned: bool = False

    @property
    def trace_id(self) -> str:
        """The trace's identity (root's ``trace_id``, else its ``sid``)."""
        return self.root.trace_id or self.root.sid

    @property
    def duration(self) -> float:
        return self.root.duration

    def depth(self) -> int:
        """Longest root-to-leaf edge count (0 for a lone root)."""
        best = 0
        stack: list[tuple[TraceSpan, int]] = [(self.root, 0)]
        while stack:
            span, d = stack.pop()
            best = max(best, d)
            for child in span.children:
                stack.append((child, d + 1))
        return best

    def hops(self) -> int:
        """Remote edges between the root and its deepest member."""
        return max((s.hop for s in self.spans), default=self.root.hop) - self.root.hop

    def nodes(self) -> list[object]:
        """Distinct executing nodes, in first-seen order."""
        seen: dict[object, None] = {}
        for span in self.spans:
            if span.node is not None:
                seen.setdefault(span.node)
        return list(seen)

    def critical_path(self) -> list[Segment]:
        """The chain of segments that gated the root's completion.

        Returns ``(span, t0, t1)`` segments tiling ``[root.start,
        root.end]`` exactly — walking backwards from the root's end, the
        child that ended last owns the time before it, recursively. Child
        intervals are clamped into their parent's, so modest residual
        clock skew between fleet files cannot break the tiling. Segment
        durations therefore sum to the root span's duration exactly.
        """
        segments: list[Segment] = []

        def walk(span: TraceSpan, lo: float, hi: float) -> None:
            cursor = hi
            kids = sorted(
                (c for c in span.children if c.end is not None),
                key=lambda c: (c.end is None, c.end),
                reverse=True,
            )
            for child in kids:
                assert child.end is not None
                c_end = min(child.end, cursor)
                c_start = max(min(child.start, c_end), lo)
                if c_end <= lo:
                    break
                if c_end < c_start:
                    continue  # clipped away by an already-attributed sibling
                if cursor > c_end:
                    segments.append((span, c_end, cursor))
                walk(child, c_start, c_end)
                cursor = c_start
                if cursor <= lo:
                    break
            if cursor > lo:
                segments.append((span, lo, cursor))

        end = self.root.end if self.root.end is not None else self.root.start
        walk(self.root, self.root.start, end)
        segments.reverse()
        return segments

    def critical_path_latency(self) -> float:
        """Sum of critical-path segment durations (== root duration)."""
        return sum(t1 - t0 for _span, t0, t1 in self.critical_path())

    def node_attribution(self) -> dict[object, float]:
        """Critical-path time grouped by executing node.

        Where the latency went: each segment's width is charged to the
        node that was on the critical path during it (``None`` for spans
        without a node identity).
        """
        out: dict[object, float] = {}
        for span, t0, t1 in self.critical_path():
            out[span.node] = out.get(span.node, 0.0) + (t1 - t0)
        return out


@dataclass
class TraceSet:
    """Every assembled trace plus the assembly accounting."""

    traces: list[Trace]
    duplicates: int = 0
    total_spans: int = 0

    def rooted(self, name: str) -> list[Trace]:
        """Non-orphaned traces whose root span carries ``name``."""
        return [t for t in self.traces if not t.orphaned and t.root.name == name]

    def orphans(self) -> list[Trace]:
        """Traces whose root's parent reference never resolved."""
        return [t for t in self.traces if t.orphaned]

    def max_end(self) -> float:
        """Latest timestamp across all spans (tail-grace reference)."""
        best = float("-inf")
        for trace in self.traces:
            for span in trace.spans:
                best = max(best, span.end if span.end is not None else span.start)
        return best


def iter_span_records(lines: Iterable[str]) -> Iterator[dict[str, object]]:
    """Yield ``span``-type records from JSONL lines; skip everything else.

    Malformed lines are skipped, not fatal: a live stream truncated
    mid-write must still assemble.
    """
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            continue
        if isinstance(record, dict) and record.get("type") == "span":
            yield record


def load_trace_spans(
    path: str | Path, *, offset: float = 0.0, source: str | None = None
) -> list[TraceSpan]:
    """Parse one JSONL export into trace spans (non-traced spans skipped).

    ``offset`` shifts every timestamp (fleet clock alignment); ``source``
    labels where each span came from (defaults to the file name).
    """
    path = Path(path)
    label = source if source is not None else path.name
    spans: list[TraceSpan] = []
    with path.open("r", encoding="utf-8") as handle:
        for record in iter_span_records(handle):
            span = TraceSpan.from_record(record, offset=offset, source=label)
            if span is not None:
                spans.append(span)
    return spans


def offset_for(path: str | Path, offsets: dict[str, float] | None) -> float:
    """Resolve a file's clock offset from an offsets mapping.

    Keys are matched against the file stem and against the stem's trailing
    ``-``-separated token — fleet span files are named
    ``spans-<ident>.jsonl`` while ``clock-offsets.json`` keys by ident.
    """
    if not offsets:
        return 0.0
    stem = Path(path).stem
    if stem in offsets:
        return float(offsets[stem])
    tail = stem.rsplit("-", 1)[-1]
    return float(offsets.get(tail, 0.0))


def assemble(spans: Iterable[TraceSpan]) -> TraceSet:
    """Reconstruct causal trees from (possibly merged, skewed) spans."""
    by_sid: dict[str, TraceSpan] = {}
    duplicates = 0
    for span in spans:
        if span.sid in by_sid:
            duplicates += 1  # retransmission / double-merge: first wins
            continue
        by_sid[span.sid] = span

    roots: list[tuple[TraceSpan, bool]] = []
    for span in by_sid.values():
        parent_sid = span.trace_parent
        if parent_sid is None:
            roots.append((span, False))
            continue
        parent = by_sid.get(parent_sid)
        if parent is None:
            roots.append((span, True))  # orphan: parent never exported
            continue
        parent.children.append(span)

    for span in by_sid.values():
        span.children.sort(key=lambda c: (c.start, c.sid))

    traces: list[Trace] = []
    for root, orphaned in roots:
        members: list[TraceSpan] = []
        stack = [root]
        seen: set[str] = set()
        while stack:
            span = stack.pop()
            if span.sid in seen:
                continue  # cycle guard: corrupt parent links can't hang us
            seen.add(span.sid)
            members.append(span)
            stack.extend(span.children)
        members.sort(key=lambda s: (s.start, s.sid))
        traces.append(Trace(root=root, spans=members, orphaned=orphaned))
    traces.sort(key=lambda t: (t.root.start, t.root.sid))
    return TraceSet(traces=traces, duplicates=duplicates, total_spans=len(by_sid))


def assemble_files(
    paths: Sequence[str | Path], *, offsets: dict[str, float] | None = None
) -> TraceSet:
    """Load, align, merge, and assemble one or many span exports."""
    spans: list[TraceSpan] = []
    for path in paths:
        spans.extend(load_trace_spans(path, offset=offset_for(path, offsets)))
    return assemble(spans)


# ---------------------------------------------------------------------- #
# Rendering
# ---------------------------------------------------------------------- #


def render_tree(trace: Trace, out: IO[str], *, max_spans: int = 64) -> None:
    """Print one trace as an indented causal tree."""
    shown = 0

    def emit(span: TraceSpan, depth: int) -> None:
        nonlocal shown
        if shown >= max_spans:
            return
        shown += 1
        node = f" node={span.node}" if span.node is not None else ""
        err = f" error={span.error}" if span.error else ""
        out.write(
            f"{'  ' * depth}{span.name} [{span.sid}]{node} "
            f"t={span.start:.6f} d={span.duration:.6f} hop={span.hop}{err}\n"
        )
        for child in span.children:
            emit(child, depth + 1)

    emit(trace.root, 0)
    if shown >= max_spans and len(trace.spans) > shown:
        out.write(f"  ... {len(trace.spans) - shown} more spans\n")


def summarize(traces: TraceSet, out: IO[str]) -> None:
    """Per-root-name rollup: counts, depth, hops, critical-path latency."""
    groups: dict[str, list[Trace]] = {}
    for trace in traces.traces:
        if not trace.orphaned:
            groups.setdefault(trace.root.name, []).append(trace)
    out.write(
        f"{len(traces.traces)} traces from {traces.total_spans} spans "
        f"({len(traces.orphans())} orphaned, {traces.duplicates} duplicate ids)\n"
    )
    if not groups:
        return
    header = f"{'root':<20} {'count':>6} {'depth':>6} {'hops':>5} {'mean_cp':>10} {'max_cp':>10}"
    out.write(header + "\n")
    out.write("-" * len(header) + "\n")
    for name in sorted(groups):
        group = groups[name]
        cps = [t.critical_path_latency() for t in group]
        out.write(
            f"{name:<20} {len(group):>6} "
            f"{max(t.depth() for t in group):>6} "
            f"{max(t.hops() for t in group):>5} "
            f"{sum(cps) / len(cps):>10.6f} {max(cps):>10.6f}\n"
        )


# ---------------------------------------------------------------------- #
# CLI (the trace-roundtrip CI gate drives this)
# ---------------------------------------------------------------------- #


def _check(
    traces: TraceSet,
    *,
    require_root: str | None,
    min_depth: int,
    tail_grace: float,
    check_critical_path: bool,
    out: IO[str],
) -> int:
    failures = 0
    if require_root is not None:
        rooted = traces.rooted(require_root)
        if not rooted:
            out.write(f"CHECK FAIL: no trace rooted at {require_root!r}\n")
            failures += 1
        horizon = traces.max_end() - tail_grace
        shallow = [
            t for t in rooted if t.depth() < min_depth and t.root.start <= horizon
        ]
        in_window = [t for t in rooted if t.root.start <= horizon]
        if shallow:
            sample = ", ".join(t.trace_id for t in shallow[:5])
            out.write(
                f"CHECK FAIL: {len(shallow)}/{len(in_window)} {require_root!r} "
                f"traces shallower than {min_depth} (e.g. {sample})\n"
            )
            failures += 1
        else:
            out.write(
                f"check ok: {len(in_window)} {require_root!r} traces at depth "
                f">= {min_depth} ({len(rooted) - len(in_window)} in tail grace)\n"
            )
    if check_critical_path:
        bad = 0
        for trace in traces.traces:
            if abs(trace.critical_path_latency() - trace.duration) > 1e-9:
                bad += 1
        if bad:
            out.write(f"CHECK FAIL: {bad} traces with inconsistent critical path\n")
            failures += 1
        else:
            out.write(
                f"check ok: critical path == root duration for "
                f"{len(traces.traces)} traces\n"
            )
    return failures


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry.traces",
        description="Assemble causal traces from JSONL span exports.",
    )
    parser.add_argument("paths", nargs="+", help="span export files (JSONL)")
    parser.add_argument(
        "--offsets",
        metavar="FILE",
        help="JSON file mapping file stem (or node ident) -> clock offset "
        "added to that file's timestamps (fleet clock-offsets.json)",
    )
    parser.add_argument(
        "--tree", type=int, default=0, metavar="N", help="print the first N trace trees"
    )
    parser.add_argument(
        "--require-root",
        metavar="NAME",
        help="fail unless traces rooted at NAME exist and reach --min-depth",
    )
    parser.add_argument(
        "--min-depth", type=int, default=1, help="depth bar for --require-root"
    )
    parser.add_argument(
        "--tail-grace",
        type=float,
        default=0.0,
        metavar="S",
        help="exempt roots starting within S of the export's end "
        "(in-flight at shutdown) from --min-depth",
    )
    parser.add_argument(
        "--check-critical-path",
        action="store_true",
        help="fail unless every trace's critical path sums to its root duration",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit a machine-readable summary"
    )
    args = parser.parse_args(argv)

    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.is_file()]
    if missing:
        print(
            f"error: no such span export: {', '.join(str(p) for p in missing)}",
            file=sys.stderr,
        )
        return 2
    offsets: dict[str, float] | None = None
    if args.offsets:
        try:
            with open(args.offsets, "r", encoding="utf-8") as handle:
                raw = json.load(handle)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read offsets {args.offsets}: {exc}", file=sys.stderr)
            return 2
        offsets = {str(k): float(v) for k, v in raw.items()}

    traces = assemble_files(paths, offsets=offsets)
    if traces.total_spans == 0:
        print(
            "error: no traced spans found (was the run made with tracing enabled, "
            "e.g. --trace-jsonl?)",
            file=sys.stderr,
        )
        return 2

    if args.json:
        payload = {
            "traces": len(traces.traces),
            "spans": traces.total_spans,
            "orphans": len(traces.orphans()),
            "duplicates": traces.duplicates,
            "roots": {
                name: len(traces.rooted(name))
                for name in sorted({t.root.name for t in traces.traces})
            },
        }
        print(json.dumps(payload, sort_keys=True))
    else:
        summarize(traces, sys.stdout)
        for trace in traces.traces[: args.tree]:
            sys.stdout.write("\n")
            render_tree(trace, sys.stdout)

    failures = _check(
        traces,
        require_root=args.require_root,
        min_depth=args.min_depth,
        tail_grace=args.tail_grace,
        check_critical_path=args.check_critical_path,
        out=sys.stdout,
    )
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI smoke
    raise SystemExit(main())

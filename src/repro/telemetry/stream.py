"""Streaming telemetry export: bounded-memory JSONL span pipelines.

The bulk exporter (:func:`repro.telemetry.export.jsonl_lines`) is a pure
function of end-of-run state — it materializes every retained span, which
for million-event runs means either unbounded memory or silent
``max_spans`` eviction. This module turns the export into a *live
pipeline*:

* :class:`JsonlSpanStream` attaches to the
  :class:`~repro.telemetry.spans.SpanRecorder` as its sink. Finished
  spans are encoded immediately, buffered up to ``chunk_size`` lines,
  and flushed to the output file — peak resident spans never exceed the
  chunk size. A deterministic sampling knob (``sample_every``: keep
  every k-th span *per span name*, counter-based, no RNG — replays stay
  byte-identical) thins high-frequency spans, and everything it skips is
  counted and reported in the final ``span_drops`` record instead of
  silently evicted.
* :class:`TelemetryStream` is the whole session: it writes the
  ``config`` header, installs the span stream, and on :meth:`close`
  appends the end-of-run snapshot (metrics, hotspot nodes + rolling
  samples, drop accounting) so ``repro.telemetry.report`` reads a
  streamed file exactly like a bulk export.
* :class:`LiveExport` owns the files for ``--telemetry-jsonl`` /
  ``--telemetry-prom`` wiring in long-running deployments
  (:class:`repro.core.overlay.DatOverlay`, ``repro.gma.live``, the
  experiments CLI).
"""

from __future__ import annotations

import os
import threading
from typing import IO, TYPE_CHECKING, Union

from repro.telemetry.export import (
    config_record,
    encode_record,
    hotspot_records,
    metric_record,
    span_drops_record,
    span_record,
    write_prometheus,
)
from repro.telemetry.spans import Span

if TYPE_CHECKING:
    from repro.telemetry.runtime import Telemetry

__all__ = ["JsonlSpanStream", "TelemetryStream", "LiveExport"]

PathLike = Union[str, os.PathLike]


class JsonlSpanStream:
    """Chunk-buffered JSONL span sink with deterministic sampling.

    Usable directly as a :attr:`SpanRecorder.sink
    <repro.telemetry.spans.SpanRecorder.sink>`: :meth:`offer` returns
    ``True`` for every span (written or sampled out), so the recorder
    never retains them and memory stays bounded by ``chunk_size``.
    """

    def __init__(
        self, out: IO[str], chunk_size: int = 4096, sample_every: int = 1
    ) -> None:
        if chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {sample_every}")
        self._out = out
        self.chunk_size = chunk_size
        self.sample_every = sample_every
        self.written = 0
        self.total_lines = 0
        self.sampled_out = 0
        self.sampled_out_by_name: dict[str, int] = {}
        self.flushes = 0
        self.peak_buffered = 0
        self._buffer: list[str] = []
        self._seen: dict[str, int] = {}
        # The UDP transport finishes spans on its receive thread while the
        # caller's thread finishes others; buffer and counters are shared.
        self._lock = threading.Lock()

    def offer(self, span: Span) -> bool:
        """Consume one finished span (sink protocol; always ``True``)."""
        with self._lock:
            seen = self._seen.get(span.name, 0)
            self._seen[span.name] = seen + 1
            if seen % self.sample_every:
                self.sampled_out += 1
                self.sampled_out_by_name[span.name] = (
                    self.sampled_out_by_name.get(span.name, 0) + 1
                )
                return True
            self._buffer.append(encode_record(span_record(span)))
            self.written += 1
            self.total_lines += 1
            if len(self._buffer) > self.peak_buffered:
                self.peak_buffered = len(self._buffer)
            if len(self._buffer) >= self.chunk_size:
                self._flush_locked()
        return True

    __call__ = offer

    def write_record(self, record: dict[str, object]) -> None:
        """Append a non-span record (config/metric/...) through the buffer."""
        with self._lock:
            self._buffer.append(encode_record(record))
            self.total_lines += 1
            if len(self._buffer) > self.peak_buffered:
                self.peak_buffered = len(self._buffer)
            if len(self._buffer) >= self.chunk_size:
                self._flush_locked()

    def _flush_locked(self) -> None:
        if self._buffer:
            self._out.write("\n".join(self._buffer) + "\n")
            self._buffer.clear()
            self.flushes += 1
            # Push through the file object's own buffer too: a live tail
            # (or a crashed run's post-mortem) sees every completed chunk.
            flush = getattr(self._out, "flush", None)
            if flush is not None:
                flush()

    def flush(self) -> None:
        """Write out any buffered lines (called on chunk boundaries and close)."""
        with self._lock:
            self._flush_locked()

    def sampling_snapshot(self) -> tuple[int, dict[str, int]]:
        """``(sampled_out, sampled_out_by_name)`` read under the lock."""
        with self._lock:
            return self.sampled_out, dict(self.sampled_out_by_name)

    def lines_written(self) -> int:
        """Total lines accepted so far (spans and records), under the lock."""
        with self._lock:
            return self.total_lines

    @property
    def buffered(self) -> int:
        """Lines currently waiting for the next chunk flush."""
        with self._lock:
            return len(self._buffer)


class TelemetryStream:
    """One live-export session over a telemetry runtime.

    Construction writes the ``config`` header and installs the span sink;
    :meth:`close` flushes, appends the end-of-run snapshot (any retained
    spans that finished before the stream attached, metrics, hotspots,
    the ``span_drops`` accounting record), and detaches the sink.
    Idempotent close; usable as a context manager.
    """

    def __init__(
        self,
        tel: "Telemetry",
        out: IO[str],
        chunk_size: int | None = None,
        sample_every: int | None = None,
    ) -> None:
        self.tel = tel
        self.stream = JsonlSpanStream(
            out,
            chunk_size=tel.config.span_chunk_size if chunk_size is None else chunk_size,
            sample_every=(
                tel.config.span_sample_every if sample_every is None else sample_every
            ),
        )
        self.lines = 0
        self._closed = False
        self.stream.write_record(config_record(tel))
        # One bound-method object, kept for the identity test in close():
        # ``self.stream.offer`` creates a fresh object per access.
        self._sink = self.stream.offer
        tel.spans.sink = self._sink

    def close(self) -> int:
        """Finish the export; returns the total number of lines written."""
        if self._closed:
            return self.lines
        self._closed = True
        tel = self.tel
        if tel.spans.sink is self._sink:
            tel.spans.sink = None
        for sample in tel.metrics.samples():
            self.stream.write_record(metric_record(sample))
        # Spans that finished before the sink attached (or while a foreign
        # sink declined them) sit in the recorder; export them too so the
        # streamed file is a superset of what retention would have kept.
        for span in tel.spans.finished_snapshot():
            self.stream.write_record(span_record(span))
        sampled_out, sampled_out_by_name = self.stream.sampling_snapshot()
        self.stream.write_record(
            span_drops_record(
                tel.spans,
                sampled_out=sampled_out,
                sampled_out_by_name=sampled_out_by_name,
            )
        )
        for name in tel.hotspot_names():
            for record in hotspot_records(name, tel.hotspots(name)):
                self.stream.write_record(record)
        self.stream.flush()
        self.lines = self.stream.lines_written()
        return self.lines

    def __enter__(self) -> "TelemetryStream":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class LiveExport:
    """File-owning live telemetry export for deployments and the CLI.

    Opens ``jsonl_path`` (if given) and attaches a :class:`TelemetryStream`
    immediately — spans stream to disk for the whole run. :meth:`close`
    finalizes the JSONL file and writes the Prometheus snapshot to
    ``prom_path`` (if given). No-op when either path is ``None``.
    """

    def __init__(
        self,
        tel: "Telemetry",
        jsonl_path: PathLike | None = None,
        prom_path: PathLike | None = None,
        chunk_size: int | None = None,
        sample_every: int | None = None,
    ) -> None:
        self.tel = tel
        self._prom_path = prom_path
        self._handle: IO[str] | None = None
        self._stream: TelemetryStream | None = None
        self._closed = False
        if jsonl_path is not None:
            self._handle = open(jsonl_path, "w", encoding="utf-8")
            self._stream = TelemetryStream(
                tel, self._handle, chunk_size=chunk_size, sample_every=sample_every
            )

    def close(self) -> dict[str, int]:
        """Finalize all outputs; returns lines written per format."""
        if self._closed:
            return {}
        self._closed = True
        written: dict[str, int] = {}
        if self._stream is not None:
            written["jsonl"] = self._stream.close()
            assert self._handle is not None
            self._handle.close()
            self._handle = None
        if self._prom_path is not None:
            with open(self._prom_path, "w", encoding="utf-8") as handle:
                written["prom"] = write_prometheus(self.tel, handle)
        return written

    def __enter__(self) -> "LiveExport":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

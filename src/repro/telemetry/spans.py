"""Span tracing: timed, attributed operations on the sim clock.

A span covers one logical operation — a DAT build, an aggregation round, a
MAAN query resolution, a churn event — with start/end timestamps from the
telemetry clock and free-form attributes (node id, tree key, hop/depth
counts). Two usage shapes:

* context manager (synchronous work)::

      with telemetry.span("dat.build", key=key, scheme="balanced") as sp:
          tree = ...
          sp.set(height=tree.height)

* explicit start/finish (asynchronous protocol rounds that complete in a
  later callback)::

      sp = telemetry.span("dat.collect", node=self.ident, key=key)
      ...                       # round completes messages later
      sp.set(n_states=len(states))
      sp.finish()

Parent/child nesting is tracked per thread (the DES is single-threaded;
the UDP transport dispatches from its own receive thread), so exported
spans form trees without any explicit context passing.

When telemetry is disabled, instrumentation sites receive the shared
:data:`NULL_SPAN` — a stateless singleton whose every method is a no-op.
"""

from __future__ import annotations

import threading
from types import TracebackType
from typing import Callable

__all__ = ["SpanBase", "Span", "NullSpan", "NULL_SPAN", "SpanRecorder"]


class SpanBase:
    """The interface instrumentation sites program against."""

    def set(self, **attrs: object) -> "SpanBase":
        """Attach (or overwrite) attributes; returns self for chaining."""
        return self

    def set_lazy(self, **attrs: Callable[[], object]) -> "SpanBase":
        """Attach attributes as zero-arg thunks, evaluated only at export.

        For expensive values (an O(n) tree walk): the span keeps the
        callable, and exporters call :meth:`Span.resolved_attrs` to
        materialize it. Spans that are sampled out or evicted never pay
        the cost.
        """
        return self

    def finish(self, **attrs: object) -> None:
        """End the span (idempotent); optional final attributes."""

    def __enter__(self) -> "SpanBase":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.finish()


class NullSpan(SpanBase):
    """Stateless no-op span shared by every disabled-mode call site."""

    __slots__ = ()


#: The singleton handed out whenever telemetry is disabled.
NULL_SPAN = NullSpan()


class Span(SpanBase):
    """One recorded operation."""

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "start",
        "end",
        "attrs",
        "error",
        "_recorder",
    )

    def __init__(
        self,
        name: str,
        span_id: int,
        parent_id: int | None,
        start: float,
        recorder: "SpanRecorder",
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.end: float | None = None
        self.attrs: dict[str, object] = {}
        self.error: str | None = None
        self._recorder = recorder

    def set(self, **attrs: object) -> "Span":
        self.attrs.update(attrs)
        return self

    def set_lazy(self, **attrs: Callable[[], object]) -> "Span":
        self.attrs.update(attrs)
        return self

    def resolved_attrs(self) -> dict[str, object]:
        """Attributes with lazy thunks evaluated (memoized back in place)."""
        for key, value in self.attrs.items():
            if callable(value):
                self.attrs[key] = value()
        return self.attrs

    def finish(self, **attrs: object) -> None:
        if self.end is not None:
            return  # idempotent: double-finish keeps the first end time
        if attrs:
            self.attrs.update(attrs)
        self._recorder._finish(self)

    @property
    def duration(self) -> float:
        """Elapsed sim time (0.0 while still open)."""
        return 0.0 if self.end is None else self.end - self.start

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        if exc_type is not None and self.error is None:
            self.error = exc_type.__name__
        self.finish()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "open" if self.end is None else f"{self.duration:.6f}s"
        return f"Span({self.name!r}, id={self.span_id}, {state})"


class SpanRecorder:
    """Creates spans, tracks per-thread nesting, retains finished spans.

    Parameters
    ----------
    clock:
        The telemetry clock (sim time).
    max_spans:
        Retention cap; the oldest finished spans are evicted beyond it and
        :attr:`dropped` counts how many were lost.

    A streaming consumer (:class:`repro.telemetry.stream.JsonlSpanStream`)
    attaches itself as :attr:`sink`: a callable given each finished span,
    returning ``True`` to consume it (the recorder then does **not**
    retain it — bounded memory — and counts it in :attr:`streamed`) or
    ``False`` to fall back to retention.
    """

    def __init__(self, clock: Callable[[], float], max_spans: int = 100_000) -> None:
        if max_spans <= 0:
            raise ValueError(f"max_spans must be positive, got {max_spans}")
        self._clock = clock
        self.max_spans = max_spans
        self.finished: list[Span] = []
        self.dropped = 0
        self.streamed = 0
        self.sink: Callable[[Span], bool] | None = None
        self._lock = threading.Lock()
        self._ids = 0
        self._stacks = threading.local()

    def _stack(self) -> list[int]:
        stack = getattr(self._stacks, "value", None)
        if stack is None:
            stack = []
            self._stacks.value = stack
        return stack

    def start(self, name: str, **attrs: object) -> Span:
        """Open a span; the current thread's innermost open span is its parent."""
        stack = self._stack()
        parent_id = stack[-1] if stack else None
        with self._lock:
            self._ids += 1
            span_id = self._ids
        span = Span(
            name=name,
            span_id=span_id,
            parent_id=parent_id,
            start=self._clock(),
            recorder=self,
        )
        if attrs:
            span.attrs.update(attrs)
        stack.append(span_id)
        return span

    def _finish(self, span: Span) -> None:
        span.end = self._clock()
        stack = self._stack()
        # Pop the span from this thread's stack if it is still on it (it
        # may not be: explicit-finish spans can outlive sibling scopes, or
        # finish on a different thread than they started on).
        if span.span_id in stack:
            while stack and stack[-1] != span.span_id:
                stack.pop()
            if stack:
                stack.pop()
        sink = self.sink
        if sink is not None and sink(span):
            with self._lock:
                self.streamed += 1
            return
        with self._lock:
            self.finished.append(span)
            overflow = len(self.finished) - self.max_spans
            if overflow > 0:
                del self.finished[:overflow]
                self.dropped += overflow

    def finished_snapshot(self) -> list[Span]:
        """Copy of the retained finished spans, taken under the lock.

        The exporters' accessor: the udprpc receive thread appends to
        :attr:`finished` concurrently, so consumers outside this class
        must never iterate the live list.
        """
        with self._lock:
            return list(self.finished)

    def drop_stats(self) -> tuple[int, int]:
        """``(evicted, streamed)`` counters, read consistently under the lock."""
        with self._lock:
            return self.dropped, self.streamed

    def by_name(self, name: str) -> list[Span]:
        """Finished spans with the given name, in finish order."""
        with self._lock:
            return [span for span in self.finished if span.name == name]

    def names(self) -> list[str]:
        """Distinct finished-span names, sorted."""
        with self._lock:
            return sorted({span.name for span in self.finished})

    def reset(self) -> None:
        """Drop all finished spans (open spans keep recording)."""
        with self._lock:
            self.finished.clear()
            self.dropped = 0
            self.streamed = 0

"""Span tracing: timed, attributed operations on the sim clock.

A span covers one logical operation — a DAT build, an aggregation round, a
MAAN query resolution, a churn event — with start/end timestamps from the
telemetry clock and free-form attributes (node id, tree key, hop/depth
counts). Two usage shapes:

* context manager (synchronous work)::

      with telemetry.span("dat.build", key=key, scheme="balanced") as sp:
          tree = ...
          sp.set(height=tree.height)

* explicit start/finish (asynchronous protocol rounds that complete in a
  later callback)::

      sp = telemetry.span("dat.collect", node=self.ident, key=key)
      sp.detach()               # leave the per-thread nesting stack
      ...                       # round completes messages later
      sp.set(n_states=len(states))
      sp.finish()

Parent/child nesting is tracked per thread (the DES is single-threaded;
the UDP transport dispatches from its own receive thread), so exported
spans form trees without any explicit context passing. A span that stays
open across the creating call frame should :meth:`~Span.detach` before
that frame returns — otherwise unrelated spans started later on the same
thread would nest under it.

Distributed tracing (opt-in via ``TelemetryConfig(tracing=True)``) builds
on the same spans: a :class:`TraceContext` — trace id, parent span id,
hop count — rides in message payloads under :data:`TRACE_KEY`, and
:meth:`SpanRecorder.start_remote` opens a span whose parent lives on
another node. Span identifiers are qualified as ``"<site>:<span_id>"``
(the *site* is the recorder's identity — constant in the single-process
simulator, the node ident in a fleet agent) so ids from many per-node
exports never collide.

When telemetry is disabled, instrumentation sites receive the shared
:data:`NULL_SPAN` — a stateless singleton whose every method is a no-op.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from types import TracebackType
from typing import Callable

__all__ = [
    "SpanBase",
    "Span",
    "NullSpan",
    "NULL_SPAN",
    "SpanRecorder",
    "TraceContext",
    "TRACE_KEY",
]

#: Payload key the wire-encoded trace context rides under. Message payloads
#: are plain JSON objects on every substrate, so the context survives
#: encode/decode — including each inner message of a ``net_batch`` envelope.
TRACE_KEY = "_trace"


@dataclass(frozen=True)
class TraceContext:
    """The compact cross-node trace context carried in message payloads.

    ``trace_id`` names the whole causal tree (the root span's qualified
    id); ``parent`` is the qualified id (``"site:span_id"``) of the span
    the next hop should attach under; ``hop`` counts remote edges from the
    root, so receivers can report per-hop depth without assembling the
    tree.
    """

    trace_id: str
    parent: str
    hop: int = 0

    def to_wire(self) -> list[object]:
        """The JSON-serializable wire form: ``[trace_id, parent, hop]``."""
        return [self.trace_id, self.parent, self.hop]

    @classmethod
    def from_wire(cls, wire: object) -> "TraceContext | None":
        """Parse the wire form; ``None`` for anything malformed (tolerant:
        a corrupt context must not kill a message handler)."""
        if (
            isinstance(wire, (list, tuple))
            and len(wire) == 3
            and isinstance(wire[0], str)
            and isinstance(wire[1], str)
            and isinstance(wire[2], int)
        ):
            return cls(trace_id=wire[0], parent=wire[1], hop=wire[2])
        return None

    @classmethod
    def extract(cls, source: object) -> "TraceContext | None":
        """Pull a context out of a message, a payload dict, or pass one
        through unchanged. Accepts anything with a ``payload`` attribute
        (duck-typed so this package never imports ``repro.sim``)."""
        if source is None or isinstance(source, cls):
            return source
        payload = getattr(source, "payload", source)
        if isinstance(payload, dict):
            return cls.from_wire(payload.get(TRACE_KEY))
        return None


def _attach_wire(wire: list[object], target: object) -> None:
    payload = getattr(target, "payload", target)
    if isinstance(payload, dict):
        payload[TRACE_KEY] = wire


class SpanBase:
    """The interface instrumentation sites program against."""

    def set(self, **attrs: object) -> "SpanBase":
        """Attach (or overwrite) attributes; returns self for chaining."""
        return self

    def set_lazy(self, **attrs: Callable[[], object]) -> "SpanBase":
        """Attach attributes as zero-arg thunks, evaluated only at export.

        For expensive values (an O(n) tree walk): the span keeps the
        callable, and exporters call :meth:`Span.resolved_attrs` to
        materialize it. Spans that are sampled out or evicted never pay
        the cost.
        """
        return self

    def finish(self, **attrs: object) -> None:
        """End the span (idempotent); optional final attributes."""

    def detach(self) -> "SpanBase":
        """Leave the per-thread nesting stack without finishing.

        For spans that outlive their creating call frame (asynchronous
        rounds): later unrelated spans on the same thread must not nest
        under them. Returns self for chaining.
        """
        return self

    def trace_context(self) -> TraceContext | None:
        """This span's propagation context (``None`` unless tracing)."""
        return None

    def propagate(self, *targets: object) -> "SpanBase":
        """Attach this span's trace context to message payloads.

        Overwrites any context already present (a forwarded message built
        as ``{**payload, ...}`` carries the *incoming* context, which must
        be replaced by this hop's). No-op unless tracing is enabled.
        """
        return self

    def __enter__(self) -> "SpanBase":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.finish()


class NullSpan(SpanBase):
    """Stateless no-op span shared by every disabled-mode call site."""

    __slots__ = ()


#: The singleton handed out whenever telemetry is disabled.
NULL_SPAN = NullSpan()


class Span(SpanBase):
    """One recorded operation."""

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "start",
        "end",
        "attrs",
        "error",
        "trace_id",
        "remote_parent",
        "hop",
        "_recorder",
    )

    def __init__(
        self,
        name: str,
        span_id: int,
        parent_id: int | None,
        start: float,
        recorder: "SpanRecorder",
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.end: float | None = None
        self.attrs: dict[str, object] = {}
        self.error: str | None = None
        #: Trace membership (set by the recorder when tracing is enabled).
        self.trace_id: str | None = None
        #: Qualified id of a parent on another node (``start_remote``).
        self.remote_parent: str | None = None
        #: Remote edges between this span and its trace root.
        self.hop: int = 0
        self._recorder = recorder

    def set(self, **attrs: object) -> "Span":
        self.attrs.update(attrs)
        return self

    def set_lazy(self, **attrs: Callable[[], object]) -> "Span":
        self.attrs.update(attrs)
        return self

    def resolved_attrs(self) -> dict[str, object]:
        """Attributes with lazy thunks evaluated (memoized back in place)."""
        for key, value in self.attrs.items():
            if callable(value):
                self.attrs[key] = value()
        return self.attrs

    def finish(self, **attrs: object) -> None:
        if self.end is not None:
            return  # idempotent: double-finish keeps the first end time
        if attrs:
            self.attrs.update(attrs)
        self._recorder._finish(self)

    def detach(self) -> "Span":
        self._recorder._deactivate(self)
        return self

    @property
    def duration(self) -> float:
        """Elapsed sim time (0.0 while still open)."""
        return 0.0 if self.end is None else self.end - self.start

    @property
    def sid(self) -> str:
        """Globally qualified span id: ``"<site>:<span_id>"``."""
        return f"{self._recorder.site}:{self.span_id}"

    def qualified_parent(self) -> str | None:
        """Qualified id of the parent span (remote edge wins), or None."""
        if self.remote_parent is not None:
            return self.remote_parent
        if self.parent_id is not None:
            return f"{self._recorder.site}:{self.parent_id}"
        return None

    def trace_context(self) -> TraceContext | None:
        if self.trace_id is None:
            return None
        return TraceContext(trace_id=self.trace_id, parent=self.sid, hop=self.hop)

    def propagate(self, *targets: object) -> "Span":
        ctx = self.trace_context()
        if ctx is not None:
            wire = ctx.to_wire()
            for target in targets:
                _attach_wire(wire, target)
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        if exc_type is not None and self.error is None:
            self.error = exc_type.__name__
        self.finish()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "open" if self.end is None else f"{self.duration:.6f}s"
        return f"Span({self.name!r}, id={self.span_id}, {state})"


class SpanRecorder:
    """Creates spans, tracks per-thread nesting, retains finished spans.

    Parameters
    ----------
    clock:
        The telemetry clock (sim time).
    max_spans:
        Retention cap; the oldest finished spans are evicted beyond it and
        :attr:`dropped` counts how many were lost.
    site:
        Identity prefix for qualified span ids. ``"0"`` in the
        single-process simulator (one recorder, globally unique span ids);
        fleet agents set their node ident so per-node exports merge
        without id collisions.
    tracing:
        When ``True``, every root span is assigned a fresh ``trace_id``
        (its own qualified id), children inherit it, and
        :meth:`start_remote` joins traces arriving from other nodes.

    A streaming consumer (:class:`repro.telemetry.stream.JsonlSpanStream`)
    attaches itself as :attr:`sink`: a callable given each finished span,
    returning ``True`` to consume it (the recorder then does **not**
    retain it — bounded memory — and counts it in :attr:`streamed`) or
    ``False`` to fall back to retention.
    """

    def __init__(
        self,
        clock: Callable[[], float],
        max_spans: int = 100_000,
        site: str = "0",
        tracing: bool = False,
    ) -> None:
        if max_spans <= 0:
            raise ValueError(f"max_spans must be positive, got {max_spans}")
        if not site:
            raise ValueError("site must be a non-empty string")
        self._clock = clock
        self.max_spans = max_spans
        self.site = site
        self.tracing = tracing
        self.finished: list[Span] = []
        self.dropped = 0
        self.streamed = 0
        self.sink: Callable[[Span], bool] | None = None
        self._lock = threading.Lock()
        self._ids = 0
        self._stacks = threading.local()

    def _stack(self) -> list[Span]:
        stack = getattr(self._stacks, "value", None)
        if stack is None:
            stack = []
            self._stacks.value = stack
        return stack  # type: ignore[no-any-return]

    def _new_span(self, name: str, parent_id: int | None) -> Span:
        with self._lock:
            self._ids += 1
            span_id = self._ids
        return Span(
            name=name,
            span_id=span_id,
            parent_id=parent_id,
            start=self._clock(),
            recorder=self,
        )

    def start(self, name: str, **attrs: object) -> Span:
        """Open a span; the current thread's innermost open span is its parent."""
        stack = self._stack()
        parent = stack[-1] if stack else None
        span = self._new_span(name, parent.span_id if parent is not None else None)
        if self.tracing:
            if parent is not None and parent.trace_id is not None:
                span.trace_id = parent.trace_id
                span.hop = parent.hop
            else:
                span.trace_id = f"{self.site}:{span.span_id}"
        if attrs:
            span.attrs.update(attrs)
        stack.append(span)
        return span

    def start_trace(self, name: str, **attrs: object) -> Span:
        """Open a span that roots a **new trace**, ignoring ambient nesting.

        Continuous-mode protocol events — a DAT push climbing the tree, a
        periodic gather round — are causal units of their own: the span
        that happens to be open on this thread (an experiment phase, a
        driver frame) is operational context, not a causal parent. This
        starts the span with no parent and, under tracing, a fresh
        ``trace_id``, so each such event assembles into its own rooted
        causal tree rather than being absorbed into the harness's trace.
        """
        span = self._new_span(name, None)
        if self.tracing:
            span.trace_id = f"{self.site}:{span.span_id}"
        if attrs:
            span.attrs.update(attrs)
        self._stack().append(span)
        return span

    def start_remote(self, ctx: TraceContext | None, name: str, **attrs: object) -> Span:
        """Open a span whose parent lives on another node.

        ``ctx`` is the :class:`TraceContext` carried by the incoming
        request; the new span joins that trace one hop deeper, ignoring
        this thread's local nesting stack (the handler frame's causal
        parent is the remote caller, not whatever happens to be open
        locally). With ``ctx=None`` — or tracing disabled — this is
        exactly :meth:`start`.
        """
        if ctx is None or not self.tracing:
            return self.start(name, **attrs)
        span = self._new_span(name, None)
        span.trace_id = ctx.trace_id
        span.remote_parent = ctx.parent
        span.hop = ctx.hop + 1
        if attrs:
            span.attrs.update(attrs)
        self._stack().append(span)
        return span

    def current(self) -> Span | None:
        """The current thread's innermost open span, or ``None``."""
        stack = self._stack()
        return stack[-1] if stack else None

    def _deactivate(self, span: Span) -> None:
        stack = self._stack()
        if span in stack:
            stack.remove(span)

    def _finish(self, span: Span) -> None:
        span.end = self._clock()
        stack = self._stack()
        # Pop the span from this thread's stack if it is still on it (it
        # may not be: explicit-finish spans can outlive sibling scopes,
        # detach first, or finish on a different thread than they started
        # on).
        if span in stack:
            while stack and stack[-1] is not span:
                stack.pop()
            if stack:
                stack.pop()
        sink = self.sink
        if sink is not None and sink(span):
            with self._lock:
                self.streamed += 1
            return
        with self._lock:
            self.finished.append(span)
            overflow = len(self.finished) - self.max_spans
            if overflow > 0:
                del self.finished[:overflow]
                self.dropped += overflow

    def finished_snapshot(self) -> list[Span]:
        """Copy of the retained finished spans, taken under the lock.

        The exporters' accessor: the udprpc receive thread appends to
        :attr:`finished` concurrently, so consumers outside this class
        must never iterate the live list.
        """
        with self._lock:
            return list(self.finished)

    def drop_stats(self) -> tuple[int, int]:
        """``(evicted, streamed)`` counters, read consistently under the lock."""
        with self._lock:
            return self.dropped, self.streamed

    def by_name(self, name: str) -> list[Span]:
        """Finished spans with the given name, in finish order."""
        with self._lock:
            return [span for span in self.finished if span.name == name]

    def names(self) -> list[str]:
        """Distinct finished-span names, sorted."""
        with self._lock:
            return sorted({span.name for span in self.finished})

    def reset(self) -> None:
        """Drop all finished spans (open spans keep recording)."""
        with self._lock:
            self.finished.clear()
            self.dropped = 0
            self.streamed = 0

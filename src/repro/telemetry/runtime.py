"""The telemetry runtime: one process-global, disabled-by-default instance.

Instrumentation sites never hold telemetry objects; they call the
module-level helpers (:func:`span`, :func:`count`, :func:`observe`,
:func:`gauge_set`), each of which starts with a single read of the module
global. When telemetry is disabled — the default — that read returns
``None`` and the helper returns immediately (handing back the shared
:data:`~repro.telemetry.spans.NULL_SPAN` where a span is expected). The
benchmark ``benchmarks/bench_telemetry_overhead.py`` gates this no-op path
at ≤3% overhead on the balanced-DAT build hot path.

The runtime's clock defaults to a constant 0.0; hosts that own a time
source bind it with :func:`bind_clock` (``SimTransport`` binds the
discrete-event engine's virtual ``now`` on construction). Wall clocks are
banned here by datlint rule DAT008 — a telemetry stream stamped from
``time.time()`` would differ across replays of the same seeded run.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import IO, TYPE_CHECKING, Callable, Iterator

from repro.telemetry.config import TelemetryConfig
from repro.telemetry.hotspot import HotspotAccountant, LoadSample
from repro.telemetry.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.telemetry.spans import (
    NULL_SPAN,
    TRACE_KEY,
    Span,
    SpanBase,
    SpanRecorder,
    TraceContext,
)

if TYPE_CHECKING:
    from repro.telemetry.stream import TelemetryStream

__all__ = [
    "Telemetry",
    "configure",
    "disable",
    "active",
    "is_enabled",
    "enabled",
    "bind_clock",
    "span",
    "trace_span",
    "remote_span",
    "current_span",
    "tracing_enabled",
    "propagate_current",
    "count",
    "observe",
    "gauge_set",
    "sample_hotspots",
]


def _zero_clock() -> float:
    return 0.0


class Telemetry:
    """One configured telemetry instance: metrics + spans + hotspots.

    Construct directly for isolated use (tests); production code installs
    one globally via :func:`configure` and reaches it through the helpers.
    """

    def __init__(self, config: TelemetryConfig | None = None) -> None:
        self.config = config if config is not None else TelemetryConfig(enabled=True)
        self._clock: Callable[[], float] = _zero_clock
        self.metrics = MetricsRegistry(
            clock=self.now, default_buckets=self.config.default_buckets()
        )
        self.spans = SpanRecorder(
            clock=self.now,
            max_spans=self.config.max_spans,
            site=self.config.site,
            tracing=self.config.tracing,
        )
        self._bucket_overrides = self.config.bucket_overrides()
        self._hotspots: dict[str, HotspotAccountant] = {}
        self._lock = threading.Lock()

    def now(self) -> float:
        """Current telemetry time (sim clock once bound; 0.0 before)."""
        return self._clock()

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Adopt ``clock`` as the time source for every future timestamp."""
        self._clock = clock

    # -- metrics (namespaced) ----------------------------------------------

    def _qualify(self, name: str) -> str:
        prefix = self.config.namespace + "_"
        return name if name.startswith(prefix) else prefix + name

    def _unqualify(self, name: str) -> str:
        prefix = self.config.namespace + "_"
        return name[len(prefix):] if name.startswith(prefix) else name

    def counter(
        self, name: str, help_text: str = "", labels: tuple[str, ...] = ()
    ) -> Counter:
        """Get or create the namespaced counter family ``name``."""
        return self.metrics.counter(self._qualify(name), help_text, labels)

    def gauge(
        self, name: str, help_text: str = "", labels: tuple[str, ...] = ()
    ) -> Gauge:
        """Get or create the namespaced gauge family ``name``."""
        return self.metrics.gauge(self._qualify(name), help_text, labels)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: tuple[str, ...] = (),
        buckets: tuple[float, ...] | None = None,
    ) -> Histogram:
        """Get or create the namespaced histogram family ``name``.

        When the caller passes no explicit ``buckets``, the config's
        per-metric overrides (keyed by unqualified name) are consulted
        before falling back to the global log-spaced grid.
        """
        if buckets is None:
            buckets = self._bucket_overrides.get(self._unqualify(name))
        return self.metrics.histogram(self._qualify(name), help_text, labels, buckets)

    # -- spans -------------------------------------------------------------

    def span(self, name: str, **attrs: object) -> Span:
        """Open a span; finish it via context manager or ``finish()``."""
        return self.spans.start(name, **attrs)

    def trace_span(self, name: str, **attrs: object) -> Span:
        """Open a span rooting a new trace (ignores the ambient span)."""
        return self.spans.start_trace(name, **attrs)

    def remote_span(self, source: object, name: str, **attrs: object) -> Span:
        """Open a span parented by a remote caller's trace context.

        ``source`` may be a :class:`~repro.telemetry.spans.TraceContext`,
        a message (anything with a ``payload`` dict), a payload dict, or
        ``None`` — context extraction is tolerant, so handlers can pass
        the incoming request unconditionally.
        """
        return self.spans.start_remote(TraceContext.extract(source), name, **attrs)

    # -- hotspot accounting ------------------------------------------------

    def hotspots(self, name: str = "transport") -> HotspotAccountant:
        """Get or create the named per-node load accountant.

        Transports register under their own name (``"transport"`` by
        default); experiments create per-scheme accountants (the Fig. 8
        harness uses ``"fig8.basic"`` / ``"fig8.balanced"`` / ...).
        """
        with self._lock:
            accountant = self._hotspots.get(name)
            if accountant is None:
                accountant = HotspotAccountant(percentiles=self.config.percentiles)
                self._hotspots[name] = accountant
            return accountant

    def register_hotspots(self, name: str, accountant: HotspotAccountant) -> None:
        """Adopt an externally owned accountant (a transport's counters)."""
        with self._lock:
            self._hotspots[name] = accountant

    def hotspot_names(self) -> list[str]:
        """Registered accountant names, sorted."""
        with self._lock:
            return sorted(self._hotspots)

    def sample_hotspots(self, at: float | None = None) -> dict[str, LoadSample]:
        """Snapshot every registered accountant at time ``at`` (now if None).

        Each sample is appended to its accountant's rolling series;
        transports with an engine do this periodically via tick hooks, and
        experiments can call it at interesting instants.
        """
        when = self.now() if at is None else at
        with self._lock:
            accountants = dict(self._hotspots)
        return {name: acc.sample(when) for name, acc in sorted(accountants.items())}

    # -- streaming export --------------------------------------------------

    def attach_stream(
        self,
        out: IO[str],
        chunk_size: int | None = None,
        sample_every: int | None = None,
    ) -> "TelemetryStream":
        """Start a live JSONL export: spans stream to ``out`` as they finish.

        Returns the :class:`~repro.telemetry.stream.TelemetryStream`
        session; call its ``close()`` to flush the final chunk and append
        the end-of-run snapshot (config, metrics, hotspots, drop
        accounting). Defaults come from the config's ``span_chunk_size``
        and ``span_sample_every``.
        """
        from repro.telemetry.stream import TelemetryStream

        return TelemetryStream(
            self, out, chunk_size=chunk_size, sample_every=sample_every
        )

    def reset(self) -> None:
        """Clear metrics, finished spans, and hotspot accountants."""
        self.metrics.reset()
        self.spans.reset()
        with self._lock:
            for accountant in self._hotspots.values():
                accountant.reset()


# The process-global instance. ``None`` means disabled — the common case —
# so every helper's fast path is one global read and one ``is None`` test.
_active: Telemetry | None = None


def configure(
    config: TelemetryConfig | None = None, **overrides: object
) -> Telemetry | None:
    """Install the global telemetry runtime from ``config`` (or overrides).

    ``configure(enabled=True)`` is the usual call. A config with
    ``enabled=False`` (the default ``TelemetryConfig()``) uninstalls —
    configure-as-written always leaves the global matching the config.
    Returns the installed instance, or ``None`` when disabled.
    """
    global _active
    if config is None:
        config = TelemetryConfig(**overrides)  # type: ignore[arg-type]
    elif overrides:
        raise TypeError("pass either a TelemetryConfig or keyword overrides, not both")
    if not config.enabled:
        _active = None
        return None
    _active = Telemetry(config)
    return _active


def disable() -> None:
    """Uninstall the global runtime; every helper reverts to the no-op path."""
    global _active
    _active = None


def active() -> Telemetry | None:
    """The installed runtime, or ``None`` when telemetry is disabled."""
    return _active


def is_enabled() -> bool:
    """Whether a telemetry runtime is currently installed."""
    return _active is not None


@contextmanager
def enabled(
    config: TelemetryConfig | None = None, **overrides: object
) -> Iterator[Telemetry]:
    """Temporarily install a runtime (tests / scoped experiment runs).

    Restores the previous global — installed or not — on exit.
    """
    global _active
    previous = _active
    if config is None:
        overrides.setdefault("enabled", True)
        config = TelemetryConfig(**overrides)  # type: ignore[arg-type]
    elif overrides:
        raise TypeError("pass either a TelemetryConfig or keyword overrides, not both")
    if not config.enabled:
        raise ValueError("enabled() requires a config with enabled=True")
    instance = Telemetry(config)
    _active = instance
    try:
        yield instance
    finally:
        _active = previous


def bind_clock(clock: Callable[[], float]) -> None:
    """Bind the time source on the active runtime (no-op when disabled)."""
    tel = _active
    if tel is not None:
        tel.bind_clock(clock)


# -- no-op-gated helpers (the instrumentation surface) ---------------------


def span(name: str, **attrs: object) -> SpanBase:
    """Open a span on the active runtime; :data:`NULL_SPAN` when disabled."""
    tel = _active
    if tel is None:
        return NULL_SPAN
    return tel.span(name, **attrs)


def tracing_enabled() -> bool:
    """Whether distributed tracing is on (runtime installed + ``tracing``).

    Per-hop span sites gate on this so span name sets — and message byte
    sizes — are unchanged for plain span-enabled runs.
    """
    tel = _active
    return tel is not None and tel.spans.tracing


def trace_span(name: str, **attrs: object) -> SpanBase:
    """Open a span that roots a new trace on the active runtime.

    Unlike :func:`span`, the new span takes no parent from this thread's
    nesting stack — under tracing it mints a fresh ``trace_id``. Protocol
    events that are causal units of their own (each continuous-mode DAT
    push, each gather round) start here so they assemble into distinct
    rooted trees even when a harness span (an experiment phase) is open.
    Returns :data:`NULL_SPAN` when disabled.
    """
    tel = _active
    if tel is None:
        return NULL_SPAN
    return tel.trace_span(name, **attrs)


def remote_span(source: object, name: str, **attrs: object) -> SpanBase:
    """Open a span joined to a remote caller's trace.

    ``source`` is the incoming request (or its payload, or an explicit
    :class:`~repro.telemetry.spans.TraceContext`). Returns
    :data:`NULL_SPAN` unless tracing is enabled — remote spans are a
    tracing-mode feature; plain span-enabled runs see no new span names.
    """
    tel = _active
    if tel is None or not tel.spans.tracing:
        return NULL_SPAN
    return tel.remote_span(source, name, **attrs)


def current_span() -> Span | None:
    """The current thread's innermost open span (None when disabled)."""
    tel = _active
    if tel is None:
        return None
    return tel.spans.current()


def propagate_current(message: object) -> None:
    """Thread the current span's trace context into ``message``'s payload.

    The ``repro.net`` send paths call this on every outbound message so
    services get propagation for free. Fills only when the payload does
    not already carry a context — forwarding hops that must *replace* the
    incoming context do so explicitly via ``Span.propagate``. No-op when
    tracing is off or no span is open.
    """
    tel = _active
    if tel is None:
        return
    recorder = tel.spans
    if not recorder.tracing:
        return
    current = recorder.current()
    if current is None:
        return
    payload = getattr(message, "payload", None)
    if isinstance(payload, dict) and TRACE_KEY not in payload:
        current.propagate(message)


def count(name: str, amount: float = 1.0, **labels: object) -> None:
    """Increment a counter on the active runtime (no-op when disabled).

    Label names are taken from the keyword names, sorted, so every call
    site for a given metric must pass the same label set.
    """
    tel = _active
    if tel is None:
        return
    tel.counter(name, labels=tuple(sorted(labels))).inc(amount, **labels)


def observe(name: str, value: float, **labels: object) -> None:
    """Record a histogram observation (no-op when disabled)."""
    tel = _active
    if tel is None:
        return
    tel.histogram(name, labels=tuple(sorted(labels))).observe(value, **labels)


def gauge_set(name: str, value: float, **labels: object) -> None:
    """Set a gauge (no-op when disabled)."""
    tel = _active
    if tel is None:
        return
    tel.gauge(name, labels=tuple(sorted(labels))).set(value, **labels)


def sample_hotspots(at: float | None = None) -> dict[str, LoadSample]:
    """Snapshot every registered hotspot accountant (empty when disabled)."""
    tel = _active
    if tel is None:
        return {}
    return tel.sample_hotspots(at)

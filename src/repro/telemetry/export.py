"""Exporters: JSONL event stream and Prometheus text exposition format.

Both exports are pure functions of a :class:`~repro.telemetry.runtime.Telemetry`
instance's current state, fully ordered (families by name, series by label
values, spans by finish order), so a seeded run exports byte-identical
streams across replays — the property the fig8-from-telemetry integration
test relies on.

JSONL: one JSON object per line, discriminated by ``"type"``:
``config``, ``metric``, ``span``, ``hotspot_node``, ``hotspot_sample``,
``span_drops`` (drop accounting: evicted/streamed/sampled-out span
counts, so a truncated export is never silently mistaken for a complete
one). The per-record builders (:func:`config_record`, :func:`span_record`,
...) are shared with the streaming exporter in
:mod:`repro.telemetry.stream`, which emits the same records
incrementally.

Prometheus: the text exposition format — ``# HELP`` / ``# TYPE`` headers,
one line per labeled series; histogram buckets are emitted cumulatively
with the standard ``le`` label (internal storage is per-bucket). Hotspot
accountants are flattened to ``*_hotspot_node_messages`` per-node gauges
plus ``*_hotspot_{max,mean,imbalance}`` summary gauges so a scrape alone
reconstructs the Fig. 8 load distribution.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict
from typing import IO, TYPE_CHECKING, Iterator

from repro.telemetry.hotspot import HotspotAccountant
from repro.telemetry.metrics import MetricSample
from repro.telemetry.spans import Span, SpanRecorder

if TYPE_CHECKING:
    from repro.telemetry.runtime import Telemetry

__all__ = [
    "encode_record",
    "config_record",
    "metric_record",
    "span_record",
    "span_drops_record",
    "hotspot_records",
    "jsonl_lines",
    "write_jsonl",
    "prometheus_text",
    "write_prometheus",
]


def _fmt(value: float) -> str:
    """Prometheus-style number: integers bare, +Inf spelled, else repr."""
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _label_str(labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    body = ",".join(f'{name}="{_escape_label(value)}"' for name, value in labels)
    return "{" + body + "}"


# -- JSONL record builders (shared with the streaming exporter) -------------


def encode_record(record: dict[str, object]) -> str:
    """One JSONL line (no trailing newline): sorted keys, compact separators."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def config_record(tel: "Telemetry") -> dict[str, object]:
    """The export's ``config`` header record."""
    return {
        "type": "config",
        "namespace": tel.config.namespace,
        "max_spans": tel.config.max_spans,
        "span_chunk_size": tel.config.span_chunk_size,
        "span_sample_every": tel.config.span_sample_every,
        "sample_window": tel.config.sample_window,
        "percentiles": list(tel.config.percentiles),
        "exported_at": tel.now(),
    }


def metric_record(sample: MetricSample) -> dict[str, object]:
    """One ``metric`` record from a registry sample."""
    record: dict[str, object] = {
        "type": "metric",
        "name": sample.name,
        "kind": sample.kind,
        "labels": sample.labels_dict(),
        "value": sample.value,
        "updated_at": sample.updated_at,
    }
    if sample.kind == "histogram":
        record["buckets"] = list(sample.buckets)
        record["bucket_counts"] = list(sample.bucket_counts)
        record["count"] = sample.count
    return record


def span_record(span: Span) -> dict[str, object]:
    """One ``span`` record; lazy attributes are resolved here.

    With tracing enabled the record additionally carries the causal-tree
    fields :mod:`repro.telemetry.traces` assembles from: ``trace_id``,
    the globally qualified ``sid`` / ``trace_parent`` ids, the remote
    ``hop`` count, and the executing ``node`` (lifted from the span's
    ``node`` attribute when set). Without tracing the record is
    byte-identical to what it always was.
    """
    attrs = span.resolved_attrs()
    record: dict[str, object] = {
        "type": "span",
        "name": span.name,
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "start": span.start,
        "end": span.end,
        "attrs": attrs,
        "error": span.error,
    }
    if span.trace_id is not None:
        record["trace_id"] = span.trace_id
        record["sid"] = span.sid
        record["trace_parent"] = span.qualified_parent()
        record["hop"] = span.hop
        node = attrs.get("node")
        if node is not None:
            record["node"] = node
    return record


def span_drops_record(
    spans: SpanRecorder,
    sampled_out: int = 0,
    sampled_out_by_name: dict[str, int] | None = None,
) -> dict[str, object]:
    """The ``span_drops`` accounting record.

    ``evicted`` counts retention-cap losses (``max_spans``), ``streamed``
    counts spans consumed by a streaming sink, and ``sampled_out`` those
    the stream's sampling knob skipped — spans an export is missing are
    always reported, never silent.
    """
    evicted, streamed = spans.drop_stats()
    return {
        "type": "span_drops",
        "evicted": evicted,
        "streamed": streamed,
        "sampled_out": sampled_out,
        "sampled_out_by_name": dict(sorted((sampled_out_by_name or {}).items())),
    }


def hotspot_records(
    name: str, accountant: HotspotAccountant
) -> Iterator[dict[str, object]]:
    """``hotspot_node`` records (sorted by node) then ``hotspot_sample``s."""
    loads = accountant.loads()
    for node in sorted(loads):
        load = accountant.load(node)
        yield {
            "type": "hotspot_node",
            "accountant": name,
            "node": node,
            "sent": load.sent,
            "received": load.received,
            "bytes_sent": load.bytes_sent,
            "bytes_received": load.bytes_received,
            "total": load.total,
        }
    for point in accountant.series_snapshot():
        sample_record = asdict(point)
        sample_record["percentiles"] = [list(pair) for pair in point.percentiles]
        sample_record["type"] = "hotspot_sample"
        sample_record["accountant"] = name
        yield sample_record


def jsonl_lines(tel: "Telemetry") -> Iterator[str]:
    """Yield the telemetry state as JSONL lines (no trailing newlines)."""
    yield encode_record(config_record(tel))
    for sample in tel.metrics.samples():
        yield encode_record(metric_record(sample))
    for span in tel.spans.finished_snapshot():
        yield encode_record(span_record(span))
    yield encode_record(span_drops_record(tel.spans))
    for name in tel.hotspot_names():
        for record in hotspot_records(name, tel.hotspots(name)):
            yield encode_record(record)


def write_jsonl(tel: "Telemetry", out: IO[str]) -> int:
    """Write the JSONL export to ``out``; returns the line count."""
    n = 0
    for line in jsonl_lines(tel):
        out.write(line)
        out.write("\n")
        n += 1
    return n


# -- Prometheus text format -------------------------------------------------


def _histogram_lines(sample: MetricSample) -> Iterator[str]:
    cumulative = 0
    bounds = [*sample.buckets, math.inf]
    for bound, bucket_count in zip(bounds, sample.bucket_counts):
        cumulative += bucket_count
        labels = (*sample.labels, ("le", _fmt(bound)))
        yield f"{sample.name}_bucket{_label_str(labels)} {cumulative}"
    yield f"{sample.name}_sum{_label_str(sample.labels)} {_fmt(sample.value)}"
    yield f"{sample.name}_count{_label_str(sample.labels)} {sample.count}"


def prometheus_lines(tel: "Telemetry") -> Iterator[str]:
    """Yield the telemetry state in Prometheus text exposition format."""
    for family in tel.metrics.families():
        if family.help_text:
            yield f"# HELP {family.name} {family.help_text}"
        yield f"# TYPE {family.name} {family.kind}"
        for sample in family.samples():
            if sample.kind == "histogram":
                yield from _histogram_lines(sample)
            else:
                yield (
                    f"{sample.name}{_label_str(sample.labels)} {_fmt(sample.value)}"
                )
    ns = tel.config.namespace
    hotspot_names = tel.hotspot_names()
    if hotspot_names:
        node_metric = f"{ns}_hotspot_node_messages"
        yield f"# HELP {node_metric} Per-node message load (sent + received)."
        yield f"# TYPE {node_metric} gauge"
        for name in hotspot_names:
            accountant = tel.hotspots(name)
            loads = accountant.loads()
            for node in sorted(loads):
                load = accountant.load(node)
                for direction, value in (
                    ("sent", load.sent),
                    ("received", load.received),
                ):
                    labels = (
                        ("accountant", name),
                        ("direction", direction),
                        ("node", str(node)),
                    )
                    yield f"{node_metric}{_label_str(labels)} {value}"
        for summary, help_text in (
            ("max", "Largest per-node message load."),
            ("mean", "Average per-node message load."),
            ("imbalance", "Max load over mean load (Fig. 8b metric)."),
        ):
            metric = f"{ns}_hotspot_{summary}_load"
            if summary == "imbalance":
                metric = f"{ns}_hotspot_imbalance"
            yield f"# HELP {metric} {help_text}"
            yield f"# TYPE {metric} gauge"
            for name in hotspot_names:
                accountant = tel.hotspots(name)
                labels = (("accountant", name),)
                if summary == "max":
                    value = float(accountant.max_load())
                elif summary == "mean":
                    value = accountant.mean_load()
                else:
                    value = accountant.imbalance()
                yield f"{metric}{_label_str(labels)} {_fmt(value)}"


def prometheus_text(tel: "Telemetry") -> str:
    """The full Prometheus exposition document (trailing newline included)."""
    lines = list(prometheus_lines(tel))
    return "\n".join(lines) + "\n" if lines else ""


def write_prometheus(tel: "Telemetry", out: IO[str]) -> int:
    """Write the Prometheus export to ``out``; returns the line count."""
    text = prometheus_text(tel)
    out.write(text)
    return text.count("\n")

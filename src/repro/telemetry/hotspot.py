"""Per-node hotspot accounting — the runtime analogue of Fig. 8.

:class:`HotspotAccountant` subsumes the transport-level message counters
(the historical ``MessageStats`` class, now removed) and adds the load
statistics the paper's Sec. 5.3 evaluation is built on: rolling max and
percentile load across nodes, and the imbalance factor (max load divided by
average load) as a time series sampled on the sim clock.

All public methods take the accountant's lock: the threaded UDP transport
increments counters from its receive thread while callers read them, and a
read that straddles a torn pair of dict updates would mis-state a node's
load. The discrete-event transport is single-threaded, where the
uncontended lock costs a few tens of nanoseconds per message.
"""

from __future__ import annotations

import math
import threading
from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro.telemetry.config import DEFAULT_PERCENTILES

__all__ = ["NodeLoad", "LoadSample", "HotspotAccountant", "percentile"]


@dataclass(frozen=True)
class NodeLoad:
    """Message/byte totals for one node."""

    sent: int
    received: int
    bytes_sent: int
    bytes_received: int

    @property
    def total(self) -> int:
        """Sent + received messages — the Fig. 8 'aggregation messages' load."""
        return self.sent + self.received


@dataclass(frozen=True)
class LoadSample:
    """One point on the load-balance time series.

    ``imbalance`` is max load over mean load — the paper's load-balance
    metric (Fig. 8b); 1.0 means perfectly even, n means one node carries
    everything.
    """

    at: float
    n_nodes: int
    total: int
    mean: float
    maximum: int
    imbalance: float
    percentiles: tuple[tuple[float, float], ...]

    def percentile(self, q: float) -> float:
        """Look up one recorded percentile (KeyError if not in the grid)."""
        for grid_q, value in self.percentiles:
            if grid_q == q:
                return value
        raise KeyError(f"percentile {q} not recorded (grid: "
                       f"{tuple(g for g, _ in self.percentiles)})")


def percentile(values: list[int] | list[float], q: float) -> float:
    """Linear-interpolated percentile of ``values`` (``q`` in (0, 1))."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 < q < 1.0:
        raise ValueError(f"q must lie in (0, 1), got {q}")
    ordered = sorted(values)
    position = q * (len(ordered) - 1)
    lower = math.floor(position)
    upper = math.ceil(position)
    if lower == upper:
        return float(ordered[lower])
    weight = position - lower
    return float(ordered[lower]) * (1.0 - weight) + float(ordered[upper]) * weight


class HotspotAccountant:
    """Mutable per-node send/receive counters plus load-balance statistics.

    A superset of the historical ``MessageStats`` API: transports call
    :meth:`record_send`/:meth:`record_receive` per message; experiments may
    instead attribute precomputed loads with :meth:`add_load`. Statistics
    (:meth:`max_load`, :meth:`percentile`, :meth:`imbalance`) and snapshots
    (:meth:`sample`) read the same counters.
    """

    def __init__(
        self, percentiles: tuple[float, ...] = DEFAULT_PERCENTILES
    ) -> None:
        self.percentile_grid = percentiles
        self._sent: dict[int, int] = defaultdict(int)
        self._received: dict[int, int] = defaultdict(int)
        self._bytes_sent: dict[int, int] = defaultdict(int)
        self._bytes_received: dict[int, int] = defaultdict(int)
        self._by_kind: dict[str, int] = defaultdict(int)
        self.series: list[LoadSample] = []
        # The UDP transport updates counters from caller threads and its
        # receive thread concurrently; dict-entry increments are not atomic,
        # and unlocked reads could observe a torn sent/received pair.
        self._lock = threading.Lock()

    # -- recording ---------------------------------------------------------

    def record_send(self, node: int, size: int = 0, kind: str | None = None) -> None:
        """Count one message (of ``size`` bytes, of ``kind``) sent by ``node``."""
        with self._lock:
            self._sent[node] += 1
            self._bytes_sent[node] += size
            if kind is not None:
                self._by_kind[kind] += 1

    def record_receive(self, node: int, size: int = 0) -> None:
        """Count one message (of ``size`` bytes) received by ``node``."""
        with self._lock:
            self._received[node] += 1
            self._bytes_received[node] += size

    def record_send_bulk(
        self, nodes: np.ndarray, sizes: np.ndarray, kind: str | None = None
    ) -> None:
        """Count one sent message per ``(nodes[i], sizes[i])`` pair.

        Equivalent to ``record_send`` in a loop but takes the lock once and
        collapses the per-node dict churn to one update per *distinct*
        sender — the batched transport path records a 10^5-message round in
        a few array ops instead of 10^5 locked dict increments.
        """
        if len(nodes) == 0:
            return
        unique, inverse, counts = np.unique(
            nodes, return_inverse=True, return_counts=True
        )
        byte_totals = np.zeros(len(unique), dtype=np.int64)
        np.add.at(byte_totals, inverse, np.asarray(sizes, dtype=np.int64))
        with self._lock:
            for node, sent, size in zip(
                unique.tolist(), counts.tolist(), byte_totals.tolist()
            ):
                self._sent[node] += sent
                self._bytes_sent[node] += size
            if kind is not None:
                self._by_kind[kind] += len(nodes)

    def record_receive_bulk(self, nodes: np.ndarray, sizes: np.ndarray) -> None:
        """Count one received message per ``(nodes[i], sizes[i])`` pair."""
        if len(nodes) == 0:
            return
        unique, inverse, counts = np.unique(
            nodes, return_inverse=True, return_counts=True
        )
        byte_totals = np.zeros(len(unique), dtype=np.int64)
        np.add.at(byte_totals, inverse, np.asarray(sizes, dtype=np.int64))
        with self._lock:
            for node, received, size in zip(
                unique.tolist(), counts.tolist(), byte_totals.tolist()
            ):
                self._received[node] += received
                self._bytes_received[node] += size

    def add_load(self, node: int, sent: int = 0, received: int = 0) -> None:
        """Attribute precomputed message counts to ``node`` in bulk.

        Experiments that compute loads analytically (the Fig. 8 harness
        derives per-node aggregation load from tree shape) use this to feed
        the same accounting path the transports feed message-by-message.
        """
        if sent < 0 or received < 0:
            raise ValueError(f"loads cannot be negative ({sent=}, {received=})")
        with self._lock:
            if sent:
                self._sent[node] += sent
            if received:
                self._received[node] += received
            if not sent and not received:
                # Register the node so zero-load nodes enter the population.
                self._sent.setdefault(node, 0)

    # -- reading (MessageStats-compatible) ---------------------------------

    def load(self, node: int) -> NodeLoad:
        """Totals for one node (zeros if it never appeared)."""
        with self._lock:
            return NodeLoad(
                sent=self._sent.get(node, 0),
                received=self._received.get(node, 0),
                bytes_sent=self._bytes_sent.get(node, 0),
                bytes_received=self._bytes_received.get(node, 0),
            )

    def nodes(self) -> set[int]:
        """Every node that sent or received at least one message."""
        with self._lock:
            return set(self._sent) | set(self._received)

    def total_messages(self) -> int:
        """Total messages observed (each counted once, at the sender)."""
        with self._lock:
            return sum(self._sent.values())

    def loads(self, nodes: list[int] | None = None) -> dict[int, int]:
        """Per-node total (sent + received) message counts.

        Pass the full node list to include zero-load nodes — Fig. 8's
        averages are over *all* nodes, idle ones included.
        """
        with self._lock:
            population = (
                set(self._sent) | set(self._received) if nodes is None else nodes
            )
            return {
                node: self._sent.get(node, 0) + self._received.get(node, 0)
                for node in population
            }

    def series_snapshot(self) -> list[LoadSample]:
        """A consistent copy of the rolling sample series.

        Exporters iterate this while tick hooks (or an experiment thread)
        may still be appending samples; the copy is taken under the lock.
        """
        with self._lock:
            return list(self.series)

    def by_kind(self) -> dict[str, int]:
        """Messages sent, broken down by message kind.

        Only populated by transports that pass ``kind`` to
        :meth:`record_send` (the simulated transport does) — used to show
        that DAT adds zero tree-maintenance message kinds on top of Chord's.
        """
        with self._lock:
            return dict(self._by_kind)

    def reset(self) -> None:
        """Zero every counter and drop the sample series."""
        with self._lock:
            self._sent.clear()
            self._received.clear()
            self._bytes_sent.clear()
            self._bytes_received.clear()
            self._by_kind.clear()
            self.series.clear()

    # -- load-balance statistics -------------------------------------------

    def max_load(self, nodes: list[int] | None = None) -> int:
        """Largest per-node total load (0 when nothing recorded)."""
        totals = self.loads(nodes)
        return max(totals.values(), default=0)

    def mean_load(self, nodes: list[int] | None = None) -> float:
        """Average per-node total load over the population (0.0 when empty)."""
        totals = self.loads(nodes)
        return sum(totals.values()) / len(totals) if totals else 0.0

    def percentile(self, q: float, nodes: list[int] | None = None) -> float:
        """The ``q``-th percentile of per-node total loads."""
        totals = self.loads(nodes)
        if not totals:
            raise ValueError("no loads recorded")
        return percentile(list(totals.values()), q)

    def imbalance(self, nodes: list[int] | None = None) -> float:
        """Max load over mean load — the Fig. 8b load-balance factor.

        Computed inline rather than via ``repro.core.analysis`` (which
        imports telemetry); 0.0 when nothing has been recorded yet.
        """
        totals = self.loads(nodes)
        if not totals:
            return 0.0
        total = sum(totals.values())
        if total == 0:
            return 0.0
        mean = total / len(totals)
        return max(totals.values()) / mean

    def sample(self, now: float, nodes: list[int] | None = None) -> LoadSample:
        """Snapshot the current load distribution at sim time ``now``.

        The sample is appended to :attr:`series`, building the rolling
        imbalance-factor time series the Fig. 8 runtime analogue plots.
        """
        totals = self.loads(nodes)
        values = list(totals.values())
        total = sum(values)
        n_nodes = len(values)
        mean = total / n_nodes if n_nodes else 0.0
        maximum = max(values, default=0)
        imbalance = (maximum / mean) if mean > 0 else 0.0
        grid = tuple(
            (q, percentile(values, q) if values else 0.0)
            for q in self.percentile_grid
        )
        point = LoadSample(
            at=now,
            n_nodes=n_nodes,
            total=total,
            mean=mean,
            maximum=maximum,
            imbalance=imbalance,
            percentiles=grid,
        )
        with self._lock:
            self.series.append(point)
        return point

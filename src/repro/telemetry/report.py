"""Summary-table CLI over a telemetry JSONL export.

Usage::

    python -m repro.telemetry.report run.jsonl
    python -m repro.telemetry.report run.jsonl --section spans
    python -m repro.telemetry.report run.jsonl --top 10

Reads the JSONL event stream written by
:func:`repro.telemetry.export.write_jsonl` (e.g. via the experiment CLI's
``--telemetry-jsonl`` flag) and prints aligned summary tables: metric
values, span durations aggregated by name, and per-accountant hotspot load
distributions with the Fig. 8 imbalance factor.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import defaultdict
from typing import Iterable, Sequence

__all__ = ["main", "build_parser", "render_report"]

_SECTIONS = ("metrics", "spans", "hotspots")


def _load_events(lines: Iterable[str]) -> list[dict[str, object]]:
    events = []
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"line {lineno}: not valid JSON ({exc})") from exc
        if not isinstance(record, dict) or "type" not in record:
            raise ValueError(f"line {lineno}: not a telemetry event")
        events.append(record)
    return events


def _table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> list[str]:
    """Render an aligned plain-text table (left-justified columns)."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()
    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(row) for row in rows)
    return out


def _metrics_section(events: list[dict[str, object]], top: int) -> list[str]:
    metrics = [e for e in events if e["type"] == "metric"]
    if not metrics:
        return ["(no metrics)"]
    rows = []
    for event in metrics[:top] if top else metrics:
        labels = event.get("labels") or {}
        assert isinstance(labels, dict)
        label_str = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
        kind = str(event["kind"])
        value = event.get("count") if kind == "histogram" else event.get("value")
        detail = ""
        if kind == "histogram":
            total = event.get("value", 0)
            n = event.get("count", 0)
            mean = (float(str(total)) / int(str(n))) if n else 0.0
            detail = f"sum={total} mean={mean:.3g}"
        rows.append(
            [str(event["name"]), kind, label_str, str(value), detail]
        )
    lines = _table(["metric", "kind", "labels", "value", "detail"], rows)
    shown = len(rows)
    if top and len(metrics) > shown:
        lines.append(f"... ({len(metrics) - shown} more series)")
    return lines


def _spans_section(events: list[dict[str, object]], top: int) -> list[str]:
    spans = [e for e in events if e["type"] == "span"]
    if not spans:
        return ["(no spans)"]
    stats: dict[str, list[float]] = defaultdict(list)
    errors: dict[str, int] = defaultdict(int)
    for event in spans:
        name = str(event["name"])
        start = event.get("start")
        end = event.get("end")
        if isinstance(start, (int, float)) and isinstance(end, (int, float)):
            stats[name].append(float(end) - float(start))
        if event.get("error"):
            errors[name] += 1
    rows = []
    ranked = sorted(stats.items(), key=lambda item: -sum(item[1]))
    for name, durations in ranked[:top] if top else ranked:
        total = sum(durations)
        rows.append(
            [
                name,
                str(len(durations)),
                f"{total:.6g}",
                f"{total / len(durations):.6g}",
                f"{max(durations):.6g}",
                str(errors.get(name, 0)),
            ]
        )
    lines = _table(["span", "count", "total", "mean", "max", "errors"], rows)
    if top and len(ranked) > top:
        lines.append(f"... ({len(ranked) - top} more span names)")
    return lines


def _hotspots_section(events: list[dict[str, object]], top: int) -> list[str]:
    nodes: dict[str, list[dict[str, object]]] = defaultdict(list)
    for event in events:
        if event["type"] == "hotspot_node":
            nodes[str(event["accountant"])].append(event)
    if not nodes:
        return ["(no hotspot accountants)"]
    lines: list[str] = []
    for accountant in sorted(nodes):
        records = nodes[accountant]
        totals = [int(str(e["total"])) for e in records]
        n = len(totals)
        total = sum(totals)
        mean = total / n if n else 0.0
        maximum = max(totals, default=0)
        imbalance = (maximum / mean) if mean > 0 else 0.0
        lines.append(
            f"[{accountant}] nodes={n} total={total} mean={mean:.3f} "
            f"max={maximum} imbalance={imbalance:.3f}"
        )
        ranked = sorted(records, key=lambda e: -int(str(e["total"])))
        rows = [
            [
                str(e["node"]),
                str(e["sent"]),
                str(e["received"]),
                str(e["total"]),
            ]
            for e in (ranked[:top] if top else ranked)
        ]
        lines.extend("  " + row for row in _table(
            ["node", "sent", "received", "total"], rows
        ))
        if top and len(ranked) > top:
            lines.append(f"  ... ({len(ranked) - top} more nodes)")
        lines.append("")
    if lines and lines[-1] == "":
        lines.pop()
    return lines


def render_report(
    events: list[dict[str, object]],
    sections: Sequence[str] = _SECTIONS,
    top: int = 20,
) -> str:
    """The full report as one string (used by tests and the CLI)."""
    parts: list[str] = []
    renderers = {
        "metrics": _metrics_section,
        "spans": _spans_section,
        "hotspots": _hotspots_section,
    }
    for section in sections:
        parts.append(f"== {section} ==")
        parts.extend(renderers[section](events, top))
        parts.append("")
    return "\n".join(parts).rstrip() + "\n"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry.report",
        description="Summarize a telemetry JSONL export.",
    )
    parser.add_argument("path", help="JSONL file written by the telemetry exporter")
    parser.add_argument(
        "--section",
        choices=_SECTIONS,
        action="append",
        help="limit output to one or more sections (default: all)",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=20,
        help="rows per table, 0 for unlimited (default: 20)",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        with open(args.path, encoding="utf-8") as handle:
            events = _load_events(handle)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"error: {args.path}: {exc}", file=sys.stderr)
        return 2
    sections = tuple(args.section) if args.section else _SECTIONS
    print(render_report(events, sections=sections, top=args.top), end="")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

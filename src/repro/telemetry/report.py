"""Summary-table CLI over one or many telemetry JSONL exports.

Usage::

    python -m repro.telemetry.report run.jsonl
    python -m repro.telemetry.report run.jsonl --section spans
    python -m repro.telemetry.report run.jsonl --top 10
    python -m repro.telemetry.report .fleet/            # merge dir/*.jsonl
    python -m repro.telemetry.report a.jsonl b.jsonl --offsets offs.json

Reads the JSONL event stream written by
:func:`repro.telemetry.export.write_jsonl` or streamed live by
:class:`repro.telemetry.stream.TelemetryStream` (e.g. via the experiment
CLI's ``--telemetry-jsonl`` flag) and prints aligned summary tables:
metric values, span durations aggregated by name (plus the export's
``span_drops`` accounting), per-accountant hotspot load distributions
with the Fig. 8 imbalance factor, and the rolling per-window load
samples (``--section samples``) that periodic in-run sampling produces.

``--require-samples [SUBSTRING]`` makes the exit status assert a
non-empty rolling-imbalance series — the CI round-trip smoke job uses it
to prove dynamics runs really emitted per-window samples.

``--rolling-csv PATH`` / ``--rolling-json PATH`` additionally write the
rolling-imbalance time series to a plot-ready artifact (one row/record
per sample, across all accountants) so figure scripts can consume the
Fig. 8b-style dynamics series without re-parsing the raw event stream.

Multiple positional paths are merged into one report; a directory path
expands to its ``*.jsonl`` files (sorted) — the fleet case, one export
per agent. ``--offsets`` maps file stems (or the trailing ident of
``spans-<ident>``-style names) to per-file clock offsets so fleet
exports line up on the supervisor timeline; see
:mod:`repro.telemetry.traces`. Missing files, directories without any
``*.jsonl``, and inputs with zero events all exit ``2`` with a clear
error. The ``traces`` section assembles causal trees from traced spans
and shows per-root-name depth/hop/critical-path rollups plus where the
critical-path time went per node.
"""

from __future__ import annotations

import argparse
import csv
import json
import sys
from collections import defaultdict
from pathlib import Path
from typing import Iterable, Sequence

from repro.telemetry.traces import TraceSpan, assemble, offset_for

__all__ = [
    "main",
    "build_parser",
    "resolve_inputs",
    "load_merged_events",
    "render_report",
    "rolling_imbalance",
    "rolling_samples",
    "write_rolling_csv",
    "write_rolling_json",
    "ROLLING_FIELDS",
]

#: Column order of the plot-ready rolling-sample artifacts.
ROLLING_FIELDS = (
    "accountant", "at", "n_nodes", "total", "mean", "maximum", "imbalance"
)

_SECTIONS = ("metrics", "spans", "traces", "hotspots", "samples")


def _load_events(lines: Iterable[str]) -> list[dict[str, object]]:
    events = []
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"line {lineno}: not valid JSON ({exc})") from exc
        if not isinstance(record, dict) or "type" not in record:
            raise ValueError(f"line {lineno}: not a telemetry event")
        events.append(record)
    return events


def _looks_like_export(path: Path) -> bool:
    """True unless the file's first record is a fleet control-plane frame.

    A fleet state dir mixes telemetry exports (``spans-*.jsonl``) with the
    supervisor's persisted control streams (``telemetry-*.jsonl``, whose
    records carry ``event``/``data`` instead of ``type``); directory
    expansion keeps only the former. Unreadable or malformed files are
    kept — their error should surface at load time, not vanish here.
    """
    try:
        with path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    return True
                return not (isinstance(record, dict) and "type" not in record)
    except OSError:
        return True
    return True  # empty file: kept (contributes zero events)


def resolve_inputs(paths: Sequence[str]) -> list[Path]:
    """Expand the positional arguments into concrete JSONL files.

    A directory expands to its sorted ``*.jsonl`` children (the fleet
    state dir, one export per agent), skipping control-plane streams that
    are not telemetry exports. Raises :class:`ValueError` with a clear
    message for a missing path or a directory with no exports.
    """
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            found = [p for p in sorted(path.glob("*.jsonl")) if _looks_like_export(p)]
            if not found:
                raise ValueError(
                    f"{path}: directory contains no telemetry *.jsonl exports"
                )
            files.extend(found)
        elif path.is_file():
            files.append(path)
        else:
            raise ValueError(f"{path}: no such file or directory")
    return files


def load_merged_events(
    files: Sequence[Path], offsets: dict[str, float] | None = None
) -> list[dict[str, object]]:
    """Load and merge several exports onto one timeline.

    Each file's clock offset (see :func:`repro.telemetry.traces.offset_for`)
    is added to its span records' ``start``/``end`` before merging, so
    span and trace sections read a single consistent clock. Raises
    :class:`ValueError` (with the file named) for malformed lines.
    """
    merged: list[dict[str, object]] = []
    for path in files:
        with open(path, encoding="utf-8") as handle:
            try:
                events = _load_events(handle)
            except ValueError as exc:
                raise ValueError(f"{path}: {exc}") from exc
        offset = offset_for(path, offsets)
        if offset:
            for event in events:
                if event.get("type") != "span":
                    continue
                for field in ("start", "end"):
                    value = event.get(field)
                    if isinstance(value, (int, float)):
                        event[field] = float(value) + offset
        merged.extend(events)
    return merged


def _table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> list[str]:
    """Render an aligned plain-text table (left-justified columns)."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()
    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(row) for row in rows)
    return out


def _metrics_section(events: list[dict[str, object]], top: int) -> list[str]:
    metrics = [e for e in events if e["type"] == "metric"]
    if not metrics:
        return ["(no metrics)"]
    rows = []
    for event in metrics[:top] if top else metrics:
        labels = event.get("labels") or {}
        assert isinstance(labels, dict)
        label_str = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
        kind = str(event["kind"])
        value = event.get("count") if kind == "histogram" else event.get("value")
        detail = ""
        if kind == "histogram":
            total = event.get("value", 0)
            n = event.get("count", 0)
            mean = (float(str(total)) / int(str(n))) if n else 0.0
            detail = f"sum={total} mean={mean:.3g}"
        rows.append(
            [str(event["name"]), kind, label_str, str(value), detail]
        )
    lines = _table(["metric", "kind", "labels", "value", "detail"], rows)
    shown = len(rows)
    if top and len(metrics) > shown:
        lines.append(f"... ({len(metrics) - shown} more series)")
    return lines


def _spans_section(events: list[dict[str, object]], top: int) -> list[str]:
    spans = [e for e in events if e["type"] == "span"]
    if not spans:
        lines = ["(no spans)"]
        lines.extend(_drops_lines(events))
        return lines
    stats: dict[str, list[float]] = defaultdict(list)
    errors: dict[str, int] = defaultdict(int)
    for event in spans:
        name = str(event["name"])
        start = event.get("start")
        end = event.get("end")
        if isinstance(start, (int, float)) and isinstance(end, (int, float)):
            stats[name].append(float(end) - float(start))
        if event.get("error"):
            errors[name] += 1
    rows = []
    ranked = sorted(stats.items(), key=lambda item: -sum(item[1]))
    for name, durations in ranked[:top] if top else ranked:
        total = sum(durations)
        rows.append(
            [
                name,
                str(len(durations)),
                f"{total:.6g}",
                f"{total / len(durations):.6g}",
                f"{max(durations):.6g}",
                str(errors.get(name, 0)),
            ]
        )
    lines = _table(["span", "count", "total", "mean", "max", "errors"], rows)
    if top and len(ranked) > top:
        lines.append(f"... ({len(ranked) - top} more span names)")
    lines.extend(_drops_lines(events))
    return lines


def _drops_lines(events: list[dict[str, object]]) -> list[str]:
    """The ``span_drops`` accounting, rendered under the spans table."""
    lines: list[str] = []
    for event in events:
        if event["type"] != "span_drops":
            continue
        evicted = int(str(event.get("evicted", 0)))
        streamed = int(str(event.get("streamed", 0)))
        sampled_out = int(str(event.get("sampled_out", 0)))
        lines.append(
            f"drops: evicted={evicted} streamed={streamed} "
            f"sampled_out={sampled_out}"
        )
        by_name = event.get("sampled_out_by_name") or {}
        if isinstance(by_name, dict) and by_name:
            detail = ", ".join(f"{k}={v}" for k, v in sorted(by_name.items()))
            lines.append(f"  sampled out by name: {detail}")
    return lines


def _traces_section(events: list[dict[str, object]], top: int) -> list[str]:
    """Causal-trace rollup: per-root-name trees and critical-path time.

    Only spans exported with tracing enabled carry the ``sid`` /
    ``trace_parent`` fields assembly needs; an untraced export renders a
    hint instead of an empty table.
    """
    spans = []
    for event in events:
        if event.get("type") != "span":
            continue
        span = TraceSpan.from_record(event)
        if span is not None:
            spans.append(span)
    if not spans:
        return ["(no traced spans — produce the export with tracing enabled,"
                " e.g. --trace-jsonl)"]
    traces = assemble(spans)
    groups: dict[str, list] = defaultdict(list)
    for trace in traces.traces:
        if not trace.orphaned:
            groups[trace.root.name].append(trace)
    rows = []
    ranked = sorted(
        groups.items(), key=lambda kv: -sum(t.duration for t in kv[1])
    )
    for name, group in ranked[:top] if top else ranked:
        cps = [t.critical_path_latency() for t in group]
        rows.append(
            [
                name,
                str(len(group)),
                str(max(t.depth() for t in group)),
                str(max(t.hops() for t in group)),
                f"{sum(cps) / len(cps):.6g}",
                f"{max(cps):.6g}",
            ]
        )
    lines = _table(
        ["root", "traces", "depth", "hops", "mean_crit_path", "max_crit_path"],
        rows,
    )
    if top and len(ranked) > top:
        lines.append(f"... ({len(ranked) - top} more root names)")
    lines.append(
        f"assembly: {len(traces.traces)} traces from {traces.total_spans} "
        f"spans, {len(traces.orphans())} orphaned, "
        f"{traces.duplicates} duplicate ids"
    )
    # Where the latency went: critical-path time attributed per node.
    by_node: dict[object, float] = defaultdict(float)
    for trace in traces.traces:
        for node, width in trace.node_attribution().items():
            by_node[node] += width
    total = sum(by_node.values())
    if total > 0:
        lines.append("critical-path time by node:")
        ranked_nodes = sorted(by_node.items(), key=lambda kv: -kv[1])
        node_rows = [
            [str(node), f"{width:.6g}", f"{width / total * 100:.1f}%"]
            for node, width in (ranked_nodes[:top] if top else ranked_nodes)
        ]
        lines.extend(
            "  " + row for row in _table(["node", "time", "share"], node_rows)
        )
        if top and len(ranked_nodes) > top:
            lines.append(f"  ... ({len(ranked_nodes) - top} more nodes)")
    return lines


def _hotspots_section(events: list[dict[str, object]], top: int) -> list[str]:
    nodes: dict[str, list[dict[str, object]]] = defaultdict(list)
    for event in events:
        if event["type"] == "hotspot_node":
            nodes[str(event["accountant"])].append(event)
    if not nodes:
        return ["(no hotspot accountants)"]
    lines: list[str] = []
    for accountant in sorted(nodes):
        records = nodes[accountant]
        totals = [int(str(e["total"])) for e in records]
        n = len(totals)
        total = sum(totals)
        mean = total / n if n else 0.0
        maximum = max(totals, default=0)
        imbalance = (maximum / mean) if mean > 0 else 0.0
        lines.append(
            f"[{accountant}] nodes={n} total={total} mean={mean:.3f} "
            f"max={maximum} imbalance={imbalance:.3f}"
        )
        ranked = sorted(records, key=lambda e: -int(str(e["total"])))
        rows = [
            [
                str(e["node"]),
                str(e["sent"]),
                str(e["received"]),
                str(e["total"]),
            ]
            for e in (ranked[:top] if top else ranked)
        ]
        lines.extend("  " + row for row in _table(
            ["node", "sent", "received", "total"], rows
        ))
        if top and len(ranked) > top:
            lines.append(f"  ... ({len(ranked) - top} more nodes)")
        lines.append("")
    if lines and lines[-1] == "":
        lines.pop()
    return lines


def _samples_section(events: list[dict[str, object]], top: int) -> list[str]:
    """Per-window rolling load samples, one table per accountant."""
    samples: dict[str, list[dict[str, object]]] = defaultdict(list)
    for event in events:
        if event["type"] == "hotspot_sample":
            samples[str(event["accountant"])].append(event)
    if not samples:
        return ["(no load samples)"]
    lines: list[str] = []
    for accountant in sorted(samples):
        points = sorted(samples[accountant], key=lambda e: float(str(e["at"])))
        lines.append(f"[{accountant}] samples={len(points)}")
        shown = points[-top:] if top else points
        rows = [
            [
                f"{float(str(e['at'])):.3f}",
                str(e["n_nodes"]),
                str(e["total"]),
                f"{float(str(e['mean'])):.3f}",
                str(e["maximum"]),
                f"{float(str(e['imbalance'])):.3f}",
            ]
            for e in shown
        ]
        lines.extend(
            "  " + row
            for row in _table(
                ["at", "nodes", "total", "mean", "max", "imbalance"], rows
            )
        )
        if top and len(points) > len(shown):
            lines.append(f"  ... ({len(points) - len(shown)} earlier samples)")
        lines.append("")
    if lines and lines[-1] == "":
        lines.pop()
    return lines


def rolling_imbalance(
    events: list[dict[str, object]], accountant: str = ""
) -> dict[str, list[tuple[float, float]]]:
    """Extract (time, imbalance) series per accountant from an export.

    ``accountant`` filters by substring; empty matches all. The CI
    round-trip job (and ``--require-samples``) use this to assert a
    dynamics run emitted a non-empty rolling series.
    """
    series: dict[str, list[tuple[float, float]]] = defaultdict(list)
    for event in events:
        if event["type"] != "hotspot_sample":
            continue
        name = str(event["accountant"])
        if accountant and accountant not in name:
            continue
        series[name].append(
            (float(str(event["at"])), float(str(event["imbalance"])))
        )
    return {name: sorted(points) for name, points in series.items()}


def rolling_samples(
    events: list[dict[str, object]], accountant: str = ""
) -> list[dict[str, object]]:
    """Flatten ``hotspot_sample`` events into plot-ready records.

    Each record carries the :data:`ROLLING_FIELDS` keys — the full load
    distribution summary per window, not just the imbalance factor —
    sorted by (accountant, time). ``accountant`` filters by substring.
    """
    records: list[dict[str, object]] = []
    for event in events:
        if event["type"] != "hotspot_sample":
            continue
        name = str(event["accountant"])
        if accountant and accountant not in name:
            continue
        records.append(
            {
                "accountant": name,
                "at": float(str(event["at"])),
                "n_nodes": int(str(event["n_nodes"])),
                "total": int(str(event["total"])),
                "mean": float(str(event["mean"])),
                "maximum": int(str(event["maximum"])),
                "imbalance": float(str(event["imbalance"])),
            }
        )
    records.sort(key=lambda r: (str(r["accountant"]), float(str(r["at"]))))
    return records


def write_rolling_csv(
    events: list[dict[str, object]], path: str, accountant: str = ""
) -> int:
    """Write the rolling-imbalance series to ``path`` as CSV.

    Returns the number of sample rows written (the header doesn't count).
    An export with no samples still produces a header-only file so
    downstream plot scripts fail on missing columns, not missing files.
    """
    records = rolling_samples(events, accountant=accountant)
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=ROLLING_FIELDS)
        writer.writeheader()
        writer.writerows(records)
    return len(records)


def write_rolling_json(
    events: list[dict[str, object]], path: str, accountant: str = ""
) -> int:
    """Write the rolling-imbalance series to ``path`` as a JSON document.

    The document is ``{"fields": [...], "samples": [...]}`` — the field
    list makes the artifact self-describing for plot scripts. Returns the
    number of sample records written.
    """
    records = rolling_samples(events, accountant=accountant)
    document = {"fields": list(ROLLING_FIELDS), "samples": records}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return len(records)


def render_report(
    events: list[dict[str, object]],
    sections: Sequence[str] = _SECTIONS,
    top: int = 20,
) -> str:
    """The full report as one string (used by tests and the CLI)."""
    parts: list[str] = []
    renderers = {
        "metrics": _metrics_section,
        "spans": _spans_section,
        "traces": _traces_section,
        "hotspots": _hotspots_section,
        "samples": _samples_section,
    }
    for section in sections:
        parts.append(f"== {section} ==")
        parts.extend(renderers[section](events, top))
        parts.append("")
    return "\n".join(parts).rstrip() + "\n"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry.report",
        description="Summarize a telemetry JSONL export.",
    )
    parser.add_argument(
        "paths",
        nargs="+",
        help=(
            "JSONL exports to merge; a directory expands to its *.jsonl "
            "files (e.g. a fleet state dir)"
        ),
    )
    parser.add_argument(
        "--offsets",
        metavar="FILE",
        help=(
            "JSON mapping of file stem (or node ident) to a clock offset "
            "added to that file's span timestamps before merging"
        ),
    )
    parser.add_argument(
        "--section",
        choices=_SECTIONS,
        action="append",
        help="limit output to one or more sections (default: all)",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=20,
        help="rows per table, 0 for unlimited (default: 20)",
    )
    parser.add_argument(
        "--require-samples",
        nargs="?",
        const="",
        default=None,
        metavar="SUBSTRING",
        help=(
            "exit 1 unless the export carries a non-empty rolling-imbalance "
            "sample series (optionally: for an accountant matching SUBSTRING)"
        ),
    )
    parser.add_argument(
        "--rolling-csv",
        metavar="PATH",
        help="write the rolling-imbalance sample series to PATH as CSV",
    )
    parser.add_argument(
        "--rolling-json",
        metavar="PATH",
        help="write the rolling-imbalance sample series to PATH as JSON",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    offsets: dict[str, float] | None = None
    if args.offsets:
        try:
            with open(args.offsets, encoding="utf-8") as handle:
                offsets = {
                    str(k): float(v) for k, v in json.load(handle).items()
                }
        except (OSError, ValueError) as exc:
            print(f"error: cannot read offsets {args.offsets}: {exc}",
                  file=sys.stderr)
            return 2
    try:
        files = resolve_inputs(args.paths)
        events = load_merged_events(files, offsets)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not events:
        listed = ", ".join(str(f) for f in files)
        print(f"error: no telemetry events in {listed}", file=sys.stderr)
        return 2
    sections = tuple(args.section) if args.section else _SECTIONS
    print(render_report(events, sections=sections, top=args.top), end="")
    try:
        if args.rolling_csv:
            n_rows = write_rolling_csv(events, args.rolling_csv)
            print(f"wrote {n_rows} rolling sample(s) to {args.rolling_csv}")
        if args.rolling_json:
            n_rows = write_rolling_json(events, args.rolling_json)
            print(f"wrote {n_rows} rolling sample(s) to {args.rolling_json}")
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.require_samples is not None:
        series = rolling_imbalance(events, accountant=args.require_samples)
        n_points = sum(len(points) for points in series.values())
        if n_points == 0:
            wanted = args.require_samples or "any accountant"
            print(
                f"error: no rolling-imbalance samples found for {wanted}",
                file=sys.stderr,
            )
            return 1
        print(
            f"rolling-imbalance series: {len(series)} accountant(s), "
            f"{n_points} sample(s)"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

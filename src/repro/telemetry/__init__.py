"""repro.telemetry — unified observability: metrics, spans, hotspots, exporters.

The runtime analogue of the paper's evaluation machinery (Sec. 5, Fig. 8):
labeled metrics and span traces timestamped from the *sim clock* (never the
wall clock — enforced by datlint rule DAT008), per-node hotspot accounting
with a rolling imbalance-factor series, and deterministic JSONL/Prometheus
exporters, all behind a disabled-by-default global whose no-op overhead is
gated in CI.

Typical use::

    from repro import telemetry

    telemetry.configure(enabled=True)          # off by default
    with telemetry.span("dat.build", key=key, scheme="balanced"):
        ...
    telemetry.count("messages_sent_total", kind="gather")
    telemetry.observe("query_hops", hops)

    tel = telemetry.active()
    print(telemetry.prometheus_text(tel))

This package must stay import-free of ``repro.core`` / ``repro.sim`` /
``repro.maan`` — they import *it* (instrumentation), and a cycle here would
be immediate.

See ``docs/OBSERVABILITY.md`` for the metric catalogue, span names, and
exporter formats.
"""

from repro.telemetry.config import (
    DEFAULT_BUCKET_OVERRIDES,
    DEFAULT_PERCENTILES,
    TelemetryConfig,
)
from repro.telemetry.export import (
    jsonl_lines,
    prometheus_text,
    write_jsonl,
    write_prometheus,
)
from repro.telemetry.hotspot import HotspotAccountant, LoadSample, NodeLoad
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricSample,
    MetricsRegistry,
    linear_buckets,
    log_buckets,
)
from repro.telemetry.runtime import (
    NULL_SPAN,
    Telemetry,
    active,
    bind_clock,
    configure,
    count,
    current_span,
    disable,
    enabled,
    gauge_set,
    is_enabled,
    observe,
    propagate_current,
    remote_span,
    trace_span,
    sample_hotspots,
    span,
    tracing_enabled,
)
from repro.telemetry.spans import (
    TRACE_KEY,
    NullSpan,
    Span,
    SpanBase,
    SpanRecorder,
    TraceContext,
)
from repro.telemetry.stream import JsonlSpanStream, LiveExport, TelemetryStream

__all__ = [
    "TelemetryConfig",
    "DEFAULT_PERCENTILES",
    "DEFAULT_BUCKET_OVERRIDES",
    "Telemetry",
    "configure",
    "disable",
    "active",
    "is_enabled",
    "enabled",
    "bind_clock",
    "span",
    "trace_span",
    "remote_span",
    "current_span",
    "tracing_enabled",
    "propagate_current",
    "count",
    "observe",
    "gauge_set",
    "sample_hotspots",
    "TraceContext",
    "TRACE_KEY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricSample",
    "MetricsRegistry",
    "log_buckets",
    "linear_buckets",
    "SpanBase",
    "Span",
    "NullSpan",
    "NULL_SPAN",
    "SpanRecorder",
    "HotspotAccountant",
    "NodeLoad",
    "LoadSample",
    "jsonl_lines",
    "prometheus_text",
    "write_jsonl",
    "write_prometheus",
    "JsonlSpanStream",
    "TelemetryStream",
    "LiveExport",
]

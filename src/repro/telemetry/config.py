"""Telemetry configuration.

One frozen dataclass holds every knob; the runtime installs a
:class:`~repro.telemetry.runtime.Telemetry` built from it (see
:func:`repro.telemetry.configure`). Telemetry is **disabled by default** —
the no-op path is a single module-global read per instrumentation site,
gated in CI by ``benchmarks/bench_telemetry_overhead.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TelemetryConfig", "DEFAULT_PERCENTILES"]

#: Percentile grid reported by hotspot load samples (Fig. 8 analogue).
DEFAULT_PERCENTILES: tuple[float, ...] = (0.5, 0.95, 0.99)


@dataclass(frozen=True)
class TelemetryConfig:
    """Everything the telemetry runtime needs to know.

    Parameters
    ----------
    enabled:
        Master switch. ``False`` (the default) keeps every instrumentation
        site on the no-op path.
    max_spans:
        Cap on retained finished spans; once full, the oldest are dropped
        and :attr:`~repro.telemetry.spans.SpanRecorder.dropped` counts the
        overflow. Bounded so long sweeps cannot exhaust memory.
    histogram_start, histogram_factor, histogram_count:
        The fixed log-spaced histogram bucket grid: upper bounds
        ``start * factor**i`` for ``i in range(count)`` (plus +Inf).
    percentiles:
        Percentile grid computed by hotspot load samples.
    namespace:
        Prefix every exported metric name must carry (Prometheus
        convention); :meth:`MetricsRegistry.counter` prepends it when the
        caller omits it.
    """

    enabled: bool = False
    max_spans: int = 100_000
    histogram_start: float = 1.0
    histogram_factor: float = 2.0
    histogram_count: int = 20
    percentiles: tuple[float, ...] = DEFAULT_PERCENTILES
    namespace: str = "repro"

    def __post_init__(self) -> None:
        if self.max_spans <= 0:
            raise ValueError(f"max_spans must be positive, got {self.max_spans}")
        if self.histogram_start <= 0:
            raise ValueError(
                f"histogram_start must be positive, got {self.histogram_start}"
            )
        if self.histogram_factor <= 1:
            raise ValueError(
                f"histogram_factor must exceed 1, got {self.histogram_factor}"
            )
        if self.histogram_count <= 0:
            raise ValueError(
                f"histogram_count must be positive, got {self.histogram_count}"
            )
        for q in self.percentiles:
            if not 0.0 < q < 1.0:
                raise ValueError(f"percentiles must lie in (0, 1), got {q}")

    def default_buckets(self) -> tuple[float, ...]:
        """The log-spaced histogram bucket upper bounds (excluding +Inf)."""
        return tuple(
            self.histogram_start * self.histogram_factor**i
            for i in range(self.histogram_count)
        )

"""Telemetry configuration.

One frozen dataclass holds every knob; the runtime installs a
:class:`~repro.telemetry.runtime.Telemetry` built from it (see
:func:`repro.telemetry.configure`). Telemetry is **disabled by default** —
the no-op path is a single module-global read per instrumentation site,
gated in CI by ``benchmarks/bench_telemetry_overhead.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "TelemetryConfig",
    "DEFAULT_PERCENTILES",
    "DEFAULT_BUCKET_OVERRIDES",
]

#: Percentile grid reported by hotspot load samples (Fig. 8 analogue).
DEFAULT_PERCENTILES: tuple[float, ...] = (0.5, 0.95, 0.99)

#: Per-metric histogram bucket overrides, keyed by *unqualified* metric
#: name (no namespace prefix). Hop/round counts are small integers —
#: O(log n) for the protocols here — so unit-width buckets read directly
#: as "how many queries took exactly k hops", where the global
#: powers-of-two grid would smear 5..8 hops into one bucket.
DEFAULT_BUCKET_OVERRIDES: tuple[tuple[str, tuple[float, ...]], ...] = (
    ("maan_query_hops", tuple(float(i) for i in range(1, 33))),
    ("churn_repair_rounds", tuple(float(i) for i in range(1, 33))),
)


@dataclass(frozen=True)
class TelemetryConfig:
    """Everything the telemetry runtime needs to know.

    Parameters
    ----------
    enabled:
        Master switch. ``False`` (the default) keeps every instrumentation
        site on the no-op path.
    max_spans:
        Cap on retained finished spans; once full, the oldest are dropped
        and :attr:`~repro.telemetry.spans.SpanRecorder.dropped` counts the
        overflow. Bounded so long sweeps cannot exhaust memory. A
        streaming sink (:mod:`repro.telemetry.stream`) bypasses retention
        entirely.
    span_chunk_size:
        Streaming-export buffer: a :class:`~repro.telemetry.stream.JsonlSpanStream`
        flushes to its file every this-many buffered span lines, so peak
        resident spans stay bounded regardless of run length.
    span_sample_every:
        Streaming-export sampling knob: keep every k-th finished span per
        span name (1 = keep all). Deterministic — a counter per name, no
        RNG — and the sampled-out count is reported in the export's
        ``span_drops`` record rather than silently discarded.
    sample_window:
        Period (sim seconds) of in-run hotspot sampling. When > 0,
        transports that own an engine install a tick hook that calls
        ``HotspotAccountant.sample()`` every window, building the rolling
        imbalance-factor series. 0 (the default) disables periodic
        sampling.
    allow_wall_clock:
        Opt-in for real-time transports to bind the telemetry clock to a
        wall-clock offset (``sim.udprpc`` is the one sanctioned DAT008
        boundary). Off by default: wall-clocked exports are not
        replay-deterministic.
    tracing:
        Opt-in distributed tracing. When ``True``, every root span is
        assigned a ``trace_id``, ``repro.net`` threads a compact
        :class:`~repro.telemetry.spans.TraceContext` through message
        payloads, and the per-hop span sites (``dat.push`` /
        ``chord.lookup_hop`` / ...) record. Off by default so exports —
        and message byte sizes — are unchanged unless asked for;
        propagation overhead is gated at ≤5% over span-enabled mode by
        ``benchmarks/bench_telemetry_overhead.py``.
    site:
        Identity prefix for qualified span ids (``"<site>:<span_id>"``).
        ``"0"`` in the single-process simulator; fleet agents set their
        node ident so merged per-node span exports never collide.
    histogram_start, histogram_factor, histogram_count:
        The fixed log-spaced histogram bucket grid: upper bounds
        ``start * factor**i`` for ``i in range(count)`` (plus +Inf).
    histogram_bucket_overrides:
        Per-metric bucket grids keyed by unqualified metric name,
        overriding the global log-spaced grid (hop-count histograms use
        unit-width buckets). Stored as a tuple-of-pairs so the config
        stays hashable/frozen; see :meth:`bucket_overrides`.
    percentiles:
        Percentile grid computed by hotspot load samples.
    namespace:
        Prefix every exported metric name must carry (Prometheus
        convention); :meth:`MetricsRegistry.counter` prepends it when the
        caller omits it.
    """

    enabled: bool = False
    max_spans: int = 100_000
    span_chunk_size: int = 4096
    span_sample_every: int = 1
    sample_window: float = 0.0
    allow_wall_clock: bool = False
    tracing: bool = False
    site: str = "0"
    histogram_start: float = 1.0
    histogram_factor: float = 2.0
    histogram_count: int = 20
    histogram_bucket_overrides: tuple[tuple[str, tuple[float, ...]], ...] = (
        DEFAULT_BUCKET_OVERRIDES
    )
    percentiles: tuple[float, ...] = DEFAULT_PERCENTILES
    namespace: str = "repro"

    def __post_init__(self) -> None:
        if self.max_spans <= 0:
            raise ValueError(f"max_spans must be positive, got {self.max_spans}")
        if self.span_chunk_size <= 0:
            raise ValueError(
                f"span_chunk_size must be positive, got {self.span_chunk_size}"
            )
        if self.span_sample_every < 1:
            raise ValueError(
                f"span_sample_every must be >= 1, got {self.span_sample_every}"
            )
        if self.sample_window < 0:
            raise ValueError(
                f"sample_window cannot be negative, got {self.sample_window}"
            )
        if not self.site:
            raise ValueError("site must be a non-empty string")
        for name, buckets in self.histogram_bucket_overrides:
            if not buckets or list(buckets) != sorted(set(buckets)):
                raise ValueError(
                    f"bucket override for {name!r} must be strictly "
                    f"increasing: {buckets}"
                )
        if self.histogram_start <= 0:
            raise ValueError(
                f"histogram_start must be positive, got {self.histogram_start}"
            )
        if self.histogram_factor <= 1:
            raise ValueError(
                f"histogram_factor must exceed 1, got {self.histogram_factor}"
            )
        if self.histogram_count <= 0:
            raise ValueError(
                f"histogram_count must be positive, got {self.histogram_count}"
            )
        for q in self.percentiles:
            if not 0.0 < q < 1.0:
                raise ValueError(f"percentiles must lie in (0, 1), got {q}")

    def default_buckets(self) -> tuple[float, ...]:
        """The log-spaced histogram bucket upper bounds (excluding +Inf)."""
        return tuple(
            self.histogram_start * self.histogram_factor**i
            for i in range(self.histogram_count)
        )

    def bucket_overrides(self) -> dict[str, tuple[float, ...]]:
        """The per-metric bucket overrides as a name -> buckets mapping."""
        return dict(self.histogram_bucket_overrides)

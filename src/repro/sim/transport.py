"""The transport interface shared by simulator, UDP, and in-process layers.

The paper's prototype runs identical Chord/DAT layers over a UDP RPC module
and a discrete-event simulator (Sec. 4: "the simulator ... provides the same
interface to the Chord and DAT layers"). :class:`Transport` is that
interface. Because the simulator cannot block, the request/response
primitive is continuation-passing: ``call(message, on_reply, on_timeout)``.
The UDP transport adapts its socket loop to the same shape, so protocol code
is written once.

Handlers: each node registers a ``MessageHandler``. If the handler returns
a :class:`~repro.sim.messages.Message`, the transport delivers it as the
response; returning ``None`` means either "no response" or "response will be
sent later via :meth:`Transport.send`" (the transport matches ``reply_to``
against pending calls in both cases).

Protocol services should not call :meth:`Transport.call` directly — the
session layer in :mod:`repro.net` (``RpcClient`` / ``gather`` / ``Batcher``)
owns request-path policy (deadlines, retries, backoff, batching) and is the
sanctioned way to issue RPCs; datlint rule DAT009 flags raw ``transport.call``
use outside that layer. :meth:`expect` is the lower-level primitive the net
layer builds on: it arms reply correlation for a message *without* sending
it, so a retrying caller can re-send the same request (same ``msg_id``)
under a fresh deadline.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Callable, NamedTuple, Optional

from repro.errors import TransportError
from repro.sim.messages import Message
from repro.telemetry.hotspot import HotspotAccountant

__all__ = ["MessageHandler", "ReplyCallback", "TimeoutCallback", "Transport"]


def _no_cancel() -> None:
    """Canceller for deadline-free calls (``timeout=math.inf``)."""


class _PendingCall(NamedTuple):
    on_reply: "ReplyCallback"
    cancel: Callable[[], None]
    source: int

MessageHandler = Callable[[Message], Optional[Message]]
ReplyCallback = Callable[[Message], None]
TimeoutCallback = Callable[[Message], None]


class Transport(ABC):
    """Abstract message substrate with timers and RPC plumbing."""

    #: Default RPC deadline in (virtual or wall-clock) seconds.
    default_timeout: float = 2.0

    def __init__(self) -> None:
        self.stats = HotspotAccountant()
        self._handlers: dict[int, MessageHandler] = {}
        # Pending request-id -> (on_reply, cancel_timeout, source node)
        self._pending: dict[int, _PendingCall] = {}
        # Secondary index: source node -> {msg_id: None} (an insertion-ordered
        # set). Keeps unregister/cancel_calls proportional to the *node's own*
        # outstanding calls instead of a scan over every pending entry — at
        # 10^5 nodes the full-scan version turned teardown into O(n^2).
        self._pending_by_source: dict[int, dict[int, None]] = {}

    def _pending_add(self, msg_id: int, entry: _PendingCall) -> None:
        self._pending[msg_id] = entry
        self._pending_by_source.setdefault(entry.source, {})[msg_id] = None

    def _pending_pop(self, msg_id: int) -> _PendingCall | None:
        entry = self._pending.pop(msg_id, None)
        if entry is not None:
            bucket = self._pending_by_source.get(entry.source)
            if bucket is not None:
                bucket.pop(msg_id, None)
                if not bucket:
                    del self._pending_by_source[entry.source]
        return entry

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #

    def register(self, node: int, handler: MessageHandler) -> None:
        """Attach ``handler`` as node ``node``'s message processor."""
        if node in self._handlers:
            raise TransportError(f"node {node} is already registered")
        self._handlers[node] = handler

    def unregister(self, node: int) -> None:
        """Detach a node (its messages are dropped afterwards).

        Pending calls the node originated are cancelled — their reply and
        timeout continuations never fire — so tearing a node down cannot
        leak timers or resurrect callbacks into a departed service.
        """
        self._handlers.pop(node, None)
        self.cancel_calls(node)

    def is_registered(self, node: int) -> bool:
        """True if the node currently has a handler."""
        return node in self._handlers

    def registered_nodes(self) -> list[int]:
        """Identifiers of all registered nodes."""
        return sorted(self._handlers)

    # ------------------------------------------------------------------ #
    # Abstract substrate operations
    # ------------------------------------------------------------------ #

    @abstractmethod
    def send(self, message: Message) -> None:
        """Deliver ``message`` (eventually) to its destination's handler.

        Undeliverable messages (unknown node, simulated failure) are
        silently dropped — exactly like UDP — and surface as call timeouts.
        """

    @abstractmethod
    def schedule(self, delay: float, callback: Callable[[], None]) -> Callable[[], None]:
        """Run ``callback`` after ``delay`` seconds; returns a canceller."""

    @abstractmethod
    def now(self) -> float:
        """Current time on this substrate (virtual or wall-clock)."""

    # ------------------------------------------------------------------ #
    # RPC on top of send
    # ------------------------------------------------------------------ #

    def expect(
        self,
        message: Message,
        on_reply: ReplyCallback,
        on_timeout: TimeoutCallback | None = None,
        timeout: float | None = None,
    ) -> None:
        """Arm reply correlation for ``message`` without sending it.

        A response whose ``reply_to`` matches ``message.msg_id`` will be
        routed to ``on_reply``; if none arrives within ``timeout`` the
        entry is dropped and ``on_timeout`` (if given) fires with the
        original message. ``timeout=None`` adopts ``default_timeout``;
        ``math.inf`` arms correlation with no deadline at all (no timer is
        scheduled). Re-arming an already-pending ``msg_id`` replaces the
        entry under a fresh deadline — that is how :mod:`repro.net`
        implements same-id retransmission.
        """
        deadline = self.default_timeout if timeout is None else timeout

        def expire() -> None:
            entry = self._pending_pop(message.msg_id)
            if entry is not None and on_timeout is not None:
                on_timeout(message)

        stale = self._pending_pop(message.msg_id)
        if stale is not None:
            stale.cancel()
        cancel = _no_cancel if math.isinf(deadline) else self.schedule(deadline, expire)
        self._pending_add(message.msg_id, _PendingCall(on_reply, cancel, message.source))

    def call(
        self,
        message: Message,
        on_reply: ReplyCallback,
        on_timeout: TimeoutCallback | None = None,
        timeout: float | None = None,
    ) -> None:
        """Send a request and invoke ``on_reply`` with the response.

        If no response arrives within ``timeout`` the request is abandoned
        and ``on_timeout`` (if given) fires with the original message.
        Equivalent to :meth:`expect` followed by :meth:`send`.
        """
        self.expect(message, on_reply, on_timeout, timeout)
        self.send(message)

    def cancel_calls(self, source: int) -> int:
        """Cancel every pending call originated by ``source``.

        Returns the number of calls cancelled; neither their reply nor
        their timeout continuation will fire. Cost is proportional to the
        number of calls *this* source has outstanding (via the
        per-source index), not to the transport-wide pending count.
        """
        bucket = self._pending_by_source.pop(source, None)
        if bucket is None:
            return 0
        for msg_id in bucket:
            entry = self._pending.pop(msg_id, None)
            if entry is not None:
                entry.cancel()
        return len(bucket)

    def cancel_all_calls(self) -> int:
        """Cancel every pending call, whoever originated it.

        Transport-wide teardown path: each entry is cancelled exactly the
        way :meth:`unregister` cancels a single node's calls (the deadline
        timer is revoked, neither continuation fires), so closing a
        transport with calls in flight cannot leak timers or resurrect
        callbacks after the substrate is gone. Returns the number of calls
        cancelled.
        """
        count = len(self._pending)
        for msg_id in list(self._pending):
            entry = self._pending.pop(msg_id, None)
            if entry is not None:
                entry.cancel()
        self._pending_by_source.clear()
        return count

    def _dispatch(self, message: Message) -> None:
        """Route an arriving message to a pending call or a node handler.

        Subclasses invoke this at delivery time (after latency, on the
        receive thread, etc.). Message accounting is the subclass's duty —
        it knows the wire size.
        """
        if message.reply_to is not None:
            entry = self._pending_pop(message.reply_to)
            if entry is not None:
                entry.cancel()
                entry.on_reply(message)
            # Unmatched responses (late after timeout) are dropped, as in UDP.
            return
        handler = self._handlers.get(message.destination)
        if handler is None:
            return  # dropped: node departed or never existed
        response = handler(message)
        if response is not None:
            if response.reply_to is None:
                raise TransportError(
                    f"handler for {message.kind} returned a response without reply_to"
                )
            self.send(response)

    def pending_calls(self) -> int:
        """Number of outstanding RPCs (useful in tests)."""
        return len(self._pending)

"""Deprecated alias for per-node message accounting.

The implementation lives in
:class:`repro.telemetry.hotspot.HotspotAccountant`, which carries the
whole historical ``MessageStats`` API (``record_send`` /
``record_receive`` / ``load`` / ``loads`` / ``by_kind`` / ``reset``)
plus the load-balance statistics (``max_load``, ``percentile``,
``imbalance``, ``sample``) the telemetry exporters publish. Transports
construct ``HotspotAccountant`` directly now; ``MessageStats`` remains
importable for one release and warns on access.
"""

from __future__ import annotations

import warnings

from repro.telemetry.hotspot import HotspotAccountant, NodeLoad

__all__ = ["MessageStats", "NodeLoad"]  # noqa: F822 - lazy alias (__getattr__)


def __getattr__(name: str) -> type:
    if name == "MessageStats":
        warnings.warn(
            "repro.sim.stats.MessageStats is deprecated; use "
            "repro.telemetry.hotspot.HotspotAccountant",
            DeprecationWarning,
            stacklevel=2,
        )
        return HotspotAccountant
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

"""Per-node message accounting for the load-balance experiments (Sec. 5.3).

Every transport owns a :class:`MessageStats`; the experiment harness reads
sends/receives per node, computes the Fig. 8 distributions, and resets
between rounds. Counting lives in the transport so that application layers
cannot forget to account for a message.

This module is now a thin compatibility shim: the implementation moved to
:class:`repro.telemetry.hotspot.HotspotAccountant`, which keeps the whole
historical API (``record_send`` / ``record_receive`` / ``load`` / ``loads``
/ ``by_kind`` / ``reset``), guards *every* public method with the lock
(the seed locked writes only, so readers racing the threaded ``udprpc``
receive thread could observe torn send/receive pairs), and adds the
load-balance statistics (``max_load``, ``percentile``, ``imbalance``,
``sample``) that the telemetry exporters publish.
"""

from __future__ import annotations

from repro.telemetry.hotspot import HotspotAccountant, NodeLoad

__all__ = ["MessageStats", "NodeLoad"]


class MessageStats(HotspotAccountant):
    """Mutable per-node send/receive counters (alias of the telemetry class)."""

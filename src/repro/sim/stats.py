"""Per-node message accounting for the load-balance experiments (Sec. 5.3).

Every transport owns a :class:`MessageStats`; the experiment harness reads
sends/receives per node, computes the Fig. 8 distributions, and resets
between rounds. Counting lives in the transport so that application layers
cannot forget to account for a message.
"""

from __future__ import annotations

import threading
from collections import defaultdict
from dataclasses import dataclass

__all__ = ["MessageStats", "NodeLoad"]


@dataclass(frozen=True)
class NodeLoad:
    """Message/byte totals for one node."""

    sent: int
    received: int
    bytes_sent: int
    bytes_received: int

    @property
    def total(self) -> int:
        """Sent + received messages — the Fig. 8 'aggregation messages' load."""
        return self.sent + self.received


class MessageStats:
    """Mutable per-node send/receive counters."""

    def __init__(self) -> None:
        self._sent: dict[int, int] = defaultdict(int)
        self._received: dict[int, int] = defaultdict(int)
        self._bytes_sent: dict[int, int] = defaultdict(int)
        self._bytes_received: dict[int, int] = defaultdict(int)
        self._by_kind: dict[str, int] = defaultdict(int)
        # The UDP transport updates counters from caller threads and its
        # receive thread concurrently; dict-entry increments are not atomic.
        self._lock = threading.Lock()

    def record_send(self, node: int, size: int = 0, kind: str | None = None) -> None:
        """Count one message (of ``size`` bytes, of ``kind``) sent by ``node``."""
        with self._lock:
            self._sent[node] += 1
            self._bytes_sent[node] += size
            if kind is not None:
                self._by_kind[kind] += 1

    def record_receive(self, node: int, size: int = 0) -> None:
        """Count one message (of ``size`` bytes) received by ``node``."""
        with self._lock:
            self._received[node] += 1
            self._bytes_received[node] += size

    def load(self, node: int) -> NodeLoad:
        """Totals for one node (zeros if it never appeared)."""
        return NodeLoad(
            sent=self._sent.get(node, 0),
            received=self._received.get(node, 0),
            bytes_sent=self._bytes_sent.get(node, 0),
            bytes_received=self._bytes_received.get(node, 0),
        )

    def nodes(self) -> set[int]:
        """Every node that sent or received at least one message."""
        return set(self._sent) | set(self._received)

    def total_messages(self) -> int:
        """Total messages observed (each counted once, at the sender)."""
        return sum(self._sent.values())

    def loads(self, nodes: list[int] | None = None) -> dict[int, int]:
        """Per-node total (sent + received) message counts.

        Pass the full node list to include zero-load nodes — Fig. 8's
        averages are over *all* nodes, idle ones included.
        """
        population = self.nodes() if nodes is None else nodes
        return {node: self.load(node).total for node in population}

    def by_kind(self) -> dict[str, int]:
        """Messages sent, broken down by message kind.

        Only populated by transports that pass ``kind`` to
        :meth:`record_send` (the simulated transport does) — used to show
        that DAT adds zero tree-maintenance message kinds on top of Chord's.
        """
        with self._lock:
            return dict(self._by_kind)

    def reset(self) -> None:
        """Zero every counter (between experiment rounds)."""
        with self._lock:
            self._sent.clear()
            self._received.clear()
            self._bytes_sent.clear()
            self._bytes_received.clear()
            self._by_kind.clear()

"""Discrete-event simulation engine and transports (paper Sec. 4, Fig. 6).

The prototype runs the same Chord/DAT layers over two interchangeable
substrates: a UDP RPC module and a heap-based discrete-event simulator.
This package reproduces that design:

* :class:`~repro.sim.engine.SimulationEngine` — deterministic heap-ordered
  event queue with a virtual clock.
* :class:`~repro.sim.transport.Transport` — the interface both substrates
  implement (fire-and-forget ``send`` plus request/response ``call``).
* :class:`~repro.sim.simnet.SimTransport` — DES-backed delivery with
  pluggable latency models and optional loss.
* :class:`~repro.sim.udprpc.UdpRpcTransport` — real UDP sockets on
  localhost with timeouts and retries (the paper's 512-instance cluster
  setup, scaled to the test machine).
* :class:`~repro.sim.inproc.InprocTransport` — zero-latency direct calls
  for unit tests.

Per-node message accounting lives on every transport as
``transport.stats``, a :class:`repro.telemetry.hotspot.HotspotAccountant`.

Request-path policy (deadlines, retries, fan-out, batching) is layered on
top of :class:`~repro.sim.transport.Transport` by :mod:`repro.net` —
protocol services talk to that session layer, not to ``call`` directly.
"""

from repro.sim.engine import Event, SimulationEngine, TickHook
from repro.sim.latency import (
    ConstantLatency,
    LatencyModel,
    UniformLatency,
    LanWanLatency,
)
from repro.sim.messages import Message, encode_message, decode_message
from repro.sim.transport import Transport, MessageHandler
from repro.sim.inproc import InprocTransport
from repro.sim.simnet import SimTransport
from repro.sim.udprpc import UdpRpcTransport
from repro.sim.tracing import MessageTracer, TraceRecord, get_logger, trace

__all__ = [
    "Event",
    "TickHook",
    "SimulationEngine",
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "LanWanLatency",
    "Message",
    "encode_message",
    "decode_message",
    "Transport",
    "MessageHandler",
    "InprocTransport",
    "SimTransport",
    "UdpRpcTransport",
    "MessageTracer",
    "TraceRecord",
    "get_logger",
    "trace",
]

"""Discrete-event simulated network transport (paper Sec. 4).

Messages are delivered through the :class:`~repro.sim.engine.SimulationEngine`
after a latency drawn from a pluggable model; optional loss and per-node
failure injection support the churn experiments. This is the substrate the
paper used for networks of up to 8192 nodes.

Loss injected here surfaces to protocol code as RPC timeouts; the session
layer in :mod:`repro.net` decides what happens next (give up, or retransmit
under a :class:`~repro.net.RetryPolicy`). Its retries re-send the same
``msg_id``, so the message/byte accounting below counts every attempt —
exactly what a wire capture would show.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro import telemetry
from repro.sim.engine import SimulationEngine, TickHook
from repro.sim.latency import ConstantLatency, LatencyModel
from repro.sim.messages import Message
from repro.sim.transport import Transport
from repro.util.rng import ensure_rng
from repro.util.validation import check_probability

__all__ = ["SimTransport"]


class SimTransport(Transport):
    """Transport backed by a discrete-event engine.

    Parameters
    ----------
    engine:
        Shared simulation engine (several transports may share one for
        co-simulated subsystems; typically there is exactly one).
    latency:
        One-way delay model; defaults to a 1 ms constant (the paper's LAN).
    loss_rate:
        Probability of silently dropping any message (UDP semantics).
    rng:
        Seed or generator for loss sampling.
    hotspot_name:
        Name this transport's counters register under in the telemetry
        runtime. Experiments that build several transports against one
        runtime (the dynamics churn-rate sweep) give each its own name so
        rolling sample series don't interleave.
    sample_window:
        Period of in-run load sampling on the engine's tick hooks;
        ``None`` (the default) follows the telemetry config's
        ``sample_window``, 0 disables.
    """

    def __init__(
        self,
        engine: SimulationEngine | None = None,
        latency: LatencyModel | None = None,
        loss_rate: float = 0.0,
        rng: int | np.random.Generator | None = None,
        hotspot_name: str = "transport",
        sample_window: float | None = None,
    ) -> None:
        super().__init__()
        check_probability("loss_rate", loss_rate)
        self.engine = engine if engine is not None else SimulationEngine()
        self.latency = latency if latency is not None else ConstantLatency(0.001)
        self.loss_rate = float(loss_rate)
        self._rng = ensure_rng(rng)
        self._failed: set[int] = set()
        self.load_sampler: TickHook | None = None
        tel = telemetry.active()
        if tel is not None:
            # The engine's virtual clock becomes the telemetry time source,
            # and the transport's counters double as the "transport"
            # hotspot accountant — one accounting path, two consumers.
            tel.bind_clock(self.now)
            tel.register_hotspots(hotspot_name, self.stats)
            window = (
                tel.config.sample_window if sample_window is None else sample_window
            )
            if window > 0:
                # Periodic in-run sampling: every window boundary the
                # engine crosses appends a LoadSample to stats.series,
                # building the rolling imbalance-factor time series.
                self.load_sampler = self.engine.add_tick_hook(
                    window, self.stats.sample, label=f"sample:{hotspot_name}"
                )

    def now(self) -> float:
        return self.engine.now

    # ------------------------------------------------------------------ #
    # Failure injection (churn experiments)
    # ------------------------------------------------------------------ #

    def fail(self, node: int) -> None:
        """Crash ``node``: all its traffic is dropped until :meth:`recover`."""
        self._failed.add(node)

    def recover(self, node: int) -> None:
        """Lift a failure injected by :meth:`fail`."""
        self._failed.discard(node)

    def is_failed(self, node: int) -> bool:
        """True if ``node`` is currently crash-failed."""
        return node in self._failed

    # ------------------------------------------------------------------ #
    # Transport implementation
    # ------------------------------------------------------------------ #

    def send(self, message: Message) -> None:
        size = message.encoded_size()
        self.stats.record_send(message.source, size, kind=message.kind)
        telemetry.count("messages_sent_total", kind=message.kind)
        if message.source in self._failed or message.destination in self._failed:
            return
        if self.loss_rate > 0 and self._rng.random() < self.loss_rate:
            return

        def deliver() -> None:
            if message.destination in self._failed:
                return
            if not message.is_response and not self.is_registered(message.destination):
                return
            self.stats.record_receive(message.destination, size)
            telemetry.count("messages_received_total", kind=message.kind)
            self._dispatch(message)

        delay = self.latency.sample(message.source, message.destination)
        self.engine.schedule(delay, deliver, label=f"deliver:{message.kind}")

    def schedule(self, delay: float, callback: Callable[[], None]) -> Callable[[], None]:
        event = self.engine.schedule(delay, callback, label="timer")
        return event.cancel

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Convenience passthrough to the engine's run loop."""
        return self.engine.run(until=until, max_events=max_events)

"""Discrete-event simulated network transport (paper Sec. 4).

Messages are delivered through the :class:`~repro.sim.engine.SimulationEngine`
after a latency drawn from a pluggable model; optional loss and per-node
failure injection support the churn experiments. The paper validated its
protocols on networks of up to 8192 nodes; this substrate goes well past
that — the scalar per-message path is comfortable to ~10^4 nodes, and the
batched slab path (:meth:`SimTransport.send_batch`, driven by
:mod:`repro.core.slab`) runs full protocol rounds at 10^5+ nodes
(see ``docs/PERFORMANCE.md``, "Protocol-path scaling").

Loss injected here surfaces to protocol code as RPC timeouts; the session
layer in :mod:`repro.net` decides what happens next (give up, or retransmit
under a :class:`~repro.net.RetryPolicy`). Its retries re-send the same
``msg_id``, so the message/byte accounting below counts every attempt —
exactly what a wire capture would show.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro import telemetry
from repro.sim.engine import SimulationEngine, TickHook
from repro.sim.latency import ConstantLatency, LatencyModel
from repro.sim.messages import Message, MessageBatch
from repro.sim.transport import Transport
from repro.util.rng import ensure_rng
from repro.util.validation import check_probability

__all__ = ["SimTransport"]


class SimTransport(Transport):
    """Transport backed by a discrete-event engine.

    Parameters
    ----------
    engine:
        Shared simulation engine (several transports may share one for
        co-simulated subsystems; typically there is exactly one).
    latency:
        One-way delay model; defaults to a 1 ms constant (the paper's LAN).
    loss_rate:
        Probability of silently dropping any message (UDP semantics).
    rng:
        Seed or generator for loss sampling.
    hotspot_name:
        Name this transport's counters register under in the telemetry
        runtime. Experiments that build several transports against one
        runtime (the dynamics churn-rate sweep) give each its own name so
        rolling sample series don't interleave.
    sample_window:
        Period of in-run load sampling on the engine's tick hooks;
        ``None`` (the default) follows the telemetry config's
        ``sample_window``, 0 disables.
    """

    def __init__(
        self,
        engine: SimulationEngine | None = None,
        latency: LatencyModel | None = None,
        loss_rate: float = 0.0,
        rng: int | np.random.Generator | None = None,
        hotspot_name: str = "transport",
        sample_window: float | None = None,
    ) -> None:
        super().__init__()
        check_probability("loss_rate", loss_rate)
        self.engine = engine if engine is not None else SimulationEngine()
        self.latency = latency if latency is not None else ConstantLatency(0.001)
        self.loss_rate = float(loss_rate)
        self._rng = ensure_rng(rng)
        self._failed: set[int] = set()
        self.load_sampler: TickHook | None = None
        tel = telemetry.active()
        if tel is not None:
            # The engine's virtual clock becomes the telemetry time source,
            # and the transport's counters double as the "transport"
            # hotspot accountant — one accounting path, two consumers.
            tel.bind_clock(self.now)
            tel.register_hotspots(hotspot_name, self.stats)
            window = (
                tel.config.sample_window if sample_window is None else sample_window
            )
            if window > 0:
                # Periodic in-run sampling: every window boundary the
                # engine crosses appends a LoadSample to stats.series,
                # building the rolling imbalance-factor time series.
                self.load_sampler = self.engine.add_tick_hook(
                    window, self.stats.sample, label=f"sample:{hotspot_name}"
                )

    def now(self) -> float:
        return self.engine.now

    # ------------------------------------------------------------------ #
    # Failure injection (churn experiments)
    # ------------------------------------------------------------------ #

    def fail(self, node: int) -> None:
        """Crash ``node``: all its traffic is dropped until :meth:`recover`."""
        self._failed.add(node)

    def recover(self, node: int) -> None:
        """Lift a failure injected by :meth:`fail`."""
        self._failed.discard(node)

    def is_failed(self, node: int) -> bool:
        """True if ``node`` is currently crash-failed."""
        return node in self._failed

    # ------------------------------------------------------------------ #
    # Transport implementation
    # ------------------------------------------------------------------ #

    def send(self, message: Message) -> None:
        size = message.encoded_size()
        self.stats.record_send(message.source, size, kind=message.kind)
        telemetry.count("messages_sent_total", kind=message.kind)
        if message.source in self._failed or message.destination in self._failed:
            return
        if self.loss_rate > 0 and self._rng.random() < self.loss_rate:
            return

        def deliver() -> None:
            if message.destination in self._failed:
                return
            if not message.is_response and not self.is_registered(message.destination):
                return
            self.stats.record_receive(message.destination, size)
            telemetry.count("messages_received_total", kind=message.kind)
            self._dispatch(message)

        delay = self.latency.sample(message.source, message.destination)
        self.engine.schedule(delay, deliver, label=f"deliver:{message.kind}")

    # ------------------------------------------------------------------ #
    # Batched slab path
    # ------------------------------------------------------------------ #

    def send_batch(
        self,
        batch: MessageBatch,
        deliver: Callable[[MessageBatch, np.ndarray], None],
    ) -> None:
        """Send every row of ``batch`` in one shot (the slab hot path).

        Semantically equivalent to calling :meth:`send` on each
        materialized row — identical accounting (every attempt is counted
        at the sender, survivors at the receiver), identical failure/loss
        filtering *in the same order* (failure check first, then one loss
        draw per failure-survivor, consuming the RNG stream exactly as the
        scalar path would), identical latency sampling — but the per-row
        cost is a few vector ops, and delivery is scheduled as one engine
        event per distinct delay instead of one per message.

        Delivery bypasses per-node handler registration: surviving rows are
        handed back to ``deliver(batch, row_indices)`` at arrival time,
        after per-destination receive accounting and a re-check of the
        failure set (a destination crashed mid-flight drops its rows, just
        as the scalar path drops its message). Batch endpoints (the slab
        protocol runner) own their own routing, so responses, timers, and
        the pending-call table are not involved.
        """
        n = len(batch)
        if n == 0:
            return
        self.stats.record_send_bulk(batch.sources, batch.sizes, kind=batch.kind)
        telemetry.count("messages_sent_total", float(n), kind=batch.kind)
        alive = np.ones(n, dtype=bool)
        if self._failed:
            failed = np.fromiter(self._failed, dtype=np.int64, count=len(self._failed))
            alive = ~(np.isin(batch.sources, failed) | np.isin(batch.destinations, failed))
        if self.loss_rate > 0:
            # One draw per failure-survivor, in row order — the exact RNG
            # consumption of the equivalent scalar send sequence.
            draws = self._rng.random(int(alive.sum()))
            kept = draws >= self.loss_rate
            survivors = np.flatnonzero(alive)[kept]
        else:
            survivors = np.flatnonzero(alive)
        if len(survivors) == 0:
            return
        delays = self.latency.sample_array(
            batch.sources[survivors], batch.destinations[survivors]
        )
        for delay in np.unique(delays):
            rows = survivors[delays == delay]
            self.engine.schedule(
                float(delay),
                lambda rows=rows: self._deliver_batch(batch, rows, deliver),
                label=f"deliver:{batch.kind}:batch",
            )

    def _deliver_batch(
        self,
        batch: MessageBatch,
        rows: np.ndarray,
        deliver: Callable[[MessageBatch, np.ndarray], None],
    ) -> None:
        if self._failed:
            failed = np.fromiter(self._failed, dtype=np.int64, count=len(self._failed))
            rows = rows[~np.isin(batch.destinations[rows], failed)]
        if len(rows) == 0:
            return
        self.stats.record_receive_bulk(batch.destinations[rows], batch.sizes[rows])
        telemetry.count("messages_received_total", float(len(rows)), kind=batch.kind)
        deliver(batch, rows)

    def schedule(self, delay: float, callback: Callable[[], None]) -> Callable[[], None]:
        event = self.engine.schedule(delay, callback, label="timer")
        return event.cancel

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Convenience passthrough to the engine's run loop."""
        return self.engine.run(until=until, max_events=max_events)

"""UDP-based RPC transport over real sockets (paper Sec. 4, "RPC manager").

The prototype's RPC manager "is implemented at the socket-level to send and
receive UDP packets"; the cluster experiments ran up to 64 DAT instances
per machine. This transport reproduces that setup on localhost: every
registered node binds its own UDP socket on 127.0.0.1; a single receive
thread multiplexes all sockets with a selector and dispatches handlers
serially (so protocol code needs no locking, matching the DES substrate's
execution model).

Routes to nodes hosted by *other* processes can be added explicitly with
:meth:`UdpRpcTransport.add_route`, enabling genuine multi-process clusters.

This class implements only the substrate (sockets, timers, the wall
clock); request-path policy — deadlines, retries, backoff — lives in
:mod:`repro.net` and is identical over UDP and the simulator. A lost
datagram here is indistinguishable from simulated loss: the pending call
expires and the caller's :class:`~repro.net.RetryPolicy` decides whether
to retransmit.
"""

from __future__ import annotations

import selectors
import socket
import threading
import time
from typing import Callable

from repro import telemetry
from repro.errors import TransportError
from repro.sim.messages import Message, decode_message, encode_message
from repro.sim.transport import MessageHandler, Transport

__all__ = ["UdpRpcTransport"]

_MAX_DATAGRAM = 65000


class UdpRpcTransport(Transport):
    """Real-socket UDP transport hosting any number of local nodes.

    Use as a context manager (or call :meth:`close`) to release sockets::

        with UdpRpcTransport() as transport:
            transport.register(node_id, handler)
            ...
    """

    def __init__(self, bind_host: str = "127.0.0.1") -> None:
        super().__init__()
        self.bind_host = bind_host
        self._sockets: dict[int, socket.socket] = {}
        self._routes: dict[int, tuple[str, int]] = {}
        self._selector = selectors.DefaultSelector()
        self._lock = threading.RLock()
        # Insertion-ordered on purpose: timers are iterated during close()
        # and pruning, and set order would be hash-dependent (DAT012).
        self._timers: dict[threading.Timer, None] = {}  # guarded-by: _lock
        self._closed = False  # guarded-by: _lock
        # A wakeup socket lets register() update the selector while the
        # receive loop is blocked in select().
        self._wake_recv = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self._wake_recv.bind((bind_host, 0))
        self._wake_recv.setblocking(False)
        self._wake_addr = self._wake_recv.getsockname()
        self._selector.register(self._wake_recv, selectors.EVENT_READ, None)
        tel = telemetry.active()
        if tel is not None:
            # Counters always; the clock only behind the explicit opt-in.
            # By default the telemetry clock stays unbound here — the sim
            # clock is the only sanctioned timestamp source (DAT008), and
            # wall-clocked exports are not replay-deterministic. With
            # ``allow_wall_clock`` the clock binds to an offset from this
            # transport's start, built on the already-sanctioned
            # ``self.now`` boundary, so live spans get real durations.
            tel.register_hotspots("transport", self.stats)
            if tel.config.allow_wall_clock:
                start = self.now()
                tel.bind_clock(lambda: self.now() - start)
        self._thread = threading.Thread(
            target=self._receive_loop, name="udprpc-recv", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def __enter__(self) -> "UdpRpcTransport":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> None:
        """Stop the receive loop, cancel pending calls and timers, close sockets.

        Calls still in flight are cancelled through the same path
        :meth:`Transport.unregister` uses (:meth:`Transport.cancel_all_calls`):
        each pending entry's deadline timer is revoked and neither its reply
        nor its timeout continuation ever fires. Only then are the remaining
        maintenance timers cancelled and the sockets/selector released, so no
        stray selector or timer callback can run after ``close()`` returns.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._wakeup()
        self._thread.join(timeout=2.0)
        self.cancel_all_calls()
        with self._lock:
            for timer in list(self._timers):
                timer.cancel()
            self._timers.clear()
            for sock in self._sockets.values():
                try:
                    self._selector.unregister(sock)
                except (KeyError, ValueError):
                    pass
                sock.close()
            self._sockets.clear()
        try:
            self._selector.unregister(self._wake_recv)
        except (KeyError, ValueError):
            pass
        self._wake_recv.close()
        self._selector.close()

    def _wakeup(self) -> None:
        try:
            wake = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
            wake.sendto(b"\x00", self._wake_addr)
            wake.close()
        except OSError:
            pass

    # ------------------------------------------------------------------ #
    # Registration / routing
    # ------------------------------------------------------------------ #

    def register(self, node: int, handler: MessageHandler) -> None:
        with self._lock:
            # Checked under the lock: a concurrent close() between an
            # unlocked check and the registration would leak the socket.
            if self._closed:
                raise TransportError("transport is closed")
            super().register(node, handler)
            sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
            sock.bind((self.bind_host, 0))
            sock.setblocking(False)
            self._sockets[node] = sock
            self._routes[node] = sock.getsockname()
            self._selector.register(sock, selectors.EVENT_READ, node)
        self._wakeup()

    def unregister(self, node: int) -> None:
        with self._lock:
            super().unregister(node)
            sock = self._sockets.pop(node, None)
            self._routes.pop(node, None)
            if sock is not None:
                try:
                    self._selector.unregister(sock)
                except (KeyError, ValueError):
                    pass
                sock.close()
        self._wakeup()

    def add_route(self, node: int, host: str, port: int) -> None:
        """Declare the address of a node hosted by another process."""
        with self._lock:
            self._routes[node] = (host, port)

    def address_of(self, node: int) -> tuple[str, int]:
        """The (host, port) a local node is bound to (for peers' route books)."""
        with self._lock:
            try:
                return self._routes[node]
            except KeyError:
                raise TransportError(f"no route to node {node}") from None

    # ------------------------------------------------------------------ #
    # Transport implementation
    # ------------------------------------------------------------------ #

    def now(self) -> float:
        # The real-socket substrate's time *is* the wall clock — this is
        # the one sanctioned boundary; telemetry never binds to it.
        return time.monotonic()  # datlint: disable=DAT008

    def send(self, message: Message) -> None:
        if self._closed:
            return
        data = encode_message(message)
        if len(data) > _MAX_DATAGRAM:
            raise TransportError(
                f"message of {len(data)} bytes exceeds the UDP datagram budget"
            )
        self.stats.record_send(message.source, len(data))
        telemetry.count("messages_sent_total", kind=message.kind)
        with self._lock:
            route = self._routes.get(message.destination)
            sock = self._sockets.get(message.source)
        if route is None:
            return  # unknown destination: dropped, like a lost datagram
        try:
            if sock is not None:
                sock.sendto(data, route)
            else:
                # Source is not locally hosted (e.g. responses generated on
                # behalf of a departed node); use a throwaway socket.
                tmp = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
                tmp.sendto(data, route)
                tmp.close()
        except OSError:
            pass  # UDP semantics: losses surface as call timeouts

    def schedule(self, delay: float, callback: Callable[[], None]) -> Callable[[], None]:
        timer = threading.Timer(delay, self._run_timer, args=(callback,))
        timer.daemon = True
        with self._lock:
            if self._closed:
                return lambda: None
            self._timers[timer] = None
        timer.start()

        def cancel() -> None:
            timer.cancel()
            with self._lock:
                self._timers.pop(timer, None)

        return cancel

    def _run_timer(self, callback: Callable[[], None]) -> None:
        with self._lock:
            self._timers = {t: None for t in self._timers if t.is_alive()}
        if not self._closed:
            callback()

    # ------------------------------------------------------------------ #
    # Receive loop
    # ------------------------------------------------------------------ #

    def _receive_loop(self) -> None:
        while not self._closed:
            try:
                ready = self._selector.select(timeout=0.25)
            except (OSError, ValueError):
                return
            for key, _ in ready:
                if self._closed:
                    return
                sock: socket.socket = key.fileobj  # type: ignore[assignment]
                try:
                    data, _addr = sock.recvfrom(_MAX_DATAGRAM)
                except (BlockingIOError, OSError):
                    continue
                if key.data is None:
                    continue  # wakeup socket
                try:
                    message = decode_message(data)
                except TransportError:
                    continue  # malformed datagram: drop
                self.stats.record_receive(message.destination, len(data))
                telemetry.count("messages_received_total", kind=message.kind)
                try:
                    self._dispatch(message)
                except Exception:  # noqa: BLE001  # datlint: disable=DAT007 - a handler bug must not
                    # kill the shared receive loop; the failed RPC will
                    # surface as a timeout at the caller.
                    continue

"""Message tracing and the library's logging layer.

Two facilities:

* :class:`MessageTracer` wraps any transport's ``send`` with a recorder so
  experiments and tests can inspect exact message sequences — who talked to
  whom, when, and why — and render them as a text timeline. Zero overhead
  when not attached.
* :func:`trace` / :func:`get_logger` — the stdout-free diagnostic channel
  for library code. datlint's DAT004 bans ``print()`` outside CLIs; library
  modules emit through the ``repro`` logging tree instead, which stays
  silent unless the application configures a handler.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.sim.messages import Message
from repro.sim.transport import Transport
from repro.telemetry.hotspot import HotspotAccountant

__all__ = ["TraceRecord", "MessageTracer", "get_logger", "trace"]

#: Root of the library's logger tree; silent by default (no handler).
_ROOT_LOGGER_NAME = "repro"


def get_logger(name: str | None = None) -> logging.Logger:
    """Logger under the ``repro`` tree (``get_logger("sim")`` -> ``repro.sim``).

    Library code logs here instead of printing; applications opt in with
    ``logging.basicConfig`` or a handler on the ``repro`` logger.
    """
    if not name:
        return logging.getLogger(_ROOT_LOGGER_NAME)
    if name == _ROOT_LOGGER_NAME or name.startswith(_ROOT_LOGGER_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_LOGGER_NAME}.{name}")


def trace(message: str, *args: object) -> None:
    """Emit a debug-level diagnostic on the ``repro.sim`` logger.

    The drop-in replacement for ad-hoc ``print()`` debugging in library
    code::

        from repro.sim.tracing import trace
        engine.schedule(1.5, lambda: trace("fires at t=1.5"))
    """
    logging.getLogger(_ROOT_LOGGER_NAME + ".sim").debug(message, *args)


@dataclass(frozen=True)
class TraceRecord:
    """One observed message."""

    time: float
    kind: str
    source: int
    destination: int
    size: int

    def format(self) -> str:
        return (
            f"t={self.time:10.4f}  {self.kind:<16} "
            f"{self.source} -> {self.destination}  ({self.size} B)"
        )


class MessageTracer:
    """Records every message a transport sends.

    Usage::

        tracer = MessageTracer(transport)          # starts recording
        ... run the scenario ...
        tracer.detach()
        get_logger("sim").info(tracer.timeline(kinds={"agg_push"}))

    Filters: ``kinds`` restricts which message kinds are recorded at all
    (cheaper than filtering afterwards for chatty protocols).

    Traced messages also feed :attr:`accountant`, a private
    :class:`~repro.telemetry.hotspot.HotspotAccountant`, so a filtered
    trace gets the same load statistics (``loads()``, ``imbalance()``,
    per-kind counts) as a transport's full counters — and plugs straight
    into :func:`repro.viz.render_load_histogram`.
    """

    def __init__(
        self, transport: Transport, kinds: Iterable[str] | None = None
    ) -> None:
        self.transport = transport
        self.kinds = set(kinds) if kinds is not None else None
        self.records: list[TraceRecord] = []
        self.accountant = HotspotAccountant()
        self._original_send: Callable[[Message], None] = transport.send
        transport.send = self._recording_send  # type: ignore[method-assign]
        self._attached = True

    def _recording_send(self, message: Message) -> None:
        if self.kinds is None or message.kind in self.kinds:
            size = message.encoded_size()
            self.records.append(
                TraceRecord(
                    time=self.transport.now(),
                    kind=message.kind,
                    source=message.source,
                    destination=message.destination,
                    size=size,
                )
            )
            self.accountant.record_send(message.source, size, kind=message.kind)
            self.accountant.record_receive(message.destination, size)
        self._original_send(message)

    def detach(self) -> None:
        """Stop recording and restore the transport's send."""
        if self._attached:
            self.transport.send = self._original_send  # type: ignore[method-assign]
            self._attached = False

    def __enter__(self) -> "MessageTracer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.detach()

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def count(self, kind: str | None = None) -> int:
        """Recorded messages (optionally of one kind)."""
        if kind is None:
            return len(self.records)
        return sum(1 for record in self.records if record.kind == kind)

    def between(self, source: int, destination: int) -> list[TraceRecord]:
        """Messages on one directed edge."""
        return [
            record
            for record in self.records
            if record.source == source and record.destination == destination
        ]

    def timeline(
        self, kinds: set[str] | None = None, limit: int | None = None
    ) -> str:
        """Chronological text rendering (optionally filtered / truncated)."""
        selected = [
            record
            for record in self.records
            if kinds is None or record.kind in kinds
        ]
        if limit is not None and len(selected) > limit:
            shown = selected[:limit]
            suffix = f"\n... {len(selected) - limit} more"
        else:
            shown = selected
            suffix = ""
        return "\n".join(record.format() for record in shown) + suffix

    def loads(self) -> dict[int, int]:
        """Per-node total (sent + received) message counts over the trace."""
        return self.accountant.loads()

    def clear(self) -> None:
        """Drop recorded messages (keep recording)."""
        self.records.clear()
        self.accountant.reset()

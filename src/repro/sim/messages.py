"""Wire messages shared by all transports.

Messages are small tagged dicts. The UDP transport serializes them as JSON
(UTF-8); the simulated and in-process transports pass the objects straight
through but still account for the encoded size so message/byte statistics
are comparable across substrates.

Two representations exist:

* :class:`Message` — one message as a Python object. The unit of the
  protocol code and of every transport's scalar path.
* :class:`MessageBatch` — a *slab* of same-kind messages as parallel NumPy
  arrays (sources, destinations, wire sizes, a contiguous ``msg_id`` block,
  and opaque caller-owned payload columns). The unit of the bulk-simulation
  path (:meth:`repro.sim.simnet.SimTransport.send_batch`): at 10^5 nodes a
  continuous-push round is one batch, not 10^5 message objects.

Batches never JSON-encode: their per-message wire sizes are computed
arithmetically from the same encoding rules (:func:`int_digit_counts` /
:func:`float_repr_lengths` plus :func:`envelope_overhead`), and
``tests/unit/test_slab.py`` asserts the computed sizes equal
``Message.encoded_size()`` of the materialized equivalents byte-for-byte.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import TransportError

__all__ = [
    "Message",
    "MessageBatch",
    "encode_message",
    "decode_message",
    "reserve_msg_ids",
    "reset_msg_ids",
    "int_digit_counts",
    "float_repr_lengths",
    "envelope_overhead",
]


class _MsgIdAllocator:
    """Monotonic message-id source with O(1) bulk reservation.

    ``take()`` hands out one id (the :class:`Message` default); ``reserve``
    claims a contiguous block for a :class:`MessageBatch` without ticking an
    iterator ``n`` times. Ids issued by either path never collide.
    """

    __slots__ = ("_next",)

    def __init__(self, start: int = 1) -> None:
        self._next = start

    def take(self) -> int:
        value = self._next
        self._next = value + 1
        return value

    def reserve(self, count: int) -> int:
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        start = self._next
        self._next = start + count
        return start


_MSG_IDS = _MsgIdAllocator()


def reserve_msg_ids(count: int) -> int:
    """Claim ``count`` consecutive message ids; returns the first.

    Batched sends consume ids from the same global sequence as scalar
    :class:`Message` construction, so byte accounting (ids appear in the
    wire encoding) and reply correlation stay consistent across paths.
    """
    return _MSG_IDS.reserve(count)


def reset_msg_ids(start: int = 1) -> None:
    """Rewind the global message-id sequence (testing support only).

    Equivalence tests replay the same scenario through the object and slab
    paths and compare *wire bytes*; ids appear in the encoding, so each
    replay must start from the same id.
    """
    _MSG_IDS._next = start


@dataclass(slots=True)
class Message:
    """One protocol message.

    Parameters
    ----------
    kind:
        Application-level message type (e.g. ``"find_successor"``,
        ``"agg_push"``).
    source, destination:
        Node identifiers (transport addresses are resolved by the
        transport's registry).
    payload:
        JSON-serializable dict.
    msg_id:
        Unique id; responses echo the request's id in ``reply_to``.
    reply_to:
        For responses: the ``msg_id`` of the request being answered.
    """

    kind: str
    source: int
    destination: int
    payload: dict[str, Any] = field(default_factory=dict)
    msg_id: int = field(default_factory=_MSG_IDS.take)
    reply_to: int | None = None

    @property
    def is_response(self) -> bool:
        """True when this message answers an earlier request."""
        return self.reply_to is not None

    def response(self, kind: str | None = None, **payload: Any) -> "Message":
        """Build a response to this message (source/destination swapped)."""
        return Message(
            kind=kind or f"{self.kind}_reply",
            source=self.destination,
            destination=self.source,
            payload=payload,
            reply_to=self.msg_id,
        )

    def encoded_size(self) -> int:
        """Byte size of this message on the wire (JSON encoding)."""
        return len(encode_message(self))


def encode_message(message: Message) -> bytes:
    """Serialize to the JSON wire format used by the UDP transport."""
    try:
        return json.dumps(
            {
                "kind": message.kind,
                "src": message.source,
                "dst": message.destination,
                "payload": message.payload,
                "msg_id": message.msg_id,
                "reply_to": message.reply_to,
            },
            separators=(",", ":"),
        ).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise TransportError(f"message payload is not JSON-serializable: {exc}") from exc


def decode_message(data: bytes) -> Message:
    """Parse a wire message; raises :class:`TransportError` on malformed input."""
    try:
        obj = json.loads(data.decode("utf-8"))
        return Message(
            kind=obj["kind"],
            source=obj["src"],
            destination=obj["dst"],
            payload=obj.get("payload", {}),
            msg_id=obj.get("msg_id", 0),
            reply_to=obj.get("reply_to"),
        )
    except (KeyError, ValueError, UnicodeDecodeError) as exc:
        raise TransportError(f"malformed wire message: {exc}") from exc


# --------------------------------------------------------------------- #
# Slab representation
# --------------------------------------------------------------------- #

#: ``10^1 .. 10^18`` — the digit-count grid for int64 values.
_POW10 = np.array([10**k for k in range(1, 19)], dtype=np.int64)


def int_digit_counts(values: np.ndarray) -> np.ndarray:
    """Decimal digit count of each non-negative int64 (JSON numeral length).

    Exact for the full int64 range via a power-of-ten ``searchsorted`` —
    no float log10 rounding anywhere.
    """
    arr = np.asarray(values, dtype=np.int64)
    if arr.size and int(arr.min()) < 0:
        raise ValueError("int_digit_counts requires non-negative values")
    return (np.searchsorted(_POW10, arr, side="right") + 1).astype(np.int64)


def float_repr_lengths(values: np.ndarray) -> np.ndarray:
    """JSON numeral length of each float64 (``json.dumps`` uses ``repr``).

    The only per-element Python work on the slab hot path; a ``tolist``
    round-trip plus ``len(repr(.))`` costs tens of milliseconds per 10^5
    values — negligible against the per-message encode it replaces.
    """
    arr = np.asarray(values, dtype=np.float64)
    return np.fromiter(
        (len(repr(v)) for v in arr.tolist()), dtype=np.int64, count=arr.size
    )


def envelope_overhead(kind: str) -> int:
    """Wire bytes of a :class:`Message` envelope excluding the variable parts.

    The JSON encoding of a request is::

        {"kind":"<kind>","src":S,"dst":D,"payload":P,"msg_id":M,"reply_to":null}

    This returns the byte length of everything but the ``S``/``D``/``M``
    numerals and the payload body ``P``, so a batch computes
    ``size = overhead + digits(S) + digits(D) + digits(M) + len(P)``.
    """
    probe = Message(kind=kind, source=0, destination=0, payload={}, msg_id=0)
    # The probe contributes one "0" numeral each for src/dst/msg_id (3
    # bytes) and "{}" for the payload (2 bytes).
    return probe.encoded_size() - 3 - 2


@dataclass(slots=True)
class MessageBatch:
    """A slab of same-kind request messages as parallel arrays.

    One batch is one logical fan-out (e.g. every ``agg_push`` of a
    continuous round): ``sources[i] -> destinations[i]`` carries the i-th
    message, whose wire size is ``sizes[i]`` and whose id is
    ``msg_id_start + i`` (a contiguous block from :func:`reserve_msg_ids`).
    Payload columns are caller-owned arrays (aggregate states, keys);
    transports never interpret them — delivery hands the batch plus the
    surviving row indices back to the caller's endpoint.

    ``message(i)`` materializes one row as a :class:`Message` for
    debugging and for the size-exactness tests; the hot path never does.
    """

    kind: str
    sources: np.ndarray
    destinations: np.ndarray
    sizes: np.ndarray
    msg_id_start: int
    payload_columns: dict[str, np.ndarray] = field(default_factory=dict)
    #: Builds row ``i``'s payload dict (for :meth:`message` only).
    payload_of: Any = None

    def __post_init__(self) -> None:
        n = len(self.sources)
        if not (len(self.destinations) == len(self.sizes) == n):
            raise TransportError(
                "batch columns disagree on length: "
                f"{n} sources, {len(self.destinations)} destinations, "
                f"{len(self.sizes)} sizes"
            )

    def __len__(self) -> int:
        return len(self.sources)

    def msg_ids(self) -> np.ndarray:
        """The contiguous id block as an array."""
        return self.msg_id_start + np.arange(len(self), dtype=np.int64)

    def message(self, i: int) -> Message:
        """Materialize row ``i`` as a scalar :class:`Message` (slow path)."""
        payload = self.payload_of(i) if self.payload_of is not None else {}
        return Message(
            kind=self.kind,
            source=int(self.sources[i]),
            destination=int(self.destinations[i]),
            payload=payload,
            msg_id=self.msg_id_start + i,
        )

    def nbytes(self) -> int:
        """Slab memory footprint (arrays only), for memory accounting."""
        total = self.sources.nbytes + self.destinations.nbytes + self.sizes.nbytes
        for column in self.payload_columns.values():
            total += column.nbytes
        return total

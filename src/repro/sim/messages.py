"""Wire messages shared by all transports.

Messages are small tagged dicts. The UDP transport serializes them as JSON
(UTF-8); the simulated and in-process transports pass the objects straight
through but still account for the encoded size so message/byte statistics
are comparable across substrates.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from typing import Any

from repro.errors import TransportError

__all__ = ["Message", "encode_message", "decode_message"]

_MSG_COUNTER = itertools.count(1)


@dataclass
class Message:
    """One protocol message.

    Parameters
    ----------
    kind:
        Application-level message type (e.g. ``"find_successor"``,
        ``"agg_push"``).
    source, destination:
        Node identifiers (transport addresses are resolved by the
        transport's registry).
    payload:
        JSON-serializable dict.
    msg_id:
        Unique id; responses echo the request's id in ``reply_to``.
    reply_to:
        For responses: the ``msg_id`` of the request being answered.
    """

    kind: str
    source: int
    destination: int
    payload: dict[str, Any] = field(default_factory=dict)
    msg_id: int = field(default_factory=lambda: next(_MSG_COUNTER))
    reply_to: int | None = None

    @property
    def is_response(self) -> bool:
        """True when this message answers an earlier request."""
        return self.reply_to is not None

    def response(self, kind: str | None = None, **payload: Any) -> "Message":
        """Build a response to this message (source/destination swapped)."""
        return Message(
            kind=kind or f"{self.kind}_reply",
            source=self.destination,
            destination=self.source,
            payload=payload,
            reply_to=self.msg_id,
        )

    def encoded_size(self) -> int:
        """Byte size of this message on the wire (JSON encoding)."""
        return len(encode_message(self))


def encode_message(message: Message) -> bytes:
    """Serialize to the JSON wire format used by the UDP transport."""
    try:
        return json.dumps(
            {
                "kind": message.kind,
                "src": message.source,
                "dst": message.destination,
                "payload": message.payload,
                "msg_id": message.msg_id,
                "reply_to": message.reply_to,
            },
            separators=(",", ":"),
        ).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise TransportError(f"message payload is not JSON-serializable: {exc}") from exc


def decode_message(data: bytes) -> Message:
    """Parse a wire message; raises :class:`TransportError` on malformed input."""
    try:
        obj = json.loads(data.decode("utf-8"))
        return Message(
            kind=obj["kind"],
            source=obj["src"],
            destination=obj["dst"],
            payload=obj.get("payload", {}),
            msg_id=obj.get("msg_id", 0),
            reply_to=obj.get("reply_to"),
        )
    except (KeyError, ValueError, UnicodeDecodeError) as exc:
        raise TransportError(f"malformed wire message: {exc}") from exc

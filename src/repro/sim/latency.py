"""Network latency models for the simulated transport.

The paper's cluster connects nodes over 1-Gigabit Ethernet (sub-millisecond
LAN latencies); Grid/PlanetLab deployments see wide-area latencies of tens
to hundreds of milliseconds. The models here let experiments interpolate
between the two.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.util.rng import ensure_rng
from repro.util.validation import check_non_negative, check_probability

__all__ = ["LatencyModel", "ConstantLatency", "UniformLatency", "LanWanLatency"]


class LatencyModel(ABC):
    """Strategy producing a one-way message delay between two nodes."""

    @abstractmethod
    def sample(self, source: int, destination: int) -> float:
        """One-way delay in seconds for a message ``source -> destination``."""

    def sample_array(
        self, sources: np.ndarray, destinations: np.ndarray
    ) -> np.ndarray:
        """Delays for many message pairs at once (batched transport path).

        The default delegates to :meth:`sample` element-wise, so stochastic
        models consume their RNG stream in exactly the per-message order —
        batched and scalar sends stay trace-identical. Deterministic models
        override this with a closed form.
        """
        return np.fromiter(
            (
                self.sample(int(src), int(dst))
                for src, dst in zip(sources.tolist(), destinations.tolist())
            ),
            dtype=np.float64,
            count=len(sources),
        )


class ConstantLatency(LatencyModel):
    """Fixed delay for every message (deterministic simulations)."""

    def __init__(self, delay: float = 0.001) -> None:
        check_non_negative("delay", delay)
        self.delay = float(delay)

    def sample(self, source: int, destination: int) -> float:
        return self.delay

    def sample_array(
        self, sources: np.ndarray, destinations: np.ndarray
    ) -> np.ndarray:
        return np.full(len(sources), self.delay, dtype=np.float64)


class UniformLatency(LatencyModel):
    """Delay drawn uniformly from ``[low, high]`` per message."""

    def __init__(
        self,
        low: float = 0.0005,
        high: float = 0.002,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        check_non_negative("low", low)
        if high < low:
            raise ValueError(f"high ({high}) must be >= low ({low})")
        self.low = float(low)
        self.high = float(high)
        self._rng = ensure_rng(rng)

    def sample(self, source: int, destination: int) -> float:
        return float(self._rng.uniform(self.low, self.high))


class LanWanLatency(LatencyModel):
    """Two-tier model: cheap intra-site hops, expensive wide-area hops.

    Nodes are assigned to sites by ``ident % n_sites``; messages between
    nodes on the same site take LAN latency, others take WAN latency with
    multiplicative jitter. This approximates a multi-site Grid (the paper's
    motivating deployment) without a full topology generator.
    """

    def __init__(
        self,
        n_sites: int = 16,
        lan_delay: float = 0.0005,
        wan_delay: float = 0.050,
        jitter: float = 0.2,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        if n_sites <= 0:
            raise ValueError(f"n_sites must be positive, got {n_sites}")
        check_non_negative("lan_delay", lan_delay)
        check_non_negative("wan_delay", wan_delay)
        check_probability("jitter", jitter)
        self.n_sites = int(n_sites)
        self.lan_delay = float(lan_delay)
        self.wan_delay = float(wan_delay)
        self.jitter = float(jitter)
        self._rng = ensure_rng(rng)

    def site_of(self, ident: int) -> int:
        """Deterministic site assignment for a node identifier."""
        return ident % self.n_sites

    def sample(self, source: int, destination: int) -> float:
        base = (
            self.lan_delay
            if self.site_of(source) == self.site_of(destination)
            else self.wan_delay
        )
        if self.jitter == 0:
            return base
        factor = 1.0 + float(self._rng.uniform(-self.jitter, self.jitter))
        return base * factor

"""Heap-based discrete-event simulation engine (paper Sec. 4).

"A heap-based event queue is used to insert and fire those events in a
chronological order." — this module is that engine, with two additions a
reproduction needs: deterministic tie-breaking (events at equal timestamps
fire in insertion order, so runs are bit-identical across platforms) and
cancellable events (protocol timers are rescheduled constantly).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import SimulationError

__all__ = ["Event", "TickHook", "SimulationEngine"]


@dataclass(order=True)
class Event:
    """One scheduled callback.

    Ordering is (time, sequence) — the sequence number breaks ties in
    insertion order, making simulations deterministic.
    """

    time: float
    sequence: int
    callback: Callable[[], Any] = field(compare=False)
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the engine skips it (O(1) lazy deletion)."""
        self.cancelled = True


@dataclass
class TickHook:
    """A periodic callback fired at fixed virtual-time window boundaries.

    Unlike a self-rescheduling :class:`Event`, a tick hook lives outside
    the heap: it never keeps ``run()`` from draining, and it fires *before*
    the clock crosses each ``interval`` boundary, so periodic observers
    (telemetry load sampling) see state as of the window edge. The
    callback receives the boundary time.
    """

    interval: float
    next_due: float
    callback: Callable[[float], Any] = field(compare=False)
    label: str = ""
    cancelled: bool = False

    def cancel(self) -> None:
        """Stop firing (O(1); the engine prunes lazily)."""
        self.cancelled = True


class SimulationEngine:
    """A virtual clock plus a heap of pending events.

    Usage::

        from repro.sim.tracing import trace

        engine = SimulationEngine()
        engine.schedule(1.5, lambda: trace("fires at t=1.5"))
        engine.run()
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[Event] = []
        self._sequence = itertools.count()
        self._events_fired = 0
        self._running = False
        self._hooks: list[TickHook] = []

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of not-yet-fired, not-cancelled events."""
        return sum(1 for e in self._heap if not e.cancelled)

    @property
    def events_fired(self) -> int:
        """Total events executed so far."""
        return self._events_fired

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #

    def schedule_at(
        self, time: float, callback: Callable[[], Any], label: str = ""
    ) -> Event:
        """Schedule ``callback`` at absolute virtual time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before current time t={self._now}"
            )
        event = Event(
            time=time, sequence=next(self._sequence), callback=callback, label=label
        )
        heapq.heappush(self._heap, event)
        return event

    def schedule(
        self, delay: float, callback: Callable[[], Any], label: str = ""
    ) -> Event:
        """Schedule ``callback`` after ``delay`` units of virtual time."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        return self.schedule_at(self._now + delay, callback, label=label)

    def add_tick_hook(
        self, interval: float, callback: Callable[[float], Any], label: str = ""
    ) -> TickHook:
        """Fire ``callback(boundary_time)`` every ``interval`` of virtual time.

        The hook fires whenever the clock is about to cross a window
        boundary — before the event that crosses it, and at the final
        clock bump of ``run(until=...)`` — so every elapsed window gets
        exactly one call even across idle stretches. Cancel via the
        returned handle.
        """
        if interval <= 0:
            raise SimulationError(f"interval must be positive, got {interval}")
        hook = TickHook(
            interval=interval,
            next_due=self._now + interval,
            callback=callback,
            label=label,
        )
        self._hooks.append(hook)
        return hook

    def _fire_hooks(self, up_to: float) -> None:
        """Fire every hook due at or before ``up_to``, one call per window."""
        prune = False
        for hook in self._hooks:
            if hook.cancelled:
                prune = True
                continue
            while hook.next_due <= up_to and not hook.cancelled:
                at = hook.next_due
                hook.next_due = at + hook.interval
                hook.callback(at)
        if prune:
            self._hooks = [h for h in self._hooks if not h.cancelled]

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def step(self) -> bool:
        """Fire the next event. Returns False when the queue is exhausted."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            if self._hooks:
                self._fire_hooks(event.time)
            self._now = event.time
            self._events_fired += 1
            event.callback()
            return True
        return False

    def run(
        self, until: float | None = None, max_events: int | None = None
    ) -> float:
        """Drain events, optionally bounded by virtual time or event count.

        Parameters
        ----------
        until:
            Stop once the next event would fire after this time; the clock
            advances exactly to ``until`` (events at ``t == until`` fire).
        max_events:
            Safety valve against runaway event loops.

        Returns
        -------
        float
            The virtual time when the run stopped.
        """
        if self._running:
            raise SimulationError("engine is already running (re-entrant run())")
        self._running = True
        fired = 0
        try:
            while self._heap:
                # Skip cancelled heads without firing.
                head = self._heap[0]
                if head.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and head.time > until:
                    break
                if max_events is not None and fired >= max_events:
                    raise SimulationError(
                        f"run() exceeded max_events={max_events} "
                        f"(possible event loop at t={self._now})"
                    )
                self.step()
                fired += 1
            if until is not None and self._now < until:
                if self._hooks:
                    self._fire_hooks(until)
                self._now = until
            return self._now
        finally:
            self._running = False

    def clear(self) -> None:
        """Drop all pending events (the clock is left where it is)."""
        self._heap.clear()

"""Heap-based discrete-event simulation engine (paper Sec. 4).

"A heap-based event queue is used to insert and fire those events in a
chronological order." — this module is that engine, with two additions a
reproduction needs: deterministic tie-breaking (events at equal timestamps
fire in insertion order, so runs are bit-identical across platforms) and
cancellable events (protocol timers are rescheduled constantly).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import SimulationError

__all__ = ["Event", "SimulationEngine"]


@dataclass(order=True)
class Event:
    """One scheduled callback.

    Ordering is (time, sequence) — the sequence number breaks ties in
    insertion order, making simulations deterministic.
    """

    time: float
    sequence: int
    callback: Callable[[], Any] = field(compare=False)
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the engine skips it (O(1) lazy deletion)."""
        self.cancelled = True


class SimulationEngine:
    """A virtual clock plus a heap of pending events.

    Usage::

        from repro.sim.tracing import trace

        engine = SimulationEngine()
        engine.schedule(1.5, lambda: trace("fires at t=1.5"))
        engine.run()
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[Event] = []
        self._sequence = itertools.count()
        self._events_fired = 0
        self._running = False

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of not-yet-fired, not-cancelled events."""
        return sum(1 for e in self._heap if not e.cancelled)

    @property
    def events_fired(self) -> int:
        """Total events executed so far."""
        return self._events_fired

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #

    def schedule_at(
        self, time: float, callback: Callable[[], Any], label: str = ""
    ) -> Event:
        """Schedule ``callback`` at absolute virtual time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before current time t={self._now}"
            )
        event = Event(
            time=time, sequence=next(self._sequence), callback=callback, label=label
        )
        heapq.heappush(self._heap, event)
        return event

    def schedule(
        self, delay: float, callback: Callable[[], Any], label: str = ""
    ) -> Event:
        """Schedule ``callback`` after ``delay`` units of virtual time."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        return self.schedule_at(self._now + delay, callback, label=label)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def step(self) -> bool:
        """Fire the next event. Returns False when the queue is exhausted."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            self._events_fired += 1
            event.callback()
            return True
        return False

    def run(
        self, until: float | None = None, max_events: int | None = None
    ) -> float:
        """Drain events, optionally bounded by virtual time or event count.

        Parameters
        ----------
        until:
            Stop once the next event would fire after this time; the clock
            advances exactly to ``until`` (events at ``t == until`` fire).
        max_events:
            Safety valve against runaway event loops.

        Returns
        -------
        float
            The virtual time when the run stopped.
        """
        if self._running:
            raise SimulationError("engine is already running (re-entrant run())")
        self._running = True
        fired = 0
        try:
            while self._heap:
                # Skip cancelled heads without firing.
                head = self._heap[0]
                if head.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and head.time > until:
                    break
                if max_events is not None and fired >= max_events:
                    raise SimulationError(
                        f"run() exceeded max_events={max_events} "
                        f"(possible event loop at t={self._now})"
                    )
                self.step()
                fired += 1
            if until is not None and self._now < until:
                self._now = until
            return self._now
        finally:
            self._running = False

    def clear(self) -> None:
        """Drop all pending events (the clock is left where it is)."""
        self._heap.clear()

"""Heap-based discrete-event simulation engine (paper Sec. 4).

"A heap-based event queue is used to insert and fire those events in a
chronological order." — this module is that engine, with two additions a
reproduction needs: deterministic tie-breaking (events at equal timestamps
fire in insertion order, so runs are bit-identical across platforms) and
cancellable events (protocol timers are rescheduled constantly).

The queue is an *indexed* binary heap: every event carries its own heap
position, so :meth:`Event.cancel` removes it in O(log n) instead of leaving
a tombstone to be popped past later. Churn replay at 10^5 nodes cancels a
retransmission timer for nearly every delivered message — with lazy
deletion those tombstones dominated heap size (and every ``pending`` read
was a full scan); with indexed removal the heap holds live events only and
``pending`` is O(1).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro import telemetry
from repro.errors import SimulationError

__all__ = ["Event", "IndexedEventHeap", "TickHook", "SimulationEngine"]


@dataclass(order=True, slots=True)
class Event:
    """One scheduled callback.

    Ordering is (time, sequence) — the sequence number breaks ties in
    insertion order, making simulations deterministic. ``slots=True``
    trims per-event memory by roughly half: at 10^5 scheduled deliveries
    the event queue itself is a measurable share of peak RSS.
    """

    time: float
    sequence: int
    callback: Callable[[], Any] = field(compare=False)
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)
    #: Intrusive position index: the heap that holds the event and its slot
    #: in that heap's array. Maintained by :class:`IndexedEventHeap` only.
    _heap: IndexedEventHeap | None = field(
        default=None, compare=False, repr=False
    )
    _index: int = field(default=-1, compare=False, repr=False)

    def cancel(self) -> None:
        """Cancel the event, removing it from its heap in O(log n).

        Safe to call at any point — before the event fires (it is unlinked
        immediately), after it fired, or twice (no-ops). The ``cancelled``
        flag stays set so callers can still observe the state.
        """
        self.cancelled = True
        heap = self._heap
        if heap is not None:
            heap.remove(self)


class IndexedEventHeap:
    """Binary min-heap of :class:`Event` with intrusive position tracking.

    Each contained event stores its own array slot (``event._index``), so
    removal from the middle — the cancel path — is O(log n): swap the last
    element into the hole and restore the heap property from there. No
    position dict, no tombstones; ``len(heap)`` is exactly the live event
    count.

    ``lazy_deleted`` counts events that arrived at :meth:`pop` with their
    ``cancelled`` flag already set — possible only for flags written
    directly instead of via :meth:`Event.cancel`, so the counter is a
    telemetry canary for code bypassing indexed removal (it stays 0 in a
    healthy run).
    """

    __slots__ = ("_events", "lazy_deleted")

    def __init__(self) -> None:
        self._events: list[Event] = []
        self.lazy_deleted = 0

    def __len__(self) -> int:
        return len(self._events)

    def peek(self) -> Event:
        """The earliest event, without removing it."""
        return self._events[0]

    def push(self, event: Event) -> None:
        """Insert ``event`` (O(log n))."""
        event._heap = self
        event._index = len(self._events)
        self._events.append(event)
        self._sift_up(event._index)

    def pop(self) -> Event:
        """Remove and return the earliest event (O(log n))."""
        events = self._events
        top = events[0]
        last = events.pop()
        if events:
            events[0] = last
            last._index = 0
            self._sift_down(0)
        top._heap = None
        top._index = -1
        return top

    def remove(self, event: Event) -> bool:
        """Unlink ``event`` from any position (O(log n)).

        Returns False when the event is not in this heap (already fired,
        already removed, or never scheduled).
        """
        if event._heap is not self:
            return False
        events = self._events
        slot = event._index
        event._heap = None
        event._index = -1
        last = events.pop()
        if slot < len(events):
            events[slot] = last
            last._index = slot
            self._sift_up(slot)
            if last._index == slot:
                self._sift_down(slot)
        return True

    def clear(self) -> None:
        """Drop every event, unlinking each."""
        for event in self._events:
            event._heap = None
            event._index = -1
        self._events.clear()

    def _sift_up(self, slot: int) -> None:
        events = self._events
        moving = events[slot]
        while slot > 0:
            parent_slot = (slot - 1) >> 1
            parent = events[parent_slot]
            if moving < parent:
                events[slot] = parent
                parent._index = slot
                slot = parent_slot
            else:
                break
        events[slot] = moving
        moving._index = slot

    def _sift_down(self, slot: int) -> None:
        events = self._events
        size = len(events)
        moving = events[slot]
        while True:
            child_slot = 2 * slot + 1
            if child_slot >= size:
                break
            right = child_slot + 1
            if right < size and events[right] < events[child_slot]:
                child_slot = right
            child = events[child_slot]
            if child < moving:
                events[slot] = child
                child._index = slot
                slot = child_slot
            else:
                break
        events[slot] = moving
        moving._index = slot

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"IndexedEventHeap(n={len(self._events)})"


@dataclass
class TickHook:
    """A periodic callback fired at fixed virtual-time window boundaries.

    Unlike a self-rescheduling :class:`Event`, a tick hook lives outside
    the heap: it never keeps ``run()`` from draining, and it fires *before*
    the clock crosses each ``interval`` boundary, so periodic observers
    (telemetry load sampling) see state as of the window edge. The
    callback receives the boundary time.
    """

    interval: float
    next_due: float
    callback: Callable[[float], Any] = field(compare=False)
    label: str = ""
    cancelled: bool = False

    def cancel(self) -> None:
        """Stop firing (O(1); the engine prunes lazily)."""
        self.cancelled = True


class SimulationEngine:
    """A virtual clock plus a heap of pending events.

    Usage::

        from repro.sim.tracing import trace

        engine = SimulationEngine()
        engine.schedule(1.5, lambda: trace("fires at t=1.5"))
        engine.run()
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap = IndexedEventHeap()
        self._sequence = itertools.count()
        self._events_fired = 0
        self._running = False
        self._hooks: list[TickHook] = []
        self._heap_peak = 0

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of not-yet-fired, not-cancelled events (O(1)).

        Cancelled events leave the indexed heap immediately, so the live
        count is simply the heap size — no scan.
        """
        return len(self._heap)

    @property
    def events_fired(self) -> int:
        """Total events executed so far."""
        return self._events_fired

    @property
    def heap_peak(self) -> int:
        """Largest number of simultaneously pending events seen so far.

        Published as the ``sim_heap_peak`` telemetry gauge after each
        :meth:`run`.
        """
        return self._heap_peak

    @property
    def lazy_deleted(self) -> int:
        """Events that reached the pop path already cancelled.

        Stays 0 when every cancellation goes through :meth:`Event.cancel`
        (which unlinks indexed); a nonzero value means something set the
        ``cancelled`` flag directly. Published as the
        ``sim_heap_lazy_deleted`` telemetry gauge after each :meth:`run`.
        """
        return self._heap.lazy_deleted

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #

    def schedule_at(
        self, time: float, callback: Callable[[], Any], label: str = ""
    ) -> Event:
        """Schedule ``callback`` at absolute virtual time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before current time t={self._now}"
            )
        event = Event(
            time=time, sequence=next(self._sequence), callback=callback, label=label
        )
        self._heap.push(event)
        if len(self._heap) > self._heap_peak:
            self._heap_peak = len(self._heap)
        return event

    def schedule(
        self, delay: float, callback: Callable[[], Any], label: str = ""
    ) -> Event:
        """Schedule ``callback`` after ``delay`` units of virtual time."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        return self.schedule_at(self._now + delay, callback, label=label)

    def add_tick_hook(
        self, interval: float, callback: Callable[[float], Any], label: str = ""
    ) -> TickHook:
        """Fire ``callback(boundary_time)`` every ``interval`` of virtual time.

        The hook fires whenever the clock is about to cross a window
        boundary — before the event that crosses it, and at the final
        clock bump of ``run(until=...)`` — so every elapsed window gets
        exactly one call even across idle stretches. Cancel via the
        returned handle.
        """
        if interval <= 0:
            raise SimulationError(f"interval must be positive, got {interval}")
        hook = TickHook(
            interval=interval,
            next_due=self._now + interval,
            callback=callback,
            label=label,
        )
        self._hooks.append(hook)
        return hook

    def _fire_hooks(self, up_to: float) -> None:
        """Fire every hook due at or before ``up_to``, one call per window."""
        prune = False
        for hook in self._hooks:
            if hook.cancelled:
                prune = True
                continue
            while hook.next_due <= up_to and not hook.cancelled:
                at = hook.next_due
                hook.next_due = at + hook.interval
                hook.callback(at)
        if prune:
            self._hooks = [h for h in self._hooks if not h.cancelled]

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def step(self) -> bool:
        """Fire the next event. Returns False when the queue is exhausted."""
        while len(self._heap):
            event = self._heap.pop()
            if event.cancelled:
                # Unreachable via Event.cancel (indexed removal); counted
                # as a canary for direct flag writes.
                self._heap.lazy_deleted += 1
                continue
            if self._hooks:
                self._fire_hooks(event.time)
            self._now = event.time
            self._events_fired += 1
            event.callback()
            return True
        return False

    def run(
        self, until: float | None = None, max_events: int | None = None
    ) -> float:
        """Drain events, optionally bounded by virtual time or event count.

        Parameters
        ----------
        until:
            Stop once the next event would fire after this time; the clock
            advances exactly to ``until`` (events at ``t == until`` fire).
        max_events:
            Safety valve against runaway event loops.

        Returns
        -------
        float
            The virtual time when the run stopped.
        """
        if self._running:
            raise SimulationError("engine is already running (re-entrant run())")
        self._running = True
        fired = 0
        try:
            while len(self._heap):
                head = self._heap.peek()
                if head.cancelled:
                    # Canary path: flag written directly, not via cancel().
                    self._heap.pop()
                    self._heap.lazy_deleted += 1
                    continue
                if until is not None and head.time > until:
                    break
                if max_events is not None and fired >= max_events:
                    raise SimulationError(
                        f"run() exceeded max_events={max_events} "
                        f"(possible event loop at t={self._now})"
                    )
                self.step()
                fired += 1
            if until is not None and self._now < until:
                if self._hooks:
                    self._fire_hooks(until)
                self._now = until
            return self._now
        finally:
            self._running = False
            telemetry.gauge_set("sim_heap_peak", float(self._heap_peak))
            telemetry.gauge_set(
                "sim_heap_lazy_deleted", float(self._heap.lazy_deleted)
            )

    def clear(self) -> None:
        """Drop all pending events (the clock is left where it is)."""
        self._heap.clear()

"""Zero-latency in-process transport for unit tests.

Delivery is synchronous: ``send`` invokes the destination handler before
returning. Timers are queued and fired manually with :meth:`advance`, so
tests control time explicitly without a full simulation engine.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable

from repro.sim.messages import Message
from repro.sim.transport import Transport

__all__ = ["InprocTransport"]


class InprocTransport(Transport):
    """Synchronous direct-call transport with a manual clock."""

    def __init__(self) -> None:
        super().__init__()
        self._time = 0.0
        self._timers: list[tuple[float, int, Callable[[], None]]] = []
        self._timer_seq = itertools.count()
        self._cancelled: set[int] = set()

    def now(self) -> float:
        return self._time

    def send(self, message: Message) -> None:
        size = message.encoded_size()
        self.stats.record_send(message.source, size)
        if message.is_response:
            # Responses are dispatched even if the caller node's handler is
            # gone; the pending-call table decides.
            self.stats.record_receive(message.destination, size)
            self._dispatch(message)
            return
        if not self.is_registered(message.destination):
            return
        self.stats.record_receive(message.destination, size)
        self._dispatch(message)

    def schedule(self, delay: float, callback: Callable[[], None]) -> Callable[[], None]:
        seq = next(self._timer_seq)
        heapq.heappush(self._timers, (self._time + delay, seq, callback))

        def cancel() -> None:
            self._cancelled.add(seq)

        return cancel

    def advance(self, delta: float) -> None:
        """Move the manual clock forward, firing due timers in order."""
        target = self._time + delta
        while self._timers and self._timers[0][0] <= target:
            when, seq, callback = heapq.heappop(self._timers)
            self._time = when
            if seq not in self._cancelled:
                callback()
            else:
                self._cancelled.discard(seq)
        self._time = target

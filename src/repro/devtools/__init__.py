"""Developer tooling that ships with the reproduction.

:mod:`repro.devtools.datlint` — the project's own AST-based static-analysis
pass.  It enforces the invariants the paper's claims rest on (deterministic
seeding, id-space arithmetic through :class:`~repro.chord.idspace.IdSpace`,
non-blocking sim handlers) that generic linters cannot know about.
"""

__all__ = ["datlint"]

"""Small AST helpers shared by the rules."""

from __future__ import annotations

import ast

__all__ = ["dotted_name", "call_dotted", "chain_segments"]


def dotted_name(node: ast.expr) -> str | None:
    """Render a ``Name``/``Attribute`` chain as ``"a.b.c"`` (else ``None``).

    Chains rooted in anything other than a plain name (calls, subscripts)
    yield ``None`` — rules match on syntactic chains only.
    """
    parts: list[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def call_dotted(node: ast.Call) -> str | None:
    """Dotted name of a call's callee (``None`` for computed callees)."""
    return dotted_name(node.func)


def chain_segments(node: ast.expr) -> list[str]:
    """All identifier segments of a ``Name``/``Attribute`` chain, outermost
    last (``self.space.size`` -> ``["self", "space", "size"]``); best-effort
    for chains rooted in calls/subscripts (root segments are dropped).
    """
    parts: list[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
    return list(reversed(parts))

"""Rule base class and the pluggable rule registry.

A rule is a class with a ``code`` (``DATnnn``), a short ``name``, a
``rationale`` tied to the paper's requirements, and a ``check`` method
yielding :class:`~repro.devtools.datlint.diagnostics.Diagnostic` records.
Decorating with :func:`register` adds it to the global registry the runner
and CLI iterate over; external extensions can register additional rules the
same way before invoking the runner.
"""

from __future__ import annotations

import abc
import ast
from typing import Iterator, TypeVar

from repro.devtools.datlint.context import FileContext
from repro.devtools.datlint.diagnostics import Diagnostic

__all__ = ["Rule", "register", "all_rules", "get_rule", "rule_codes"]


class Rule(abc.ABC):
    """One datlint check."""

    #: Stable identifier, e.g. ``"DAT001"``.
    code: str = ""
    #: Short kebab-case name, e.g. ``"determinism"``.
    name: str = ""
    #: One-paragraph justification (surfaced by ``--list-rules``).
    rationale: str = ""

    @abc.abstractmethod
    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        """Yield one diagnostic per violation found in ``ctx``."""

    def diagnostic(
        self, ctx: FileContext, node: ast.AST, message: str
    ) -> Diagnostic:
        """Build a diagnostic anchored at ``node``'s source location."""
        return Diagnostic(
            path=str(ctx.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.code,
            message=message,
        )


_REGISTRY: dict[str, Rule] = {}

RuleT = TypeVar("RuleT", bound="type[Rule]")


def register(rule_cls: RuleT) -> RuleT:
    """Class decorator adding a rule (by instance) to the registry."""
    instance = rule_cls()
    if not instance.code:
        raise ValueError(f"rule {rule_cls.__name__} has no code")
    if instance.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {instance.code}")
    _REGISTRY[instance.code] = instance
    return rule_cls


def all_rules() -> list[Rule]:
    """Registered rules, sorted by code."""
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def get_rule(code: str) -> Rule:
    """Look up one rule by code (raises ``KeyError`` for unknown codes)."""
    return _REGISTRY[code]


def rule_codes() -> list[str]:
    """Sorted list of registered rule codes."""
    return sorted(_REGISTRY)

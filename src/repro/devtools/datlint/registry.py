"""Rule base classes and the pluggable rule registries.

A rule is a class with a ``code`` (``DATnnn``), a short ``name``, a
``rationale`` tied to the paper's requirements, and a ``check`` method
yielding :class:`~repro.devtools.datlint.diagnostics.Diagnostic` records.
Decorating with :func:`register` adds it to the global registry the runner
and CLI iterate over; external extensions can register additional rules the
same way before invoking the runner.

Two registries exist since v2:

* **file rules** (:class:`Rule` / :func:`register`) see one
  :class:`~repro.devtools.datlint.context.FileContext` at a time;
* **program rules** (:class:`ProgramRule` / :func:`register_program`) see
  the whole-program
  :class:`~repro.devtools.datlint.program.ProgramContext` after every file
  is parsed, and power the flow-aware families (DAT010-012 and the
  transitive upgrade of DAT005 — the one code intentionally present in
  both registries: the file rule flags direct call sites, the program rule
  flags functions that merely *reach* one).
"""

from __future__ import annotations

import abc
import ast
from typing import TYPE_CHECKING, Iterator, TypeVar

from repro.devtools.datlint.context import FileContext
from repro.devtools.datlint.diagnostics import Diagnostic

if TYPE_CHECKING:
    from repro.devtools.datlint.program import ProgramContext

__all__ = [
    "Rule",
    "ProgramRule",
    "register",
    "register_program",
    "all_rules",
    "all_program_rules",
    "get_rule",
    "rule_codes",
]


class Rule(abc.ABC):
    """One datlint check."""

    #: Stable identifier, e.g. ``"DAT001"``.
    code: str = ""
    #: Short kebab-case name, e.g. ``"determinism"``.
    name: str = ""
    #: One-paragraph justification (surfaced by ``--list-rules``).
    rationale: str = ""

    @abc.abstractmethod
    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        """Yield one diagnostic per violation found in ``ctx``."""

    def diagnostic(
        self, ctx: FileContext, node: ast.AST, message: str
    ) -> Diagnostic:
        """Build a diagnostic anchored at ``node``'s source location."""
        return Diagnostic(
            path=str(ctx.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.code,
            message=message,
        )


class ProgramRule(abc.ABC):
    """One whole-program datlint check."""

    #: Stable identifier, e.g. ``"DAT010"``.
    code: str = ""
    #: Short kebab-case name, e.g. ``"lock-discipline"``.
    name: str = ""
    #: One-paragraph justification (surfaced by ``--list-rules``).
    rationale: str = ""

    @abc.abstractmethod
    def check_program(self, program: ProgramContext) -> Iterator[Diagnostic]:
        """Yield one diagnostic per violation found across the program."""

    def diagnostic(
        self, ctx: FileContext, node: ast.AST, message: str
    ) -> Diagnostic:
        """Build a diagnostic anchored at ``node``'s source location."""
        return Diagnostic(
            path=str(ctx.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.code,
            message=message,
        )


_REGISTRY: dict[str, Rule] = {}
_PROGRAM_REGISTRY: dict[str, ProgramRule] = {}

RuleT = TypeVar("RuleT", bound="type[Rule]")
ProgramRuleT = TypeVar("ProgramRuleT", bound="type[ProgramRule]")


def register(rule_cls: RuleT) -> RuleT:
    """Class decorator adding a rule (by instance) to the registry."""
    instance = rule_cls()
    if not instance.code:
        raise ValueError(f"rule {rule_cls.__name__} has no code")
    if instance.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {instance.code}")
    _REGISTRY[instance.code] = instance
    return rule_cls


def register_program(rule_cls: ProgramRuleT) -> ProgramRuleT:
    """Class decorator adding a whole-program rule to its registry."""
    instance = rule_cls()
    if not instance.code:
        raise ValueError(f"rule {rule_cls.__name__} has no code")
    if instance.code in _PROGRAM_REGISTRY:
        raise ValueError(f"duplicate program rule code {instance.code}")
    _PROGRAM_REGISTRY[instance.code] = instance
    return rule_cls


def all_rules() -> list[Rule]:
    """Registered file rules, sorted by code."""
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def all_program_rules() -> list[ProgramRule]:
    """Registered whole-program rules, sorted by code."""
    return [_PROGRAM_REGISTRY[code] for code in sorted(_PROGRAM_REGISTRY)]


def get_rule(code: str) -> Rule:
    """Look up one file rule by code (raises ``KeyError`` for unknown codes)."""
    return _REGISTRY[code]


def rule_codes() -> list[str]:
    """Sorted union of file-rule and program-rule codes."""
    return sorted(set(_REGISTRY) | set(_PROGRAM_REGISTRY))

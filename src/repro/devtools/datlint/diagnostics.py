"""Diagnostic records emitted by datlint rules."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = ["Diagnostic", "PARSE_ERROR_CODE", "UNUSED_SUPPRESSION_CODE"]

#: Pseudo-rule code used for files that fail to parse.
PARSE_ERROR_CODE = "DAT000"

#: Pseudo-rule code for stale ``# datlint: disable=`` comments
#: (``--warn-unused-suppressions``); not a registered rule and itself
#: unsuppressible — delete the stale comment instead.
UNUSED_SUPPRESSION_CODE = "DAT013"


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One finding: a rule violation at a source location.

    Ordering is (path, line, col, rule) so reports are stable regardless
    of rule-execution order.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        """Human-readable single-line rendering (``path:line:col: CODE msg``)."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_json(self) -> dict[str, Any]:
        """JSON-serializable mapping (stable key set for tooling)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }

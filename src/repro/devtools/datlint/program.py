"""Whole-program analysis: the project-wide symbol table.

Everything the flow-aware rule families (DAT005-transitive, DAT010-012)
share lives here: one :class:`ProgramContext` built from every parsed file
of a lint run, indexing

* **modules** — each file's :class:`~repro.devtools.datlint.context.FileContext`
  plus its import map (local name -> fully qualified target),
* **classes** — :class:`ClassInfo` records with methods, base classes,
  attribute types, lock ownership, and lock-guard contracts,
* **functions** — :class:`FunctionInfo` records (module functions and
  methods) that the call graph in
  :mod:`repro.devtools.datlint.callgraph` links together.

Resolution is deliberately *syntactic and conservative*: an attribute type
is known only when ``__init__`` assigns a resolvable constructor call
(``self.spans = SpanRecorder(...)``) or an annotation names a project
class; everything else stays unresolved and the rules stay silent about
it. False negatives are acceptable; false positives are not — the linter
gates CI.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.devtools.datlint.context import FileContext

__all__ = [
    "AttrWrite",
    "ClassInfo",
    "FunctionInfo",
    "ProgramContext",
    "build_program",
    "LOCK_FACTORIES",
    "TEARDOWN_METHODS",
]

#: ``threading`` constructors whose product is a mutual-exclusion guard.
LOCK_FACTORIES = {"Lock", "RLock", "Condition"}

#: Method names that count as a class's teardown entry points.
TEARDOWN_METHODS = {
    "close",
    "shutdown",
    "stop",
    "detach",
    "leave",
    "crash",
    "stop_maintenance",
    "__exit__",
    "unregister",
}

#: Container methods that mutate their receiver in place.
MUTATOR_METHODS = {
    "append",
    "add",
    "clear",
    "discard",
    "extend",
    "insert",
    "pop",
    "popitem",
    "remove",
    "setdefault",
    "update",
    "sort",
    "reverse",
    "appendleft",
    "popleft",
}


def attr_chain(node: ast.expr) -> list[str] | None:
    """``a.b.c`` -> ``["a", "b", "c"]``; ``None`` for computed roots.

    Subscripts are transparent (``self.x[k].y`` -> ``["self", "x", "y"]``)
    so guarded-container element writes resolve to the container attribute.
    """
    parts: list[str] = []
    current: ast.expr = node
    while True:
        if isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        elif isinstance(current, ast.Subscript):
            current = current.value
        elif isinstance(current, ast.Name):
            parts.append(current.id)
            return list(reversed(parts))
        else:
            return None


@dataclass
class AttrWrite:
    """One mutation of ``self.<attr>`` inside a method."""

    attr: str
    node: ast.AST
    method: str
    locks_held: frozenset[str]
    in_init: bool


@dataclass
class FunctionInfo:
    """One function or method definition."""

    qualname: str  # module.fn or module.Class.fn
    name: str
    module: str
    cls: str | None  # owning class qualname, if a method
    node: ast.FunctionDef | ast.AsyncFunctionDef
    ctx: FileContext

    @property
    def is_method(self) -> bool:
        return self.cls is not None


@dataclass
class ClassInfo:
    """One class definition with the facts the program rules consume."""

    qualname: str  # module.Class
    name: str
    module: str
    node: ast.ClassDef
    ctx: FileContext
    base_names: list[str] = field(default_factory=list)  # raw base exprs
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    #: Attributes assigned a ``threading.Lock``/``RLock``/``Condition``.
    lock_attrs: set[str] = field(default_factory=set)
    #: attr -> class qualname, when ``__init__`` makes the type evident.
    attr_types: dict[str, str] = field(default_factory=dict)
    #: attr -> lock attr from explicit ``# guarded-by:`` annotations.
    annotated_guards: dict[str, str] = field(default_factory=dict)
    #: attr -> lock attr inferred from locked writes outside ``__init__``.
    inferred_guards: dict[str, str] = field(default_factory=dict)
    #: Attributes with set-typed values (``self.x = set()`` / ``: set[...]``).
    set_attrs: set[str] = field(default_factory=set)
    #: Every ``self.<attr>`` mutation, per method.
    attr_writes: list[AttrWrite] = field(default_factory=list)

    @property
    def guarded(self) -> dict[str, str]:
        """attr -> lock attr (annotations win over inference)."""
        merged = dict(self.inferred_guards)
        merged.update(self.annotated_guards)
        return merged

    @property
    def teardown_methods(self) -> list[str]:
        """This class's teardown entry points, in definition order."""
        return [m for m in self.methods if m in TEARDOWN_METHODS]

    def has_method(self, name: str) -> bool:
        return name in self.methods


class ProgramContext:
    """The whole-program symbol table for one lint run."""

    def __init__(self) -> None:
        self.files: dict[str, FileContext] = {}  # module -> context
        self.classes: dict[str, ClassInfo] = {}  # qualname -> info
        self.functions: dict[str, FunctionInfo] = {}  # qualname -> info
        #: module -> {local name -> fully qualified target}
        self.imports: dict[str, dict[str, str]] = {}
        #: bare class name -> qualnames (for last-resort resolution)
        self._by_class_name: dict[str, list[str]] = {}

    # -- construction ------------------------------------------------------

    def add_file(self, ctx: FileContext) -> None:
        module = ctx.module
        self.files[module] = ctx
        imports = self.imports.setdefault(module, {})
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    imports[alias.asname or alias.name.split(".")[0]] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                base = node.module or ""
                for alias in node.names:
                    imports[alias.asname or alias.name] = (
                        f"{base}.{alias.name}" if base else alias.name
                    )
        for stmt in ctx.tree.body:
            if isinstance(stmt, ast.ClassDef):
                self._index_class(ctx, stmt)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{module}.{stmt.name}"
                self.functions[qualname] = FunctionInfo(
                    qualname=qualname,
                    name=stmt.name,
                    module=module,
                    cls=None,
                    node=stmt,
                    ctx=ctx,
                )

    def _index_class(self, ctx: FileContext, node: ast.ClassDef) -> None:
        qualname = f"{ctx.module}.{node.name}"
        info = ClassInfo(
            qualname=qualname,
            name=node.name,
            module=ctx.module,
            node=node,
            ctx=ctx,
        )
        for base in node.bases:
            rendered = _render(base)
            if rendered is not None:
                info.base_names.append(rendered)
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn_qualname = f"{qualname}.{stmt.name}"
                fn = FunctionInfo(
                    qualname=fn_qualname,
                    name=stmt.name,
                    module=ctx.module,
                    cls=qualname,
                    node=stmt,
                    ctx=ctx,
                )
                info.methods[stmt.name] = fn
                self.functions[fn_qualname] = fn
                _scan_method(info, fn)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                if _is_set_annotation(stmt.annotation):
                    info.set_attrs.add(stmt.target.id)
        self.classes[qualname] = info
        self._by_class_name.setdefault(node.name, []).append(qualname)

    def finalize(self) -> None:
        """Second pass once every file is indexed: resolve attribute types."""
        for info in self.classes.values():
            init = info.methods.get("__init__")
            if init is not None:
                self._resolve_attr_types(info, init)
            # Annotation-based attribute types from the class body / __init__.
            for node in ast.walk(info.node):
                if isinstance(node, ast.AnnAssign):
                    target = node.target
                    attr = None
                    if isinstance(target, ast.Name):
                        attr = target.id
                    elif (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        attr = target.attr
                    if attr is not None and attr not in info.attr_types:
                        resolved = self.resolve_class_annotation(
                            info.module, node.annotation
                        )
                        if resolved is not None:
                            info.attr_types[attr] = resolved

    def _resolve_attr_types(self, info: ClassInfo, init: FunctionInfo) -> None:
        for node in ast.walk(init.node):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            resolved = self.resolve_constructed_class(info.module, node.value)
            if resolved is not None:
                info.attr_types.setdefault(target.attr, resolved)
        # Parameter-annotation types: ``def __init__(self, spans: SpanRecorder)``
        # followed by ``self.spans = spans``.
        param_types: dict[str, str] = {}
        args = init.node.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            if arg.annotation is not None:
                resolved = self.resolve_class_annotation(info.module, arg.annotation)
                if resolved is not None:
                    param_types[arg.arg] = resolved
        for node in ast.walk(init.node):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Attribute)
                and isinstance(node.targets[0].value, ast.Name)
                and node.targets[0].value.id == "self"
                and isinstance(node.value, ast.Name)
                and node.value.id in param_types
            ):
                info.attr_types.setdefault(
                    node.targets[0].attr, param_types[node.value.id]
                )

    # -- resolution --------------------------------------------------------

    def resolve_name(self, module: str, name: str) -> str | None:
        """Resolve a local ``name`` in ``module`` to a fully qualified target."""
        if f"{module}.{name}" in self.classes or f"{module}.{name}" in self.functions:
            return f"{module}.{name}"
        return self.imports.get(module, {}).get(name)

    def resolve_class(self, module: str, name: str) -> ClassInfo | None:
        """Resolve a (possibly dotted) class reference used in ``module``."""
        head, _, rest = name.partition(".")
        target = self.resolve_name(module, head)
        if target is not None:
            full = f"{target}.{rest}" if rest else target
            if full in self.classes:
                return self.classes[full]
            # ``from repro.x import Cls`` resolves to repro.x.Cls directly.
            if target in self.classes and not rest:
                return self.classes[target]
        # Last resort: a unique bare class name anywhere in the program.
        candidates = self._by_class_name.get(name.rsplit(".", 1)[-1], [])
        if len(candidates) == 1:
            return self.classes[candidates[0]]
        return None

    def resolve_constructed_class(
        self, module: str, value: ast.expr
    ) -> str | None:
        """Class qualname when ``value`` is a resolvable constructor call."""
        if not isinstance(value, ast.Call):
            return None
        rendered = _render(value.func)
        if rendered is None:
            return None
        info = self.resolve_class(module, rendered)
        return info.qualname if info is not None else None

    def resolve_class_annotation(
        self, module: str, annotation: ast.expr
    ) -> str | None:
        """Class qualname a (possibly string / optional) annotation names."""
        if isinstance(annotation, ast.Constant) and isinstance(
            annotation.value, str
        ):
            try:
                annotation = ast.parse(annotation.value, mode="eval").body
            except SyntaxError:
                return None
        # Unwrap Optional[X] / X | None / "X | None".
        if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
            for side in (annotation.left, annotation.right):
                resolved = self.resolve_class_annotation(module, side)
                if resolved is not None:
                    return resolved
            return None
        if isinstance(annotation, ast.Subscript):
            rendered = _render(annotation.value)
            if rendered is not None and rendered.rsplit(".", 1)[-1] == "Optional":
                return self.resolve_class_annotation(module, annotation.slice)
            return None
        rendered = _render(annotation)
        if rendered is None or rendered in ("None",):
            return None
        info = self.resolve_class(module, rendered)
        return info.qualname if info is not None else None

    def class_of_method(self, fn: FunctionInfo) -> ClassInfo | None:
        return self.classes.get(fn.cls) if fn.cls is not None else None

    def mro(self, info: ClassInfo) -> Iterator[ClassInfo]:
        """``info`` then its resolvable project base classes, depth-first."""
        seen: set[str] = set()
        stack = [info]
        while stack:
            current = stack.pop(0)
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            yield current
            for base in current.base_names:
                resolved = self.resolve_class(current.module, base)
                if resolved is not None:
                    stack.append(resolved)

    def lookup_method(self, info: ClassInfo, name: str) -> FunctionInfo | None:
        """Find ``name`` on ``info`` or any resolvable base class."""
        for cls in self.mro(info):
            if name in cls.methods:
                return cls.methods[name]
        return None


def _render(node: ast.expr) -> str | None:
    """Render a Name/Attribute chain to dotted text (``None`` otherwise)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _render(node.value)
        return f"{base}.{node.attr}" if base is not None else None
    return None


def _is_set_annotation(annotation: ast.expr) -> bool:
    """Whether an annotation denotes a ``set``/``frozenset`` type."""
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        try:
            annotation = ast.parse(annotation.value, mode="eval").body
        except SyntaxError:
            return False
    target = annotation
    if isinstance(target, ast.Subscript):
        target = target.value
    rendered = _render(target)
    if rendered is None:
        return False
    return rendered.rsplit(".", 1)[-1] in ("set", "Set", "frozenset", "FrozenSet",
                                           "MutableSet", "AbstractSet")


def _is_set_expr(value: ast.expr) -> bool:
    """Whether an expression evidently builds a set."""
    if isinstance(value, (ast.Set, ast.SetComp)):
        return True
    if isinstance(value, ast.Call):
        rendered = _render(value.func)
        if rendered is not None and rendered.rsplit(".", 1)[-1] in (
            "set",
            "frozenset",
        ):
            return True
    return False


class _LockScopeVisitor(ast.NodeVisitor):
    """Walks one method recording self-attribute writes and held locks."""

    def __init__(self, info: ClassInfo, fn: FunctionInfo) -> None:
        self.info = info
        self.fn = fn
        self.locks: list[str] = []

    # -- lock scopes -------------------------------------------------------

    def visit_With(self, node: ast.With) -> None:
        acquired: list[str] = []
        for item in node.items:
            chain = attr_chain(item.context_expr)
            expr = item.context_expr
            # ``with self._lock:`` or ``with self._lock.acquire_timeout(...)``
            if (
                isinstance(expr, ast.Call)
                and isinstance(expr.func, ast.Attribute)
            ):
                chain = attr_chain(expr.func.value)
            if (
                chain is not None
                and len(chain) == 2
                and chain[0] == "self"
                and chain[1] in self.info.lock_attrs
            ):
                acquired.append(chain[1])
        self.locks.extend(acquired)
        self.generic_visit(node)
        for _ in acquired:
            self.locks.pop()

    visit_AsyncWith = visit_With  # type: ignore[assignment]

    # -- writes ------------------------------------------------------------

    def _record(self, attr: str, node: ast.AST) -> None:
        self.info.attr_writes.append(
            AttrWrite(
                attr=attr,
                node=node,
                method=self.fn.name,
                locks_held=frozenset(self.locks),
                in_init=self.fn.name == "__init__",
            )
        )

    def _self_attr_of(self, target: ast.expr) -> str | None:
        chain = attr_chain(target)
        if chain is not None and len(chain) >= 2 and chain[0] == "self":
            return chain[1]
        return None

    def _record_target(self, target: ast.expr, node: ast.AST) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._record_target(element, node)
            return
        if isinstance(target, ast.Starred):
            self._record_target(target.value, node)
            return
        attr = self._self_attr_of(target)
        if attr is not None:
            self._record(attr, node)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record_target(target, node)
        # Track set-typed attributes while we are here.
        if (
            len(node.targets) == 1
            and isinstance(node.targets[0], ast.Attribute)
            and isinstance(node.targets[0].value, ast.Name)
            and node.targets[0].value.id == "self"
            and _is_set_expr(node.value)
        ):
            self.info.set_attrs.add(node.targets[0].attr)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record_target(node.target, node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._record_target(node.target, node)
        attr = self._self_attr_of(node.target)
        if attr is not None and _is_set_annotation(node.annotation):
            self.info.set_attrs.add(attr)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._record_target(target, node)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        # ``self.<attr>.append(...)`` and friends mutate the attribute.
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in MUTATOR_METHODS
        ):
            attr = self._self_attr_of(node.func.value)
            if attr is not None:
                self._record(attr, node)
        self.generic_visit(node)


def _scan_method(info: ClassInfo, fn: FunctionInfo) -> None:
    """Populate lock ownership, guard inference, and write records."""
    guards = fn.ctx.guard_annotations
    for node in ast.walk(fn.node):
        # Lock ownership: ``self.X = threading.Lock()`` (any method).
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Attribute)
            and isinstance(node.targets[0].value, ast.Name)
            and node.targets[0].value.id == "self"
            and isinstance(node.value, ast.Call)
        ):
            rendered = _render(node.value.func)
            if rendered is not None and rendered.rsplit(".", 1)[-1] in LOCK_FACTORIES:
                root = rendered.split(".")[0]
                if root in ("threading", "Lock", "RLock", "Condition") or "." not in rendered:
                    info.lock_attrs.add(node.targets[0].attr)
        # Explicit guard contracts: an assignment line carrying # guarded-by:.
        if isinstance(node, (ast.Assign, ast.AnnAssign)) and node.lineno in guards:
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    info.annotated_guards[target.attr] = guards[node.lineno]
    visitor = _LockScopeVisitor(info, fn)
    visitor.visit(fn.node)


def _infer_guards(info: ClassInfo) -> None:
    """An attribute written under a lock outside ``__init__`` is guarded."""
    for write in info.attr_writes:
        if write.in_init or not write.locks_held:
            continue
        if write.attr in info.lock_attrs:
            continue
        lock = sorted(write.locks_held)[0]
        info.inferred_guards.setdefault(write.attr, lock)


def build_program(contexts: Iterable[FileContext]) -> ProgramContext:
    """Index every file and finalize cross-file resolution."""
    program = ProgramContext()
    for ctx in contexts:
        program.add_file(ctx)
    program.finalize()
    for info in program.classes.values():
        _infer_guards(info)
    return program

"""Entry point for ``python -m repro.devtools.datlint``."""

import sys

from repro.devtools.datlint.cli import main

if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Output was piped into a pager/head that closed early; that is
        # not a lint failure.
        sys.exit(0)

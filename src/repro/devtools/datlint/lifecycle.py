"""Resource-lifecycle model: acquisitions vs. releases per class.

The PR-5 transport-teardown leak was exactly this bug class: a class
acquires something with process-wide footprint (a transport registration,
an open file or socket, a constructed service that itself owns such
things) and its ``close()`` never lets go — tests stay green, the next
run on the same process inherits ghost handlers and timers.

The model here answers, per class:

* **acquisitions** — ``self.X = open(...)`` / ``socket.socket(...)`` /
  ``selectors...Selector()``; ``self.X = Cls(...)`` or ``self.X[k] =
  Cls(...)`` where ``Cls`` is a project class that itself defines a
  teardown method; ``<transport>.register(...)`` calls; upcall
  registrations ``host.upcalls["kind"] = ...`` into a *foreign* registry
  (stores into the class's own ``self.upcalls`` are its own table, not a
  borrowed one).
* **releases** — reachable from any teardown entry point
  (:data:`~repro.devtools.datlint.program.TEARDOWN_METHODS`) via the
  class's own methods: a teardown-named call rooted at ``self.X``
  (directly, through a subscript, or through a loop/local bound from
  ``self.X`` / ``self.X.values()`` / ``self.X.pop(...)``), an
  ``.unregister(...)`` call (releases transport registrations), or an
  ``.upcalls.pop(...)`` call (releases upcall registrations).

Ownership transfer is out of scope on purpose: objects received as
parameters are borrowed, not owned, and never demand a release here.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.devtools.datlint.program import (
    ClassInfo,
    FunctionInfo,
    ProgramContext,
    TEARDOWN_METHODS,
    attr_chain,
)

__all__ = ["Acquisition", "ClassLifecycle", "analyze_class"]

#: Constructor-like dotted calls that yield an OS-level resource.
RESOURCE_FACTORIES = {
    "open",
    "socket.socket",
    "selectors.DefaultSelector",
    "selectors.SelectSelector",
    "selectors.PollSelector",
}

#: Receiver-name hint for ``.register(...)`` acquisition sites.
_TRANSPORT_HINT = "transport"

#: Method names marking a constructed project class as *closable*.
#: Narrower than :data:`TEARDOWN_METHODS` on purpose: ``leave``/``crash``
#: are membership events on pure data structures (``RingMaintainer``),
#: not resource teardown — only the canonical names create an ownership
#: obligation for the constructing class.
CLOSABLE_MARKERS = {"close", "shutdown", "stop", "__exit__"}


@dataclass
class Acquisition:
    """One resource acquired by a class."""

    kind: str  # "handle" | "service" | "transport-registration" | "upcall"
    attr: str | None  # self attribute holding it (None for register/upcall)
    detail: str  # human-readable description for diagnostics
    node: ast.AST
    method: str


@dataclass
class ClassLifecycle:
    """Acquisitions, releases, and teardown reachability for one class."""

    info: ClassInfo
    acquisitions: list[Acquisition]
    released_attrs: set[str]
    releases_registration: bool
    releases_upcalls: bool
    has_teardown: bool

    def leaked(self) -> list[Acquisition]:
        """Acquisitions with no matching release on any teardown path."""
        leaks = []
        for acq in self.acquisitions:
            if acq.kind in ("handle", "service"):
                if acq.attr is not None and acq.attr in self.released_attrs:
                    continue
            elif acq.kind == "transport-registration":
                if self.releases_registration:
                    continue
            elif acq.kind == "upcall":
                if self.releases_upcalls:
                    continue
            leaks.append(acq)
        return leaks


def _is_self_rooted(chain: list[str] | None) -> bool:
    return chain is not None and chain and chain[0] == "self"


def _collect_acquisitions(
    program: ProgramContext, info: ClassInfo
) -> list[Acquisition]:
    acquisitions: list[Acquisition] = []
    for method_name, fn in info.methods.items():
        for node in ast.walk(fn.node):
            # self.X = <factory>() / self.X[k] = <factory>()
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                chain = attr_chain(target)
                if _is_self_rooted(chain) and len(chain or []) == 2:
                    attr = (chain or [])[1]
                    acq = _classify_value(program, info, node.value)
                    if acq is not None:
                        kind, detail = acq
                        acquisitions.append(
                            Acquisition(
                                kind=kind,
                                attr=attr,
                                detail=detail,
                                node=node,
                                method=method_name,
                            )
                        )
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            receiver_chain = attr_chain(func.value)
            # <transport>.register(node, handler)
            if func.attr == "register" and receiver_chain is not None:
                receiver = receiver_chain[-1].lstrip("_")
                if _TRANSPORT_HINT in receiver:
                    acquisitions.append(
                        Acquisition(
                            kind="transport-registration",
                            attr=None,
                            detail=f"`{'.'.join(receiver_chain)}.register(...)`",
                            node=node,
                            method=method_name,
                        )
                    )
        # host.upcalls["kind"] = handler into a foreign registry.
        for node in ast.walk(fn.node):
            if not (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Subscript)
            ):
                continue
            container = node.targets[0].value
            chain = attr_chain(container)
            if chain is None or chain[-1] != "upcalls":
                continue
            if chain[:2] == ["self", "upcalls"] and len(chain) == 2:
                continue  # the class's own registry dies with the class
            acquisitions.append(
                Acquisition(
                    kind="upcall",
                    attr=None,
                    detail=f"upcall registration `{'.'.join(chain)}[...]`",
                    node=node,
                    method=method_name,
                )
            )
    return acquisitions


def _classify_value(
    program: ProgramContext, info: ClassInfo, value: ast.expr
) -> tuple[str, str] | None:
    """Classify an assigned value as a closable resource, if it is one."""
    if not isinstance(value, ast.Call):
        return None
    func = value.func
    dotted = None
    if isinstance(func, ast.Name):
        dotted = func.id
    elif isinstance(func, ast.Attribute):
        chain = attr_chain(func)
        dotted = ".".join(chain) if chain else None
    if dotted in RESOURCE_FACTORIES:
        return ("handle", f"`{dotted}(...)`")
    constructed = program.resolve_constructed_class(info.module, value)
    if constructed is not None:
        cls = program.classes[constructed]
        if any(
            name in CLOSABLE_MARKERS
            for base in program.mro(cls)
            for name in base.methods
        ):
            return ("service", f"`{cls.name}(...)` (defines teardown)")
    return None


def _reachable_methods(info: ClassInfo, program: ProgramContext) -> list[FunctionInfo]:
    """Methods reachable from the class's teardown entries via self-calls."""
    entries = [m for m in info.methods if m in TEARDOWN_METHODS]
    seen: set[str] = set()
    order: list[FunctionInfo] = []
    stack = list(entries)
    while stack:
        name = stack.pop()
        if name in seen:
            continue
        seen.add(name)
        fn = program.lookup_method(info, name)
        if fn is None:
            continue
        order.append(fn)
        for node in ast.walk(fn.node):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "self"
            ):
                stack.append(node.func.attr)
    return order


def _collect_releases(
    info: ClassInfo, program: ProgramContext
) -> tuple[set[str], bool, bool]:
    released: set[str] = set()
    releases_registration = False
    releases_upcalls = False
    for fn in _reachable_methods(info, program):
        # Loop variables bound from self.X (or self.X.values()/.items()).
        loop_bindings: dict[str, str] = {}
        local_bindings: dict[str, str] = {}
        for node in ast.walk(fn.node):
            if isinstance(node, (ast.For, ast.comprehension)):
                iter_expr = node.iter
                if isinstance(iter_expr, ast.Call):
                    if isinstance(iter_expr.func, ast.Attribute) and iter_expr.func.attr in (
                        "values",
                        "items",
                    ):
                        iter_expr = iter_expr.func.value
                    elif (
                        isinstance(iter_expr.func, ast.Name)
                        and iter_expr.func.id in ("list", "tuple", "sorted", "reversed")
                        and iter_expr.args
                    ):
                        iter_expr = iter_expr.args[0]
                        if isinstance(iter_expr, ast.Call) and isinstance(
                            iter_expr.func, ast.Attribute
                        ) and iter_expr.func.attr in ("values", "items"):
                            iter_expr = iter_expr.func.value
                chain = attr_chain(iter_expr)
                if _is_self_rooted(chain) and len(chain or []) >= 2:
                    target = node.target
                    if isinstance(target, ast.Tuple) and len(target.elts) == 2:
                        target = target.elts[1]  # (key, value) unpacking
                    if isinstance(target, ast.Name):
                        loop_bindings[target.id] = (chain or [])[1]
            elif (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
            ):
                chain = attr_chain(node.value)
                if _is_self_rooted(chain) and len(chain or []) >= 2:
                    local_bindings[node.targets[0].id] = (chain or [])[1]
        for node in ast.walk(fn.node):
            if not (
                isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)
            ):
                continue
            method = node.func.attr
            receiver_chain = attr_chain(node.func.value)
            if method == "unregister":
                releases_registration = True
                continue
            if (
                method == "pop"
                and receiver_chain is not None
                and receiver_chain[-1] == "upcalls"
            ):
                releases_upcalls = True
                continue
            if method not in TEARDOWN_METHODS and method != "cancel":
                continue
            if receiver_chain is None:
                continue
            root = receiver_chain[0]
            if root == "self" and len(receiver_chain) >= 2:
                released.add(receiver_chain[1])
            elif root in loop_bindings:
                released.add(loop_bindings[root])
            elif root in local_bindings:
                released.add(local_bindings[root])
    return released, releases_registration, releases_upcalls


def analyze_class(program: ProgramContext, info: ClassInfo) -> ClassLifecycle:
    """Build the lifecycle picture for one class."""
    acquisitions = _collect_acquisitions(program, info)
    released, releases_registration, releases_upcalls = _collect_releases(
        info, program
    )
    has_teardown = any(m in TEARDOWN_METHODS for m in info.methods)
    return ClassLifecycle(
        info=info,
        acquisitions=acquisitions,
        released_attrs=released,
        releases_registration=releases_registration,
        releases_upcalls=releases_upcalls,
        has_teardown=has_teardown,
    )

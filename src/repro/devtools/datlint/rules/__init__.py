"""Built-in datlint rules — importing this package registers all of them."""

from repro.devtools.datlint.rules import (  # noqa: F401  (import-for-effect)
    dat001_determinism,
    dat002_idspace,
    dat003_float_eq,
    dat004_print,
    dat005_blocking,
    dat006_mutable_defaults,
    dat007_excepts,
    dat008_simclock,
    dat009_rawrpc,
)

__all__ = [
    "dat001_determinism",
    "dat002_idspace",
    "dat003_float_eq",
    "dat004_print",
    "dat005_blocking",
    "dat006_mutable_defaults",
    "dat007_excepts",
    "dat008_simclock",
    "dat009_rawrpc",
]

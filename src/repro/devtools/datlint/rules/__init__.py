"""Built-in datlint rules — importing this package registers all of them.

Single-file rules (DAT001-009) register into the file registry; the
whole-program rules (transitive DAT005, DAT010-012) register into the
program registry and run after every file is parsed.
"""

from repro.devtools.datlint.rules import (  # noqa: F401  (import-for-effect)
    dat001_determinism,
    dat002_idspace,
    dat003_float_eq,
    dat004_print,
    dat005_blocking,
    dat005_transitive,
    dat006_mutable_defaults,
    dat007_excepts,
    dat008_simclock,
    dat009_rawrpc,
    dat010_lock_discipline,
    dat011_lifecycle,
    dat012_unordered_iter,
    dat014_untraced_forward,
    dat015_hotpath_alloc,
)

__all__ = [
    "dat001_determinism",
    "dat002_idspace",
    "dat003_float_eq",
    "dat004_print",
    "dat005_blocking",
    "dat005_transitive",
    "dat006_mutable_defaults",
    "dat007_excepts",
    "dat008_simclock",
    "dat009_rawrpc",
    "dat010_lock_discipline",
    "dat011_lifecycle",
    "dat012_unordered_iter",
    "dat014_untraced_forward",
    "dat015_hotpath_alloc",
]

"""DAT005 (whole-program) — transitively reaching a blocking call.

The single-file DAT005 rule sees only direct call sites: a handler that
calls ``helper()`` which calls ``time.sleep()`` slips through. This
program rule builds the project call graph and propagates blocking
reachability backwards, flagging every *library* function with a path to
a blocking primitive and printing the witness chain.

Sanctioned blockers form a barrier: functions in the real-time transport
modules (the same exemptions as the file rule), functions in output/CLI
entry-point modules, and direct sites silenced with ``# datlint:
disable=DAT005`` neither seed the analysis nor propagate through it — a
caller of ``UdpRpcTransport.close`` is not tainted by the transport's own
sanctioned socket work.
"""

from __future__ import annotations

from typing import Iterator

from repro.devtools.datlint.callgraph import analyze_blocking, build_call_graph
from repro.devtools.datlint.diagnostics import Diagnostic
from repro.devtools.datlint.program import ProgramContext
from repro.devtools.datlint.registry import ProgramRule, register_program

#: Real-time modules that legitimately block (mirrors the file rule).
_EXEMPT_MODULES = ("repro.sim.udprpc", "repro.gma.live")

#: Real-time packages (mirrors the file rule): the deployment harness is
#: sockets-and-processes by construction.
_EXEMPT_PACKAGES = ("repro.fleet",)


@register_program
class TransitiveBlockingRule(ProgramRule):
    code = "DAT005"
    name = "no-blocking-transitive"
    rationale = (
        "A handler one call away from time.sleep stalls the cooperative "
        "engine just as surely as a direct call; the call graph closes "
        "the indirection hole the single-file rule cannot see."
    )

    def check_program(self, program: ProgramContext) -> Iterator[Diagnostic]:
        graph = build_call_graph(program)

        def sanctioned(qualname: str) -> bool:
            fn = program.functions.get(qualname)
            if fn is None:
                return False
            return (
                fn.ctx.module_is(*_EXEMPT_MODULES)
                or fn.ctx.module_under(*_EXEMPT_PACKAGES)
                or fn.ctx.is_output_module
            )

        analysis = analyze_blocking(graph, barrier=sanctioned)
        # Direct sites are the file rule's findings; report transitive only.
        for qualname in sorted(analysis.via):
            fn = program.functions[qualname]
            chain = " -> ".join(analysis.chain(qualname))
            yield self.diagnostic(
                fn.ctx,
                fn.node,
                f"`{qualname}` transitively reaches a blocking call: {chain}",
            )

"""DAT010 — lock discipline for ``threading.Lock``-owning classes.

The telemetry accountants (PR 3) and the real-time transports share
mutable state across threads: the ``udprpc`` receive thread finishes
spans and bumps counters while caller threads read them. Every such class
owns a lock, but nothing enforced that the lock is actually *held* — a
write that skips ``with self._lock`` compiles, passes tests, and corrupts
Fig. 7-9 series only under real concurrency.

A class attribute counts as **guarded** when either

* an assignment to it carries an explicit ``# guarded-by: <lock>``
  comment (the contract convention; annotations win over inference), or
* any write to it outside ``__init__`` happens under ``with self.<lock>``
  (inference: locked once means locked always).

The rule then flags

* writes to a guarded attribute outside the guard lock within the owning
  class (``__init__`` is exempt — the object is not yet shared; methods
  with a ``_locked`` suffix are exempt — the convention documents that
  the caller holds the lock), and
* *any* access to a guarded attribute from outside the owning class
  hierarchy: external code cannot hold a private lock, so the owning
  class must offer a snapshot accessor instead.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.datlint.callgraph import TypeEnv
from repro.devtools.datlint.context import FileContext
from repro.devtools.datlint.diagnostics import Diagnostic
from repro.devtools.datlint.program import ProgramContext, attr_chain
from repro.devtools.datlint.registry import ProgramRule, register_program


@register_program
class LockDisciplineRule(ProgramRule):
    code = "DAT010"
    name = "lock-discipline"
    rationale = (
        "Lock-owning classes (telemetry accountants, real-time "
        "transports) share state with the udprpc receive thread; a write "
        "outside `with self._lock` races silently. Guarded attributes "
        "(# guarded-by: or written-under-lock inference) must be mutated "
        "under the lock, and never touched directly from other classes."
    )

    def check_program(self, program: ProgramContext) -> Iterator[Diagnostic]:
        yield from self._check_internal_writes(program)
        yield from self._check_external_access(program)

    # -- writes inside the owning class ---------------------------------- #

    def _check_internal_writes(
        self, program: ProgramContext
    ) -> Iterator[Diagnostic]:
        for info in program.classes.values():
            if not info.lock_attrs:
                continue
            guarded = info.guarded
            for write in info.attr_writes:
                lock = guarded.get(write.attr)
                if lock is None or write.in_init:
                    continue
                if lock in write.locks_held:
                    continue
                if write.method.endswith("_locked"):
                    continue  # convention: caller holds the lock
                yield self.diagnostic(
                    info.ctx,
                    write.node,
                    f"`self.{write.attr}` is guarded by `self.{lock}` but "
                    f"written outside `with self.{lock}` in "
                    f"`{info.name}.{write.method}`",
                )

    # -- access from outside the owning class ----------------------------- #

    def _check_external_access(
        self, program: ProgramContext
    ) -> Iterator[Diagnostic]:
        for fn in program.functions.values():
            env = TypeEnv(program, fn)
            own_hierarchy: set[str] = set()
            if fn.cls is not None:
                owner = program.classes.get(fn.cls)
                if owner is not None:
                    own_hierarchy = {c.qualname for c in program.mro(owner)}
            reported: set[tuple[int, str]] = set()
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Attribute):
                    continue
                chain = attr_chain(node)
                if chain is None or len(chain) < 2:
                    continue
                owner_qual = env.type_of_chain(chain[:-1])
                if owner_qual is None or owner_qual in own_hierarchy:
                    continue
                owner_info = program.classes.get(owner_qual)
                if owner_info is None:
                    continue
                attr = chain[-1]
                lock = owner_info.guarded.get(attr)
                if lock is None:
                    continue
                key = (node.lineno, attr)
                if key in reported:
                    continue
                reported.add(key)
                yield self.diagnostic(
                    fn.ctx,
                    node,
                    f"`{owner_info.name}.{attr}` is guarded by "
                    f"`{owner_info.name}.{lock}`; access it through a "
                    f"snapshot accessor, not directly from `{fn.qualname}`",
                )

"""DAT012 — deterministic iteration over set-typed state.

DAT001 pins RNG seeding and DAT008 pins the clock, but neither covers the
third nondeterminism source: ``set`` iteration order, which varies with
``PYTHONHASHSEED`` for str/tuple elements. A set-typed attribute iterated
into a wire message, a merge, or an exported series makes two runs with
identical seeds diverge — the exact "unseeded nondeterminism" hole the
reproduction cannot afford.

The rule flags ``for``-loops, comprehensions, and ``list``/``tuple``
materializations whose iterable resolves to a set-typed attribute
(``self.x = set()`` / ``x: set[...]`` on any project class, own or
foreign via the symbol table) unless the iteration is wrapped in
``sorted(...)`` or feeds an order-insensitive aggregate (``sum``,
``len``, ``min``, ``max``, ``any``, ``all``, ``set``, ``frozenset``).
Insertion-ordered ``dict`` keys (the ``dict[T, None]`` idiom) are the
sanctioned replacement when elements are unsortable.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.datlint.callgraph import TypeEnv
from repro.devtools.datlint.diagnostics import Diagnostic
from repro.devtools.datlint.program import ProgramContext, attr_chain
from repro.devtools.datlint.registry import ProgramRule, register_program

#: Callables whose result does not depend on argument iteration order.
_ORDER_FREE = {
    "sorted",
    "sum",
    "len",
    "min",
    "max",
    "any",
    "all",
    "set",
    "frozenset",
}

#: Materializing callables that *preserve* (and thus expose) the order.
_MATERIALIZERS = {"list", "tuple"}


@register_program
class UnorderedIterationRule(ProgramRule):
    code = "DAT012"
    name = "deterministic-iteration"
    rationale = (
        "Set iteration order varies with PYTHONHASHSEED; iterating a "
        "set-typed attribute into messages, merges, or exports makes "
        "seeded runs diverge. Wrap in sorted() or use the "
        "insertion-ordered dict[T, None] idiom."
    )

    def check_program(self, program: ProgramContext) -> Iterator[Diagnostic]:
        for fn in program.functions.values():
            env = TypeEnv(program, fn)
            sanctioned = self._order_free_args(fn.node)
            for expr in self._iteration_sites(fn.node):
                if id(expr) in sanctioned:
                    continue
                attr = self._set_attr_of(program, env, expr)
                if attr is None:
                    continue
                yield self.diagnostic(
                    fn.ctx,
                    expr,
                    f"iteration over set-typed `{attr}` in `{fn.qualname}` "
                    "has hash-dependent order; wrap in sorted() or use an "
                    "insertion-ordered dict",
                )

    def _order_free_args(self, root: ast.AST) -> set[int]:
        """ids of expressions consumed by order-insensitive callables."""
        sanctioned: set[int] = set()
        for node in ast.walk(root):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in _ORDER_FREE
            ):
                for arg in node.args:
                    sanctioned.add(id(arg))
        return sanctioned

    def _iteration_sites(self, root: ast.AST) -> Iterator[ast.expr]:
        for node in ast.walk(root):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                yield node.iter
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
            ):
                for generator in node.generators:
                    yield generator.iter
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in _MATERIALIZERS
                and node.args
            ):
                yield node.args[0]

    def _set_attr_of(
        self, program: ProgramContext, env: TypeEnv, expr: ast.expr
    ) -> str | None:
        """Dotted name of ``expr`` when it resolves to a set-typed attribute."""
        chain = attr_chain(expr)
        if chain is None or len(chain) < 2:
            return None
        owner_qual = env.type_of_chain(chain[:-1])
        if owner_qual is None:
            return None
        owner = program.classes.get(owner_qual)
        if owner is None:
            return None
        attr = chain[-1]
        for cls in program.mro(owner):
            if attr in cls.set_attrs:
                return ".".join(chain)
        return None

"""DAT001 — deterministic randomness.

The paper's figures (7–9) are replicated from seeded runs; bit-identical
replays require every random draw to flow from a seed threaded through
:mod:`repro.util.rng`. Wall-clock reads — the other determinism hazard —
are owned by DAT008 (one rule, one concern).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.datlint.astutils import call_dotted
from repro.devtools.datlint.context import FileContext
from repro.devtools.datlint.diagnostics import Diagnostic
from repro.devtools.datlint.registry import Rule, register

#: Modules allowed to touch entropy sources directly.
_EXEMPT_MODULES = ("repro.util.rng",)

#: Functions on numpy's *global* RNG — unseeded shared state.
_NUMPY_GLOBAL_FUNCS = {
    "seed",
    "rand",
    "randn",
    "randint",
    "random",
    "random_sample",
    "choice",
    "shuffle",
    "permutation",
    "normal",
    "uniform",
}


@register
class DeterminismRule(Rule):
    code = "DAT001"
    name = "determinism"
    rationale = (
        "Fig. 7-9 replications must be bit-identical run-to-run: no stdlib "
        "`random`, no argless/global numpy RNGs. Thread seeds through "
        "repro.util.rng instead."
    )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if ctx.module_is(*_EXEMPT_MODULES):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in ("random", "secrets"):
                        yield self.diagnostic(
                            ctx,
                            node,
                            f"import of non-seedable `{alias.name}`; use "
                            "repro.util.rng (ensure_rng/derive_rng) instead",
                        )
            elif isinstance(node, ast.ImportFrom):
                root = (node.module or "").split(".")[0]
                if root in ("random", "secrets"):
                    yield self.diagnostic(
                        ctx,
                        node,
                        f"import from `{node.module}`; use repro.util.rng "
                        "(ensure_rng/derive_rng) instead",
                    )
            elif isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)

    def _check_call(
        self, ctx: FileContext, node: ast.Call
    ) -> Iterator[Diagnostic]:
        dotted = call_dotted(node)
        if dotted is None:
            return
        parts = dotted.split(".")
        # Argless default_rng() seeds from OS entropy — unreproducible.
        if parts[-1] == "default_rng" and not node.args and not node.keywords:
            yield self.diagnostic(
                ctx,
                node,
                "argless `default_rng()` draws an OS-entropy seed; accept a "
                "seed/Generator and normalize via repro.util.rng.ensure_rng",
            )
            return
        # np.random.<func> / numpy.random.<func> global-state RNG.
        if (
            len(parts) >= 3
            and parts[-2] == "random"
            and parts[-3] in ("np", "numpy")
            and parts[-1] in _NUMPY_GLOBAL_FUNCS
        ):
            yield self.diagnostic(
                ctx,
                node,
                f"numpy global-RNG call `{dotted}()` shares hidden state "
                "across components; use a threaded Generator from "
                "repro.util.rng",
            )

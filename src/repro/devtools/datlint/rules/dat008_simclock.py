"""DAT008 — sim-clock discipline: no wall-clock reads in library code.

Telemetry timestamps, simulated components, and every experiment artifact
must be bit-identical across replays of a seeded run. A single
``time.time()`` (or ``monotonic()``, ``perf_counter()``,
``datetime.now()``, ...) read poisons that property, so the whole clock
family is banned in ``src/``: time comes from the transport's virtual
clock (``transport.now()``) or the bound telemetry clock
(``repro.telemetry``). Timing *measurement* belongs in ``benchmarks/``,
which datlint does not check.

Two sanctioned boundaries exist, both documented in
``docs/STATIC_ANALYSIS.md``:

* :mod:`repro.sim.udprpc`, whose real-socket substrate has no virtual
  clock — its single ``time.monotonic()`` carries a line-level
  ``# datlint: disable=DAT008`` marking the exemption where it happens;
* the :mod:`repro.fleet` package (``_WALL_CLOCK_MODULES`` below), the
  multi-process deployment harness: every one of its processes runs in
  real time by definition (process spawning, control sockets, live
  workload replay), so the whole package is a declared wall-clock module
  boundary rather than a scatter of line-level suppressions.

Determinism in the fleet harness comes from a different mechanism: all
workload *planning* is pure and seeded (:mod:`repro.fleet.plan`), and only
the execution layer touches the clock.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.datlint.astutils import call_dotted
from repro.devtools.datlint.context import FileContext
from repro.devtools.datlint.diagnostics import Diagnostic
from repro.devtools.datlint.registry import Rule, register

#: Module subtrees that ARE the wall-clock boundary: the deployment
#: harness runs real processes in real time. Everything it must keep
#: deterministic is factored into pure planning modules that carry no
#: clock reads regardless (the rule's skip is per-module, not per-line,
#: precisely so new fleet code cannot silently leak into sim modules).
_WALL_CLOCK_MODULES = ("repro.fleet",)

#: Dotted call names that read a process/wall clock.
_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "time.clock_gettime",
    "time.clock_gettime_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "date.today",
    "datetime.date.today",
}

#: Names whose ``from time import ...`` form hides the clock behind a bare
#: call the dotted matcher cannot see — ban the import itself.
_TIME_FROM_IMPORTS = {
    "time",
    "time_ns",
    "monotonic",
    "monotonic_ns",
    "perf_counter",
    "perf_counter_ns",
    "process_time",
    "process_time_ns",
    "clock_gettime",
    "clock_gettime_ns",
}


@register
class SimClockRule(Rule):
    code = "DAT008"
    name = "sim-clock"
    rationale = (
        "Telemetry and simulated components must timestamp from the virtual "
        "clock (transport.now() / the bound telemetry clock); wall-clock "
        "reads make seeded runs non-replayable."
    )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if ctx.module_under(*_WALL_CLOCK_MODULES):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom):
                if node.module == "time":
                    for alias in node.names:
                        if alias.name in _TIME_FROM_IMPORTS:
                            yield self.diagnostic(
                                ctx,
                                node,
                                f"`from time import {alias.name}` smuggles a "
                                "wall-clock read past the call matcher; use "
                                "the transport's virtual clock "
                                "(`transport.now()`)",
                            )
            elif isinstance(node, ast.Call):
                dotted = call_dotted(node)
                if dotted in _CLOCK_CALLS:
                    yield self.diagnostic(
                        ctx,
                        node,
                        f"wall-clock read `{dotted}()`; library code must "
                        "use the transport's virtual clock "
                        "(`transport.now()`) or the bound telemetry clock",
                    )

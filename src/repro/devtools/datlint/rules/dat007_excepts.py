"""DAT007 — no bare or overbroad exception handlers.

A bare ``except:`` (or ``except Exception:`` that swallows) hides protocol
bugs as silent packet drops or stalled aggregations — failures then surface
as *accuracy drift* in Fig. 9-style results instead of a stack trace.
Catch the narrowest library exception (:mod:`repro.errors`); an overbroad
handler is tolerated only when it re-raises.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.datlint.context import FileContext
from repro.devtools.datlint.diagnostics import Diagnostic
from repro.devtools.datlint.registry import Rule, register

_BROAD = {"Exception", "BaseException"}


def _broad_names(handler_type: ast.expr) -> list[str]:
    """Overbroad class names mentioned in an except clause."""
    nodes = (
        list(handler_type.elts)
        if isinstance(handler_type, ast.Tuple)
        else [handler_type]
    )
    found = []
    for node in nodes:
        if isinstance(node, ast.Name) and node.id in _BROAD:
            found.append(node.id)
    return found


def _reraises(handler: ast.ExceptHandler) -> bool:
    """True if the handler body contains any ``raise``."""
    return any(isinstance(node, ast.Raise) for node in ast.walk(handler))


@register
class ExceptHygieneRule(Rule):
    code = "DAT007"
    name = "except-hygiene"
    rationale = (
        "Swallowed exceptions surface as silent accuracy drift instead of "
        "failures; catch narrow repro.errors types, or re-raise."
    )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.diagnostic(
                    ctx,
                    node,
                    "bare `except:`; catch a specific exception type "
                    "(see repro.errors)",
                )
                continue
            broad = _broad_names(node.type)
            if broad and not _reraises(node):
                yield self.diagnostic(
                    ctx,
                    node,
                    f"overbroad `except {broad[0]}` that does not "
                    "re-raise; catch the narrowest repro.errors type",
                )

"""DAT009 — request-path policy belongs to the session layer.

``Transport.call`` / ``Transport.expect`` are mechanism: they arm reply
correlation in the pending table. Policy — deadlines, retries, backoff,
fan-out — is owned by :mod:`repro.net` (``RpcClient``/``gather``), so a
protocol service reaching for ``transport.call(...)`` directly is
re-growing exactly the per-layer timeout handling the session layer
exists to subsume (and silently opting out of the per-call telemetry
counters). Services hold an ``RpcClient`` and issue ``self.net.call``.

The session layer itself (:mod:`repro.net`) and the transport base class
implement the primitives and are exempt; so is :mod:`repro.sim`, whose
substrates may compose their own plumbing.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.datlint.astutils import chain_segments
from repro.devtools.datlint.context import FileContext
from repro.devtools.datlint.diagnostics import Diagnostic
from repro.devtools.datlint.registry import Rule, register

#: Packages that legitimately touch the raw RPC primitives.
_EXEMPT_PACKAGES = ("repro.net", "repro.sim")

#: Transport methods that arm request/reply plumbing.
_RPC_METHODS = {"call", "expect"}

#: Receiver chain tails that denote a transport object.
_TRANSPORT_NAMES = {"transport", "_transport"}


@register
class NoRawTransportRpcRule(Rule):
    code = "DAT009"
    name = "raw-transport-rpc"
    rationale = (
        "Deadlines, retries and backoff live in repro.net's RetryPolicy; "
        "a raw transport.call() re-implements request-path policy per "
        "layer and bypasses the session layer's telemetry. Route RPCs "
        "through RpcClient (self.net.call)."
    )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if ctx.module_under(*_EXEMPT_PACKAGES):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute) or func.attr not in _RPC_METHODS:
                continue
            receiver = chain_segments(func.value)
            if receiver and receiver[-1] in _TRANSPORT_NAMES:
                yield self.diagnostic(
                    ctx,
                    node,
                    f"raw `transport.{func.attr}()` outside repro.net: "
                    "issue RPCs through RpcClient (`self.net.call`) so "
                    "retry policy and telemetry apply",
                )

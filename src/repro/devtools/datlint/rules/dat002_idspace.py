"""DAT002 — identifier arithmetic must go through :class:`IdSpace`.

The finger-limiting function ``g(x) = ceil(log2((x + 2*d0)/3))`` and every
DAT parent-selection formula are stated over *clockwise* distances on the
b-bit ring.  Ad-hoc ``%``/mask arithmetic scattered through the tree is how
wraparound bugs land (a ``(a - b) % 2**b`` with the operands swapped flips
the ring's orientation silently).  All modular id arithmetic belongs in
:mod:`repro.chord.idspace` (``wrap``/``cw``/``ccw``/interval tests) or the
exact bit-math helpers in :mod:`repro.util.bits`.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.datlint.astutils import chain_segments
from repro.devtools.datlint.context import FileContext
from repro.devtools.datlint.diagnostics import Diagnostic
from repro.devtools.datlint.registry import Rule, register

#: Modules that implement the primitives and may use raw operators.
_EXEMPT_MODULES = ("repro.chord.idspace", "repro.util.bits")

#: Chain segments that mark an expression as id-space-related.
_SPACE_SEGMENTS = {"space", "idspace", "id_space"}

#: Bare names treated as a ring modulus when used as an operand.
_SPACE_SIZED_NAMES = {"size", "max_id", "ring_size", "space_size", "id_space_size"}

#: Attribute names that denote the space's modulus / mask / width.
_SPACE_SIZED_ATTRS = {"size", "max_id", "bits"}


def _is_space_chain(node: ast.expr) -> bool:
    """``space.size``, ``self.space.max_id``, ``ring.space.bits``, ..."""
    segments = chain_segments(node)
    if len(segments) < 2 or segments[-1] not in _SPACE_SIZED_ATTRS:
        return False
    return any(seg.lower() in _SPACE_SEGMENTS for seg in segments[:-1])


def _is_space_sized(node: ast.expr) -> bool:
    """True if ``node`` syntactically denotes the ring modulus ``2^b``."""
    if isinstance(node, ast.Name) and node.id in _SPACE_SIZED_NAMES:
        return True
    if isinstance(node, ast.Attribute) and _is_space_chain(node):
        return True
    if isinstance(node, ast.BinOp):
        # 2 ** b  /  1 << b — the canonical power-of-two modulus spellings.
        if (
            isinstance(node.op, ast.Pow)
            and isinstance(node.left, ast.Constant)
            and node.left.value == 2
        ):
            return True
        if (
            isinstance(node.op, ast.LShift)
            and isinstance(node.left, ast.Constant)
            and node.left.value == 1
        ):
            return True
    return False


@register
class IdSpaceHygieneRule(Rule):
    code = "DAT002"
    name = "id-space-hygiene"
    rationale = (
        "Clockwise-distance and wraparound arithmetic is only correct when "
        "routed through IdSpace (wrap/cw/ccw/intervals) or util.bits; raw "
        "`%` and masks on ring identifiers hide orientation bugs."
    )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if ctx.module_is(*_EXEMPT_MODULES):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.BinOp):
                continue
            if isinstance(node.op, ast.Mod) and _is_space_sized(node.right):
                yield self.diagnostic(
                    ctx,
                    node,
                    "raw modulo by the ring size; use IdSpace.wrap / "
                    "IdSpace.cw (or util.bits helpers) so wraparound "
                    "orientation is explicit",
                )
            elif isinstance(node.op, ast.BitAnd) and (
                _is_space_chain(node.right)
                if isinstance(node.right, ast.Attribute)
                else False
            ):
                yield self.diagnostic(
                    ctx,
                    node,
                    "raw mask by the ring's max_id; use IdSpace.wrap "
                    "instead of bit-twiddling identifiers",
                )

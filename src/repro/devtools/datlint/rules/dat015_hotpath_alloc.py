"""DAT015 — batched hot path: no per-message allocation inside loops.

The slab protocol path exists so that 10^5-node simulations do not build a
Python dict (or a :class:`~repro.sim.messages.Message`) per push: one
:class:`~repro.sim.messages.MessageBatch` carries a whole round as column
arrays, and every per-element quantity (wire sizes, payload state, hotspot
accounting) is computed with vectorized array ops. A single ``{...}`` or
``Message(...)`` inside a loop over batch elements silently reintroduces
the O(messages) allocation churn the refactor removed — the code still
passes every exactness test, just 50x slower at 10^5 nodes.

This rule guards the functions that *are* the batched hot path
(``_HOT_FUNCTIONS`` below): inside their ``for``/``while`` loops and
comprehensions, allocating a dict (literal, comprehension, or ``dict()``
call) or constructing a scalar ``Message`` is flagged. Allocation outside
a loop is per-*batch* and fine; deferred bodies (``lambda``, nested
``def``) are skipped because they only run on the explicit slow
path — :meth:`MessageBatch.message` materialization — not per element of
the batched round. Scalar modules (``Transport.send`` and friends) are
legitimately per-message and are not listed.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.datlint.astutils import call_dotted
from repro.devtools.datlint.context import FileContext
from repro.devtools.datlint.diagnostics import Diagnostic
from repro.devtools.datlint.registry import Rule, register

#: ``module -> function/method names`` forming the batched per-round hot
#: path. A loop in any of these runs O(batch) times per simulated round.
_HOT_FUNCTIONS: dict[str, frozenset[str]] = {
    "repro.sim.simnet": frozenset({"send_batch", "_deliver_batch"}),
    "repro.sim.messages": frozenset({"msg_ids", "nbytes", "__post_init__"}),
    "repro.core.slab": frozenset(
        {
            "_merged_columns",
            "_state_lengths",
            "push_round",
            "_on_deliver",
        }
    ),
    "repro.telemetry.hotspot": frozenset(
        {"record_send_bulk", "record_receive_bulk"}
    ),
}

#: Call names whose invocation allocates a per-message object.
_ALLOC_CALLS = {"dict", "Message", "encode_message"}

_LOOP_NODES = (
    ast.For,
    ast.While,
    ast.ListComp,
    ast.SetComp,
    ast.DictComp,
    ast.GeneratorExp,
)

_DEFERRED_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


class _LoopAllocFinder(ast.NodeVisitor):
    """Collect dict/Message allocations at loop depth >= 1."""

    def __init__(self) -> None:
        self.depth = 0
        self.hits: list[tuple[ast.AST, str]] = []

    def visit(self, node: ast.AST) -> None:
        if isinstance(node, _DEFERRED_NODES):
            return  # deferred body: runs on the slow path, not in the loop
        # The allocation check runs at the *enclosing* depth: a dict
        # comprehension outside any loop allocates once per batch (fine);
        # the same comprehension inside a loop allocates per element.
        if self.depth > 0:
            if isinstance(node, ast.Dict):
                self.hits.append((node, "dict literal"))
            elif isinstance(node, ast.DictComp):
                self.hits.append((node, "dict comprehension"))
            elif isinstance(node, ast.Call):
                dotted = call_dotted(node)
                name = dotted.rsplit(".", 1)[-1] if dotted else ""
                if name in _ALLOC_CALLS:
                    self.hits.append((node, f"`{name}(...)` call"))
        entered = isinstance(node, _LOOP_NODES)
        if entered:
            self.depth += 1
        self.generic_visit(node)
        if entered:
            self.depth -= 1


@register
class HotPathAllocRule(Rule):
    code = "DAT015"
    name = "hotpath-alloc"
    rationale = (
        "The batched protocol path (MessageBatch + send_batch + the slab "
        "runner) must stay allocation-free per message: a dict or Message "
        "built inside one of its loops reintroduces the O(messages) churn "
        "the slab refactor removed, degrading 10^5-node runs by orders of "
        "magnitude without failing any exactness test."
    )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        hot = _HOT_FUNCTIONS.get(ctx.module)
        if not hot:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name not in hot:
                continue
            finder = _LoopAllocFinder()
            for stmt in node.body:
                finder.visit(stmt)
            for alloc_node, what in finder.hits:
                yield self.diagnostic(
                    ctx,
                    alloc_node,
                    f"{what} inside a loop of batched hot-path function "
                    f"`{node.name}`; hoist it out of the loop or express it "
                    "as a vectorized column over the whole batch",
                )

"""DAT004 — no ``print()`` in library code.

Library modules run inside experiment sweeps and (eventually) servers;
stray stdout writes corrupt machine-readable experiment output and cannot
be filtered.  Route diagnostics through :mod:`repro.sim.tracing` (the
``trace`` helper / ``logging`` tree).  CLI entry points, the experiment
harnesses, and :mod:`repro.viz` legitimately produce stdout and are exempt.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.datlint.astutils import call_dotted
from repro.devtools.datlint.context import FileContext
from repro.devtools.datlint.diagnostics import Diagnostic
from repro.devtools.datlint.registry import Rule, register

_STDOUT_WRITES = {"sys.stdout.write", "sys.stderr.write"}


@register
class NoPrintRule(Rule):
    code = "DAT004"
    name = "no-print"
    rationale = (
        "Library stdout corrupts experiment output; route diagnostics "
        "through repro.sim.tracing / logging. CLIs, experiments, and viz "
        "are exempt."
    )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if ctx.is_output_module:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Name) and node.func.id == "print":
                yield self.diagnostic(
                    ctx,
                    node,
                    "print() in library code; use repro.sim.tracing.trace "
                    "(or the `repro` logging tree)",
                )
                continue
            dotted = call_dotted(node)
            if dotted in _STDOUT_WRITES:
                yield self.diagnostic(
                    ctx,
                    node,
                    f"`{dotted}` in library code; use repro.sim.tracing / "
                    "logging instead of raw stream writes",
                )

"""DAT011 — resource lifecycle: what a class acquires, its teardown frees.

The PR-5 transport-teardown leak motivated this rule: a class held
transport registrations past ``close()``, so back-to-back runs in one
process inherited ghost handlers and the Fig. 8 series drifted. The
lifecycle model (:mod:`repro.devtools.datlint.lifecycle`) records every
acquisition — ``transport.register(...)``, ``open``/socket/selector
handles, constructed project services that themselves define teardown,
upcall registrations into a foreign host — and checks a matching release
is reachable from the class's own teardown entry points
(``close``/``shutdown``/``stop``/``__exit__``/...).
"""

from __future__ import annotations

from typing import Iterator

from repro.devtools.datlint.diagnostics import Diagnostic
from repro.devtools.datlint.lifecycle import analyze_class
from repro.devtools.datlint.program import ProgramContext
from repro.devtools.datlint.registry import ProgramRule, register_program


@register_program
class ResourceLifecycleRule(ProgramRule):
    code = "DAT011"
    name = "resource-lifecycle"
    rationale = (
        "A class that registers with a transport, opens a handle, or "
        "constructs a closable service must release it from its own "
        "teardown path; leaked registrations outlive the run and corrupt "
        "the next one sharing the process (the PR-5 teardown-leak class)."
    )

    def check_program(self, program: ProgramContext) -> Iterator[Diagnostic]:
        for info in program.classes.values():
            lifecycle = analyze_class(program, info)
            if not lifecycle.acquisitions:
                continue
            for leak in lifecycle.leaked():
                if not lifecycle.has_teardown:
                    message = (
                        f"`{info.name}` acquires {leak.detail} in "
                        f"`{leak.method}` but defines no teardown method "
                        "(close/shutdown/stop/__exit__)"
                    )
                else:
                    message = (
                        f"`{info.name}` acquires {leak.detail} in "
                        f"`{leak.method}` with no matching release "
                        "reachable from its teardown methods"
                    )
                yield self.diagnostic(info.ctx, leak.node, message)

"""DAT006 — no mutable default arguments.

A mutable default is created once at def-time and shared across every call
— in a simulator that reuses node/service objects across scenarios this
leaks state between supposedly independent runs, which is exactly the kind
of cross-run contamination Zhang et al. document corrupting monitoring
benchmarks.  Use ``None`` plus an in-body default (or
``dataclasses.field(default_factory=...)``).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.datlint.context import FileContext
from repro.devtools.datlint.diagnostics import Diagnostic
from repro.devtools.datlint.registry import Rule, register

_MUTABLE_FACTORIES = {"list", "dict", "set", "bytearray", "defaultdict", "deque"}


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in _MUTABLE_FACTORIES
    return False


@register
class MutableDefaultRule(Rule):
    code = "DAT006"
    name = "no-mutable-defaults"
    rationale = (
        "Def-time mutable defaults are shared across calls and leak state "
        "between supposedly independent simulation runs."
    )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if _is_mutable_default(default):
                    yield self.diagnostic(
                        ctx,
                        default,
                        f"mutable default argument in `{node.name}()`; "
                        "use None and create the object in the body",
                    )

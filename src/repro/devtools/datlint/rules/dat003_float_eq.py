"""DAT003 — no exact equality on floating-point values.

Aggregate values (averages, std-devs, quantiles, imbalance factors) are
floats accumulated across merge orders; exact ``==`` against a float is
order-dependent and platform-dependent.  Compare with a tolerance
(``math.isclose`` / ``pytest.approx``) or restructure around integers.
Comparisons against *integer* literals (``total == 0``) are deliberately
left alone — exact-zero sentinel tests are a conscious escape hatch.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.datlint.context import FileContext
from repro.devtools.datlint.diagnostics import Diagnostic
from repro.devtools.datlint.registry import Rule, register


def _is_floaty(node: ast.expr) -> bool:
    """Float literal, ``float(...)`` cast, or arithmetic on either."""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id == "float":
            return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
        # True division always yields a float.
        return True
    if isinstance(node, ast.UnaryOp):
        return _is_floaty(node.operand)
    return False


@register
class FloatEqualityRule(Rule):
    code = "DAT003"
    name = "no-float-eq"
    rationale = (
        "Merge-order and platform effects make exact float equality on "
        "aggregate/metric values flaky; use math.isclose or integer "
        "arithmetic."
    )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for index, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left, right = operands[index], operands[index + 1]
                if _is_floaty(left) or _is_floaty(right):
                    yield self.diagnostic(
                        ctx,
                        node,
                        "exact equality against a float; use math.isclose "
                        "(or integer arithmetic) for aggregate/metric "
                        "comparisons",
                    )
                    break

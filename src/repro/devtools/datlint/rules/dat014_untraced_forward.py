"""DAT014 — multi-hop forwards must re-thread the trace context.

A forwarding hop typically builds the next request as ``Message(...,
payload={**payload, ...})`` — copying the incoming payload and amending
it. That copy carries the *stale* ``"_trace"`` context of the previous
hop, and because the session layer's automatic propagation is
fill-only-if-absent (:func:`repro.telemetry.propagate_current` never
overwrites), the stale context survives all the way to the export: the
hop chain collapses into a flat fan-out under the first hop and per-hop
latency attribution is lost.

A forwarding function must therefore overwrite the copied context
explicitly — open a hop span (``telemetry.remote_span(message, ...)``)
and stamp the forward with ``span.propagate(forward)`` — or construct a
fresh payload and manage ``"_trace"`` itself. This rule flags
``Message(...)`` constructions whose payload is a dict display containing
a ``**`` spread (the forward-by-copy pattern) inside functions that
neither call ``.propagate(...)`` nor reference the trace key.

Scoped to the protocol packages (``repro.chord``, ``repro.core``,
``repro.maan``, ``repro.gma``) — infrastructure layers carry contexts
opaquely and are exempt.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.datlint.context import FileContext
from repro.devtools.datlint.diagnostics import Diagnostic
from repro.devtools.datlint.registry import Rule, register

#: Packages whose request construction must thread trace context.
_PROTOCOL_PACKAGES = ("repro.chord", "repro.core", "repro.maan", "repro.gma")

#: The payload key the trace context travels under (spans.TRACE_KEY).
_TRACE_KEY = "_trace"

#: Positional index of ``payload`` in ``Message(kind, source, destination,
#: payload, ...)``.
_PAYLOAD_ARG_INDEX = 3


def _payload_argument(call: ast.Call) -> ast.expr | None:
    for keyword in call.keywords:
        if keyword.arg == "payload":
            return keyword.value
    if len(call.args) > _PAYLOAD_ARG_INDEX:
        return call.args[_PAYLOAD_ARG_INDEX]
    return None


def _is_forward_payload(expr: ast.expr | None) -> bool:
    """A dict display with a ``**`` spread: ``{**payload, ...}``."""
    return isinstance(expr, ast.Dict) and any(key is None for key in expr.keys)


def _threads_context(func: ast.AST) -> bool:
    """Whether the function re-threads trace context anywhere in its body.

    Either an explicit ``<span>.propagate(...)`` call (the hop-span
    pattern) or any reference to the ``"_trace"`` payload key /
    ``TRACE_KEY`` name (hand-managed context) counts.
    """
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "propagate"
        ):
            return True
        if isinstance(node, ast.Constant) and node.value == _TRACE_KEY:
            return True
        if isinstance(node, ast.Name) and node.id == "TRACE_KEY":
            return True
    return False


@register
class UntracedForwardRule(Rule):
    code = "DAT014"
    name = "untraced-forward"
    rationale = (
        "A forwarded Message built from {**payload, ...} copies the "
        "previous hop's \"_trace\" context, and automatic propagation "
        "never overwrites — the trace's hop chain flattens. Open a hop "
        "span with telemetry.remote_span(message, ...) and stamp the "
        "forward with span.propagate(forward)."
    )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if not ctx.module_under(*_PROTOCOL_PACKAGES):
            return
        for func in ast.walk(ctx.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            threaded: bool | None = None  # computed lazily, once per function
            for node in ast.walk(func):
                if not isinstance(node, ast.Call):
                    continue
                callee = node.func
                name = (
                    callee.id
                    if isinstance(callee, ast.Name)
                    else callee.attr if isinstance(callee, ast.Attribute) else ""
                )
                if name != "Message":
                    continue
                if not _is_forward_payload(_payload_argument(node)):
                    continue
                if threaded is None:
                    threaded = _threads_context(func)
                if threaded:
                    continue
                yield self.diagnostic(
                    ctx,
                    node,
                    "multi-hop forward copies the incoming payload (and its "
                    'stale "_trace" context) without re-threading: stamp the '
                    "forwarded message via a hop span's .propagate(...)",
                )

"""DAT005 — no blocking calls inside the simulated stack.

The event engine is single-threaded and cooperative: one handler calling
``time.sleep`` (or a synchronous socket op) stalls the entire virtual
timeline and silently converts an event-driven protocol into a serial one.
Real-time transports (:mod:`repro.sim.udprpc`, :mod:`repro.gma.live`) and
the multi-process deployment harness (the :mod:`repro.fleet` package) own
actual sockets/threads/processes and are exempt; everything else must
express delay as scheduled events (``transport.schedule``).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.datlint.astutils import call_dotted
from repro.devtools.datlint.context import FileContext
from repro.devtools.datlint.diagnostics import Diagnostic
from repro.devtools.datlint.registry import Rule, register

#: Real-time modules that legitimately block on OS primitives.
_EXEMPT_MODULES = ("repro.sim.udprpc", "repro.gma.live")

#: Whole packages that are real-time by construction (every module in the
#: deployment harness drives processes and sockets).
_EXEMPT_PACKAGES = ("repro.fleet",)

_BLOCKING_CALLS = {
    "time.sleep": "express delays as transport.schedule events",
    "socket.socket": "sockets belong in the real-time transports",
    "socket.create_connection": "sockets belong in the real-time transports",
    "select.select": "the sim engine owns the event loop",
    "subprocess.run": "no synchronous subprocesses in sim handlers",
    "subprocess.check_output": "no synchronous subprocesses in sim handlers",
}

#: Method names that are blocking socket/file primitives wherever they appear.
_BLOCKING_METHODS = {"recv", "recvfrom", "accept", "sendall", "makefile"}


@register
class NoBlockingRule(Rule):
    code = "DAT005"
    name = "no-blocking"
    rationale = (
        "The heap-based engine is cooperative; a blocking call in a "
        "handler freezes virtual time for every node. Only the real-time "
        "transports may touch sockets or sleep."
    )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if ctx.module_is(*_EXEMPT_MODULES) or ctx.module_under(*_EXEMPT_PACKAGES):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = call_dotted(node)
            if dotted in _BLOCKING_CALLS:
                yield self.diagnostic(
                    ctx,
                    node,
                    f"blocking call `{dotted}()`: {_BLOCKING_CALLS[dotted]}",
                )
                continue
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _BLOCKING_METHODS
            ):
                yield self.diagnostic(
                    ctx,
                    node,
                    f"blocking socket primitive `.{node.func.attr}()` "
                    "outside the real-time transports",
                )

"""File discovery and rule execution."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

import repro.devtools.datlint.rules  # noqa: F401  (registers the built-ins)
from repro.devtools.datlint.context import FileContext
from repro.devtools.datlint.diagnostics import PARSE_ERROR_CODE, Diagnostic
from repro.devtools.datlint.registry import Rule, all_rules

__all__ = ["discover_files", "lint_file", "lint_paths", "LintReport"]

#: Directory names never descended into.
_SKIP_DIRS = {".git", "__pycache__", ".venv", "build", "dist", ".mypy_cache"}


def discover_files(paths: Iterable[Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated .py file list."""
    found: set[Path] = set()
    for path in paths:
        if path.is_dir():
            for candidate in path.rglob("*.py"):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    found.add(candidate)
        elif path.suffix == ".py":
            found.add(path)
    return sorted(found)


@dataclass
class LintReport:
    """Outcome of one lint run."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0

    @property
    def exit_code(self) -> int:
        """0 when clean, 1 when any diagnostic survived suppression."""
        return 1 if self.diagnostics else 0


def lint_file(
    path: Path, rules: Sequence[Rule] | None = None
) -> tuple[list[Diagnostic], int]:
    """Lint one file; returns (surviving diagnostics, suppressed count).

    An unreadable or unparsable file yields a single ``DAT000`` diagnostic
    (suppressible only by fixing the file — parse errors ignore the
    suppression table, which cannot be trusted for a broken file).
    """
    try:
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
    except (OSError, SyntaxError, ValueError) as exc:
        return (
            [
                Diagnostic(
                    path=str(path),
                    line=getattr(exc, "lineno", None) or 1,
                    col=getattr(exc, "offset", None) or 0,
                    rule=PARSE_ERROR_CODE,
                    message=f"could not analyze file: {exc}",
                )
            ],
            0,
        )
    ctx = FileContext(path, source, tree)
    surviving: list[Diagnostic] = []
    suppressed = 0
    for rule in rules if rules is not None else all_rules():
        for diagnostic in rule.check(ctx):
            if ctx.suppressions.is_suppressed(diagnostic.rule, diagnostic.line):
                suppressed += 1
            else:
                surviving.append(diagnostic)
    return sorted(surviving), suppressed


def lint_paths(
    paths: Iterable[Path], rules: Sequence[Rule] | None = None
) -> LintReport:
    """Lint every python file under ``paths`` with ``rules`` (default: all)."""
    report = LintReport()
    for path in discover_files(paths):
        diagnostics, suppressed = lint_file(path, rules=rules)
        report.diagnostics.extend(diagnostics)
        report.suppressed += suppressed
        report.files_checked += 1
    report.diagnostics.sort()
    return report

"""File discovery and rule execution.

Since v2 a lint run has two passes:

1. **file pass** — every discovered file is parsed once into a
   :class:`~repro.devtools.datlint.context.FileContext` and the
   single-file rules (DAT001-009) run against it;
2. **program pass** — the retained contexts build one
   :class:`~repro.devtools.datlint.program.ProgramContext` and the
   whole-program rules (transitive DAT005, DAT010-012) run against that.

Both passes route suppression through
:meth:`~repro.devtools.datlint.context._SuppressionTable.consume`, which
marks the matching ``# datlint: disable=`` records as *used*; with
``warn_unused_suppressions=True`` the stale ones come back as ``DAT013``
diagnostics (only meaningful on full-rule runs — a ``--select`` subset
would report every suppression of an unselected rule as stale).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

import repro.devtools.datlint.rules  # noqa: F401  (registers the built-ins)
from repro.devtools.datlint.context import FileContext
from repro.devtools.datlint.diagnostics import (
    PARSE_ERROR_CODE,
    UNUSED_SUPPRESSION_CODE,
    Diagnostic,
)
from repro.devtools.datlint.program import build_program
from repro.devtools.datlint.registry import (
    ProgramRule,
    Rule,
    all_program_rules,
    all_rules,
)

__all__ = ["discover_files", "lint_file", "lint_paths", "LintReport"]

#: Directory names never descended into.
_SKIP_DIRS = {".git", "__pycache__", ".venv", "build", "dist", ".mypy_cache"}


def discover_files(paths: Iterable[Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated .py file list."""
    found: set[Path] = set()
    for path in paths:
        if path.is_dir():
            for candidate in path.rglob("*.py"):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    found.add(candidate)
        elif path.suffix == ".py":
            found.add(path)
    return sorted(found)


@dataclass
class LintReport:
    """Outcome of one lint run."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0

    @property
    def exit_code(self) -> int:
        """0 when clean, 1 when any diagnostic survived suppression."""
        return 1 if self.diagnostics else 0


def _parse(path: Path) -> FileContext | Diagnostic:
    """Parse one file into a context, or a ``DAT000`` diagnostic.

    Parse errors ignore the suppression table, which cannot be trusted
    for a broken file.
    """
    try:
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
    except (OSError, SyntaxError, ValueError) as exc:
        return Diagnostic(
            path=str(path),
            line=getattr(exc, "lineno", None) or 1,
            col=getattr(exc, "offset", None) or 0,
            rule=PARSE_ERROR_CODE,
            message=f"could not analyze file: {exc}",
        )
    return FileContext(path, source, tree)


def lint_file(
    path: Path, rules: Sequence[Rule] | None = None
) -> tuple[list[Diagnostic], int]:
    """Lint one file with the single-file rules.

    Returns (surviving diagnostics, suppressed count). Whole-program rules
    need every file at once and therefore only run under
    :func:`lint_paths`. An unreadable or unparsable file yields a single
    ``DAT000`` diagnostic.
    """
    parsed = _parse(path)
    if isinstance(parsed, Diagnostic):
        return [parsed], 0
    ctx = parsed
    surviving: list[Diagnostic] = []
    suppressed = 0
    for rule in rules if rules is not None else all_rules():
        for diagnostic in rule.check(ctx):
            if ctx.suppressions.is_suppressed(diagnostic.rule, diagnostic.line):
                suppressed += 1
            else:
                surviving.append(diagnostic)
    return sorted(surviving), suppressed


def lint_paths(
    paths: Iterable[Path],
    rules: Sequence[Rule] | None = None,
    program_rules: Sequence[ProgramRule] | None = None,
    *,
    warn_unused_suppressions: bool = False,
) -> LintReport:
    """Lint every python file under ``paths``.

    ``rules=None`` means all registered file rules. ``program_rules=None``
    means all registered program rules *when* ``rules`` is also ``None``
    (a caller selecting specific file rules gets exactly those); pass a
    sequence — possibly empty — to control the program pass explicitly.
    """
    if program_rules is None:
        program_rules = all_program_rules() if rules is None else []
    report = LintReport()
    contexts: list[FileContext] = []
    by_path: dict[str, FileContext] = {}
    for path in discover_files(paths):
        report.files_checked += 1
        parsed = _parse(path)
        if isinstance(parsed, Diagnostic):
            report.diagnostics.append(parsed)
            continue
        ctx = parsed
        contexts.append(ctx)
        by_path[str(ctx.path)] = ctx
        for rule in rules if rules is not None else all_rules():
            for diagnostic in rule.check(ctx):
                if ctx.suppressions.consume(diagnostic.rule, diagnostic.line):
                    report.suppressed += 1
                else:
                    report.diagnostics.append(diagnostic)
    if program_rules:
        program = build_program(contexts)
        for program_rule in program_rules:
            for diagnostic in program_rule.check_program(program):
                ctx = by_path.get(diagnostic.path)
                if ctx is not None and ctx.suppressions.consume(
                    diagnostic.rule, diagnostic.line
                ):
                    report.suppressed += 1
                else:
                    report.diagnostics.append(diagnostic)
    if warn_unused_suppressions:
        for ctx in contexts:
            for record in ctx.suppressions.unused_records():
                codes = ",".join(sorted(record.codes))
                scope = "file-level" if record.standalone else "line"
                report.diagnostics.append(
                    Diagnostic(
                        path=str(ctx.path),
                        line=record.line,
                        col=0,
                        rule=UNUSED_SUPPRESSION_CODE,
                        message=(
                            f"stale {scope} suppression "
                            f"`# datlint: disable={codes}` — it no longer "
                            "silences anything; delete it"
                        ),
                    )
                )
    report.diagnostics.sort()
    return report
